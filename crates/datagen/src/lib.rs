//! Synthetic sparse tensor generators for HyperTensor-RS.
//!
//! The paper evaluates on four real-world tensors (Netflix, NELL, Delicious,
//! Flickr — Table I) that are not redistributable and are far too large for a
//! single-node reproduction.  This crate provides the substitution described
//! in DESIGN.md:
//!
//! * [`random`] — uniform random sparse tensors (used for the MET comparison
//!   on a random `10K×10K×10K`, 1M-nonzero tensor),
//! * [`lowrank`] — tensors sampled from a ground-truth low-rank Tucker model
//!   plus noise (used by correctness and recovery tests),
//! * [`zipf`] — a power-law index sampler reproducing the skewed slice-size
//!   distributions of the real datasets,
//! * [`profiles`] — scaled-down dataset profiles preserving mode counts,
//!   relative mode sizes and skew of the four paper datasets,
//! * [`requests`] — Zipf-skewed multi-tenant request mixes replayed by the
//!   decomposition-service load bench.

pub mod lowrank;
pub mod profiles;
pub mod random;
pub mod requests;
pub mod zipf;

pub use lowrank::{lowrank_tensor, LowRankSpec};
pub use profiles::{DatasetProfile, ProfileName};
pub use random::random_tensor;
pub use requests::{request_mix, RequestEvent, RequestKind, RequestMixSpec};
pub use zipf::ZipfSampler;
