//! Uniform random sparse tensors.
//!
//! Used for the paper's MET comparison ("a random tensor of size
//! 10K × 10K × 10K with 1M nonzeros") and as a neutral workload for the
//! Criterion microbenchmarks.

use rand::distributions::{Distribution, Uniform};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sptensor::hash::FxHashSet;
use sptensor::SparseTensor;

/// Generates a sparse tensor with `nnz` distinct uniformly random
/// coordinates and values uniform in `[0, 1)`.
///
/// Coordinates are deduplicated; if the requested density is so high that
/// distinct coordinates cannot be found in a reasonable number of attempts
/// (more than `20 × nnz` draws), the tensor is returned with fewer nonzeros.
///
/// # Panics
/// Panics if `dims` is empty or contains zero.
pub fn random_tensor(dims: &[usize], nnz: usize, seed: u64) -> SparseTensor {
    assert!(!dims.is_empty());
    let capacity: f64 = dims.iter().map(|&d| d as f64).product();
    let mut rng = SmallRng::seed_from_u64(seed);
    let value_dist = Uniform::new(0.0, 1.0);
    let index_dists: Vec<Uniform<usize>> = dims.iter().map(|&d| Uniform::new(0, d)).collect();

    let target = if (nnz as f64) > capacity {
        capacity as usize
    } else {
        nnz
    };
    let mut tensor = SparseTensor::with_capacity(dims.to_vec(), target);
    let mut seen: FxHashSet<u128> = FxHashSet::default();
    seen.reserve(target);
    let mut index = vec![0usize; dims.len()];
    let mut attempts = 0usize;
    let max_attempts = target.saturating_mul(20).max(1000);
    while tensor.nnz() < target && attempts < max_attempts {
        attempts += 1;
        for (m, dist) in index_dists.iter().enumerate() {
            index[m] = dist.sample(&mut rng);
        }
        let key = sptensor::hash::linearize(&index, dims);
        if seen.insert(key) {
            tensor.push(&index, value_dist.sample(&mut rng));
        }
    }
    tensor
}

/// Generates a random tensor whose values are drawn from `{1, …, max_value}`
/// (integer ratings, like the Netflix scores).  Coordinates are distinct.
pub fn random_rating_tensor(dims: &[usize], nnz: usize, max_value: u32, seed: u64) -> SparseTensor {
    let mut t = random_tensor(dims, nnz, seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let dist = Uniform::new(1, max_value + 1);
    for k in 0..t.nnz() {
        *t.value_mut(k) = dist.sample(&mut rng) as f64;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_tensor_has_requested_nnz() {
        let t = random_tensor(&[100, 100, 100], 5000, 42);
        assert_eq!(t.nnz(), 5000);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn random_tensor_is_deterministic() {
        let a = random_tensor(&[50, 60, 70], 1000, 7);
        let b = random_tensor(&[50, 60, 70], 1000, 7);
        assert_eq!(a, b);
        let c = random_tensor(&[50, 60, 70], 1000, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn random_tensor_coordinates_are_distinct() {
        let t = random_tensor(&[20, 20], 300, 3);
        let mut seen = FxHashSet::default();
        for (idx, _) in t.iter() {
            assert!(seen.insert(idx.to_vec()), "duplicate coordinate {idx:?}");
        }
    }

    #[test]
    fn random_tensor_caps_at_capacity() {
        // Requesting more nonzeros than cells exist.
        let t = random_tensor(&[3, 3], 100, 1);
        assert!(t.nnz() <= 9);
        assert!(t.nnz() >= 8, "should fill nearly the whole tensor");
    }

    #[test]
    fn random_tensor_values_in_unit_interval() {
        let t = random_tensor(&[40, 40, 40], 2000, 5);
        for (_, v) in t.iter() {
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn rating_tensor_values_are_integer_ratings() {
        let t = random_rating_tensor(&[30, 30, 12], 500, 5, 11);
        for (_, v) in t.iter() {
            assert!((1.0..=5.0).contains(&v));
            assert_eq!(v.fract(), 0.0);
        }
    }

    #[test]
    fn four_mode_random_tensor() {
        let t = random_tensor(&[10, 20, 30, 5], 800, 13);
        assert_eq!(t.order(), 4);
        assert_eq!(t.nnz(), 800);
        let maxes = t.max_indices().unwrap();
        assert!(maxes[0] < 10 && maxes[1] < 20 && maxes[2] < 30 && maxes[3] < 5);
    }
}
