//! Sparse tensors sampled from a ground-truth low-rank Tucker model.
//!
//! Tucker/HOOI is a low-rank approximation algorithm; the most direct
//! correctness check is to build a tensor that *is* (approximately) low rank
//! and verify that HOOI recovers a decomposition whose fit matches the
//! planted model.  The generator draws a random core `G` and random factor
//! matrices `U_n`, samples `nnz` distinct coordinates, and sets each sampled
//! value to the exact reconstruction `Σ g · Π u` at that coordinate plus
//! optional Gaussian-like noise.

use linalg::Matrix;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sptensor::hash::FxHashSet;
use sptensor::{DenseTensor, SparseTensor};

/// Specification of a planted low-rank tensor.
#[derive(Debug, Clone)]
pub struct LowRankSpec {
    /// Mode sizes of the generated tensor.
    pub dims: Vec<usize>,
    /// Tucker ranks of the planted model (one per mode).
    pub ranks: Vec<usize>,
    /// Number of sampled nonzeros.
    pub nnz: usize,
    /// Relative amplitude of additive noise (0 for an exactly low-rank
    /// sample).
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

/// A planted low-rank tensor together with its ground truth.
#[derive(Debug, Clone)]
pub struct LowRankTensor {
    /// The sampled sparse tensor.
    pub tensor: SparseTensor,
    /// The planted core tensor.
    pub core: DenseTensor,
    /// The planted factor matrices (orthonormalized).
    pub factors: Vec<Matrix>,
}

/// Generates a sparse tensor sampled from a planted Tucker model.
///
/// # Panics
/// Panics if `dims` and `ranks` have different lengths, any rank exceeds its
/// mode size, or any rank/dimension is zero.
pub fn lowrank_tensor(spec: &LowRankSpec) -> LowRankTensor {
    assert_eq!(spec.dims.len(), spec.ranks.len());
    assert!(!spec.dims.is_empty());
    for (&d, &r) in spec.dims.iter().zip(spec.ranks.iter()) {
        assert!(d > 0 && r > 0, "dims and ranks must be positive");
        assert!(r <= d, "rank {r} exceeds mode size {d}");
    }
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let order = spec.dims.len();

    // Random orthonormal factors and a random core with decaying magnitudes
    // so the planted model has a clear dominant subspace.
    let mut factors = Vec::with_capacity(order);
    for (m, (&d, &r)) in spec.dims.iter().zip(spec.ranks.iter()).enumerate() {
        let mut u = Matrix::random_signed(d, r, spec.seed ^ ((m as u64 + 1) * 0x1234_5678));
        linalg::qr::orthonormalize_columns(&mut u);
        factors.push(u);
    }
    let core_seed = spec.seed ^ 0xc0de_cafe;
    let core = DenseTensor::from_fn(spec.ranks.clone(), |idx| {
        // Entry magnitude decays with the sum of indices (so the planted
        // model has a clearly dominant subspace), while a hash-derived
        // pseudo-random mantissa keeps every mode unfolding of the core at
        // full rank — an exactly separable core would make the planted
        // multilinear rank smaller than `ranks`.
        let depth: usize = idx.iter().sum();
        let h = sptensor::hash::hash_index_tuple(idx) ^ core_seed;
        let sign = if h & 1 == 0 { 1.0 } else { -1.0 };
        let mantissa = 0.25 + 0.75 * ((h >> 1) & 0xffff) as f64 / 65535.0;
        sign * mantissa * (2.0_f64).powi(-(depth as i32))
    });

    // Sample distinct coordinates: a mix of uniform and "popular row" picks
    // so the tensor is not pathologically uniform.
    let value_noise = Uniform::new(-1.0, 1.0);
    let index_dists: Vec<Uniform<usize>> = spec.dims.iter().map(|&d| Uniform::new(0, d)).collect();
    let capacity: f64 = spec.dims.iter().map(|&d| d as f64).product();
    let target = if (spec.nnz as f64) > capacity {
        capacity as usize
    } else {
        spec.nnz
    };

    let mut tensor = SparseTensor::with_capacity(spec.dims.clone(), target);
    let mut seen: FxHashSet<u128> = FxHashSet::default();
    seen.reserve(target);
    let mut index = vec![0usize; order];
    let mut attempts = 0usize;
    let max_attempts = target.saturating_mul(30).max(1000);
    while tensor.nnz() < target && attempts < max_attempts {
        attempts += 1;
        for (m, dist) in index_dists.iter().enumerate() {
            index[m] = dist.sample(&mut rng);
        }
        let key = sptensor::hash::linearize(&index, &spec.dims);
        if !seen.insert(key) {
            continue;
        }
        let mut value = evaluate_tucker(&core, &factors, &index);
        if spec.noise > 0.0 {
            value += spec.noise * value_noise.sample(&mut rng);
        }
        tensor.push(&index, value);
    }

    LowRankTensor {
        tensor,
        core,
        factors,
    }
}

/// Evaluates the Tucker model `G ×₁ U₁ … ×_N U_N` at a single coordinate.
pub fn evaluate_tucker(core: &DenseTensor, factors: &[Matrix], index: &[usize]) -> f64 {
    debug_assert_eq!(factors.len(), core.order());
    debug_assert_eq!(index.len(), core.order());
    // Accumulate Σ_{r_1..r_N} g(r) Π_n U_n(i_n, r_n) by iterating the core.
    let mut sum = 0.0;
    let mut ridx = vec![0usize; core.order()];
    for pos in 0..core.len() {
        core.unlinearize(pos, &mut ridx);
        let g = core.as_slice()[pos];
        if g == 0.0 {
            continue;
        }
        let mut prod = g;
        for (n, &r) in ridx.iter().enumerate() {
            prod *= factors[n][(index[n], r)];
            if prod == 0.0 {
                break;
            }
        }
        sum += prod;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> LowRankSpec {
        LowRankSpec {
            dims: vec![30, 25, 20],
            ranks: vec![3, 3, 2],
            nnz: 2000,
            noise: 0.0,
            seed: 42,
        }
    }

    #[test]
    fn generates_requested_nnz() {
        let lr = lowrank_tensor(&small_spec());
        assert_eq!(lr.tensor.nnz(), 2000);
        assert!(lr.tensor.validate().is_ok());
    }

    #[test]
    fn factors_are_orthonormal() {
        let lr = lowrank_tensor(&small_spec());
        for u in &lr.factors {
            assert!(linalg::qr::orthogonality_error(u) < 1e-8);
        }
    }

    #[test]
    fn values_match_planted_model() {
        let lr = lowrank_tensor(&small_spec());
        for (idx, v) in lr.tensor.iter().take(50) {
            let expected = evaluate_tucker(&lr.core, &lr.factors, idx);
            assert!((v - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn values_match_dense_reconstruction() {
        // Full dense reconstruction through ttm_chain must agree with the
        // per-coordinate evaluation.
        let spec = LowRankSpec {
            dims: vec![8, 7, 6],
            ranks: vec![2, 3, 2],
            nnz: 100,
            noise: 0.0,
            seed: 5,
        };
        let lr = lowrank_tensor(&spec);
        let factor_refs: Vec<&Matrix> = lr.factors.iter().collect();
        let full = lr.core.ttm_chain(&factor_refs, false);
        for (idx, v) in lr.tensor.iter() {
            assert!((v - full.get(idx)).abs() < 1e-10);
        }
    }

    #[test]
    fn noise_perturbs_values() {
        let mut spec = small_spec();
        let clean = lowrank_tensor(&spec);
        spec.noise = 0.1;
        let noisy = lowrank_tensor(&spec);
        assert_eq!(clean.tensor.nnz(), noisy.tensor.nnz());
        let mut differing = 0;
        for ((_, a), (_, b)) in clean.tensor.iter().zip(noisy.tensor.iter()) {
            if (a - b).abs() > 1e-12 {
                differing += 1;
            }
        }
        assert!(differing > clean.tensor.nnz() / 2);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = lowrank_tensor(&small_spec());
        let b = lowrank_tensor(&small_spec());
        assert_eq!(a.tensor, b.tensor);
    }

    #[test]
    fn four_mode_generation() {
        let spec = LowRankSpec {
            dims: vec![12, 10, 8, 6],
            ranks: vec![2, 2, 2, 2],
            nnz: 500,
            noise: 0.0,
            seed: 9,
        };
        let lr = lowrank_tensor(&spec);
        assert_eq!(lr.tensor.order(), 4);
        assert_eq!(lr.core.dims(), &[2, 2, 2, 2]);
        assert_eq!(lr.factors.len(), 4);
    }

    #[test]
    #[should_panic]
    fn rank_larger_than_dim_rejected() {
        let spec = LowRankSpec {
            dims: vec![4, 4],
            ranks: vec![5, 2],
            nnz: 10,
            noise: 0.0,
            seed: 1,
        };
        let _ = lowrank_tensor(&spec);
    }
}
