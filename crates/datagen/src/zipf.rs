//! Power-law (Zipf) index sampling.
//!
//! The real tensors in the paper have heavily skewed nonzero distributions:
//! a few users rate most movies, a few tags label most resources.  This skew
//! is what makes coarse-grain tasks imbalanced (Table III reports 436 % and
//! 471 % imbalance in the 4th mode of Flickr) and what hypergraph
//! partitioning exploits.  The generators therefore draw mode indices from a
//! Zipf distribution with a configurable exponent instead of uniformly.

use rand::Rng;

/// Samples indices `0..n` with probability proportional to
/// `1 / (rank + 1)^exponent`, using the rejection-inversion-free cumulative
/// table method (exact, O(log n) per sample after O(n) setup).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative distribution over the `n` items.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` items with the given exponent.
    ///
    /// `exponent == 0.0` degenerates to the uniform distribution; typical
    /// web-data skew is `0.8 – 1.5`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `exponent < 0`.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one item");
        assert!(exponent >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        // Guard against floating point drift: the last entry must be 1.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        ZipfSampler { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is over zero items (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one index in `0..n` (0 is the most probable item).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // Binary search for the first cdf entry >= u.
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of item `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

/// Applies a deterministic pseudo-random permutation to an index so that the
/// "popular" Zipf items are scattered across `0..n` instead of clustered at
/// the low indices; this mimics real data where popular entities have
/// arbitrary ids.  The permutation is a multiplicative hash modulo `n`
/// composed with an offset; it is a bijection when `n` and the multiplier
/// are coprime, which is ensured by retrying with the next odd multiplier.
pub fn scatter_index(index: usize, n: usize, seed: u64) -> usize {
    if n <= 1 {
        return 0;
    }
    // Pick an odd multiplier derived from the seed that is coprime with n.
    let mut mult = (seed | 1) as u128;
    while gcd(mult as u64, n as u64) != 1 {
        mult += 2;
    }
    let offset = (seed >> 17) as u128;
    ((index as u128 * mult + offset) % n as u128) as usize
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = ZipfSampler::new(100, 1.1);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_is_monotone_decreasing() {
        let z = ZipfSampler::new(50, 1.0);
        for k in 1..50 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-15);
        }
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_samples_in_range_and_skewed() {
        let z = ZipfSampler::new(1000, 1.2);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = vec![0usize; 1000];
        for _ in 0..20_000 {
            let s = z.sample(&mut rng);
            assert!(s < 1000);
            counts[s] += 1;
        }
        // Item 0 should be sampled far more often than item 500.
        assert!(counts[0] > 10 * counts[500].max(1));
    }

    #[test]
    fn zipf_single_item() {
        let z = ZipfSampler::new(1, 1.5);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert!((z.pmf(0) - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn zipf_zero_items_rejected() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    fn scatter_is_bijection() {
        let n = 97;
        let mut seen = vec![false; n];
        for i in 0..n {
            let j = scatter_index(i, n, 0xdead_beef);
            assert!(!seen[j], "collision at {j}");
            seen[j] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn scatter_is_bijection_even_n() {
        let n = 128;
        let mut seen = vec![false; n];
        for i in 0..n {
            let j = scatter_index(i, n, 12345);
            assert!(!seen[j]);
            seen[j] = true;
        }
    }

    #[test]
    fn scatter_handles_tiny_n() {
        assert_eq!(scatter_index(0, 1, 99), 0);
        assert_eq!(scatter_index(5, 1, 99), 0);
    }
}
