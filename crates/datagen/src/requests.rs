//! Zipf-skewed multi-tenant request mixes for the decomposition service.
//!
//! The `service_load` bench replays a stream of service requests — ingest a
//! tensor, decompose it, predict entries, evict it — issued by several
//! tenants.  Real serving workloads are skewed twice over: a few tenants
//! issue most of the traffic, and a few hot tensors receive most of the
//! requests.  This module generates such streams deterministically from a
//! seed, with both skews drawn from [`ZipfSampler`], so every bench run and
//! every CI check replays the exact same mix.
//!
//! The generator is *abstract*: events name tenants and tensors by small
//! integer ids and carry only scalar parameters (rank, iteration budget,
//! query count).  The consumer decides what tensor id 3 actually contains.
//! It also maintains the service's session-state invariant so replays never
//! hit bookkeeping errors by construction: the first event touching a tensor
//! is always [`RequestKind::Ingest`], and an evicted tensor is re-ingested
//! before it is used again.

use crate::zipf::ZipfSampler;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// What a single request asks the service to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestKind {
    /// Register the tensor with the service (build or rebuild its plan).
    Ingest,
    /// Run HOOI on the tensor at the given per-mode rank.
    Decompose {
        /// Target rank, applied to every mode.
        rank: usize,
        /// HOOI iteration budget.
        max_iters: usize,
        /// Factor-initialization seed.
        seed: u64,
    },
    /// Evaluate the latest decomposition at `queries` index tuples.
    Predict {
        /// Number of index tuples to evaluate.
        queries: usize,
    },
    /// Drop the tensor, its plan and its decomposition.
    Evict,
}

/// One event of the replayed stream: a tenant asking for work on a tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestEvent {
    /// Issuing tenant, `0..num_tenants` (0 is the hottest).
    pub tenant: usize,
    /// Target tensor, `0..num_tensors` (0 is the hottest).
    pub tensor: usize,
    /// The operation requested.
    pub kind: RequestKind,
}

/// Parameters of a generated request mix.
#[derive(Debug, Clone)]
pub struct RequestMixSpec {
    /// Number of distinct tenants issuing requests.
    pub num_tenants: usize,
    /// Number of distinct tensors the requests target.
    pub num_tensors: usize,
    /// Number of *work* events to generate (implicit ingests after an evict
    /// are inserted on top, so the returned stream can be slightly longer).
    pub num_requests: usize,
    /// Zipf exponent of the tenant traffic skew (0 = uniform).
    pub tenant_skew: f64,
    /// Zipf exponent of the tensor popularity skew (0 = uniform).
    pub tensor_skew: f64,
    /// Fraction of work events that are `Decompose` (the rest are mostly
    /// `Predict` with an occasional `Evict`).
    pub decompose_fraction: f64,
    /// Fraction of work events that are `Evict`.
    pub evict_fraction: f64,
    /// Master seed; two calls with equal specs yield identical streams.
    pub seed: u64,
}

impl RequestMixSpec {
    /// A serving-shaped default: prediction-heavy traffic with periodic
    /// re-decompositions and rare evictions, over moderately skewed tenants
    /// and strongly skewed tensor popularity.
    pub fn new(num_tenants: usize, num_tensors: usize, num_requests: usize, seed: u64) -> Self {
        RequestMixSpec {
            num_tenants,
            num_tensors,
            num_requests,
            tenant_skew: 0.9,
            tensor_skew: 1.1,
            decompose_fraction: 0.25,
            evict_fraction: 0.05,
            seed,
        }
    }
}

/// Generates the request stream for `spec`.
///
/// Guarantees, by construction:
///
/// * deterministic — equal specs produce identical streams;
/// * the first event naming a tensor is an [`RequestKind::Ingest`];
/// * after an [`RequestKind::Evict`], the tensor is ingested again before
///   any `Decompose`/`Predict` names it;
/// * an `Evict` is only issued for a currently live tensor.
///
/// # Panics
/// Panics if any count is zero or a fraction is outside `[0, 1]`.
pub fn request_mix(spec: &RequestMixSpec) -> Vec<RequestEvent> {
    assert!(spec.num_tenants > 0, "need at least one tenant");
    assert!(spec.num_tensors > 0, "need at least one tensor");
    assert!(spec.num_requests > 0, "need at least one request");
    assert!(
        (0.0..=1.0).contains(&spec.decompose_fraction)
            && (0.0..=1.0).contains(&spec.evict_fraction)
            && spec.decompose_fraction + spec.evict_fraction <= 1.0,
        "event fractions must be probabilities summing to at most 1"
    );
    let tenants = ZipfSampler::new(spec.num_tenants, spec.tenant_skew);
    let tensors = ZipfSampler::new(spec.num_tensors, spec.tensor_skew);
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut live = vec![false; spec.num_tensors];
    let mut events = Vec::with_capacity(spec.num_requests + spec.num_tensors);
    for _ in 0..spec.num_requests {
        let tenant = tenants.sample(&mut rng);
        let tensor = tensors.sample(&mut rng);
        if !live[tensor] {
            events.push(RequestEvent {
                tenant,
                tensor,
                kind: RequestKind::Ingest,
            });
            live[tensor] = true;
        }
        let roll: f64 = rng.gen();
        let kind = if roll < spec.decompose_fraction {
            RequestKind::Decompose {
                rank: 2 + rng.gen_range(0..2),
                max_iters: 2 + rng.gen_range(0..3),
                seed: rng.gen_range(0..1_000_000),
            }
        } else if roll < spec.decompose_fraction + spec.evict_fraction {
            live[tensor] = false;
            RequestKind::Evict
        } else {
            RequestKind::Predict {
                queries: 4 + rng.gen_range(0..60),
            }
        };
        events.push(RequestEvent {
            tenant,
            tensor,
            kind,
        });
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> RequestMixSpec {
        RequestMixSpec::new(6, 8, 400, 42)
    }

    #[test]
    fn equal_specs_yield_identical_streams() {
        assert_eq!(request_mix(&spec()), request_mix(&spec()));
    }

    #[test]
    fn different_seeds_yield_different_streams() {
        let mut other = spec();
        other.seed = 43;
        assert_ne!(request_mix(&spec()), request_mix(&other));
    }

    #[test]
    fn every_tensor_is_ingested_before_use_and_after_eviction() {
        let events = request_mix(&spec());
        let mut live = [false; 8];
        for e in &events {
            match e.kind {
                RequestKind::Ingest => live[e.tensor] = true,
                RequestKind::Evict => {
                    assert!(live[e.tensor], "evicting a tensor that is not live");
                    live[e.tensor] = false;
                }
                _ => assert!(live[e.tensor], "work on a tensor that is not live"),
            }
        }
    }

    #[test]
    fn traffic_is_skewed_toward_hot_tenant_and_tensor() {
        let events = request_mix(&RequestMixSpec::new(8, 8, 4000, 9));
        let mut by_tenant = [0usize; 8];
        let mut by_tensor = [0usize; 8];
        for e in &events {
            by_tenant[e.tenant] += 1;
            by_tensor[e.tensor] += 1;
        }
        assert!(by_tenant[0] > 2 * by_tenant[7].max(1));
        assert!(by_tensor[0] > 3 * by_tensor[7].max(1));
    }

    #[test]
    fn mix_contains_all_work_kinds() {
        let events = request_mix(&spec());
        let has = |f: &dyn Fn(&RequestKind) -> bool| events.iter().any(|e| f(&e.kind));
        assert!(has(&|k| matches!(k, RequestKind::Ingest)));
        assert!(has(&|k| matches!(k, RequestKind::Decompose { .. })));
        assert!(has(&|k| matches!(k, RequestKind::Predict { .. })));
        assert!(has(&|k| matches!(k, RequestKind::Evict)));
    }

    #[test]
    fn bounds_are_respected() {
        for e in request_mix(&spec()) {
            assert!(e.tenant < 6);
            assert!(e.tensor < 8);
            if let RequestKind::Decompose {
                rank, max_iters, ..
            } = e.kind
            {
                assert!((2..=3).contains(&rank));
                assert!((2..=4).contains(&max_iters));
            }
        }
    }
}
