//! Scaled-down dataset profiles mirroring Table I of the paper.
//!
//! | Tensor    | I1   | I2   | I3  | I4   | #nonzeros |
//! |-----------|------|------|-----|------|-----------|
//! | Netflix   | 480K | 17K  | 2K  | —    | 100M      |
//! | NELL      | 3.2M | 301  | 638K| —    | 78M       |
//! | Delicious | 1.4K | 532K | 17M | 2.4M | 140M      |
//! | Flickr    | 731  | 319K | 28M | 1.6M | 112M      |
//!
//! The real datasets are not redistributable and are too large for a
//! single-node reproduction, so each profile generates a synthetic tensor
//! that preserves the properties the paper's performance phenomena depend
//! on: the number of modes, the *relative* mode sizes (Delicious/Flickr have
//! an enormous third mode, NELL a tiny second mode, Netflix compact modes
//! with many nonzeros per slice) and Zipf-like skew of the nonzero
//! distribution per mode.  Absolute sizes are scaled by a target nonzero
//! count.

use crate::zipf::{scatter_index, ZipfSampler};
use rand::distributions::{Distribution, Uniform};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sptensor::hash::FxHashSet;
use sptensor::SparseTensor;

/// The four datasets of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfileName {
    /// `user × movie × time` ratings (3-mode, compact modes, dense slices).
    Netflix,
    /// `entity × relation × entity` knowledge-base triples (3-mode, tiny
    /// second mode).
    Nell,
    /// `time × user × resource × tag` bookmarks (4-mode, huge third mode).
    Delicious,
    /// `time × user × photo × tag` annotations (4-mode, huge third mode).
    Flickr,
}

impl ProfileName {
    /// All four profiles in the order used by the paper's tables.
    pub fn all() -> [ProfileName; 4] {
        [
            ProfileName::Delicious,
            ProfileName::Flickr,
            ProfileName::Nell,
            ProfileName::Netflix,
        ]
    }

    /// Display name matching the paper.
    pub fn as_str(&self) -> &'static str {
        match self {
            ProfileName::Netflix => "Netflix",
            ProfileName::Nell => "NELL",
            ProfileName::Delicious => "Delicious",
            ProfileName::Flickr => "Flickr",
        }
    }
}

/// A dataset profile: full-scale shape plus skew parameters.
#[derive(Debug, Clone)]
pub struct DatasetProfile {
    /// Which dataset this mimics.
    pub name: ProfileName,
    /// Full-scale mode sizes from Table I.
    pub full_dims: Vec<usize>,
    /// Full-scale nonzero count from Table I.
    pub full_nnz: usize,
    /// Zipf exponent per mode controlling slice-size skew.
    pub skew: Vec<f64>,
    /// Ranks of approximation used in the paper's experiments
    /// (10 per mode for 3-mode tensors, 5 per mode for 4-mode tensors).
    pub ranks: Vec<usize>,
}

impl DatasetProfile {
    /// Returns the profile for one of the paper's datasets.
    pub fn new(name: ProfileName) -> Self {
        match name {
            ProfileName::Netflix => DatasetProfile {
                name,
                full_dims: vec![480_000, 17_000, 2_000],
                full_nnz: 100_000_000,
                // Users and movies follow heavy-tailed popularity; time is
                // nearly uniform.
                skew: vec![1.0, 1.1, 0.3],
                ranks: vec![10, 10, 10],
            },
            ProfileName::Nell => DatasetProfile {
                name,
                full_dims: vec![3_200_000, 301, 638_000],
                full_nnz: 78_000_000,
                // The relation mode (301 entries) is extremely skewed: a few
                // relations dominate the knowledge base.
                skew: vec![1.1, 1.4, 1.1],
                ranks: vec![10, 10, 10],
            },
            ProfileName::Delicious => DatasetProfile {
                name,
                full_dims: vec![1_400, 532_000, 17_000_000, 2_400_000],
                full_nnz: 140_000_000,
                skew: vec![0.4, 1.0, 1.2, 1.2],
                ranks: vec![5, 5, 5, 5],
            },
            ProfileName::Flickr => DatasetProfile {
                name,
                full_dims: vec![731, 319_000, 28_000_000, 1_600_000],
                full_nnz: 112_000_000,
                skew: vec![0.4, 1.0, 1.2, 1.2],
                ranks: vec![5, 5, 5, 5],
            },
        }
    }

    /// Number of modes.
    pub fn order(&self) -> usize {
        self.full_dims.len()
    }

    /// Computes the scaled mode sizes for a target nonzero count.
    ///
    /// Nonzeros scale by `s = nnz_target / full_nnz`; mode sizes scale by
    /// `sqrt(s)` (clamped to at least 8 and at most the full size) so that
    /// the average number of nonzeros per slice also shrinks, keeping the
    /// generation fast while preserving the relative shape of the modes.
    pub fn scaled_dims(&self, nnz_target: usize) -> Vec<usize> {
        let s = (nnz_target as f64 / self.full_nnz as f64).min(1.0);
        let dim_scale = s.sqrt();
        self.full_dims
            .iter()
            .map(|&d| ((d as f64 * dim_scale).round() as usize).clamp(8, d))
            .collect()
    }

    /// Generates a synthetic tensor with approximately `nnz_target`
    /// nonzeros following this profile's shape and skew.
    pub fn generate(&self, nnz_target: usize, seed: u64) -> SparseTensor {
        let dims = self.scaled_dims(nnz_target);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_0000);
        let samplers: Vec<ZipfSampler> = dims
            .iter()
            .zip(self.skew.iter())
            .map(|(&d, &e)| ZipfSampler::new(d, e))
            .collect();
        let value_dist = Uniform::new(0.0, 1.0);

        let capacity: f64 = dims.iter().map(|&d| d as f64).product();
        let target = if (nnz_target as f64) > 0.5 * capacity {
            (0.5 * capacity) as usize
        } else {
            nnz_target
        };

        let mut tensor = SparseTensor::with_capacity(dims.clone(), target);
        let mut seen: FxHashSet<u128> = FxHashSet::default();
        seen.reserve(target);
        let mut index = vec![0usize; dims.len()];
        let mut attempts = 0usize;
        let max_attempts = target.saturating_mul(40).max(1000);
        while tensor.nnz() < target && attempts < max_attempts {
            attempts += 1;
            for (m, sampler) in samplers.iter().enumerate() {
                // Draw a popularity rank, then scatter it so popular ids are
                // spread over the index range like in real data.
                let popularity = sampler.sample(&mut rng);
                index[m] = scatter_index(popularity, dims[m], seed ^ ((m as u64 + 1) * 0x9e37));
            }
            let key = sptensor::hash::linearize(&index, &dims);
            if seen.insert(key) {
                tensor.push(&index, value_dist.sample(&mut rng));
            }
        }
        tensor
    }

    /// The per-iteration ranks of approximation the paper uses for this
    /// dataset (`R = 10` for 3-mode, `R = 5` for 4-mode tensors).
    pub fn paper_ranks(&self) -> &[usize] {
        &self.ranks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sptensor::stats::tensor_stats;

    #[test]
    fn all_profiles_have_table1_shapes() {
        let netflix = DatasetProfile::new(ProfileName::Netflix);
        assert_eq!(netflix.full_dims, vec![480_000, 17_000, 2_000]);
        assert_eq!(netflix.full_nnz, 100_000_000);
        let nell = DatasetProfile::new(ProfileName::Nell);
        assert_eq!(nell.order(), 3);
        let delicious = DatasetProfile::new(ProfileName::Delicious);
        assert_eq!(delicious.order(), 4);
        assert_eq!(delicious.ranks, vec![5, 5, 5, 5]);
        let flickr = DatasetProfile::new(ProfileName::Flickr);
        assert_eq!(flickr.full_dims[2], 28_000_000);
    }

    #[test]
    fn scaled_dims_preserve_relative_order() {
        let p = DatasetProfile::new(ProfileName::Delicious);
        let dims = p.scaled_dims(100_000);
        assert_eq!(dims.len(), 4);
        // The third mode remains the largest, the first the smallest.
        assert!(dims[2] > dims[1]);
        assert!(dims[2] > dims[3]);
        assert!(dims[0] <= dims[1]);
        for &d in &dims {
            assert!(d >= 8);
        }
    }

    #[test]
    fn scaled_dims_never_exceed_full() {
        let p = DatasetProfile::new(ProfileName::Netflix);
        let dims = p.scaled_dims(1_000_000_000);
        for (s, f) in dims.iter().zip(p.full_dims.iter()) {
            assert!(s <= f);
        }
    }

    #[test]
    fn generate_produces_requested_nnz() {
        let p = DatasetProfile::new(ProfileName::Netflix);
        let t = p.generate(20_000, 1);
        assert!(t.nnz() >= 19_000, "got {}", t.nnz());
        assert!(t.validate().is_ok());
        assert_eq!(t.order(), 3);
    }

    #[test]
    fn generate_is_deterministic() {
        let p = DatasetProfile::new(ProfileName::Nell);
        let a = p.generate(5_000, 3);
        let b = p.generate(5_000, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn generated_tensor_is_skewed() {
        let p = DatasetProfile::new(ProfileName::Flickr);
        let t = p.generate(30_000, 7);
        let stats = tensor_stats(&t);
        // The user mode (index 1) should show clear imbalance: the busiest
        // slice has several times the average load.
        assert!(
            stats.modes[1].imbalance > 2.0,
            "imbalance {}",
            stats.modes[1].imbalance
        );
    }

    #[test]
    fn four_mode_profiles_generate_four_mode_tensors() {
        for name in [ProfileName::Delicious, ProfileName::Flickr] {
            let p = DatasetProfile::new(name);
            let t = p.generate(5_000, 11);
            assert_eq!(t.order(), 4);
        }
    }

    #[test]
    fn profile_names_roundtrip() {
        assert_eq!(ProfileName::Netflix.as_str(), "Netflix");
        assert_eq!(ProfileName::all().len(), 4);
    }
}
