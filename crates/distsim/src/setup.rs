//! Data distribution for the distributed-memory HOOI simulation.
//!
//! Mirrors the task definitions of the paper (§III-B):
//!
//! * **Coarse grain** — the atomic task of mode `n` is "compute row `i` of
//!   `Y_(n)` and `U_n(i, :)`"; its owner holds every nonzero of slice
//!   `X(…, i, …)`.  Nonzeros are therefore (logically) replicated: a nonzero
//!   participates in the local TTMc of the owner of its index in *every*
//!   mode.
//! * **Fine grain** — the atomic task is a single nonzero; each rank owns a
//!   set of nonzeros and produces *partial* rows of every `Y_(n)`, which are
//!   merged inside the TRSVD operator rather than assembled (the paper's
//!   key communication optimization).  Factor-row tasks `t^n_i` are assigned
//!   to the rank holding the most nonzeros of that slice.
//!
//! Partitioning methods map to the paper's configurations: `Random` =
//! `fine-rd`, `Block` = `coarse-bl` (contiguous slices / nonzeros),
//! `Hypergraph` = `*-hp` (the PaToH stand-in from the `partition` crate).

use partition::{
    block_partition, coarse_grain_hypergraph, fine_grain_hypergraph, partitioners,
    random_partition, Partition,
};
use sptensor::SparseTensor;

/// Task granularity of the distributed algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grain {
    /// One task per (mode, index): owner computes the whole row of `Y_(n)`.
    Coarse,
    /// One task per nonzero: rows of `Y_(n)` are computed in parts.
    Fine,
}

/// How tasks are assigned to ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionMethod {
    /// Uniform random assignment (`fine-rd`); for coarse grain this falls
    /// back to the blocked variant, as in the paper.
    Random,
    /// Contiguous blocks balanced by nonzero count (`coarse-bl`).
    Block,
    /// Greedy + FM hypergraph partitioning (`*-hp`, the PaToH substitute).
    Hypergraph,
}

impl PartitionMethod {
    /// The suffix used in the paper's tables (`hp`, `rd`, `bl`).
    pub fn suffix(&self) -> &'static str {
        match self {
            PartitionMethod::Random => "rd",
            PartitionMethod::Block => "bl",
            PartitionMethod::Hypergraph => "hp",
        }
    }
}

/// Configuration of a simulated distributed run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of MPI ranks (compute nodes).
    pub num_ranks: usize,
    /// Task granularity.
    pub grain: Grain,
    /// Partitioning method.
    pub method: PartitionMethod,
    /// Tucker ranks per mode.
    pub ranks: Vec<usize>,
    /// Threads per rank (the OpenMP threads of the hybrid implementation).
    pub threads_per_rank: usize,
    /// Seed for the partitioners.
    pub seed: u64,
}

impl SimConfig {
    /// Convenience constructor with the paper's default of 32 threads per
    /// node (2 per core on the 16-core BG/Q nodes).
    pub fn new(num_ranks: usize, grain: Grain, method: PartitionMethod, ranks: Vec<usize>) -> Self {
        SimConfig {
            num_ranks,
            grain,
            method,
            ranks,
            threads_per_rank: 32,
            seed: 0xd157_51b0,
        }
    }

    /// The label used in the paper's tables, e.g. `fine-hp` or `coarse-bl`.
    pub fn label(&self) -> String {
        let grain = match self.grain {
            Grain::Coarse => "coarse",
            Grain::Fine => "fine",
        };
        format!("{grain}-{}", self.method.suffix())
    }
}

/// The computed data distribution.
#[derive(Debug, Clone)]
pub struct DistributedSetup {
    /// The configuration this distribution was built for.
    pub config: SimConfig,
    /// Mode sizes of the tensor.
    pub dims: Vec<usize>,
    /// Total nonzeros of the tensor.
    pub nnz: usize,
    /// Fine grain only: owner rank of each nonzero.
    pub nonzero_owner: Option<Vec<u32>>,
    /// `row_owner[n][i]` = rank owning task `t^n_i` (`u32::MAX` for an empty
    /// slice in the fine-grain case).
    pub row_owner: Vec<Vec<u32>>,
    /// `local_nonzeros[n][r]` = ids of the nonzeros rank `r` processes in
    /// the TTMc of mode `n`.  For fine grain the inner vectors are identical
    /// across modes (the rank's owned nonzeros).
    pub local_nonzeros: Vec<Vec<Vec<usize>>>,
}

impl DistributedSetup {
    /// Builds the distribution for a tensor under the given configuration.
    pub fn build(tensor: &SparseTensor, config: &SimConfig) -> Self {
        assert_eq!(config.ranks.len(), tensor.order());
        assert!(config.num_ranks > 0);
        match config.grain {
            Grain::Fine => Self::build_fine(tensor, config),
            Grain::Coarse => Self::build_coarse(tensor, config),
        }
    }

    fn build_fine(tensor: &SparseTensor, config: &SimConfig) -> Self {
        let p = config.num_ranks;
        let order = tensor.order();
        let nnz = tensor.nnz();
        let part: Partition = match config.method {
            PartitionMethod::Random => random_partition(nnz, p, config.seed),
            PartitionMethod::Block => block_partition(&vec![1u64; nnz], p),
            PartitionMethod::Hypergraph => {
                let h = fine_grain_hypergraph(tensor);
                partitioners::hypergraph_partition(&h, p, config.seed)
            }
        };
        let owners = part.parts.clone();

        // Row ownership.  The owner of task `t^n_i` must hold nonzeros of
        // slice i (it computes the TRSVD update and seeds the merge), and it
        // pays for `λ_i − 1` partial-row merges plus the factor-row
        // broadcast — so ownership placement is what balances the per-rank
        // communication volume.  Among the ranks holding at least half as
        // many nonzeros of the slice as the best-localized rank, pick the
        // one with the lightest accumulated owner burden; rows with many
        // holders are assigned first so the heaviest merge costs spread out.
        let mut row_owner: Vec<Vec<u32>> = Vec::with_capacity(order);
        for mode in 0..order {
            let dim = tensor.dims()[mode];
            let mut counts: Vec<sptensor::hash::FxHashMap<u32, u32>> = Vec::new();
            counts.resize_with(dim, sptensor::hash::FxHashMap::default);
            for t in 0..nnz {
                let i = tensor.index(t)[mode];
                *counts[i].entry(owners[t]).or_insert(0) += 1;
            }
            let mut slices: Vec<usize> = (0..dim).filter(|&i| !counts[i].is_empty()).collect();
            slices.sort_by_key(|&i| std::cmp::Reverse(counts[i].len()));
            let mut burden = vec![0u64; p];
            let mut owner_of = vec![u32::MAX; dim];
            for &i in &slices {
                let holders = counts[i].len() as u64;
                let max_count = counts[i].values().copied().max().unwrap_or(0);
                let threshold = max_count.div_ceil(2);
                // Total order (burden, −count, rank id) keeps the choice
                // deterministic regardless of hash-map iteration order.
                let best = counts[i]
                    .iter()
                    .filter(|&(_, &c)| c >= threshold)
                    .min_by_key(|&(&r, &c)| (burden[r as usize], std::cmp::Reverse(c), r))
                    .map(|(&r, _)| r)
                    .expect("nonempty slice has a holder");
                owner_of[i] = best;
                burden[best as usize] += holders - 1;
            }
            row_owner.push(owner_of);
        }

        // Local nonzero lists: same per mode for fine grain.
        let mut per_rank: Vec<Vec<usize>> = vec![Vec::new(); p];
        for (t, &r) in owners.iter().enumerate() {
            per_rank[r as usize].push(t);
        }
        let local_nonzeros = vec![per_rank; order];

        DistributedSetup {
            config: config.clone(),
            dims: tensor.dims().to_vec(),
            nnz,
            nonzero_owner: Some(owners),
            row_owner,
            local_nonzeros,
        }
    }

    fn build_coarse(tensor: &SparseTensor, config: &SimConfig) -> Self {
        let p = config.num_ranks;
        let order = tensor.order();
        let nnz = tensor.nnz();
        let mut row_owner: Vec<Vec<u32>> = Vec::with_capacity(order);
        let mut local_nonzeros: Vec<Vec<Vec<usize>>> = Vec::with_capacity(order);

        for mode in 0..order {
            let weights: Vec<u64> = tensor.slice_nnz(mode).iter().map(|&c| c as u64).collect();
            let part = match config.method {
                // The paper uses a blocked variant of random assignment for
                // coarse-grain tasks; both non-hypergraph methods therefore
                // map to the weighted block partition.
                PartitionMethod::Random | PartitionMethod::Block => block_partition(&weights, p),
                PartitionMethod::Hypergraph => {
                    let h = coarse_grain_hypergraph(tensor, mode);
                    partitioners::hypergraph_partition(&h, p, config.seed ^ mode as u64)
                }
            };
            let owners = part.parts;
            let mut per_rank: Vec<Vec<usize>> = vec![Vec::new(); p];
            for t in 0..nnz {
                let i = tensor.index(t)[mode];
                per_rank[owners[i] as usize].push(t);
            }
            row_owner.push(owners);
            local_nonzeros.push(per_rank);
        }

        DistributedSetup {
            config: config.clone(),
            dims: tensor.dims().to_vec(),
            nnz,
            nonzero_owner: None,
            row_owner,
            local_nonzeros,
        }
    }

    /// Number of modes.
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// The nonzeros rank `r` processes in the TTMc of `mode`.
    pub fn nonzeros_for(&self, mode: usize, rank: usize) -> &[usize] {
        &self.local_nonzeros[mode][rank]
    }

    /// Derives, for every mode and row, which ranks *hold* nonzeros of the
    /// row's slice (and how many) and which ranks *need* the corresponding
    /// factor row for their local TTMc of some other mode.  These two
    /// relations drive both the analytic communication predictions of
    /// [`crate::stats::iteration_stats`] and the executor's actual
    /// fold/expand message plan in [`crate::exec`] — sharing the derivation
    /// is what lets the tests assert measured traffic equals predicted
    /// traffic word for word.
    pub fn row_relations(&self, tensor: &SparseTensor) -> RowRelations {
        let order = self.order();
        let p = self.config.num_ranks;
        let mut modes = Vec::with_capacity(order);
        for mode in 0..order {
            let dim = self.dims[mode];
            let mut holder_counts: Vec<sptensor::hash::FxHashMap<u32, u32>> = Vec::new();
            holder_counts.resize_with(dim, sptensor::hash::FxHashMap::default);
            let mut needer_sets: Vec<sptensor::hash::FxHashSet<u32>> = Vec::new();
            needer_sets.resize_with(dim, sptensor::hash::FxHashSet::default);
            for m in 0..order {
                for r in 0..p {
                    for &id in self.nonzeros_for(m, r) {
                        let i = tensor.index(id)[mode];
                        if m == mode {
                            *holder_counts[i].entry(r as u32).or_insert(0) += 1;
                        } else {
                            needer_sets[i].insert(r as u32);
                        }
                    }
                }
            }
            let holders = holder_counts
                .into_iter()
                .map(|counts| {
                    let mut h: Vec<(u32, u32)> = counts.into_iter().collect();
                    h.sort_unstable();
                    h
                })
                .collect();
            let needers = needer_sets
                .into_iter()
                .map(|set| {
                    let mut n: Vec<u32> = set.into_iter().collect();
                    n.sort_unstable();
                    n
                })
                .collect();
            modes.push(ModeRelations { holders, needers });
        }
        RowRelations { modes }
    }

    /// The number of rows of `U_n` owned by each rank (task counts).
    pub fn owned_rows_per_rank(&self, mode: usize) -> Vec<usize> {
        let mut counts = vec![0usize; self.config.num_ranks];
        for &r in &self.row_owner[mode] {
            if r != u32::MAX {
                counts[r as usize] += 1;
            }
        }
        counts
    }
}

/// Holder/needer relations of one mode (see
/// [`DistributedSetup::row_relations`]).
#[derive(Debug, Clone)]
pub struct ModeRelations {
    /// `holders[i]` — the ranks holding nonzeros of slice `i` in this
    /// mode's TTMc, with their nonzero counts, sorted by rank.  Rows with
    /// more than one holder are the fine-grain algorithm's shared rows:
    /// their partial results must be folded at the row's owner.
    pub holders: Vec<Vec<(u32, u32)>>,
    /// `needers[i]` — the ranks that read factor row `U_mode(i, :)` during
    /// the TTMc of some *other* mode, sorted.  The owner sends the updated
    /// row to every needer but itself (Algorithm 4's expand).
    pub needers: Vec<Vec<u32>>,
}

/// Holder/needer relations for every mode of a distribution.
#[derive(Debug, Clone)]
pub struct RowRelations {
    /// One [`ModeRelations`] per mode, in mode order.
    pub modes: Vec<ModeRelations>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::random_tensor;

    fn tensor() -> SparseTensor {
        random_tensor(&[40, 30, 20], 1500, 7)
    }

    #[test]
    fn fine_setup_covers_all_nonzeros_once() {
        let t = tensor();
        let config = SimConfig::new(4, Grain::Fine, PartitionMethod::Random, vec![3, 3, 3]);
        let s = DistributedSetup::build(&t, &config);
        for mode in 0..3 {
            let total: usize = (0..4).map(|r| s.nonzeros_for(mode, r).len()).sum();
            assert_eq!(total, t.nnz());
        }
        assert!(s.nonzero_owner.is_some());
    }

    #[test]
    fn coarse_setup_assigns_whole_slices() {
        let t = tensor();
        let config = SimConfig::new(4, Grain::Coarse, PartitionMethod::Block, vec![3, 3, 3]);
        let s = DistributedSetup::build(&t, &config);
        for mode in 0..3 {
            for r in 0..4 {
                for &id in s.nonzeros_for(mode, r) {
                    let i = t.index(id)[mode];
                    assert_eq!(s.row_owner[mode][i] as usize, r);
                }
            }
            let total: usize = (0..4).map(|r| s.nonzeros_for(mode, r).len()).sum();
            assert_eq!(total, t.nnz());
        }
    }

    #[test]
    fn fine_row_owner_holds_local_nonzeros() {
        let t = tensor();
        let config = SimConfig::new(8, Grain::Fine, PartitionMethod::Hypergraph, vec![3, 3, 3]);
        let s = DistributedSetup::build(&t, &config);
        let owners = s.nonzero_owner.as_ref().unwrap();
        // The owner of row i in mode 0 must own at least one nonzero of
        // slice i.
        for i in 0..t.dims()[0] {
            let owner = s.row_owner[0][i];
            if owner == u32::MAX {
                continue;
            }
            let has_one = (0..t.nnz()).any(|k| t.index(k)[0] == i && owners[k] == owner);
            assert!(has_one, "row {i} owner {owner} holds none of its nonzeros");
        }
    }

    #[test]
    fn empty_slices_have_no_owner_in_fine_grain() {
        let t = SparseTensor::from_entries(
            vec![6, 3, 3],
            &[(vec![0, 0, 0], 1.0), (vec![5, 2, 2], 2.0)],
        );
        let config = SimConfig::new(2, Grain::Fine, PartitionMethod::Random, vec![2, 2, 2]);
        let s = DistributedSetup::build(&t, &config);
        for i in 1..5 {
            assert_eq!(s.row_owner[0][i], u32::MAX);
        }
        assert_ne!(s.row_owner[0][0], u32::MAX);
        assert_ne!(s.row_owner[0][5], u32::MAX);
    }

    #[test]
    fn fine_block_and_random_balance_nonzero_counts() {
        let t = tensor();
        for method in [PartitionMethod::Random, PartitionMethod::Block] {
            let config = SimConfig::new(8, Grain::Fine, method, vec![3, 3, 3]);
            let s = DistributedSetup::build(&t, &config);
            let counts: Vec<usize> = (0..8).map(|r| s.nonzeros_for(0, r).len()).collect();
            let max = *counts.iter().max().unwrap() as f64;
            let avg = t.nnz() as f64 / 8.0;
            assert!(max / avg < 1.3, "method {method:?}: counts {counts:?}");
        }
    }

    #[test]
    fn labels_match_paper_names() {
        let c = SimConfig::new(2, Grain::Fine, PartitionMethod::Hypergraph, vec![2, 2]);
        assert_eq!(c.label(), "fine-hp");
        let c = SimConfig::new(2, Grain::Coarse, PartitionMethod::Block, vec![2, 2]);
        assert_eq!(c.label(), "coarse-bl");
        let c = SimConfig::new(2, Grain::Fine, PartitionMethod::Random, vec![2, 2]);
        assert_eq!(c.label(), "fine-rd");
    }

    #[test]
    fn relations_are_sorted_and_cover_all_nonzeros() {
        let t = tensor();
        for (grain, method) in [
            (Grain::Fine, PartitionMethod::Hypergraph),
            (Grain::Coarse, PartitionMethod::Block),
        ] {
            let config = SimConfig::new(5, grain, method, vec![3, 3, 3]);
            let s = DistributedSetup::build(&t, &config);
            let rel = s.row_relations(&t);
            for mode in 0..3 {
                let m = &rel.modes[mode];
                let total: u64 = m
                    .holders
                    .iter()
                    .flat_map(|h| h.iter().map(|&(_, c)| c as u64))
                    .sum();
                assert_eq!(total, t.nnz() as u64, "{grain:?} mode {mode}");
                for h in &m.holders {
                    assert!(h.windows(2).all(|w| w[0].0 < w[1].0));
                }
                for n in &m.needers {
                    assert!(n.windows(2).all(|w| w[0] < w[1]));
                }
                // Coarse grain: the owner holds the whole slice, so every
                // nonempty row has exactly one holder.
                if grain == Grain::Coarse {
                    for (i, h) in m.holders.iter().enumerate() {
                        if !h.is_empty() {
                            assert_eq!(h.len(), 1);
                            assert_eq!(h[0].0, s.row_owner[mode][i]);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn fine_grain_holders_include_the_owner() {
        let t = tensor();
        let config = SimConfig::new(6, Grain::Fine, PartitionMethod::Random, vec![3, 3, 3]);
        let s = DistributedSetup::build(&t, &config);
        let rel = s.row_relations(&t);
        for mode in 0..3 {
            for (i, h) in rel.modes[mode].holders.iter().enumerate() {
                let owner = s.row_owner[mode][i];
                if owner != u32::MAX {
                    assert!(
                        h.iter().any(|&(r, _)| r == owner),
                        "mode {mode} row {i}: owner {owner} holds nothing"
                    );
                }
            }
        }
    }

    #[test]
    fn owned_rows_sum_to_nonempty_slices() {
        let t = tensor();
        let config = SimConfig::new(4, Grain::Fine, PartitionMethod::Random, vec![3, 3, 3]);
        let s = DistributedSetup::build(&t, &config);
        for mode in 0..3 {
            let owned: usize = s.owned_rows_per_rank(mode).iter().sum();
            assert_eq!(owned, t.nonempty_slices(mode));
        }
    }
}
