//! Numerical distributed execution of Algorithm 4.
//!
//! The statistics/cost path (`stats`, `cost`) never touches floating point
//! data; this module complements it by actually *executing* the distributed
//! algorithm rank by rank: every rank runs the nonzero-based TTMc on its own
//! local tensor, the partial results are merged exactly where the real
//! implementation would communicate (row gathering for the coarse-grain
//! algorithm, entry-wise summation inside the TRSVD operator for the
//! fine-grain algorithm), and the TRSVD/core steps proceed on the merged
//! data.  The outcome must agree with the shared-memory solver to floating
//! point accuracy — that is the correctness argument for the simulator.
//!
//! This path is used by tests and the `distributed_scaling` example; the
//! table-generating benches use the cost model, which scales to 256 ranks
//! without redundantly re-executing the numerics per rank.

use crate::setup::DistributedSetup;
use hooi::config::TuckerConfig;
use hooi::core_tensor::core_from_last_ttmc;
use hooi::error::TuckerError;
use hooi::fit::fit_from_norms;
use hooi::hosvd::random_factors;
use hooi::symbolic::SymbolicTtmc;
use hooi::trsvd::trsvd_factor;
use hooi::ttmc::{ttmc_mode_sequential, ttmc_result_width};
use hooi::TimingBreakdown;
use hooi::TuckerDecomposition;
use linalg::Matrix;
use sptensor::SparseTensor;

/// Computes the merged mode-`mode` TTMc result of the distributed algorithm:
/// every rank computes its local compact result from its local tensor, and
/// the partial rows are summed into the global compact layout given by
/// `global_sym`.
///
/// The per-rank local computations are independent, so they run in parallel
/// on the ambient persistent thread pool (install a `rayon::ThreadPool` to
/// control the width) — the simulator's analogue of the ranks computing
/// concurrently on their own nodes.  The merge then proceeds sequentially in
/// rank order, exactly where the real implementation would communicate, so
/// the floating-point summation order (and hence the result, bit for bit)
/// is identical to the serial rank loop.
pub fn distributed_ttmc(
    tensor: &SparseTensor,
    setup: &DistributedSetup,
    global_sym: &SymbolicTtmc,
    factors: &[Matrix],
    mode: usize,
) -> Matrix {
    use rayon::prelude::*;

    let width = ttmc_result_width(factors, mode);
    let sym_mode = global_sym.mode(mode);
    let mut merged = Matrix::zeros(sym_mode.num_rows(), width);

    // Ranks are processed in batches: each batch's local tensors, symbolic
    // data and compact TTMc results are computed in parallel, then merged
    // sequentially in rank order before the next batch starts.  Batching
    // caps the retained per-rank intermediates at a small multiple of the
    // thread count instead of `num_ranks`, while the rank-ordered merge
    // keeps the summation order of the old serial loop.
    let num_ranks = setup.config.num_ranks;
    let batch = rayon::current_num_threads().max(1) * 2;
    let mut first = 0;
    while first < num_ranks {
        let upto = (first + batch).min(num_ranks);

        // Phase 1 (parallel, per rank of the batch).
        let locals: Vec<Option<(hooi::symbolic::SymbolicMode, Matrix)>> = (first..upto)
            .into_par_iter()
            .map(|rank| {
                let ids = setup.nonzeros_for(mode, rank);
                if ids.is_empty() {
                    return None;
                }
                let local = tensor.subset(ids);
                let local_sym = hooi::symbolic::SymbolicMode::build(&local, mode);
                let local_compact = ttmc_mode_sequential(&local, &local_sym, factors, mode);
                Some((local_sym, local_compact))
            })
            .collect();

        // Phase 2 (sequential, rank order): add each local row into the
        // global row with the same mode-`mode` index (this is the
        // communication the fine-grain algorithm folds into the TRSVD
        // solver; for the coarse-grain algorithm the row sets are disjoint
        // so this is a pure gather).
        for (local_sym, local_compact) in locals.into_iter().flatten() {
            for (p, &i) in local_sym.rows.iter().enumerate() {
                let g = sym_mode
                    .position_of(i)
                    .expect("local row must exist in the global symbolic data");
                let dst = merged.row_mut(g);
                for (d, &s) in dst.iter_mut().zip(local_compact.row(p)) {
                    *d += s;
                }
            }
        }
        first = upto;
    }
    merged
}

/// Runs the distributed HOOI algorithm numerically (per-rank TTMc + merged
/// TRSVD) and returns the same result type — and the same structured-error
/// contract — as the shared-memory solver.
pub fn distributed_hooi(
    tensor: &SparseTensor,
    setup: &DistributedSetup,
    config: &TuckerConfig,
) -> Result<TuckerDecomposition, TuckerError> {
    if tensor.order() == 0 || tensor.nnz() == 0 {
        return Err(TuckerError::EmptyTensor);
    }
    let order = tensor.order();
    let ranks = config.validated_ranks(tensor.dims())?;
    let mut factors = random_factors(tensor.dims(), &ranks, config.seed);
    let global_sym = SymbolicTtmc::build(tensor);
    let tensor_norm = tensor.frobenius_norm();

    let mut fits = Vec::new();
    let mut singular_values = vec![Vec::new(); order];
    let mut core = sptensor::DenseTensor::zeros(ranks.clone());
    let mut iterations = 0;

    for _ in 0..config.max_iterations {
        iterations += 1;
        let mut last_compact = None;
        for mode in 0..order {
            let compact = distributed_ttmc(tensor, setup, &global_sym, &factors, mode);
            let result = trsvd_factor(
                &compact,
                global_sym.mode(mode),
                tensor.dims()[mode],
                ranks[mode],
                config.trsvd,
                config.seed ^ ((mode as u64 + 1) << 8),
            );
            factors[mode] = result.factor;
            singular_values[mode] = result.singular_values;
            if mode + 1 == order {
                last_compact = Some(compact);
            }
        }
        let compact = last_compact.expect("at least one mode");
        core = core_from_last_ttmc(
            &compact,
            global_sym.mode(order - 1),
            &factors[order - 1],
            &ranks,
        );
        let fit = fit_from_norms(tensor_norm, core.frobenius_norm());
        let improved = match fits.last() {
            Some(&prev) => fit - prev > config.fit_tolerance,
            None => true,
        };
        fits.push(fit);
        if !improved {
            break;
        }
    }

    Ok(TuckerDecomposition {
        core,
        factors,
        fits,
        iterations,
        singular_values,
        timings: TimingBreakdown::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{Grain, PartitionMethod, SimConfig};
    use datagen::random_tensor;
    use hooi::symbolic::SymbolicTtmc;
    use hooi::ttmc::ttmc_mode;
    use hooi::tucker_hooi;

    fn tensor() -> SparseTensor {
        random_tensor(&[25, 20, 15], 900, 13)
    }

    fn factors_for(t: &SparseTensor, ranks: &[usize], seed: u64) -> Vec<Matrix> {
        random_factors(t.dims(), ranks, seed)
    }

    #[test]
    fn fine_grain_distributed_ttmc_matches_shared_memory() {
        let t = tensor();
        let factors = factors_for(&t, &[3, 3, 3], 5);
        let sym = SymbolicTtmc::build(&t);
        for method in [PartitionMethod::Random, PartitionMethod::Hypergraph] {
            let config = SimConfig::new(6, Grain::Fine, method, vec![3, 3, 3]);
            let setup = DistributedSetup::build(&t, &config);
            for mode in 0..3 {
                let dist = distributed_ttmc(&t, &setup, &sym, &factors, mode);
                let shared = ttmc_mode(&t, sym.mode(mode), &factors, mode);
                assert!(
                    dist.frobenius_distance(&shared) < 1e-9 * shared.frobenius_norm().max(1.0),
                    "{method:?} mode {mode}"
                );
            }
        }
    }

    #[test]
    fn coarse_grain_distributed_ttmc_matches_shared_memory() {
        let t = tensor();
        let factors = factors_for(&t, &[3, 3, 3], 6);
        let sym = SymbolicTtmc::build(&t);
        for method in [PartitionMethod::Block, PartitionMethod::Hypergraph] {
            let config = SimConfig::new(5, Grain::Coarse, method, vec![3, 3, 3]);
            let setup = DistributedSetup::build(&t, &config);
            for mode in 0..3 {
                let dist = distributed_ttmc(&t, &setup, &sym, &factors, mode);
                let shared = ttmc_mode(&t, sym.mode(mode), &factors, mode);
                assert!(
                    dist.frobenius_distance(&shared) < 1e-9 * shared.frobenius_norm().max(1.0),
                    "{method:?} mode {mode}"
                );
            }
        }
    }

    #[test]
    fn rank_parallelism_does_not_change_the_merge() {
        // The per-rank computations run on the ambient pool, but the merge
        // is sequential in rank order, so the result must be bit-identical
        // at any pool width.
        let t = tensor();
        let factors = factors_for(&t, &[3, 3, 3], 11);
        let sym = SymbolicTtmc::build(&t);
        let config = SimConfig::new(6, Grain::Fine, PartitionMethod::Random, vec![3, 3, 3]);
        let setup = DistributedSetup::build(&t, &config);
        let wide = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let narrow = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        for mode in 0..3 {
            let a = wide.install(|| distributed_ttmc(&t, &setup, &sym, &factors, mode));
            let b = narrow.install(|| distributed_ttmc(&t, &setup, &sym, &factors, mode));
            assert_eq!(a.shape(), b.shape());
            assert!(
                a.frobenius_distance(&b) == 0.0,
                "mode {mode}: parallel and serial rank loops diverged"
            );
        }
    }

    #[test]
    fn distributed_hooi_rejects_invalid_configs_as_values() {
        let t = tensor();
        let sim = SimConfig::new(4, Grain::Fine, PartitionMethod::Random, vec![3, 3, 3]);
        let setup = DistributedSetup::build(&t, &sim);
        assert_eq!(
            distributed_hooi(&t, &setup, &TuckerConfig::new(vec![2, 0, 2])).unwrap_err(),
            TuckerError::ZeroRank { mode: 1 }
        );
        assert_eq!(
            distributed_hooi(&t, &setup, &TuckerConfig::new(vec![2, 2])).unwrap_err(),
            TuckerError::OrderMismatch {
                config_modes: 2,
                tensor_modes: 3,
            }
        );
    }

    #[test]
    fn distributed_hooi_matches_shared_memory_fit() {
        let t = tensor();
        let tucker = TuckerConfig::new(vec![3, 3, 3]).max_iterations(3).seed(9);
        let shared = tucker_hooi(&t, &tucker).unwrap();
        for (grain, method) in [
            (Grain::Fine, PartitionMethod::Hypergraph),
            (Grain::Fine, PartitionMethod::Random),
            (Grain::Coarse, PartitionMethod::Block),
        ] {
            let config = SimConfig::new(4, grain, method, vec![3, 3, 3]);
            let setup = DistributedSetup::build(&t, &config);
            let dist = distributed_hooi(&t, &setup, &tucker).unwrap();
            assert!(
                (dist.final_fit() - shared.final_fit()).abs() < 1e-8,
                "{grain:?}/{method:?}: {} vs {}",
                dist.final_fit(),
                shared.final_fit()
            );
        }
    }

    #[test]
    fn distributed_hooi_core_matches_shared_memory() {
        let t = tensor();
        let tucker = TuckerConfig::new(vec![2, 2, 2]).max_iterations(2).seed(4);
        let shared = tucker_hooi(&t, &tucker).unwrap();
        let config = SimConfig::new(3, Grain::Fine, PartitionMethod::Hypergraph, vec![2, 2, 2]);
        let setup = DistributedSetup::build(&t, &config);
        let dist = distributed_hooi(&t, &setup, &tucker).unwrap();
        // Cores can differ by column sign flips of the factors; compare the
        // norms and the fits, which are sign-invariant.
        assert!(
            (dist.core.frobenius_norm() - shared.core.frobenius_norm()).abs()
                < 1e-8 * shared.core.frobenius_norm().max(1.0)
        );
    }

    #[test]
    fn four_mode_distributed_execution() {
        let t = random_tensor(&[10, 8, 9, 7], 400, 3);
        let tucker = TuckerConfig::new(vec![2, 2, 2, 2])
            .max_iterations(2)
            .seed(8);
        let shared = tucker_hooi(&t, &tucker).unwrap();
        let config = SimConfig::new(4, Grain::Fine, PartitionMethod::Random, vec![2, 2, 2, 2]);
        let setup = DistributedSetup::build(&t, &config);
        let dist = distributed_hooi(&t, &setup, &tucker).unwrap();
        assert!((dist.final_fit() - shared.final_fit()).abs() < 1e-8);
    }
}
