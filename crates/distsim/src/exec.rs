//! The distributed *executor*: Algorithm 4 run as real message-passing
//! ranks behind the [`crate::comm::Communicator`] abstraction.
//!
//! Earlier revisions of this module *walked* the ranks serially on one
//! thread and merged their partial results in place.  This version executes
//! the algorithm's actual communication pattern: every rank is a long-lived
//! concurrent worker holding only its own nonzeros (per the
//! [`DistributedSetup`] ownership maps), and all coordination happens
//! through typed messages.  Per HOOI iteration and mode `n`:
//!
//! 1. **Local TTMc** — each rank runs the nonzero-based TTMc on its local
//!    tensor.  Rows whose update list is entirely local are accumulated
//!    directly; rows split across ranks produce per-nonzero contribution
//!    vectors.
//! 2. **Fold** (point-to-point) — contributions of split rows travel to the
//!    row's owner, which merges *all* contributions — its own included — in
//!    ascending global nonzero id.  That owner-ordered reduction replays
//!    the shared-memory sweep's exact floating-point accumulation order, so
//!    the folded row is bit-identical to [`hooi::ttmc::ttmc_mode`]'s — the
//!    executor's correctness argument is exact equality with
//!    [`hooi::TuckerSolver`], not a tolerance.
//! 3. **Gather** — owners ship their reduced rows to rank 0, which
//!    assembles the compact matricized result and runs the same
//!    [`trsvd_factor_with`] the shared-memory solver uses.  (The paper
//!    distributes the TRSVD itself; centralizing it is what keeps the
//!    factor update bit-identical.  The gather/scatter words are counted
//!    under their own [`Phase`]s so the modeled expand/fold traffic stays
//!    cleanly separated.)
//! 4. **Scatter + Expand** (point-to-point) — updated factor rows return to
//!    their owners, and each owner forwards `U_n(i, :)` to every rank that
//!    needs it for a later local TTMc — Algorithm 4's factor-row
//!    communication, driven by the same holder/needer relations
//!    ([`DistributedSetup::row_relations`]) that
//!    [`crate::stats::iteration_stats`] prices.  Measured
//!    [`Phase::Expand`]/[`Phase::Fold`] counters therefore cross-validate
//!    the cost model word for word (see `tests/executor.rs`).
//!
//! After the mode sweep, rank 0 forms the core tensor, evaluates the fit,
//! and broadcasts the continue/stop decision; the final counter digest is
//! an [`Communicator::allreduce_sum`] so every rank learns the cluster
//! totals through the same trait the algorithm uses.
//!
//! Each rank pins its numeric kernels to a private pool of
//! [`ExecOptions::rank_threads`] workers; run the comparison solver at the
//! same width to get bit-identical results (floating-point reductions in
//! the TRSVD are deterministic *per width*, not across widths).  The
//! executor's arithmetic replays the *per-mode* TTMc, so the comparison
//! solver must be planned with `TtmcStrategy::PerMode` — the shared-memory
//! solver's default dimension-tree fast path reassociates the accumulation
//! and agrees only within tolerance, not bit for bit.
//!
//! The analytic tables (256-rank scaling) still come from
//! [`crate::stats`]/[`crate::cost`], which never execute numerics; this
//! module is the runner that proves those predictions against a real
//! message-passing execution on backends from in-process channels to
//! loopback TCP ([`CommBackend`]).
//!
//! # Failure model
//!
//! Every communication step returns `Result<_, CommError>` and every
//! `recv` is bounded by [`ExecOptions::deadline`], so a lost message, a
//! dead peer, or a corrupt frame can never hang a rank.  The first rank to
//! observe an error fans a poison [`Phase::Control`] abort out on its
//! surviving links ([`Communicator::send_abort`]) carrying the *origin*
//! rank's failure context; peers blocked in collectives intercept it as
//! [`CommError::RemoteAbort`] and unwind with the same attribution.  Each
//! rank's body additionally runs under `catch_unwind`, so a panic inside
//! the numeric kernels degrades into the same typed failure instead of
//! crossing a thread boundary.  [`execute_hooi`] then reports the whole
//! run as [`TuckerError::RankFailed`] naming the origin rank, protocol
//! phase, and iteration — a deterministic error, never a hang, never a
//! cross-thread panic.  [`execute_hooi_chaos`] exposes the same machinery
//! under a seeded [`FaultPlan`] for reproducible chaos testing.

use crate::comm::{
    channel_transports, channel_world, tcp_transports, CommBackend, CommCounters, CommDeadline,
    CommError, Communicator, Endpoint, Message, Phase, Tag,
};
use crate::fault::{FaultPlan, FaultProbe};
use crate::setup::{DistributedSetup, Grain};
use hooi::config::{Initialization, TuckerConfig};
use hooi::core_tensor::core_from_last_ttmc_into;
use hooi::error::TuckerError;
use hooi::fit::fit_from_norms;
use hooi::hosvd::{hosvd_factors, random_factors, DEFAULT_HOSVD_MAX_COLS};
use hooi::symbolic::{SymbolicMode, SymbolicTtmc};
use hooi::trsvd::trsvd_factor_with;
use hooi::ttmc::{ttmc_contribution_into, ttmc_result_width, ttmc_row_into};
use hooi::workspace::HooiWorkspace;
use hooi::{TimingBreakdown, TuckerDecomposition};
use linalg::Matrix;
use sptensor::SparseTensor;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// The executor's root rank: assembles the TRSVD input, owns the
/// convergence decision, and returns the decomposition.
pub const ROOT: usize = 0;

const STEP_INIT: u32 = 0xffff_0000;
const STEP_FINAL_BARRIER: u32 = 0xffff_0001;
const STEP_FINAL_ALLREDUCE: u32 = 0xffff_0002;

/// How to run the executor: which [`CommBackend`] carries the messages,
/// how many threads each rank's private compute pool gets, and the
/// liveness deadline every endpoint enforces.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Message transport between ranks.
    pub backend: CommBackend,
    /// Worker threads per rank (the hybrid implementation's "OpenMP
    /// threads").  Defaults to 1; results are bit-identical to a
    /// [`hooi::TuckerSolver`] planned with the *same* width and
    /// `TtmcStrategy::PerMode`.
    pub rank_threads: usize,
    /// Per-endpoint liveness bounds: how long any `recv` may block and how
    /// the TCP connection phase retries.  The worst-case unwind time after
    /// a failure is bounded by this deadline.
    pub deadline: CommDeadline,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            backend: CommBackend::Channel,
            rank_threads: 1,
            deadline: CommDeadline::default(),
        }
    }
}

impl ExecOptions {
    /// Default options: channel backend, one thread per rank.
    pub fn new() -> Self {
        ExecOptions::default()
    }

    /// Builder-style setter for the message backend.
    pub fn backend(mut self, backend: CommBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Builder-style setter for the per-rank compute-pool width.
    pub fn rank_threads(mut self, threads: usize) -> Self {
        self.rank_threads = threads;
        self
    }

    /// Builder-style setter for the per-endpoint comm deadline.
    pub fn deadline(mut self, deadline: CommDeadline) -> Self {
        self.deadline = deadline;
        self
    }
}

/// The outcome of one executed distributed HOOI run: the decomposition plus
/// the measured communication of every rank.
#[derive(Debug)]
pub struct DistributedRun {
    /// The decomposition computed at the root — bit-identical to the
    /// shared-memory solver's at matching pool width.
    pub decomposition: TuckerDecomposition,
    /// Measured per-rank traffic, indexed by rank.
    pub comm: Vec<CommCounters>,
    /// Cluster-total expand float words *sent*, as computed by the final
    /// in-protocol [`Communicator::allreduce_sum`] (equals the sum of the
    /// per-rank counters — asserted by the tests).
    pub cluster_expand_floats: f64,
    /// Cluster-total fold float words *sent*, from the same allreduce.
    pub cluster_fold_floats: f64,
    /// Which backend carried the messages.
    pub backend: CommBackend,
    /// Wall-clock time of the whole run (world construction to join).
    pub wall: Duration,
}

impl DistributedRun {
    /// Total measured payload bytes moved across all ranks and phases.
    pub fn total_bytes(&self) -> u64 {
        CommCounters::merged(&self.comm).bytes_total()
    }
}

// ---------------------------------------------------------------------------
// Failure records
// ---------------------------------------------------------------------------

/// What originally went wrong on a failed rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureSource {
    /// A communication primitive failed.
    Comm(CommError),
    /// The rank's body panicked; the payload message is captured.
    Panic(String),
}

impl std::fmt::Display for FailureSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureSource::Comm(e) => write!(f, "{e}"),
            FailureSource::Panic(msg) => write!(f, "panic: {msg}"),
        }
    }
}

/// Iteration sentinel for failures outside the HOOI loop (the final
/// counter digest collectives).
pub const FINAL_COLLECTIVES_ITERATION: u32 = u32::MAX;

/// One rank's record of a failed run.  A rank that observed the fault
/// directly records itself as `origin`; a rank that unwound because of a
/// poison abort adopts the aborting rank's context, so every survivor
/// attributes the failure to the same origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankFailure {
    /// The rank this record belongs to.
    pub rank: usize,
    /// The rank where the failure originated.
    pub origin: usize,
    /// Protocol phase the origin was executing.
    pub phase: Phase,
    /// HOOI iteration the origin was in ([`FINAL_COLLECTIVES_ITERATION`]
    /// for the post-loop counter digest).
    pub iteration: u32,
    /// The underlying error.
    pub source: FailureSource,
}

impl RankFailure {
    fn observed(rank: usize, phase: Phase, iteration: u32, e: CommError) -> RankFailure {
        // A remote abort carries the origin's own failure context; adopt it
        // so all survivors agree on the attribution.
        if let CommError::RemoteAbort {
            origin,
            phase: origin_phase,
            iteration: origin_iter,
        } = e
        {
            RankFailure {
                rank,
                origin,
                phase: origin_phase,
                iteration: origin_iter,
                source: FailureSource::Comm(e),
            }
        } else {
            RankFailure {
                rank,
                origin: rank,
                phase,
                iteration,
                source: FailureSource::Comm(e),
            }
        }
    }

    /// Renders this failure as the executor's public error type.
    pub fn to_tucker_error(&self) -> TuckerError {
        TuckerError::RankFailed {
            rank: self.origin,
            phase: self.phase.label().to_string(),
            iteration: self.iteration as u64,
            source: self.source.to_string(),
        }
    }
}

/// The outcome of a fault-injected executor run: what the world concluded,
/// what each rank individually reported, and how much traffic moved before
/// the fault (if any) tore the run down.
#[derive(Debug)]
pub struct ChaosRun {
    /// The run's overall verdict: the decomposition when every rank
    /// completed cleanly, or the representative [`TuckerError::RankFailed`]
    /// (lowest origin rank, preferring the origin's own record).
    pub outcome: Result<TuckerDecomposition, TuckerError>,
    /// Each rank's own failure, `None` for ranks that completed.  During a
    /// faulted run every rank fails (the abort/deadline machinery reaches
    /// everyone), so this is all-`None` exactly when `outcome` is `Ok`.
    pub rank_errors: Vec<Option<TuckerError>>,
    /// Measured per-rank traffic up to completion or unwind.
    pub comm: Vec<CommCounters>,
    /// How many of the plan's triggers actually fired.
    pub faults_fired: u64,
    /// Which backend carried the messages.
    pub backend: CommBackend,
    /// Wall-clock time of the whole run (world construction to join).
    pub wall: Duration,
}

// ---------------------------------------------------------------------------
// The communication plan
// ---------------------------------------------------------------------------

/// Who talks to whom, precomputed once per run from the ownership maps so
/// every rank's receive loop knows exactly which peers to expect (the
/// protocol never needs wildcard receives).
struct ModePlan {
    /// Owner rank per global row (`u32::MAX` = empty slice).
    owner: Vec<u32>,
    /// Number of ranks holding nonzeros of each row.
    lambda: Vec<u32>,
    /// `owned_rows[r]` — sorted nonempty rows owned by rank `r`.
    owned_rows: Vec<Vec<usize>>,
    /// `fold_pair[src][dst]` — whether `src` ships fold contributions to
    /// `dst`; both sides of the exchange index this one matrix.
    fold_pair: Vec<Vec<bool>>,
    /// `expand_rows[src][dst]` — the sorted factor rows `src` owns and
    /// forwards to `dst`; senders iterate a row, receivers a column.
    expand_rows: Vec<Vec<Vec<usize>>>,
}

impl ModePlan {
    fn num_ranks(&self) -> usize {
        self.owned_rows.len()
    }

    /// Sorted owners rank `src` ships fold contributions to.
    fn fold_send_to(&self, src: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.num_ranks()).filter(move |&dst| self.fold_pair[src][dst])
    }

    /// Sorted holders rank `dst` receives fold contributions from.
    fn fold_recv_from(&self, dst: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.num_ranks()).filter(move |&src| self.fold_pair[src][dst])
    }

    /// `(dst, rows)` pairs rank `src` must forward factor rows to.
    fn expand_send_to(&self, src: usize) -> impl Iterator<Item = (usize, &[usize])> + '_ {
        (0..self.num_ranks())
            .filter(move |&dst| !self.expand_rows[src][dst].is_empty())
            .map(move |dst| (dst, self.expand_rows[src][dst].as_slice()))
    }

    /// `(src, rows)` pairs rank `dst` receives factor rows from.
    fn expand_recv_from(&self, dst: usize) -> impl Iterator<Item = (usize, &[usize])> + '_ {
        (0..self.num_ranks())
            .filter(move |&src| !self.expand_rows[src][dst].is_empty())
            .map(move |src| (src, self.expand_rows[src][dst].as_slice()))
    }
}

struct ExecPlan {
    modes: Vec<ModePlan>,
}

impl ExecPlan {
    fn build(tensor: &SparseTensor, setup: &DistributedSetup, global_sym: &SymbolicTtmc) -> Self {
        let order = tensor.order();
        let p = setup.config.num_ranks;
        let relations = setup.row_relations(tensor);
        let mut modes = Vec::with_capacity(order);
        for mode in 0..order {
            let rel = &relations.modes[mode];
            let dim = tensor.dims()[mode];
            let owner = setup.row_owner[mode].clone();
            let lambda: Vec<u32> = (0..dim).map(|i| rel.holders[i].len() as u32).collect();

            let mut owned_rows: Vec<Vec<usize>> = vec![Vec::new(); p];
            for &i in &global_sym.mode(mode).rows {
                let o = owner[i];
                if o != u32::MAX {
                    owned_rows[o as usize].push(i);
                }
            }

            let mut fold_pair = vec![vec![false; p]; p];
            for i in 0..dim {
                if lambda[i] > 1 {
                    let o = owner[i] as usize;
                    for &(h, _) in &rel.holders[i] {
                        if h as usize != o {
                            fold_pair[h as usize][o] = true;
                        }
                    }
                }
            }
            let mut expand_rows: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); p]; p];
            for i in 0..dim {
                let o = owner[i];
                if o == u32::MAX {
                    continue;
                }
                for &need in &rel.needers[i] {
                    if need != o {
                        expand_rows[o as usize][need as usize].push(i);
                    }
                }
            }
            modes.push(ModePlan {
                owner,
                lambda,
                owned_rows,
                fold_pair,
                expand_rows,
            });
        }
        ExecPlan { modes }
    }
}

// ---------------------------------------------------------------------------
// Per-rank state
// ---------------------------------------------------------------------------

/// A stream of per-nonzero TTMc contributions for one (holder → owner)
/// pair: rows it touches, the global nonzero ids behind each row, and one
/// width-long contribution vector per id.  Buffers are reused across
/// iterations and modes.
#[derive(Default, Clone)]
struct FoldStream {
    /// `(global row, contribution count)`, ascending rows.
    rows: Vec<(usize, usize)>,
    /// Global nonzero ids, grouped by row, ascending within a row.
    ids: Vec<u64>,
    /// Contributions, `width` floats per id, in id order.
    floats: Vec<f64>,
    row_cursor: usize,
    id_cursor: usize,
}

impl FoldStream {
    fn clear(&mut self) {
        self.rows.clear();
        self.ids.clear();
        self.floats.clear();
        self.row_cursor = 0;
        self.id_cursor = 0;
    }

    fn to_message(&self, tag: Tag) -> Message {
        let mut ints = Vec::with_capacity(1 + 2 * self.rows.len() + self.ids.len());
        ints.push(self.rows.len() as u64);
        for &(row, cnt) in &self.rows {
            ints.push(row as u64);
            ints.push(cnt as u64);
        }
        ints.extend_from_slice(&self.ids);
        Message {
            tag,
            ints,
            floats: self.floats.clone(),
        }
    }

    fn load_message(&mut self, msg: &Message) {
        self.clear();
        let nrows = msg.ints[0] as usize;
        for k in 0..nrows {
            self.rows
                .push((msg.ints[1 + 2 * k] as usize, msg.ints[2 + 2 * k] as usize));
        }
        self.ids.extend_from_slice(&msg.ints[1 + 2 * nrows..]);
        self.floats.extend_from_slice(&msg.floats);
    }

    /// If the stream's next row is `row`, returns `(first id index, count)`
    /// and advances the cursors.
    fn take_row(&mut self, row: usize) -> Option<(usize, usize)> {
        match self.rows.get(self.row_cursor) {
            Some(&(r, cnt)) if r == row => {
                let start = self.id_cursor;
                self.row_cursor += 1;
                self.id_cursor += cnt;
                Some((start, cnt))
            }
            _ => None,
        }
    }
}

/// Everything a rank keeps alive across iterations: its local tensor(s)
/// and symbolic data (built once), the [`HooiWorkspace`] holding the local
/// compact TTMc rows, and every message/merge scratch buffer — the
/// executor's analogue of the solver-session workspace, so the iteration
/// loop allocates nothing per call.
struct RankState<'a> {
    rank: usize,
    /// Global nonzero ids per mode (ascending), mapping local ids back.
    ids: Vec<&'a [usize]>,
    /// Local tensors; fine grain owns a single tensor shared by all modes.
    locals: Vec<SparseTensor>,
    shared_local: bool,
    /// Local symbolic update lists per mode, built once.
    sym: SymbolicTtmc,
    /// Local compact TTMc rows, reused across iterations (PR 2 pattern).
    ws: HooiWorkspace,
    contrib: Vec<f64>,
    scratch: Vec<f64>,
    self_stream: FoldStream,
    out_streams: Vec<FoldStream>,
    in_streams: Vec<FoldStream>,
    /// `(global id, stream index, id index within stream)` merge scratch.
    merge_buf: Vec<(u64, usize, usize)>,
    row_buf: Vec<f64>,
}

impl<'a> RankState<'a> {
    fn build(
        rank: usize,
        tensor: &'a SparseTensor,
        setup: &'a DistributedSetup,
        ranks: &[usize],
    ) -> Self {
        let order = tensor.order();
        let p = setup.config.num_ranks;
        let shared_local = setup.config.grain == Grain::Fine;
        let ids: Vec<&[usize]> = (0..order).map(|m| setup.nonzeros_for(m, rank)).collect();
        let locals: Vec<SparseTensor> = if shared_local {
            vec![tensor.subset(ids[0])]
        } else {
            (0..order).map(|m| tensor.subset(ids[m])).collect()
        };
        let modes: Vec<SymbolicMode> = (0..order)
            .map(|m| {
                let lt = if shared_local { &locals[0] } else { &locals[m] };
                SymbolicMode::build(lt, m)
            })
            .collect();
        let sym = SymbolicTtmc { modes };
        let ws = HooiWorkspace::new(&sym, ranks);
        RankState {
            rank,
            ids,
            locals,
            shared_local,
            sym,
            ws,
            contrib: Vec::new(),
            scratch: Vec::new(),
            self_stream: FoldStream::default(),
            out_streams: vec![FoldStream::default(); p],
            in_streams: vec![FoldStream::default(); p],
            merge_buf: Vec::new(),
            row_buf: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// The per-mode protocol
// ---------------------------------------------------------------------------

/// Phase 1+2: local TTMc and the fold of split rows to their owners.
/// Afterwards every row in `state.ws.compact(mode)` that this rank *owns*
/// holds its final, fully reduced value.
fn local_ttmc_and_fold<C: Communicator>(
    state: &mut RankState<'_>,
    comm: &mut C,
    plan: &ModePlan,
    factors: &[Matrix],
    mode: usize,
    iter: u32,
) -> Result<(), CommError> {
    let rank = state.rank;
    let width = ttmc_result_width(factors, mode);
    state.contrib.resize(width, 0.0);
    state.scratch.resize(width, 0.0);
    state.self_stream.clear();
    for s in &mut state.out_streams {
        s.clear();
    }
    // Factor-row scratch for the contribution kernel; its entries borrow
    // `factors`, so it lives here rather than in the long-lived RankState.
    let mut factor_rows: Vec<&[f64]> = Vec::with_capacity(factors.len());

    // Local TTMc: direct accumulation for fully local rows, contribution
    // streams for split rows.
    {
        let lt = if state.shared_local {
            &state.locals[0]
        } else {
            &state.locals[mode]
        };
        let sm = state.sym.mode(mode);
        let compact = state.ws.compact_mut(mode);
        for p_local in 0..sm.num_rows() {
            let i = sm.rows[p_local];
            if plan.lambda[i] <= 1 {
                // Sole holder: in both grains this rank is also the owner.
                ttmc_row_into(
                    lt,
                    sm,
                    factors,
                    mode,
                    p_local,
                    compact.row_mut(p_local),
                    &mut state.scratch,
                );
            } else {
                let owner = plan.owner[i] as usize;
                let stream = if owner == rank {
                    &mut state.self_stream
                } else {
                    &mut state.out_streams[owner]
                };
                let list = sm.update_list(p_local);
                stream.rows.push((i, list.len()));
                for &local_id in list {
                    ttmc_contribution_into(
                        lt,
                        factors,
                        mode,
                        local_id,
                        &mut state.contrib,
                        &mut state.scratch,
                        &mut factor_rows,
                    );
                    stream.ids.push(state.ids[mode][local_id] as u64);
                    stream.floats.extend_from_slice(&state.contrib);
                }
            }
        }
    }

    // Fold sends, then receives (the plan tells each side exactly whom to
    // expect, so no wildcard receives are needed).
    let tag = Tag::new(Phase::Fold, mode, iter);
    for dst in plan.fold_send_to(rank) {
        let msg = state.out_streams[dst].to_message(tag);
        comm.send(dst, &msg)?;
    }
    for src in plan.fold_recv_from(rank) {
        let msg = comm.recv(src, tag)?;
        state.in_streams[src].load_message(&msg);
    }

    // Owner-ordered reduction: for every owned split row, merge this rank's
    // own contributions with the received ones in ascending global nonzero
    // id — exactly the shared-memory sweep's accumulation order, which is
    // what makes the folded row bit-identical to `ttmc_mode`'s.
    state.row_buf.resize(width, 0.0);
    for &i in &plan.owned_rows[rank] {
        if plan.lambda[i] <= 1 {
            continue;
        }
        state.merge_buf.clear();
        if let Some((start, cnt)) = state.self_stream.take_row(i) {
            for k in start..start + cnt {
                state
                    .merge_buf
                    .push((state.self_stream.ids[k], usize::MAX, k));
            }
        }
        for src in plan.fold_recv_from(rank) {
            if let Some((start, cnt)) = state.in_streams[src].take_row(i) {
                for k in start..start + cnt {
                    state.merge_buf.push((state.in_streams[src].ids[k], src, k));
                }
            }
        }
        state.merge_buf.sort_unstable();
        state.row_buf.iter_mut().for_each(|v| *v = 0.0);
        for &(_, stream, k) in &state.merge_buf {
            let floats = if stream == usize::MAX {
                &state.self_stream.floats
            } else {
                &state.in_streams[stream].floats
            };
            let contribution = &floats[k * width..(k + 1) * width];
            for (r, &c) in state.row_buf.iter_mut().zip(contribution.iter()) {
                *r += c;
            }
        }
        let p_local = state
            .sym
            .mode(mode)
            .position_of(i)
            .expect("the owner of a split row holds nonzeros of it");
        state
            .ws
            .compact_mut(mode)
            .row_mut(p_local)
            .copy_from_slice(&state.row_buf);
    }
    Ok(())
}

/// Phase 3 (sender side): ship this rank's owned, reduced rows to the root.
fn gather_to_root<C: Communicator>(
    state: &RankState<'_>,
    comm: &mut C,
    plan: &ModePlan,
    width: usize,
    mode: usize,
    iter: u32,
) -> Result<(), CommError> {
    let rank = state.rank;
    let rows = &plan.owned_rows[rank];
    let mut floats = Vec::with_capacity(rows.len() * width);
    let mut ints = Vec::with_capacity(rows.len());
    let sm = state.sym.mode(mode);
    for &i in rows {
        let p_local = sm.position_of(i).expect("owner holds its rows");
        floats.extend_from_slice(state.ws.compact(mode).row(p_local));
        ints.push(i as u64);
    }
    comm.send(
        ROOT,
        &Message {
            tag: Tag::new(Phase::Gather, mode, iter),
            ints,
            floats,
        },
    )
}

/// Phase 3 (root side): assemble the full compact matricized result from
/// this rank's own rows plus every peer's gather message.
fn assemble_at_root<C: Communicator>(
    state: &RankState<'_>,
    comm: &mut C,
    plan: &ModePlan,
    global_sym: &SymbolicTtmc,
    out: &mut Matrix,
    mode: usize,
    iter: u32,
) -> Result<(), CommError> {
    let width = out.ncols();
    let gsm = global_sym.mode(mode);
    let mut assembled = 0usize;
    let sm = state.sym.mode(mode);
    for &i in &plan.owned_rows[ROOT] {
        let g = gsm.position_of(i).expect("owned rows are nonempty");
        let p_local = sm.position_of(i).expect("owner holds its rows");
        out.row_mut(g)
            .copy_from_slice(state.ws.compact(mode).row(p_local));
        assembled += 1;
    }
    let p = comm.num_ranks();
    let corrupt = |detail: String, peer: usize| CommError::Corrupt {
        rank: ROOT,
        peer,
        detail,
    };
    for src in 1..p {
        let msg = comm.recv(src, Tag::new(Phase::Gather, mode, iter))?;
        if msg.floats.len() != msg.ints.len() * width {
            return Err(corrupt(
                format!(
                    "gather payload length mismatch ({} rows, {} floats, width {width})",
                    msg.ints.len(),
                    msg.floats.len()
                ),
                src,
            ));
        }
        for (k, &row) in msg.ints.iter().enumerate() {
            let g = gsm
                .position_of(row as usize)
                .ok_or_else(|| corrupt(format!("gathered unknown row {row}"), src))?;
            out.row_mut(g)
                .copy_from_slice(&msg.floats[k * width..(k + 1) * width]);
            assembled += 1;
        }
    }
    if assembled != gsm.num_rows() {
        return Err(corrupt(
            format!(
                "gather assembled {assembled} of {} rows (every nonempty row has exactly one owner)",
                gsm.num_rows()
            ),
            ROOT,
        ));
    }
    Ok(())
}

/// Phase 4: the root scatters updated factor rows to their owners, then
/// every owner expands them point-to-point to the ranks that need them.
/// On return every rank's copy of `factors[mode]` is fresh wherever its
/// local TTMc will read it.
fn scatter_and_expand<C: Communicator>(
    comm: &mut C,
    plan: &ModePlan,
    factor: &mut Matrix,
    mode: usize,
    iter: u32,
) -> Result<(), CommError> {
    let rank = comm.rank();
    let p = comm.num_ranks();
    let r_mode = factor.ncols();
    let nrows = factor.nrows();
    let scatter_tag = Tag::new(Phase::Scatter, mode, iter);
    let apply_rows = |factor: &mut Matrix, msg: &Message, peer: usize| {
        if msg.floats.len() != msg.ints.len() * r_mode
            || msg.ints.iter().any(|&row| row as usize >= nrows)
        {
            return Err(CommError::Corrupt {
                rank,
                peer,
                detail: format!(
                    "factor-row payload invalid ({} rows, {} floats, width {r_mode})",
                    msg.ints.len(),
                    msg.floats.len()
                ),
            });
        }
        for (k, &row) in msg.ints.iter().enumerate() {
            factor
                .row_mut(row as usize)
                .copy_from_slice(&msg.floats[k * r_mode..(k + 1) * r_mode]);
        }
        Ok(())
    };
    if rank == ROOT {
        for dst in 1..p {
            let rows = &plan.owned_rows[dst];
            if rows.is_empty() {
                continue;
            }
            let mut floats = Vec::with_capacity(rows.len() * r_mode);
            for &i in rows {
                floats.extend_from_slice(factor.row(i));
            }
            comm.send(
                dst,
                &Message {
                    tag: scatter_tag,
                    ints: rows.iter().map(|&i| i as u64).collect(),
                    floats,
                },
            )?;
        }
    } else if !plan.owned_rows[rank].is_empty() {
        let msg = comm.recv(ROOT, scatter_tag)?;
        apply_rows(factor, &msg, ROOT)?;
    }

    let expand_tag = Tag::new(Phase::Expand, mode, iter);
    for (dst, rows) in plan.expand_send_to(rank) {
        let mut floats = Vec::with_capacity(rows.len() * r_mode);
        for &i in rows {
            floats.extend_from_slice(factor.row(i));
        }
        comm.send(
            dst,
            &Message {
                tag: expand_tag,
                ints: rows.iter().map(|&i| i as u64).collect(),
                floats,
            },
        )?;
    }
    let expand_from: Vec<usize> = plan.expand_recv_from(rank).map(|(src, _)| src).collect();
    for src in expand_from {
        let msg = comm.recv(src, expand_tag)?;
        apply_rows(factor, &msg, src)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The rank driver
// ---------------------------------------------------------------------------

struct RankOutcome {
    decomposition: Option<TuckerDecomposition>,
    counters: CommCounters,
    cluster_words: [f64; 2],
    failure: Option<RankFailure>,
}

struct ExecContext<'a> {
    tensor: &'a SparseTensor,
    setup: &'a DistributedSetup,
    plan: &'a ExecPlan,
    global_sym: &'a SymbolicTtmc,
    config: &'a TuckerConfig,
    ranks: &'a [usize],
    rank_threads: usize,
}

/// Replicated factor initialization: random factors are seeded identically
/// everywhere; HOSVD factors are computed once at the root and broadcast
/// so all ranks start from the same bits.
fn init_factors<C: Communicator>(
    comm: &mut C,
    ctx: &ExecContext<'_>,
) -> Result<Vec<Matrix>, CommError> {
    match ctx.config.initialization {
        Initialization::Random => Ok(random_factors(
            ctx.tensor.dims(),
            ctx.ranks,
            ctx.config.seed,
        )),
        Initialization::Hosvd => {
            let order = ctx.tensor.order();
            if comm.rank() == ROOT {
                let factors = hosvd_factors(
                    ctx.tensor,
                    ctx.ranks,
                    DEFAULT_HOSVD_MAX_COLS,
                    ctx.config.seed,
                );
                for (m, u) in factors.iter().enumerate() {
                    comm.broadcast(
                        ROOT,
                        Message {
                            tag: Tag::new(Phase::Control, m, STEP_INIT),
                            ints: vec![u.nrows() as u64, u.ncols() as u64],
                            floats: u.as_slice().to_vec(),
                        },
                    )?;
                }
                Ok(factors)
            } else {
                (0..order)
                    .map(|m| {
                        let msg = comm.broadcast(
                            ROOT,
                            Message::empty(Tag::new(Phase::Control, m, STEP_INIT)),
                        )?;
                        if msg.ints.len() != 2
                            || msg.floats.len() != (msg.ints[0] * msg.ints[1]) as usize
                        {
                            return Err(CommError::Corrupt {
                                rank: comm.rank(),
                                peer: ROOT,
                                detail: "malformed factor broadcast".to_string(),
                            });
                        }
                        Ok(Matrix::from_vec(
                            msg.ints[0] as usize,
                            msg.ints[1] as usize,
                            msg.floats,
                        ))
                    })
                    .collect()
            }
        }
    }
}

/// One rank's whole life: build local state, initialize factors, run the
/// HOOI iterations under the root's convergence decisions.  Returns the
/// decomposition at the root, `None` elsewhere; the first communication
/// error aborts the body with a [`RankFailure`] naming the protocol phase
/// and iteration it struck in.
fn rank_body<C: Communicator>(
    comm: &mut C,
    ctx: &ExecContext<'_>,
) -> Result<Option<TuckerDecomposition>, RankFailure> {
    let rank = comm.rank();
    let order = ctx.tensor.order();
    let ranks = ctx.ranks;
    let config = ctx.config;
    let mut timings = TimingBreakdown::default();

    let t_build = Instant::now();
    let mut state = RankState::build(rank, ctx.tensor, ctx.setup, ranks);
    let mut global_ws = (rank == ROOT).then(|| HooiWorkspace::new(ctx.global_sym, ranks));
    timings.symbolic = t_build.elapsed();

    let t_init = Instant::now();
    let mut factors =
        init_factors(comm, ctx).map_err(|e| RankFailure::observed(rank, Phase::Control, 0, e))?;
    timings.init = t_init.elapsed();

    let tensor_norm = if rank == ROOT {
        ctx.tensor.frobenius_norm()
    } else {
        0.0
    };

    let mut fits: Vec<f64> = Vec::new();
    let mut singular_values = vec![Vec::new(); order];
    let mut iterations = 0;

    for iter in 0..config.max_iterations {
        iterations += 1;
        for mode in 0..order {
            let width = ttmc_result_width(&factors, mode);
            let mp = &ctx.plan.modes[mode];

            let t_ttmc = Instant::now();
            local_ttmc_and_fold(&mut state, comm, mp, &factors, mode, iter as u32)
                .map_err(|e| RankFailure::observed(rank, Phase::Fold, iter as u32, e))?;
            if rank == ROOT {
                let gws = global_ws.as_mut().expect("root workspace");
                assemble_at_root(
                    &state,
                    comm,
                    mp,
                    ctx.global_sym,
                    gws.compact_mut(mode),
                    mode,
                    iter as u32,
                )
                .map_err(|e| RankFailure::observed(rank, Phase::Gather, iter as u32, e))?;
            } else {
                gather_to_root(&state, comm, mp, width, mode, iter as u32)
                    .map_err(|e| RankFailure::observed(rank, Phase::Gather, iter as u32, e))?;
            }
            timings.ttmc += t_ttmc.elapsed();

            let t_trsvd = Instant::now();
            if rank == ROOT {
                let gws = global_ws.as_mut().expect("root workspace");
                let (compact, scratch) = gws.trsvd_buffers(mode);
                let result = trsvd_factor_with(
                    compact,
                    ctx.global_sym.mode(mode),
                    ctx.tensor.dims()[mode],
                    ranks[mode],
                    config.trsvd,
                    config.seed ^ ((mode as u64 + 1) << 8),
                    scratch,
                );
                factors[mode] = result.factor;
                singular_values[mode] = result.singular_values;
            }
            scatter_and_expand(comm, mp, &mut factors[mode], mode, iter as u32)
                .map_err(|e| RankFailure::observed(rank, Phase::Scatter, iter as u32, e))?;
            timings.trsvd += t_trsvd.elapsed();
        }

        // Core + fit at the root; the continue/stop verdict is broadcast so
        // every rank's control flow stays in lock step.
        let t_core = Instant::now();
        let flag_tag = Tag::new(Phase::Control, 0, iter as u32);
        let keep_going = if rank == ROOT {
            let gws = global_ws.as_mut().expect("root workspace");
            let (compact, core) = gws.core_buffers(order - 1);
            core_from_last_ttmc_into(
                compact,
                ctx.global_sym.mode(order - 1),
                &factors[order - 1],
                ranks,
                core,
            );
            let fit = fit_from_norms(tensor_norm, gws.core().frobenius_norm());
            let improved = match fits.last() {
                Some(&prev) => fit - prev > config.fit_tolerance,
                None => true,
            };
            fits.push(fit);
            let keep_going = improved && iter + 1 < config.max_iterations;
            comm.broadcast(
                ROOT,
                Message {
                    tag: flag_tag,
                    ints: vec![keep_going as u64],
                    floats: Vec::new(),
                },
            )
            .map_err(|e| RankFailure::observed(rank, Phase::Control, iter as u32, e))?;
            keep_going
        } else {
            let verdict = comm
                .broadcast(ROOT, Message::empty(flag_tag))
                .map_err(|e| RankFailure::observed(rank, Phase::Control, iter as u32, e))?;
            verdict.ints.first() == Some(&1)
        };
        timings.core += t_core.elapsed();
        if !keep_going {
            break;
        }
    }

    if rank == ROOT {
        let gws = global_ws.as_ref().expect("root workspace");
        Ok(Some(TuckerDecomposition {
            core: gws.core().clone(),
            factors,
            fits,
            iterations,
            singular_values,
            timings,
        }))
    } else {
        Ok(None)
    }
}

fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn run_rank<C: Communicator>(mut comm: C, ctx: &ExecContext<'_>) -> RankOutcome {
    let rank = comm.rank();
    // The body runs under catch_unwind so that a panic anywhere in the
    // numeric kernels (or the pool construction) degrades into the same
    // typed failure path as a communication error — it never crosses the
    // rank-thread boundary.
    let body = catch_unwind(AssertUnwindSafe(|| {
        match rayon::ThreadPoolBuilder::new()
            .num_threads(ctx.rank_threads)
            .build()
        {
            Ok(pool) => pool.install(|| rank_body(&mut comm, ctx)),
            Err(e) => Err(RankFailure {
                rank,
                origin: rank,
                phase: Phase::Control,
                iteration: 0,
                source: FailureSource::Panic(format!("per-rank compute pool failed: {e}")),
            }),
        }
    }));
    let (decomposition, mut failure) = match body {
        Ok(Ok(d)) => (d, None),
        Ok(Err(f)) => (None, Some(f)),
        Err(payload) => (
            None,
            Some(RankFailure {
                rank,
                origin: rank,
                phase: Phase::Control,
                iteration: 0,
                source: FailureSource::Panic(panic_detail(payload)),
            }),
        ),
    };
    if let Some(f) = &failure {
        // Poison the surviving links so peers blocked in collectives unwind
        // immediately instead of waiting out their deadline.  Only the
        // original observer forwards: a rank that is itself unwinding from
        // a RemoteAbort would re-broadcast stale context to ranks that
        // already know.
        if f.origin == rank {
            comm.send_abort(f.origin, f.phase, f.iteration);
        }
    } else {
        // Digest the measured expand/fold volumes through the trait's own
        // allreduce so every rank (and the report) sees the cluster totals
        // the same way the algorithm would.
        let mut cluster_words = [
            comm.counters().phase(Phase::Expand).floats_sent as f64,
            comm.counters().phase(Phase::Fold).floats_sent as f64,
        ];
        let digest = comm
            .barrier(STEP_FINAL_BARRIER)
            .and_then(|()| comm.allreduce_sum(STEP_FINAL_ALLREDUCE, &mut cluster_words));
        match digest {
            Ok(()) => {
                return RankOutcome {
                    decomposition,
                    counters: comm.counters().clone(),
                    cluster_words,
                    failure: None,
                };
            }
            Err(e) => {
                let f = RankFailure::observed(rank, Phase::Control, FINAL_COLLECTIVES_ITERATION, e);
                if f.origin == rank {
                    comm.send_abort(f.origin, f.phase, f.iteration);
                }
                failure = Some(f);
            }
        }
    }
    RankOutcome {
        decomposition: None,
        counters: comm.counters().clone(),
        cluster_words: [0.0; 2],
        failure,
    }
}

fn run_world<C: Communicator>(world: Vec<C>, ctx: &ExecContext<'_>) -> Vec<RankOutcome> {
    std::thread::scope(|s| {
        let handles: Vec<_> = world
            .into_iter()
            .map(|comm| s.spawn(move || run_rank(comm, ctx)))
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| {
                h.join().unwrap_or_else(|payload| RankOutcome {
                    decomposition: None,
                    counters: CommCounters::default(),
                    cluster_words: [0.0; 2],
                    failure: Some(RankFailure {
                        rank,
                        origin: rank,
                        phase: Phase::Control,
                        iteration: 0,
                        source: FailureSource::Panic(panic_detail(payload)),
                    }),
                })
            })
            .collect()
    })
}

/// Picks the failure the whole run is reported as: the lowest origin rank,
/// preferring that origin's own record over a survivor's echo of it.
fn representative_failure(outcomes: &[RankOutcome]) -> Option<&RankFailure> {
    outcomes
        .iter()
        .filter_map(|o| o.failure.as_ref())
        .min_by_key(|f| (f.origin, f.rank != f.origin, f.rank))
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// Validates inputs and builds the shared symbolic context; the common
/// front half of [`execute_hooi`] and [`execute_hooi_chaos`].
fn validate(
    tensor: &SparseTensor,
    setup: &DistributedSetup,
    config: &TuckerConfig,
) -> Result<Vec<usize>, TuckerError> {
    if tensor.order() == 0 || tensor.nnz() == 0 {
        return Err(TuckerError::EmptyTensor);
    }
    let ranks = config.validated_ranks(tensor.dims())?;
    assert_eq!(
        setup.dims,
        tensor.dims(),
        "setup was built for a different tensor"
    );
    Ok(ranks)
}

fn run_on_backend(
    ctx: &ExecContext<'_>,
    p: usize,
    options: &ExecOptions,
    plan: &FaultPlan,
    probe: &FaultProbe,
) -> Result<Vec<RankOutcome>, TuckerError> {
    let deadline = options.deadline;
    Ok(match options.backend {
        CommBackend::Channel => {
            let world: Vec<_> = plan
                .wrap(channel_transports(p), probe)
                .into_iter()
                .map(|t| Endpoint::with_deadline(t, deadline))
                .collect();
            run_world(world, ctx)
        }
        CommBackend::Tcp => {
            let transports = tcp_transports(p, &deadline).map_err(|e| {
                TuckerError::PoolFailure(format!("loopback TCP backend unavailable: {e}"))
            })?;
            let world: Vec<_> = plan
                .wrap(transports, probe)
                .into_iter()
                .map(|t| Endpoint::with_deadline(t, deadline))
                .collect();
            run_world(world, ctx)
        }
    })
}

/// Runs the distributed HOOI executor and returns the decomposition
/// together with the per-rank measured communication.
///
/// Validation mirrors the shared-memory solver ([`TuckerError::EmptyTensor`],
/// [`TuckerError::OrderMismatch`], [`TuckerError::ZeroRank`]); asking for
/// the TCP backend in an environment that forbids sockets surfaces as
/// [`TuckerError::PoolFailure`] carrying the I/O reason.  A rank failure
/// mid-run (dead peer, timeout, corrupt frame, panic in a rank body)
/// surfaces as [`TuckerError::RankFailed`] within the configured
/// [`ExecOptions::deadline`] — the executor never hangs and never lets a
/// rank's panic cross the thread boundary.
///
/// # Panics
/// Panics if `setup` was built for a tensor with different mode sizes.
pub fn execute_hooi(
    tensor: &SparseTensor,
    setup: &DistributedSetup,
    config: &TuckerConfig,
    options: &ExecOptions,
) -> Result<DistributedRun, TuckerError> {
    let ranks = validate(tensor, setup, config)?;
    let p = setup.config.num_ranks;
    let t0 = Instant::now();
    let global_sym = SymbolicTtmc::build(tensor);
    let plan = ExecPlan::build(tensor, setup, &global_sym);
    let ctx = ExecContext {
        tensor,
        setup,
        plan: &plan,
        global_sym: &global_sym,
        config,
        ranks: &ranks,
        rank_threads: options.rank_threads,
    };
    let outcomes = run_on_backend(&ctx, p, options, &FaultPlan::empty(), &FaultProbe::new())?;
    let wall = t0.elapsed();

    if let Some(f) = representative_failure(&outcomes) {
        return Err(f.to_tucker_error());
    }
    let mut decomposition = None;
    let mut comm = Vec::with_capacity(p);
    let mut cluster = [0.0; 2];
    for (r, outcome) in outcomes.into_iter().enumerate() {
        if r == ROOT {
            decomposition = outcome.decomposition;
            cluster = outcome.cluster_words;
        }
        comm.push(outcome.counters);
    }
    Ok(DistributedRun {
        decomposition: decomposition.expect("root returns the decomposition"),
        comm,
        cluster_expand_floats: cluster[0],
        cluster_fold_floats: cluster[1],
        backend: options.backend,
        wall,
    })
}

/// Runs the executor under a seeded [`FaultPlan`], reporting every rank's
/// individual verdict alongside the run's overall outcome.  The chaos
/// contract this enforces (and `tests/faults.rs` plus the `chaos` bench
/// bin gate): a faulted run resolves to typed [`TuckerError::RankFailed`]
/// on every surviving rank within the configured deadline — no hangs, no
/// cross-thread panics — and a run whose plan never fires is bit-identical
/// to [`execute_hooi`] with identical counters.
pub fn execute_hooi_chaos(
    tensor: &SparseTensor,
    setup: &DistributedSetup,
    config: &TuckerConfig,
    options: &ExecOptions,
    plan: &FaultPlan,
) -> Result<ChaosRun, TuckerError> {
    let ranks = validate(tensor, setup, config)?;
    let p = setup.config.num_ranks;
    let t0 = Instant::now();
    let global_sym = SymbolicTtmc::build(tensor);
    let exec_plan = ExecPlan::build(tensor, setup, &global_sym);
    let ctx = ExecContext {
        tensor,
        setup,
        plan: &exec_plan,
        global_sym: &global_sym,
        config,
        ranks: &ranks,
        rank_threads: options.rank_threads,
    };
    let probe = FaultProbe::new();
    let outcomes = run_on_backend(&ctx, p, options, plan, &probe)?;
    let wall = t0.elapsed();

    let representative = representative_failure(&outcomes).map(RankFailure::to_tucker_error);
    let rank_errors: Vec<Option<TuckerError>> = outcomes
        .iter()
        .map(|o| o.failure.as_ref().map(RankFailure::to_tucker_error))
        .collect();
    let mut decomposition = None;
    let mut comm = Vec::with_capacity(p);
    for (r, o) in outcomes.into_iter().enumerate() {
        if r == ROOT {
            decomposition = o.decomposition;
        }
        comm.push(o.counters);
    }
    let outcome = match representative {
        Some(e) => Err(e),
        None => Ok(decomposition.expect("root returns the decomposition")),
    };
    Ok(ChaosRun {
        outcome,
        rank_errors,
        comm,
        faults_fired: probe.fired(),
        backend: options.backend,
        wall,
    })
}

/// Runs the distributed HOOI executor on the default (channel) backend and
/// returns just the decomposition — same signature and structured-error
/// contract as the shared-memory solver.
pub fn distributed_hooi(
    tensor: &SparseTensor,
    setup: &DistributedSetup,
    config: &TuckerConfig,
) -> Result<TuckerDecomposition, TuckerError> {
    Ok(execute_hooi(tensor, setup, config, &ExecOptions::default())?.decomposition)
}

/// Computes one mode's merged compact TTMc result through the
/// message-passing executor (channel backend): each rank computes its
/// local contributions, split rows fold to their owners, and the owners'
/// reduced rows gather at the root, which returns the assembled
/// `|J_mode| × Π_{t≠mode} R_t` matrix — bit-identical to
/// [`hooi::ttmc::ttmc_mode`] on the full tensor.
pub fn distributed_ttmc(
    tensor: &SparseTensor,
    setup: &DistributedSetup,
    global_sym: &SymbolicTtmc,
    factors: &[Matrix],
    mode: usize,
) -> Matrix {
    let p = setup.config.num_ranks;
    let plan = ExecPlan::build(tensor, setup, global_sym);
    let pseudo_ranks: Vec<usize> = factors.iter().map(|u| u.ncols()).collect();
    let width = ttmc_result_width(factors, mode);
    let world = channel_world(p);
    std::thread::scope(|s| {
        let plan = &plan;
        let pseudo_ranks = &pseudo_ranks;
        let handles: Vec<_> = world
            .into_iter()
            .map(|mut comm| {
                s.spawn(move || {
                    let rank = comm.rank();
                    let mut state = RankState::build(rank, tensor, setup, pseudo_ranks);
                    let mp = &plan.modes[mode];
                    local_ttmc_and_fold(&mut state, &mut comm, mp, factors, mode, 0)
                        .expect("fault-free distributed_ttmc");
                    if rank == ROOT {
                        let gsm = global_sym.mode(mode);
                        let mut out = Matrix::zeros(gsm.num_rows(), width);
                        assemble_at_root(&state, &mut comm, mp, global_sym, &mut out, mode, 0)
                            .expect("fault-free distributed_ttmc");
                        Some(out)
                    } else {
                        gather_to_root(&state, &mut comm, mp, width, mode, 0)
                            .expect("fault-free distributed_ttmc");
                        None
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("rank thread panicked"))
            .next()
            .expect("root returns the merged result")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::loopback_tcp_available;
    use crate::setup::{PartitionMethod, SimConfig};
    use crate::stats::iteration_stats;
    use datagen::random_tensor;
    use hooi::ttmc::ttmc_mode;
    use hooi::{PlanOptions, TtmcStrategy, TuckerSolver};

    fn tensor() -> SparseTensor {
        random_tensor(&[25, 20, 15], 900, 13)
    }

    fn bits(m: &Matrix) -> Vec<u64> {
        m.as_slice().iter().map(|x| x.to_bits()).collect()
    }

    fn assert_identical(a: &TuckerDecomposition, b: &TuckerDecomposition, label: &str) {
        assert_eq!(a.fits, b.fits, "{label}: fits diverged");
        assert_eq!(a.iterations, b.iterations, "{label}: iteration counts");
        for (m, (ua, ub)) in a.factors.iter().zip(b.factors.iter()).enumerate() {
            assert_eq!(bits(ua), bits(ub), "{label}: factor {m} not bit-identical");
        }
        assert_eq!(
            a.core
                .as_slice()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            b.core
                .as_slice()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            "{label}: core not bit-identical"
        );
    }

    #[test]
    fn distributed_ttmc_is_bit_identical_to_shared_memory() {
        let t = tensor();
        let factors = random_factors(t.dims(), &[3, 3, 3], 5);
        let sym = SymbolicTtmc::build(&t);
        for (grain, method, p) in [
            (Grain::Fine, PartitionMethod::Random, 6),
            (Grain::Fine, PartitionMethod::Hypergraph, 6),
            (Grain::Coarse, PartitionMethod::Block, 5),
            (Grain::Coarse, PartitionMethod::Hypergraph, 5),
        ] {
            let config = SimConfig::new(p, grain, method, vec![3, 3, 3]);
            let setup = DistributedSetup::build(&t, &config);
            for mode in 0..3 {
                let dist = distributed_ttmc(&t, &setup, &sym, &factors, mode);
                let shared = ttmc_mode(&t, sym.mode(mode), &factors, mode);
                assert_eq!(dist.shape(), shared.shape());
                assert_eq!(
                    bits(&dist),
                    bits(&shared),
                    "{grain:?}/{method:?} mode {mode}: fold/merge not bit-exact"
                );
            }
        }
    }

    #[test]
    fn executor_matches_planned_solver_bit_for_bit() {
        let t = tensor();
        let tucker = TuckerConfig::new(vec![3, 3, 3]).max_iterations(3).seed(9);
        let mut solver = TuckerSolver::plan(
            &t,
            PlanOptions::new()
                .num_threads(1)
                .ttmc_strategy(TtmcStrategy::PerMode),
        )
        .unwrap();
        let shared = solver.solve(&tucker).unwrap();
        for (grain, method) in [
            (Grain::Fine, PartitionMethod::Hypergraph),
            (Grain::Coarse, PartitionMethod::Block),
        ] {
            let config = SimConfig::new(4, grain, method, vec![3, 3, 3]);
            let setup = DistributedSetup::build(&t, &config);
            let dist = distributed_hooi(&t, &setup, &tucker).unwrap();
            assert_identical(&dist, &shared, &format!("{grain:?}/{method:?}"));
        }
    }

    #[test]
    fn executor_matches_wider_solver_at_matching_width() {
        // The bit-identity contract is per pool width: rank_threads = 2
        // must match a solver planned with num_threads = 2.
        let t = tensor();
        let tucker = TuckerConfig::new(vec![3, 3, 3]).max_iterations(2).seed(3);
        let mut solver = TuckerSolver::plan(
            &t,
            PlanOptions::new()
                .num_threads(2)
                .ttmc_strategy(TtmcStrategy::PerMode),
        )
        .unwrap();
        let shared = solver.solve(&tucker).unwrap();
        let config = SimConfig::new(3, Grain::Fine, PartitionMethod::Random, vec![3, 3, 3]);
        let setup = DistributedSetup::build(&t, &config);
        let run = execute_hooi(&t, &setup, &tucker, &ExecOptions::new().rank_threads(2)).unwrap();
        assert_identical(&run.decomposition, &shared, "rank_threads=2");
    }

    #[test]
    fn single_rank_needs_no_messages_and_still_matches() {
        let t = tensor();
        let tucker = TuckerConfig::new(vec![2, 2, 2]).max_iterations(2).seed(4);
        let mut solver = TuckerSolver::plan(
            &t,
            PlanOptions::new()
                .num_threads(1)
                .ttmc_strategy(TtmcStrategy::PerMode),
        )
        .unwrap();
        let shared = solver.solve(&tucker).unwrap();
        let config = SimConfig::new(1, Grain::Fine, PartitionMethod::Random, vec![2, 2, 2]);
        let setup = DistributedSetup::build(&t, &config);
        let run = execute_hooi(&t, &setup, &tucker, &ExecOptions::default()).unwrap();
        assert_identical(&run.decomposition, &shared, "single rank");
        for phase in [Phase::Fold, Phase::Gather, Phase::Scatter, Phase::Expand] {
            assert_eq!(
                run.comm[0].phase(phase).messages_sent,
                0,
                "{}",
                phase.label()
            );
        }
    }

    #[test]
    fn measured_traffic_matches_stats_predictions() {
        let t = tensor();
        let tucker = TuckerConfig::new(vec![3, 3, 3]).max_iterations(2).seed(7);
        for (grain, method, p) in [
            (Grain::Fine, PartitionMethod::Hypergraph, 4),
            (Grain::Fine, PartitionMethod::Random, 3),
            (Grain::Coarse, PartitionMethod::Block, 4),
        ] {
            let config = SimConfig::new(p, grain, method, vec![3, 3, 3]);
            let setup = DistributedSetup::build(&t, &config);
            let run = execute_hooi(&t, &setup, &tucker, &ExecOptions::default()).unwrap();
            let stats = iteration_stats(&t, &setup, 20);
            let iters = run.decomposition.iterations as u64;
            let expand = stats.expand_words_per_rank();
            let fold = stats.fold_words_per_rank();
            for r in 0..p {
                assert_eq!(
                    run.comm[r].phase(Phase::Expand).floats_transferred(),
                    iters * expand[r],
                    "{grain:?}/{method:?} rank {r}: expand words"
                );
                assert_eq!(
                    run.comm[r].phase(Phase::Fold).floats_transferred(),
                    iters * fold[r],
                    "{grain:?}/{method:?} rank {r}: fold words"
                );
            }
            // The in-protocol allreduce agrees with the joined counters.
            let sent_expand: u64 = run
                .comm
                .iter()
                .map(|c| c.phase(Phase::Expand).floats_sent)
                .sum();
            let sent_fold: u64 = run
                .comm
                .iter()
                .map(|c| c.phase(Phase::Fold).floats_sent)
                .sum();
            assert_eq!(run.cluster_expand_floats, sent_expand as f64);
            assert_eq!(run.cluster_fold_floats, sent_fold as f64);
        }
    }

    #[test]
    fn tcp_backend_matches_channel_backend() {
        if !loopback_tcp_available() {
            eprintln!("skipping: loopback TCP unavailable in this environment");
            return;
        }
        let t = tensor();
        let tucker = TuckerConfig::new(vec![3, 3, 3]).max_iterations(2).seed(11);
        let config = SimConfig::new(3, Grain::Fine, PartitionMethod::Hypergraph, vec![3, 3, 3]);
        let setup = DistributedSetup::build(&t, &config);
        let chan = execute_hooi(&t, &setup, &tucker, &ExecOptions::default()).unwrap();
        let tcp = execute_hooi(
            &t,
            &setup,
            &tucker,
            &ExecOptions::new().backend(CommBackend::Tcp),
        )
        .unwrap();
        assert_identical(&tcp.decomposition, &chan.decomposition, "tcp vs channel");
        for (a, b) in tcp.comm.iter().zip(chan.comm.iter()) {
            assert_eq!(a, b, "counters must agree across backends");
        }
    }

    #[test]
    fn four_mode_execution_is_exact() {
        let t = random_tensor(&[10, 8, 9, 7], 400, 3);
        let tucker = TuckerConfig::new(vec![2, 2, 2, 2])
            .max_iterations(2)
            .seed(8);
        let mut solver = TuckerSolver::plan(
            &t,
            PlanOptions::new()
                .num_threads(1)
                .ttmc_strategy(TtmcStrategy::PerMode),
        )
        .unwrap();
        let shared = solver.solve(&tucker).unwrap();
        let config = SimConfig::new(4, Grain::Fine, PartitionMethod::Random, vec![2, 2, 2, 2]);
        let setup = DistributedSetup::build(&t, &config);
        let dist = distributed_hooi(&t, &setup, &tucker).unwrap();
        assert_identical(&dist, &shared, "four modes");
    }

    #[test]
    fn distributed_hooi_rejects_invalid_configs_as_values() {
        let t = tensor();
        let sim = SimConfig::new(4, Grain::Fine, PartitionMethod::Random, vec![3, 3, 3]);
        let setup = DistributedSetup::build(&t, &sim);
        assert_eq!(
            distributed_hooi(&t, &setup, &TuckerConfig::new(vec![2, 0, 2])).unwrap_err(),
            TuckerError::ZeroRank { mode: 1 }
        );
        assert_eq!(
            distributed_hooi(&t, &setup, &TuckerConfig::new(vec![2, 2])).unwrap_err(),
            TuckerError::OrderMismatch {
                config_modes: 2,
                tensor_modes: 3,
            }
        );
        let empty = SparseTensor::new(vec![25, 20, 15]);
        assert_eq!(
            execute_hooi(
                &empty,
                &setup,
                &TuckerConfig::new(vec![2, 2, 2]),
                &ExecOptions::default()
            )
            .unwrap_err(),
            TuckerError::EmptyTensor
        );
    }

    #[test]
    fn injected_disconnect_yields_rank_failed_everywhere() {
        use crate::fault::{FaultAction, FaultOp, FaultTrigger};
        let t = tensor();
        let tucker = TuckerConfig::new(vec![2, 2, 2]).max_iterations(3).seed(5);
        let config = SimConfig::new(3, Grain::Fine, PartitionMethod::Random, vec![2, 2, 2]);
        let setup = DistributedSetup::build(&t, &config);
        let plan = FaultPlan::one(FaultTrigger {
            rank: 1,
            peer: 0,
            op: FaultOp::Send,
            nth: 0,
            action: FaultAction::Disconnect,
        });
        let opts = ExecOptions::new()
            .deadline(CommDeadline::with_recv_timeout(Duration::from_millis(500)));
        let run = execute_hooi_chaos(&t, &setup, &tucker, &opts, &plan).unwrap();
        assert!(run.faults_fired >= 1, "the trigger must fire");
        assert!(
            matches!(run.outcome, Err(TuckerError::RankFailed { .. })),
            "outcome: {:?}",
            run.outcome
        );
        for (r, e) in run.rank_errors.iter().enumerate() {
            assert!(
                matches!(e, Some(TuckerError::RankFailed { .. })),
                "rank {r} must report a typed failure, got {e:?}"
            );
        }
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_with_equal_counters() {
        let t = tensor();
        let tucker = TuckerConfig::new(vec![3, 3, 3]).max_iterations(2).seed(6);
        let config = SimConfig::new(3, Grain::Coarse, PartitionMethod::Block, vec![3, 3, 3]);
        let setup = DistributedSetup::build(&t, &config);
        let clean = execute_hooi(&t, &setup, &tucker, &ExecOptions::default()).unwrap();
        let chaos = execute_hooi_chaos(
            &t,
            &setup,
            &tucker,
            &ExecOptions::default(),
            &FaultPlan::empty(),
        )
        .unwrap();
        assert_eq!(chaos.faults_fired, 0);
        let dec = chaos.outcome.expect("empty plan completes cleanly");
        assert_identical(&dec, &clean.decomposition, "empty fault plan");
        assert_eq!(chaos.comm, clean.comm, "counters must be untouched");
    }

    #[test]
    fn hosvd_initialization_is_broadcast_consistently() {
        let t = random_tensor(&[15, 12, 10], 400, 21);
        let tucker = TuckerConfig::new(vec![2, 2, 2])
            .max_iterations(2)
            .seed(2)
            .initialization(Initialization::Hosvd);
        let mut solver = TuckerSolver::plan(
            &t,
            PlanOptions::new()
                .num_threads(1)
                .ttmc_strategy(TtmcStrategy::PerMode),
        )
        .unwrap();
        let shared = solver.solve(&tucker).unwrap();
        let config = SimConfig::new(3, Grain::Fine, PartitionMethod::Hypergraph, vec![2, 2, 2]);
        let setup = DistributedSetup::build(&t, &config);
        let dist = distributed_hooi(&t, &setup, &tucker).unwrap();
        assert_identical(&dist, &shared, "hosvd init");
    }
}
