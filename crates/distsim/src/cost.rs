//! Combines per-rank statistics with the machine model into per-iteration
//! times — the quantities reported in the paper's Tables II, IV and V.
//!
//! The simulated time of one HOOI iteration is the sum over modes of
//!
//! * the TTMc time of the most loaded rank (compute bound, thread-scalable),
//! * the TRSVD time of the most loaded rank (bandwidth bound) plus the
//!   communication of factor rows and merged vector entries,
//!
//! plus the core-tensor formation (a small dense GEMM and an all-reduce).
//! Attribution follows the paper's Table IV: `TTMc`, `TRSVD+comm`,
//! `core+comm`.

use crate::machine::MachineModel;
use crate::setup::DistributedSetup;
use crate::stats::{iteration_stats, IterationStats, ModeRankStats};
use sptensor::SparseTensor;

/// Simulated cost of one HOOI iteration.
#[derive(Debug, Clone)]
pub struct IterationCost {
    /// Seconds spent in the TTMc step (max over ranks, summed over modes).
    pub ttmc_seconds: f64,
    /// Seconds spent in the TRSVD step including its communication.
    pub trsvd_seconds: f64,
    /// Seconds spent forming the core tensor including its all-reduce.
    pub core_seconds: f64,
    /// Per-mode `(ttmc, trsvd+comm)` breakdown.
    pub per_mode: Vec<(f64, f64)>,
    /// The raw statistics the cost was derived from.
    pub stats: IterationStats,
}

impl IterationCost {
    /// Total seconds per iteration.
    pub fn total_seconds(&self) -> f64 {
        self.ttmc_seconds + self.trsvd_seconds + self.core_seconds
    }

    /// Relative shares `(TTMc, TRSVD+comm, core+comm)` in percent — the rows
    /// of the paper's Table IV.
    pub fn relative_shares(&self) -> (f64, f64, f64) {
        let total = self.total_seconds();
        if total == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            100.0 * self.ttmc_seconds / total,
            100.0 * self.trsvd_seconds / total,
            100.0 * self.core_seconds / total,
        )
    }
}

/// Simulates the cost of one HOOI iteration for a given data distribution.
pub fn simulate_iteration(
    tensor: &SparseTensor,
    setup: &DistributedSetup,
    machine: &MachineModel,
    trsvd_applications: usize,
) -> IterationCost {
    let stats = iteration_stats(tensor, setup, trsvd_applications);
    cost_from_stats(&stats, setup, machine, trsvd_applications)
}

/// Computes the cost from precomputed statistics (lets callers reuse the
/// statistics for several machine configurations, e.g. the thread sweep of
/// Table V).
pub fn cost_from_stats(
    stats: &IterationStats,
    setup: &DistributedSetup,
    machine: &MachineModel,
    trsvd_applications: usize,
) -> IterationCost {
    let p = stats.num_ranks;
    let threads = setup.config.threads_per_rank;
    let order = stats.modes.len();
    let ranks = &stats.tucker_ranks;
    let mut ttmc_seconds = 0.0;
    let mut trsvd_seconds = 0.0;
    let mut per_mode = Vec::with_capacity(order);

    for mode in 0..order {
        let m = &stats.modes[mode];
        let width: usize = ranks
            .iter()
            .enumerate()
            .filter(|&(t, _)| t != mode)
            .map(|(_, &r)| r)
            .product();

        // TTMc: latency-bound Kronecker accumulation, 2·width flops/nonzero.
        let ttmc_mode = (0..p)
            .map(|r| machine.ttmc_time(m.ttmc_nonzeros[r] as f64 * 2.0 * width as f64, threads))
            .fold(0.0, f64::max);

        // TRSVD: `trsvd_applications` sweeps of MxV + MTxV over the local
        // (partial) rows; each sweep reads the rows once (8-byte words) and
        // performs 4·width flops per row (2 for MxV, 2 for MTxV).
        let trsvd_compute = (0..p)
            .map(|r| {
                let rows = m.trsvd_rows[r] as f64;
                let flops = rows * width as f64 * 4.0 * trsvd_applications as f64;
                let bytes = rows * width as f64 * 8.0 * 2.0 * trsvd_applications as f64;
                machine.trsvd_time(flops, bytes, threads)
            })
            .fold(0.0, f64::max);

        // Communication: the busiest rank's send+receive volume for this
        // mode (factor rows plus fine-grain vector-entry merges).
        let comm_words = ModeRankStats::max(&m.comm_volume) as f64;
        let messages = if comm_words > 0.0 { (p - 1).max(1) } else { 0 };
        let comm_time = machine.comm_time(comm_words * 8.0, messages);

        ttmc_seconds += ttmc_mode;
        trsvd_seconds += trsvd_compute + comm_time;
        per_mode.push((ttmc_mode, trsvd_compute + comm_time));
    }

    // Core tensor: dense product U_Nᵀ · Y_(N) over the local rows of the
    // last mode, followed by an all-reduce of the (tiny) core.
    let last = order - 1;
    let width_last: usize = ranks[..last].iter().product();
    let core_flops = (0..p)
        .map(|r| {
            stats.modes[last].trsvd_rows[r] as f64 * width_last as f64 * ranks[last] as f64 * 2.0
        })
        .fold(0.0, f64::max);
    let core_words: usize = ranks.iter().product();
    let core_seconds =
        machine.gemm_time(core_flops) + machine.allreduce_time(core_words as f64 * 8.0, p);

    IterationCost {
        ttmc_seconds,
        trsvd_seconds,
        core_seconds,
        per_mode,
        stats: stats.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{Grain, PartitionMethod, SimConfig};
    use crate::stats::DEFAULT_TRSVD_APPLICATIONS;
    use datagen::random_tensor;

    fn simulate(p: usize, grain: Grain, method: PartitionMethod, threads: usize) -> IterationCost {
        let t = random_tensor(&[60, 50, 40], 8000, 5);
        let mut config = SimConfig::new(p, grain, method, vec![4, 4, 4]);
        config.threads_per_rank = threads;
        let setup = DistributedSetup::build(&t, &config);
        simulate_iteration(
            &t,
            &setup,
            &MachineModel::bluegene_q(),
            DEFAULT_TRSVD_APPLICATIONS,
        )
    }

    #[test]
    fn more_ranks_reduce_iteration_time() {
        let t1 = simulate(1, Grain::Fine, PartitionMethod::Hypergraph, 16);
        let t8 = simulate(8, Grain::Fine, PartitionMethod::Hypergraph, 16);
        assert!(
            t8.total_seconds() < t1.total_seconds(),
            "8 ranks {} not faster than 1 rank {}",
            t8.total_seconds(),
            t1.total_seconds()
        );
    }

    #[test]
    fn more_threads_reduce_iteration_time() {
        let t1 = simulate(2, Grain::Fine, PartitionMethod::Hypergraph, 1);
        let t16 = simulate(2, Grain::Fine, PartitionMethod::Hypergraph, 16);
        let t32 = simulate(2, Grain::Fine, PartitionMethod::Hypergraph, 32);
        assert!(t16.total_seconds() < t1.total_seconds());
        assert!(t32.total_seconds() <= t16.total_seconds());
    }

    #[test]
    fn hypergraph_beats_random_in_simulated_time() {
        let hp = simulate(8, Grain::Fine, PartitionMethod::Hypergraph, 16);
        let rd = simulate(8, Grain::Fine, PartitionMethod::Random, 16);
        assert!(
            hp.total_seconds() <= rd.total_seconds(),
            "fine-hp {} slower than fine-rd {}",
            hp.total_seconds(),
            rd.total_seconds()
        );
    }

    #[test]
    fn core_share_is_small() {
        let cost = simulate(4, Grain::Fine, PartitionMethod::Hypergraph, 16);
        let (_, _, core) = cost.relative_shares();
        assert!(core < 20.0, "core share {core}% unexpectedly large");
    }

    #[test]
    fn shares_sum_to_hundred() {
        let cost = simulate(4, Grain::Coarse, PartitionMethod::Block, 16);
        let (a, b, c) = cost.relative_shares();
        assert!((a + b + c - 100.0).abs() < 1e-9);
        assert_eq!(cost.per_mode.len(), 3);
    }

    #[test]
    fn single_rank_has_only_local_cost() {
        let cost = simulate(1, Grain::Fine, PartitionMethod::Random, 32);
        assert_eq!(cost.stats.total_comm_volume(), 0);
        assert!(cost.total_seconds() > 0.0);
    }
}
