//! Per-mode, per-rank computation and communication statistics of one HOOI
//! iteration — the raw material of the paper's Table III.
//!
//! For every mode `n` and rank `r` the simulator derives, directly from the
//! data distribution (no numerics needed):
//!
//! * `W_TTMc` — the number of nonzeros rank `r` processes in the TTMc of
//!   mode `n` (each costs `2 · Π_{t≠n} R_t` flops),
//! * `W_TRSVD` — the number of (possibly partial) rows of `Y_(n)` the rank
//!   holds, i.e. the rows it multiplies in every MxV/MTxV of the TRSVD
//!   solver; in the fine-grain algorithm rows held by λ ranks count λ times
//!   in total — the redundant work the paper ties to the hypergraph cutsize,
//! * `Comm. vol.` — the words sent plus received by the rank for this mode:
//!   the factor-matrix rows `U_n(i, :)` exchanged after the TRSVD update
//!   (Algorithm 4 line 14) and, for the fine-grain algorithm, the `y`-vector
//!   entries merged inside the TRSVD solver (one word per partially held row
//!   per solver application).

use crate::setup::{DistributedSetup, Grain};
use sptensor::hash::FxHashSet;
use sptensor::SparseTensor;

/// Statistics of one mode for every rank.
#[derive(Debug, Clone)]
pub struct ModeRankStats {
    /// The mode these statistics describe.
    pub mode: usize,
    /// Nonzeros processed per rank in this mode's TTMc.
    pub ttmc_nonzeros: Vec<u64>,
    /// (Partial) rows of `Y_(mode)` held per rank.
    pub trsvd_rows: Vec<u64>,
    /// Words sent + received per rank for this mode.
    pub comm_volume: Vec<u64>,
}

impl ModeRankStats {
    /// Maximum over ranks of a per-rank metric.
    pub fn max(values: &[u64]) -> u64 {
        values.iter().copied().max().unwrap_or(0)
    }

    /// Average over ranks of a per-rank metric.
    pub fn avg(values: &[u64]) -> f64 {
        if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<u64>() as f64 / values.len() as f64
        }
    }
}

/// Statistics of a full HOOI iteration (every mode).
#[derive(Debug, Clone)]
pub struct IterationStats {
    /// One entry per mode.
    pub modes: Vec<ModeRankStats>,
    /// Number of ranks.
    pub num_ranks: usize,
    /// Tucker ranks per mode.
    pub tucker_ranks: Vec<usize>,
    /// Number of operator applications assumed for the iterative TRSVD
    /// solver when accounting its merge communication.
    pub trsvd_applications: usize,
}

impl IterationStats {
    /// Total communication volume (words) across all ranks and modes.
    pub fn total_comm_volume(&self) -> u64 {
        self.modes
            .iter()
            .map(|m| m.comm_volume.iter().sum::<u64>())
            .sum()
    }

    /// Maximum per-rank communication volume over all modes.
    pub fn max_comm_volume(&self) -> u64 {
        self.modes
            .iter()
            .map(|m| ModeRankStats::max(&m.comm_volume))
            .max()
            .unwrap_or(0)
    }
}

/// Default number of TRSVD operator applications assumed per mode: the
/// Lanczos solver builds a subspace of about `2R + 10` vectors and the paper
/// reports convergence in < 5 restarts, so a small constant multiple of the
/// rank; 20 keeps the accounting conservative.
pub const DEFAULT_TRSVD_APPLICATIONS: usize = 20;

/// Computes the per-mode statistics of one HOOI iteration for a given data
/// distribution.
pub fn iteration_stats(
    tensor: &SparseTensor,
    setup: &DistributedSetup,
    trsvd_applications: usize,
) -> IterationStats {
    let order = tensor.order();
    let p = setup.config.num_ranks;
    let ranks = setup.config.ranks.clone();
    let mut modes = Vec::with_capacity(order);

    for mode in 0..order {
        let dim = tensor.dims()[mode];
        // Which ranks need row i of U_mode?  A rank needs it if it processes
        // (in the TTMc of any mode m ≠ mode) a nonzero whose mode-`mode`
        // index is i.
        let mut needers: Vec<FxHashSet<u32>> = Vec::new();
        needers.resize_with(dim, FxHashSet::default);
        // Which ranks hold a partial row i of Y_(mode)?  (= process a
        // nonzero of slice i in the TTMc of `mode` itself.)
        let mut holders: Vec<FxHashSet<u32>> = Vec::new();
        holders.resize_with(dim, FxHashSet::default);

        for m in 0..order {
            for r in 0..p {
                for &id in setup.nonzeros_for(m, r) {
                    let i = tensor.index(id)[mode];
                    if m == mode {
                        holders[i].insert(r as u32);
                    } else {
                        needers[i].insert(r as u32);
                    }
                }
            }
        }

        // W_TTMc and W_TRSVD.
        let mut ttmc_nonzeros = vec![0u64; p];
        for r in 0..p {
            ttmc_nonzeros[r] = setup.nonzeros_for(mode, r).len() as u64;
        }
        let mut trsvd_rows = vec![0u64; p];
        for holder_set in &holders {
            for &r in holder_set {
                trsvd_rows[r as usize] += 1;
            }
        }

        // Communication volume.
        let mut comm = vec![0u64; p];
        let r_mode = ranks[mode] as u64;
        for i in 0..dim {
            let owner = setup.row_owner[mode][i];
            if owner == u32::MAX {
                continue;
            }
            // Factor-row exchange after the TRSVD update: the owner sends
            // U_mode(i, :) to every other rank that needs it.
            for &need in &needers[i] {
                if need != owner {
                    comm[owner as usize] += r_mode; // send
                    comm[need as usize] += r_mode; // receive
                }
            }
            // Fine grain: partial rows of Y_(mode) are merged entry-wise in
            // the TRSVD solver (one word per application per partial copy).
            if setup.config.grain == Grain::Fine {
                let lambda = holders[i].len() as u64;
                if lambda > 1 {
                    let per_application = lambda - 1;
                    for &h in &holders[i] {
                        if h != owner {
                            comm[h as usize] += trsvd_applications as u64;
                        }
                    }
                    comm[owner as usize] += per_application * trsvd_applications as u64;
                }
            }
        }

        modes.push(ModeRankStats {
            mode,
            ttmc_nonzeros,
            trsvd_rows,
            comm_volume: comm,
        });
    }

    IterationStats {
        modes,
        num_ranks: p,
        tucker_ranks: ranks,
        trsvd_applications,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{PartitionMethod, SimConfig};
    use datagen::random_tensor;

    fn tensor() -> SparseTensor {
        random_tensor(&[30, 25, 20], 1200, 3)
    }

    fn stats_for(
        grain: Grain,
        method: PartitionMethod,
        p: usize,
    ) -> (SparseTensor, IterationStats) {
        let t = tensor();
        let config = SimConfig::new(p, grain, method, vec![4, 4, 4]);
        let setup = DistributedSetup::build(&t, &config);
        let stats = iteration_stats(&t, &setup, DEFAULT_TRSVD_APPLICATIONS);
        (t, stats)
    }

    #[test]
    fn fine_grain_ttmc_work_identical_across_modes() {
        let (_, stats) = stats_for(Grain::Fine, PartitionMethod::Random, 4);
        // Each rank processes its own nonzeros in every mode.
        for r in 0..4 {
            let w0 = stats.modes[0].ttmc_nonzeros[r];
            for m in 1..3 {
                assert_eq!(stats.modes[m].ttmc_nonzeros[r], w0);
            }
        }
    }

    #[test]
    fn ttmc_work_sums_to_nnz_fine() {
        let (t, stats) = stats_for(Grain::Fine, PartitionMethod::Hypergraph, 4);
        for m in 0..3 {
            let total: u64 = stats.modes[m].ttmc_nonzeros.iter().sum();
            assert_eq!(total, t.nnz() as u64);
        }
    }

    #[test]
    fn ttmc_work_sums_to_nnz_coarse() {
        let (t, stats) = stats_for(Grain::Coarse, PartitionMethod::Block, 4);
        for m in 0..3 {
            let total: u64 = stats.modes[m].ttmc_nonzeros.iter().sum();
            assert_eq!(total, t.nnz() as u64);
        }
    }

    #[test]
    fn coarse_trsvd_rows_equal_nonempty_slices() {
        let (t, stats) = stats_for(Grain::Coarse, PartitionMethod::Block, 4);
        for m in 0..3 {
            let total: u64 = stats.modes[m].trsvd_rows.iter().sum();
            assert_eq!(total, t.nonempty_slices(m) as u64);
        }
    }

    #[test]
    fn fine_trsvd_rows_at_least_nonempty_slices() {
        let (t, stats) = stats_for(Grain::Fine, PartitionMethod::Random, 8);
        for m in 0..3 {
            let total: u64 = stats.modes[m].trsvd_rows.iter().sum();
            assert!(total >= t.nonempty_slices(m) as u64);
        }
    }

    #[test]
    fn single_rank_has_no_communication() {
        let (_, stats) = stats_for(Grain::Fine, PartitionMethod::Random, 1);
        assert_eq!(stats.total_comm_volume(), 0);
        let (_, stats) = stats_for(Grain::Coarse, PartitionMethod::Block, 1);
        assert_eq!(stats.total_comm_volume(), 0);
    }

    #[test]
    fn hypergraph_partition_communicates_less_than_random() {
        let t = random_tensor(&[40, 35, 30], 3000, 11);
        let ranks = vec![4, 4, 4];
        let cfg_hp = SimConfig::new(8, Grain::Fine, PartitionMethod::Hypergraph, ranks.clone());
        let cfg_rd = SimConfig::new(8, Grain::Fine, PartitionMethod::Random, ranks);
        let s_hp = DistributedSetup::build(&t, &cfg_hp);
        let s_rd = DistributedSetup::build(&t, &cfg_rd);
        let st_hp = iteration_stats(&t, &s_hp, DEFAULT_TRSVD_APPLICATIONS);
        let st_rd = iteration_stats(&t, &s_rd, DEFAULT_TRSVD_APPLICATIONS);
        assert!(
            st_hp.total_comm_volume() < st_rd.total_comm_volume(),
            "hp volume {} not below rd volume {}",
            st_hp.total_comm_volume(),
            st_rd.total_comm_volume()
        );
    }

    #[test]
    fn max_and_avg_helpers() {
        let values = vec![1u64, 5, 3];
        assert_eq!(ModeRankStats::max(&values), 5);
        assert!((ModeRankStats::avg(&values) - 3.0).abs() < 1e-12);
        assert_eq!(ModeRankStats::max(&[]), 0);
        assert_eq!(ModeRankStats::avg(&[]), 0.0);
    }

    #[test]
    fn comm_volume_scaled_by_rank_width() {
        // Doubling the Tucker rank of a mode doubles the factor-row part of
        // its communication volume.
        let t = tensor();
        let c1 = SimConfig::new(4, Grain::Coarse, PartitionMethod::Hypergraph, vec![2, 2, 2]);
        let c2 = SimConfig::new(4, Grain::Coarse, PartitionMethod::Hypergraph, vec![4, 4, 4]);
        let s1 = DistributedSetup::build(&t, &c1);
        let s2 = DistributedSetup::build(&t, &c2);
        let st1 = iteration_stats(&t, &s1, 0);
        let st2 = iteration_stats(&t, &s2, 0);
        // Same distribution (coarse partitions ignore the Tucker ranks), so
        // volumes scale exactly by 2.
        assert_eq!(st1.total_comm_volume() * 2, st2.total_comm_volume());
    }
}
