//! Per-mode, per-rank computation and communication statistics of one HOOI
//! iteration — the raw material of the paper's Table III.
//!
//! For every mode `n` and rank `r` the simulator derives, directly from the
//! data distribution (no numerics needed):
//!
//! * `W_TTMc` — the number of nonzeros rank `r` processes in the TTMc of
//!   mode `n` (each costs `2 · Π_{t≠n} R_t` flops),
//! * `W_TRSVD` — the number of (possibly partial) rows of `Y_(n)` the rank
//!   holds, i.e. the rows it multiplies in every MxV/MTxV of the TRSVD
//!   solver; in the fine-grain algorithm rows held by λ ranks count λ times
//!   in total — the redundant work the paper ties to the hypergraph cutsize,
//! * `Comm. vol.` — the words sent plus received by the rank for this mode:
//!   the factor-matrix rows `U_n(i, :)` exchanged after the TRSVD update
//!   (Algorithm 4 line 14) and, for the fine-grain algorithm, the `y`-vector
//!   entries merged inside the TRSVD solver (one word per partially held row
//!   per solver application).

use crate::setup::{DistributedSetup, Grain};
use sptensor::SparseTensor;

/// Statistics of one mode for every rank.
#[derive(Debug, Clone)]
pub struct ModeRankStats {
    /// The mode these statistics describe.
    pub mode: usize,
    /// Nonzeros processed per rank in this mode's TTMc.
    pub ttmc_nonzeros: Vec<u64>,
    /// (Partial) rows of `Y_(mode)` held per rank.
    pub trsvd_rows: Vec<u64>,
    /// Words sent + received per rank for this mode.
    pub comm_volume: Vec<u64>,
    /// Predicted expand volume per rank (words sent + received): the
    /// updated factor rows `U_mode(i, :)` the row's owner ships to every
    /// other rank needing them, `R_mode` words each.  The executor's
    /// measured [`crate::comm::Phase::Expand`] float counters must equal
    /// this, times the number of iterations.
    pub expand_words: Vec<u64>,
    /// Predicted fold volume per rank (words sent + received) under the
    /// executor's bit-exact merge: each non-owner holder of a shared row
    /// ships one `Π_{t≠mode} R_t`-word contribution *per held nonzero* of
    /// that row to the owner, so the owner can replay the global
    /// accumulation order.  Zero for the coarse-grain distribution (rows
    /// are never split).  The executor's measured
    /// [`crate::comm::Phase::Fold`] float counters must equal this, times
    /// the number of iterations.
    pub fold_words: Vec<u64>,
}

impl ModeRankStats {
    /// Maximum over ranks of a per-rank metric.
    pub fn max(values: &[u64]) -> u64 {
        values.iter().copied().max().unwrap_or(0)
    }

    /// Average over ranks of a per-rank metric.
    pub fn avg(values: &[u64]) -> f64 {
        if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<u64>() as f64 / values.len() as f64
        }
    }
}

/// Statistics of a full HOOI iteration (every mode).
#[derive(Debug, Clone)]
pub struct IterationStats {
    /// One entry per mode.
    pub modes: Vec<ModeRankStats>,
    /// Number of ranks.
    pub num_ranks: usize,
    /// Tucker ranks per mode.
    pub tucker_ranks: Vec<usize>,
    /// Number of operator applications assumed for the iterative TRSVD
    /// solver when accounting its merge communication.
    pub trsvd_applications: usize,
}

impl IterationStats {
    /// Total communication volume (words) across all ranks and modes.
    pub fn total_comm_volume(&self) -> u64 {
        self.modes
            .iter()
            .map(|m| m.comm_volume.iter().sum::<u64>())
            .sum()
    }

    /// Maximum per-rank communication volume over all modes.
    pub fn max_comm_volume(&self) -> u64 {
        self.modes
            .iter()
            .map(|m| ModeRankStats::max(&m.comm_volume))
            .max()
            .unwrap_or(0)
    }

    /// Predicted expand words per rank, summed over modes — sent plus
    /// received, per HOOI iteration.
    pub fn expand_words_per_rank(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.num_ranks];
        for m in &self.modes {
            for (o, &w) in out.iter_mut().zip(m.expand_words.iter()) {
                *o += w;
            }
        }
        out
    }

    /// Predicted fold words per rank, summed over modes — sent plus
    /// received, per HOOI iteration.
    pub fn fold_words_per_rank(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.num_ranks];
        for m in &self.modes {
            for (o, &w) in out.iter_mut().zip(m.fold_words.iter()) {
                *o += w;
            }
        }
        out
    }
}

/// Default number of TRSVD operator applications assumed per mode: the
/// Lanczos solver builds a subspace of about `2R + 10` vectors and the paper
/// reports convergence in < 5 restarts, so a small constant multiple of the
/// rank; 20 keeps the accounting conservative.
pub const DEFAULT_TRSVD_APPLICATIONS: usize = 20;

/// Computes the per-mode statistics of one HOOI iteration for a given data
/// distribution.
pub fn iteration_stats(
    tensor: &SparseTensor,
    setup: &DistributedSetup,
    trsvd_applications: usize,
) -> IterationStats {
    let order = tensor.order();
    let p = setup.config.num_ranks;
    let ranks = setup.config.ranks.clone();
    let relations = setup.row_relations(tensor);
    let mut modes = Vec::with_capacity(order);

    for mode in 0..order {
        let dim = tensor.dims()[mode];
        // Holder/needer relations shared with the executor: a rank *needs*
        // row i of U_mode if it processes (in the TTMc of any mode m ≠
        // mode) a nonzero whose mode-`mode` index is i, and *holds* a
        // partial row i of Y_(mode) if it processes a nonzero of slice i in
        // the TTMc of `mode` itself.
        let rel = &relations.modes[mode];

        // W_TTMc and W_TRSVD.
        let mut ttmc_nonzeros = vec![0u64; p];
        for r in 0..p {
            ttmc_nonzeros[r] = setup.nonzeros_for(mode, r).len() as u64;
        }
        let mut trsvd_rows = vec![0u64; p];
        for holders in &rel.holders {
            for &(r, _) in holders {
                trsvd_rows[r as usize] += 1;
            }
        }

        // Communication volume (the paper's model) and the executor-facing
        // expand/fold predictions.
        let mut comm = vec![0u64; p];
        let mut expand = vec![0u64; p];
        let mut fold = vec![0u64; p];
        let r_mode = ranks[mode] as u64;
        let width: u64 = ranks
            .iter()
            .enumerate()
            .filter(|&(t, _)| t != mode)
            .map(|(_, &r)| r as u64)
            .product();
        for i in 0..dim {
            let owner = setup.row_owner[mode][i];
            if owner == u32::MAX {
                continue;
            }
            // Factor-row exchange after the TRSVD update: the owner sends
            // U_mode(i, :) to every other rank that needs it.
            for &need in &rel.needers[i] {
                if need != owner {
                    comm[owner as usize] += r_mode; // send
                    comm[need as usize] += r_mode; // receive
                    expand[owner as usize] += r_mode;
                    expand[need as usize] += r_mode;
                }
            }
            // Fine grain: partial rows of Y_(mode) are merged entry-wise in
            // the TRSVD solver (one word per application per partial copy).
            let lambda = rel.holders[i].len() as u64;
            if setup.config.grain == Grain::Fine && lambda > 1 {
                let per_application = lambda - 1;
                for &(h, _) in &rel.holders[i] {
                    if h != owner {
                        comm[h as usize] += trsvd_applications as u64;
                    }
                }
                comm[owner as usize] += per_application * trsvd_applications as u64;
            }
            // Executor fold: every non-owner holder ships one width-word
            // contribution per held nonzero of the row to the owner.
            if lambda > 1 {
                for &(h, cnt) in &rel.holders[i] {
                    if h != owner {
                        let w = cnt as u64 * width;
                        fold[h as usize] += w;
                        fold[owner as usize] += w;
                    }
                }
            }
        }

        modes.push(ModeRankStats {
            mode,
            ttmc_nonzeros,
            trsvd_rows,
            comm_volume: comm,
            expand_words: expand,
            fold_words: fold,
        });
    }

    IterationStats {
        modes,
        num_ranks: p,
        tucker_ranks: ranks,
        trsvd_applications,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{PartitionMethod, SimConfig};
    use datagen::random_tensor;

    fn tensor() -> SparseTensor {
        random_tensor(&[30, 25, 20], 1200, 3)
    }

    fn stats_for(
        grain: Grain,
        method: PartitionMethod,
        p: usize,
    ) -> (SparseTensor, IterationStats) {
        let t = tensor();
        let config = SimConfig::new(p, grain, method, vec![4, 4, 4]);
        let setup = DistributedSetup::build(&t, &config);
        let stats = iteration_stats(&t, &setup, DEFAULT_TRSVD_APPLICATIONS);
        (t, stats)
    }

    #[test]
    fn fine_grain_ttmc_work_identical_across_modes() {
        let (_, stats) = stats_for(Grain::Fine, PartitionMethod::Random, 4);
        // Each rank processes its own nonzeros in every mode.
        for r in 0..4 {
            let w0 = stats.modes[0].ttmc_nonzeros[r];
            for m in 1..3 {
                assert_eq!(stats.modes[m].ttmc_nonzeros[r], w0);
            }
        }
    }

    #[test]
    fn ttmc_work_sums_to_nnz_fine() {
        let (t, stats) = stats_for(Grain::Fine, PartitionMethod::Hypergraph, 4);
        for m in 0..3 {
            let total: u64 = stats.modes[m].ttmc_nonzeros.iter().sum();
            assert_eq!(total, t.nnz() as u64);
        }
    }

    #[test]
    fn ttmc_work_sums_to_nnz_coarse() {
        let (t, stats) = stats_for(Grain::Coarse, PartitionMethod::Block, 4);
        for m in 0..3 {
            let total: u64 = stats.modes[m].ttmc_nonzeros.iter().sum();
            assert_eq!(total, t.nnz() as u64);
        }
    }

    #[test]
    fn coarse_trsvd_rows_equal_nonempty_slices() {
        let (t, stats) = stats_for(Grain::Coarse, PartitionMethod::Block, 4);
        for m in 0..3 {
            let total: u64 = stats.modes[m].trsvd_rows.iter().sum();
            assert_eq!(total, t.nonempty_slices(m) as u64);
        }
    }

    #[test]
    fn fine_trsvd_rows_at_least_nonempty_slices() {
        let (t, stats) = stats_for(Grain::Fine, PartitionMethod::Random, 8);
        for m in 0..3 {
            let total: u64 = stats.modes[m].trsvd_rows.iter().sum();
            assert!(total >= t.nonempty_slices(m) as u64);
        }
    }

    #[test]
    fn single_rank_has_no_communication() {
        let (_, stats) = stats_for(Grain::Fine, PartitionMethod::Random, 1);
        assert_eq!(stats.total_comm_volume(), 0);
        let (_, stats) = stats_for(Grain::Coarse, PartitionMethod::Block, 1);
        assert_eq!(stats.total_comm_volume(), 0);
    }

    #[test]
    fn hypergraph_partition_communicates_less_than_random() {
        let t = random_tensor(&[40, 35, 30], 3000, 11);
        let ranks = vec![4, 4, 4];
        let cfg_hp = SimConfig::new(8, Grain::Fine, PartitionMethod::Hypergraph, ranks.clone());
        let cfg_rd = SimConfig::new(8, Grain::Fine, PartitionMethod::Random, ranks);
        let s_hp = DistributedSetup::build(&t, &cfg_hp);
        let s_rd = DistributedSetup::build(&t, &cfg_rd);
        let st_hp = iteration_stats(&t, &s_hp, DEFAULT_TRSVD_APPLICATIONS);
        let st_rd = iteration_stats(&t, &s_rd, DEFAULT_TRSVD_APPLICATIONS);
        assert!(
            st_hp.total_comm_volume() < st_rd.total_comm_volume(),
            "hp volume {} not below rd volume {}",
            st_hp.total_comm_volume(),
            st_rd.total_comm_volume()
        );
    }

    #[test]
    fn coarse_grain_predicts_no_fold_and_expand_equals_comm() {
        // Coarse-grain rows are never split, so the executor folds nothing,
        // and the paper's comm volume is exactly the factor-row exchange.
        let (_, stats) = stats_for(Grain::Coarse, PartitionMethod::Hypergraph, 4);
        for m in &stats.modes {
            assert!(m.fold_words.iter().all(|&w| w == 0));
            assert_eq!(m.expand_words, m.comm_volume);
        }
    }

    #[test]
    fn fold_sends_match_fold_receives_globally() {
        let (_, stats) = stats_for(Grain::Fine, PartitionMethod::Random, 8);
        // Every predicted fold word is sent once and received once, so the
        // per-rank totals (send + receive) sum to an even number, and the
        // single-rank case predicts zero.
        let total: u64 = stats.fold_words_per_rank().iter().sum();
        assert_eq!(total % 2, 0);
        assert!(total > 0, "8 random ranks must split at least one row");
        let (_, solo) = stats_for(Grain::Fine, PartitionMethod::Random, 1);
        assert_eq!(solo.fold_words_per_rank().iter().sum::<u64>(), 0);
        assert_eq!(solo.expand_words_per_rank().iter().sum::<u64>(), 0);
    }

    #[test]
    fn max_and_avg_helpers() {
        let values = vec![1u64, 5, 3];
        assert_eq!(ModeRankStats::max(&values), 5);
        assert!((ModeRankStats::avg(&values) - 3.0).abs() < 1e-12);
        assert_eq!(ModeRankStats::max(&[]), 0);
        assert_eq!(ModeRankStats::avg(&[]), 0.0);
    }

    #[test]
    fn comm_volume_scaled_by_rank_width() {
        // Doubling the Tucker rank of a mode doubles the factor-row part of
        // its communication volume.
        let t = tensor();
        let c1 = SimConfig::new(4, Grain::Coarse, PartitionMethod::Hypergraph, vec![2, 2, 2]);
        let c2 = SimConfig::new(4, Grain::Coarse, PartitionMethod::Hypergraph, vec![4, 4, 4]);
        let s1 = DistributedSetup::build(&t, &c1);
        let s2 = DistributedSetup::build(&t, &c2);
        let st1 = iteration_stats(&t, &s1, 0);
        let st2 = iteration_stats(&t, &s2, 0);
        // Same distribution (coarse partitions ignore the Tucker ranks), so
        // volumes scale exactly by 2.
        assert_eq!(st1.total_comm_volume() * 2, st2.total_comm_volume());
    }
}
