//! Analytic machine model used to convert measured work and communication
//! volumes into time.
//!
//! The parameters default to an IBM BlueGene/Q-like node (16 PowerPC A2
//! cores at 1.6 GHz, 4-way SMT of which the paper uses 2 threads/core,
//! ~28 GB/s usable memory bandwidth, 5-D torus with ~1.8 GB/s per-node
//! effective injection bandwidth, microsecond-scale latency).  Absolute
//! numbers are *not* expected to reproduce the paper's seconds; the model's
//! job is to preserve the ratios that shape the tables:
//!
//! * TTMc is latency/compute bound and scales with threads (SMT helps),
//! * the TRSVD MxV/MTxV is memory-bandwidth bound and stops scaling once
//!   the node bandwidth is saturated (the paper's Table V discussion),
//! * communication cost is `volume / bandwidth + messages · latency`.

/// Cost-model parameters for one node of the simulated machine.
#[derive(Debug, Clone)]
pub struct MachineModel {
    /// Hardware cores per node.
    pub cores_per_node: usize,
    /// Effective flop rate of one thread executing the irregular,
    /// latency-bound TTMc kernel (flops/s).
    pub ttmc_flops_per_thread: f64,
    /// Relative throughput gain of running a second SMT thread on a core
    /// for the latency-bound TTMc (1.0 = no gain, 2.0 = perfect).
    pub smt_gain: f64,
    /// Effective flop rate of one thread executing the dense, streaming
    /// TRSVD matrix-vector kernels (flops/s).
    pub trsvd_flops_per_thread: f64,
    /// Node memory bandwidth available to the TRSVD kernels (bytes/s);
    /// caps the aggregate TRSVD rate regardless of thread count.
    pub memory_bandwidth: f64,
    /// Effective per-node network injection bandwidth (bytes/s).
    pub network_bandwidth: f64,
    /// Per-message network latency (seconds).
    pub network_latency: f64,
    /// Effective flop rate for the small dense BLAS-3 core-tensor product
    /// per node (flops/s).
    pub gemm_flops_per_node: f64,
}

impl MachineModel {
    /// BlueGene/Q-like defaults (see the module documentation).
    pub fn bluegene_q() -> Self {
        MachineModel {
            cores_per_node: 16,
            // Irregular gather/scatter dominated: far below the 12.8 Gflop/s
            // peak of an A2 core.
            ttmc_flops_per_thread: 1.5e8,
            smt_gain: 1.45,
            trsvd_flops_per_thread: 6.0e8,
            memory_bandwidth: 2.8e10,
            network_bandwidth: 1.8e9,
            network_latency: 3.0e-6,
            gemm_flops_per_node: 8.0e10,
        }
    }

    /// Effective number of "TTMc threads": threads beyond one per core only
    /// contribute the SMT gain fraction.
    pub fn effective_ttmc_threads(&self, threads: usize) -> f64 {
        let threads = threads.max(1);
        if threads <= self.cores_per_node {
            threads as f64
        } else {
            let extra = (threads - self.cores_per_node).min(self.cores_per_node) as f64;
            self.cores_per_node as f64 + extra * (self.smt_gain - 1.0)
        }
    }

    /// Time for a rank to execute `flops` of TTMc work with `threads`
    /// threads.
    pub fn ttmc_time(&self, flops: f64, threads: usize) -> f64 {
        flops / (self.ttmc_flops_per_thread * self.effective_ttmc_threads(threads))
    }

    /// Time for a rank to execute `flops` of TRSVD MxV/MTxV work streaming
    /// `bytes` from memory with `threads` threads: the maximum of the
    /// compute bound and the node bandwidth bound.
    pub fn trsvd_time(&self, flops: f64, bytes: f64, threads: usize) -> f64 {
        let threads = threads.max(1) as f64;
        let compute =
            flops / (self.trsvd_flops_per_thread * threads.min(self.cores_per_node as f64));
        let bandwidth = bytes / self.memory_bandwidth;
        compute.max(bandwidth)
    }

    /// Time to transfer `bytes` in `messages` point-to-point messages from
    /// one rank (its injection port is the bottleneck).
    pub fn comm_time(&self, bytes: f64, messages: usize) -> f64 {
        bytes / self.network_bandwidth + messages as f64 * self.network_latency
    }

    /// Time for an all-reduce of `bytes` over `ranks` ranks (logarithmic
    /// latency term plus two passes of the payload).
    pub fn allreduce_time(&self, bytes: f64, ranks: usize) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        let rounds = (ranks as f64).log2().ceil();
        2.0 * bytes / self.network_bandwidth + rounds * self.network_latency
    }

    /// Time for the dense core-tensor GEMM of `flops` on one node.
    pub fn gemm_time(&self, flops: f64) -> f64 {
        flops / self.gemm_flops_per_node
    }
}

impl Default for MachineModel {
    fn default() -> Self {
        MachineModel::bluegene_q()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_saturate_with_smt() {
        let m = MachineModel::bluegene_q();
        assert_eq!(m.effective_ttmc_threads(1), 1.0);
        assert_eq!(m.effective_ttmc_threads(16), 16.0);
        let t32 = m.effective_ttmc_threads(32);
        assert!(t32 > 16.0 && t32 < 32.0);
        // Threads beyond 2/core give nothing more.
        assert_eq!(m.effective_ttmc_threads(64), t32);
    }

    #[test]
    fn ttmc_time_scales_with_threads() {
        let m = MachineModel::bluegene_q();
        let t1 = m.ttmc_time(1e9, 1);
        let t16 = m.ttmc_time(1e9, 16);
        let t32 = m.ttmc_time(1e9, 32);
        assert!(t16 < t1 / 10.0);
        assert!(t32 < t16);
    }

    #[test]
    fn trsvd_time_hits_bandwidth_wall() {
        let m = MachineModel::bluegene_q();
        // Plenty of flops per byte: compute bound, scales with threads.
        let c1 = m.trsvd_time(1e10, 1e6, 1);
        let c16 = m.trsvd_time(1e10, 1e6, 16);
        assert!(c16 < c1);
        // Few flops per byte: bandwidth bound, does not scale.
        let b8 = m.trsvd_time(1e6, 1e10, 8);
        let b32 = m.trsvd_time(1e6, 1e10, 32);
        assert!((b8 - b32).abs() < 1e-12);
    }

    #[test]
    fn comm_time_has_latency_and_bandwidth_terms() {
        let m = MachineModel::bluegene_q();
        let small = m.comm_time(8.0, 1);
        assert!(small >= m.network_latency);
        let big = m.comm_time(1.8e9, 1);
        assert!(big > 0.9 && big < 1.1);
    }

    #[test]
    fn allreduce_zero_for_single_rank() {
        let m = MachineModel::bluegene_q();
        assert_eq!(m.allreduce_time(1e6, 1), 0.0);
        assert!(m.allreduce_time(1e6, 256) > 0.0);
    }

    #[test]
    fn gemm_time_positive() {
        let m = MachineModel::bluegene_q();
        assert!(m.gemm_time(1e9) > 0.0);
    }
}
