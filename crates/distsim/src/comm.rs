//! The message-passing layer of the distributed executor.
//!
//! [`Communicator`] is the MPI-shaped contract the executor in
//! [`crate::exec`] is written against: every rank knows its id, exchanges
//! typed messages point-to-point ([`Communicator::send`] /
//! [`Communicator::recv`]), and the collectives the algorithm needs
//! ([`Communicator::allreduce_sum`], [`Communicator::barrier`],
//! [`Communicator::broadcast`]) are *provided methods built on the
//! point-to-point primitives*, so every backend gets them — and their
//! deterministic, rank-ordered reduction trees — for free.
//!
//! Two backends prove the trait boundary is honest:
//!
//! * [`channel_world`] — every rank is a long-lived thread in this process
//!   and messages travel over `std::sync::mpsc` channels.  This is the fast
//!   backend the tests and the default executor use.
//! * [`tcp_world`] — every rank owns real loopback TCP sockets to each
//!   peer; messages are framed, serialized to bytes, and travel through the
//!   kernel.  Nothing is shared except what crosses a socket, so an
//!   executor that is correct on this backend performs the algorithm's
//!   actual communication, not a simulation of it.
//!
//! Every [`Endpoint`] counts the words and messages it moves, classified by
//! protocol [`Phase`] (expand, fold, gather, scatter, control).  The
//! measured counters are what [`crate::exec::execute_hooi`] reports and
//! what the tests cross-validate against the analytic predictions of
//! [`crate::stats::iteration_stats`] — turning the cost model into a tested
//! artifact.
//!
//! Message delivery between one (sender, receiver) pair is ordered on both
//! backends (FIFO channels; TCP byte streams), and the executor's protocol
//! is deterministic, so `recv` can assert the tag it expects: a mismatch is
//! a protocol bug, not a runtime condition to handle.

use std::io::{BufWriter, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// Which part of the executor's protocol a message belongs to.  Counters
/// are kept per phase so measured traffic can be compared against the cost
/// model phase by phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Partial TTMc contributions sent from the ranks holding nonzeros of a
    /// row to the row's owner (Algorithm 4's fold).
    Fold,
    /// Owned, fully reduced TTMc rows sent to the root for the TRSVD step
    /// (an artifact of centralizing the TRSVD; see the `exec` docs).
    Gather,
    /// Updated factor rows sent from the root back to their owners after
    /// the TRSVD step.
    Scatter,
    /// Factor rows sent from their owner to every rank that needs them for
    /// its local TTMc (Algorithm 4's expand, line 14).
    Expand,
    /// Everything else: convergence flags, collectives, initialization.
    Control,
}

impl Phase {
    /// All phases, in counter-array order.
    pub const ALL: [Phase; 5] = [
        Phase::Fold,
        Phase::Gather,
        Phase::Scatter,
        Phase::Expand,
        Phase::Control,
    ];

    fn index(self) -> usize {
        match self {
            Phase::Fold => 0,
            Phase::Gather => 1,
            Phase::Scatter => 2,
            Phase::Expand => 3,
            Phase::Control => 4,
        }
    }

    fn from_index(i: u64) -> Phase {
        Phase::ALL[i as usize % Phase::ALL.len()]
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Fold => "fold",
            Phase::Gather => "gather",
            Phase::Scatter => "scatter",
            Phase::Expand => "expand",
            Phase::Control => "control",
        }
    }
}

/// A message tag: protocol phase, tensor mode, and a step counter (the HOOI
/// iteration, or a collective's sequence number).  Tags make the protocol
/// self-checking — `recv` asserts the tag it expects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tag {
    /// Protocol phase of the message.
    pub phase: Phase,
    /// Tensor mode the message concerns (0 for phase-global messages).
    pub mode: u16,
    /// Iteration / sequence number.
    pub step: u32,
}

impl Tag {
    /// Builds a tag.
    pub fn new(phase: Phase, mode: usize, step: u32) -> Tag {
        Tag {
            phase,
            mode: mode as u16,
            step,
        }
    }

    fn encode(self) -> u64 {
        ((self.phase.index() as u64) << 48) | ((self.mode as u64) << 32) | self.step as u64
    }

    fn decode(raw: u64) -> Tag {
        Tag {
            phase: Phase::from_index(raw >> 48),
            mode: ((raw >> 32) & 0xffff) as u16,
            step: (raw & 0xffff_ffff) as u32,
        }
    }
}

/// A typed message: a tag plus an integer section (row indices, counts,
/// nonzero ids) and a float section (factor rows, TTMc contributions).
/// Both backends transfer it losslessly — the TCP backend round-trips the
/// exact `f64` bit patterns.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// The tag the receiver will be asserted against.
    pub tag: Tag,
    /// Integer payload.
    pub ints: Vec<u64>,
    /// Floating-point payload.
    pub floats: Vec<f64>,
}

impl Message {
    /// An empty message carrying only its tag.
    pub fn empty(tag: Tag) -> Message {
        Message {
            tag,
            ints: Vec::new(),
            floats: Vec::new(),
        }
    }
}

/// Traffic counters for one protocol phase, from one rank's point of view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCounters {
    /// Messages sent.
    pub messages_sent: u64,
    /// Messages received.
    pub messages_received: u64,
    /// `f64` words sent.
    pub floats_sent: u64,
    /// `f64` words received.
    pub floats_received: u64,
    /// `u64` words sent.
    pub ints_sent: u64,
    /// `u64` words received.
    pub ints_received: u64,
}

impl PhaseCounters {
    /// Float words moved in either direction.
    pub fn floats_transferred(&self) -> u64 {
        self.floats_sent + self.floats_received
    }

    /// Total payload bytes moved in either direction (8 bytes per word).
    pub fn bytes_transferred(&self) -> u64 {
        8 * (self.floats_sent + self.floats_received + self.ints_sent + self.ints_received)
    }
}

/// Measured communication of one rank, classified by [`Phase`].  This is
/// the executor's observational counterpart to the analytic per-rank
/// volumes of [`crate::stats::iteration_stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommCounters {
    phases: [PhaseCounters; Phase::ALL.len()],
}

impl CommCounters {
    /// The counters of one phase.
    pub fn phase(&self, phase: Phase) -> &PhaseCounters {
        &self.phases[phase.index()]
    }

    /// Total messages sent plus received across all phases.
    pub fn messages_total(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.messages_sent + p.messages_received)
            .sum()
    }

    /// Total payload bytes moved across all phases.
    pub fn bytes_total(&self) -> u64 {
        self.phases.iter().map(|p| p.bytes_transferred()).sum()
    }

    /// Element-wise sum of per-rank counters (cluster totals; every
    /// send is matched by a receive, so totals count each word twice).
    pub fn merged(all: &[CommCounters]) -> CommCounters {
        let mut out = CommCounters::default();
        for c in all {
            for (o, p) in out.phases.iter_mut().zip(c.phases.iter()) {
                o.messages_sent += p.messages_sent;
                o.messages_received += p.messages_received;
                o.floats_sent += p.floats_sent;
                o.floats_received += p.floats_received;
                o.ints_sent += p.ints_sent;
                o.ints_received += p.ints_received;
            }
        }
        out
    }

    fn record_send(&mut self, msg: &Message) {
        let p = &mut self.phases[msg.tag.phase.index()];
        p.messages_sent += 1;
        p.floats_sent += msg.floats.len() as u64;
        p.ints_sent += msg.ints.len() as u64;
    }

    fn record_recv(&mut self, msg: &Message) {
        let p = &mut self.phases[msg.tag.phase.index()];
        p.messages_received += 1;
        p.floats_received += msg.floats.len() as u64;
        p.ints_received += msg.ints.len() as u64;
    }
}

/// The raw point-to-point transport a backend implements; [`Endpoint`]
/// wraps it with counting and the collective algorithms.
pub trait Transport: Send {
    /// This endpoint's rank id.
    fn rank(&self) -> usize;
    /// Number of ranks in the world.
    fn num_ranks(&self) -> usize;
    /// Delivers a message to `to` (must not be this rank).  May block only
    /// on backend flow control, never on the receiver's progress.
    fn send_raw(&mut self, to: usize, msg: &Message);
    /// Blocks until the next message from `from` arrives.
    ///
    /// # Panics
    /// Panics if the peer disconnected (a rank died mid-protocol).
    fn recv_raw(&mut self, from: usize) -> Message;
}

/// A counted communicator over some [`Transport`] — the concrete type the
/// executor's rank loops hold.
pub struct Endpoint<T: Transport> {
    transport: T,
    counters: CommCounters,
}

impl<T: Transport> Endpoint<T> {
    /// Wraps a transport with zeroed counters.
    pub fn new(transport: T) -> Self {
        Endpoint {
            transport,
            counters: CommCounters::default(),
        }
    }
}

/// What the executor requires of a communication backend: rank identity,
/// counted point-to-point messaging, and the derived collectives.
///
/// The collectives are deliberately *default methods over `send`/`recv`*:
/// their reduction order is fixed (ascending rank at the root), so a
/// collective's floating-point result is bit-identical on every backend
/// and at every timing.
pub trait Communicator: Send {
    /// This rank's id (0-based; rank 0 is the executor's root).
    fn rank(&self) -> usize;
    /// Number of ranks in the world.
    fn num_ranks(&self) -> usize;
    /// Sends a message to rank `to`, counting its words.
    fn send(&mut self, to: usize, msg: &Message);
    /// Receives the next message from rank `from`, asserting it carries
    /// `expected` — the executor's protocol is deterministic, so any other
    /// tag is a bug.
    fn recv(&mut self, from: usize, expected: Tag) -> Message;
    /// The traffic this rank has moved so far.
    fn counters(&self) -> &CommCounters;

    /// Synchronizes all ranks: nobody returns until everyone has entered.
    /// Implemented as a gather-to-root plus release fan-out.
    fn barrier(&mut self, step: u32) {
        let tag = Tag::new(Phase::Control, 0, step);
        let me = self.rank();
        let p = self.num_ranks();
        if me == 0 {
            for src in 1..p {
                self.recv(src, tag);
            }
            for dst in 1..p {
                self.send(dst, &Message::empty(tag));
            }
        } else {
            self.send(0, &Message::empty(tag));
            self.recv(0, tag);
        }
    }

    /// Element-wise global sum of `buf` across all ranks; every rank ends
    /// with the same result.  The root accumulates contributions in
    /// ascending rank order, so the floating-point result is deterministic
    /// and backend-independent.
    fn allreduce_sum(&mut self, step: u32, buf: &mut [f64]) {
        let tag = Tag::new(Phase::Control, 0, step);
        let me = self.rank();
        let p = self.num_ranks();
        if me == 0 {
            for src in 1..p {
                let part = self.recv(src, tag);
                assert_eq!(part.floats.len(), buf.len(), "allreduce length mismatch");
                for (b, &x) in buf.iter_mut().zip(part.floats.iter()) {
                    *b += x;
                }
            }
            for dst in 1..p {
                self.send(
                    dst,
                    &Message {
                        tag,
                        ints: Vec::new(),
                        floats: buf.to_vec(),
                    },
                );
            }
        } else {
            self.send(
                0,
                &Message {
                    tag,
                    ints: Vec::new(),
                    floats: buf.to_vec(),
                },
            );
            let result = self.recv(0, tag);
            buf.copy_from_slice(&result.floats);
        }
    }

    /// Broadcasts `msg` from `root` to every rank; returns the payload
    /// everywhere (non-root callers pass anything — it is replaced).
    fn broadcast(&mut self, root: usize, msg: Message) -> Message {
        let me = self.rank();
        let p = self.num_ranks();
        if me == root {
            for dst in 0..p {
                if dst != root {
                    self.send(dst, &msg);
                }
            }
            msg
        } else {
            self.recv(root, msg.tag)
        }
    }
}

impl<T: Transport> Communicator for Endpoint<T> {
    fn rank(&self) -> usize {
        self.transport.rank()
    }

    fn num_ranks(&self) -> usize {
        self.transport.num_ranks()
    }

    fn send(&mut self, to: usize, msg: &Message) {
        assert_ne!(to, self.rank(), "self-sends are a protocol bug");
        self.counters.record_send(msg);
        self.transport.send_raw(to, msg);
    }

    fn recv(&mut self, from: usize, expected: Tag) -> Message {
        let msg = self.transport.recv_raw(from);
        assert_eq!(
            msg.tag,
            expected,
            "rank {}: unexpected tag from rank {from}",
            self.rank()
        );
        self.counters.record_recv(&msg);
        msg
    }

    fn counters(&self) -> &CommCounters {
        &self.counters
    }
}

// ---------------------------------------------------------------------------
// Channel backend
// ---------------------------------------------------------------------------

/// In-process transport: one FIFO channel per ordered rank pair.
pub struct ChannelTransport {
    rank: usize,
    num_ranks: usize,
    senders: Vec<Option<Sender<Message>>>,
    receivers: Vec<Option<Receiver<Message>>>,
}

impl Transport for ChannelTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    fn send_raw(&mut self, to: usize, msg: &Message) {
        self.senders[to]
            .as_ref()
            .expect("no channel to self")
            .send(msg.clone())
            .expect("peer rank terminated early (receiver dropped)");
    }

    fn recv_raw(&mut self, from: usize) -> Message {
        self.receivers[from]
            .as_ref()
            .expect("no channel from self")
            .recv()
            .unwrap_or_else(|_| {
                panic!(
                    "rank {}: peer rank {from} terminated early (channel closed)",
                    self.rank
                )
            })
    }
}

/// Builds the in-process channel world: one counted endpoint per rank, all
/// pairs connected by FIFO channels.  Endpoints are handed to the rank
/// threads; dropping one mid-protocol makes blocked peers panic instead of
/// hanging.
pub fn channel_world(num_ranks: usize) -> Vec<Endpoint<ChannelTransport>> {
    assert!(num_ranks > 0);
    // mailboxes[dst][src] = receiver of the src -> dst channel.
    let mut senders: Vec<Vec<Option<Sender<Message>>>> = (0..num_ranks)
        .map(|_| (0..num_ranks).map(|_| None).collect())
        .collect();
    let mut mailboxes: Vec<Vec<Option<Receiver<Message>>>> = (0..num_ranks)
        .map(|_| (0..num_ranks).map(|_| None).collect())
        .collect();
    for src in 0..num_ranks {
        for dst in 0..num_ranks {
            if src == dst {
                continue;
            }
            let (tx, rx) = channel();
            senders[src][dst] = Some(tx);
            mailboxes[dst][src] = Some(rx);
        }
    }
    let mut world = Vec::with_capacity(num_ranks);
    for (rank, (senders, receivers)) in senders.drain(..).zip(mailboxes.drain(..)).enumerate() {
        world.push(Endpoint::new(ChannelTransport {
            rank,
            num_ranks,
            senders,
            receivers,
        }));
    }
    world
}

// ---------------------------------------------------------------------------
// TCP backend
// ---------------------------------------------------------------------------

const FRAME_HEADER_BYTES: usize = 24;

fn write_frame(writer: &mut impl Write, msg: &Message) -> std::io::Result<()> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    header[..8].copy_from_slice(&msg.tag.encode().to_le_bytes());
    header[8..16].copy_from_slice(&(msg.ints.len() as u64).to_le_bytes());
    header[16..24].copy_from_slice(&(msg.floats.len() as u64).to_le_bytes());
    writer.write_all(&header)?;
    for &v in &msg.ints {
        writer.write_all(&v.to_le_bytes())?;
    }
    for &v in &msg.floats {
        writer.write_all(&v.to_bits().to_le_bytes())?;
    }
    writer.flush()
}

fn read_frame(reader: &mut impl Read) -> std::io::Result<Message> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    reader.read_exact(&mut header)?;
    let tag = Tag::decode(u64::from_le_bytes(header[..8].try_into().unwrap()));
    let n_ints = u64::from_le_bytes(header[8..16].try_into().unwrap()) as usize;
    let n_floats = u64::from_le_bytes(header[16..24].try_into().unwrap()) as usize;
    let mut bytes = vec![0u8; 8 * (n_ints + n_floats)];
    reader.read_exact(&mut bytes)?;
    let ints = bytes[..8 * n_ints]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let floats = bytes[8 * n_ints..]
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
        .collect();
    Ok(Message { tag, ints, floats })
}

/// Loopback-socket transport: one TCP connection per rank pair, with a
/// reader thread per peer draining frames into an in-memory mailbox.
///
/// The reader threads are what make the protocol deadlock-free without an
/// asynchronous runtime: a peer's inbound stream is always being drained,
/// so `send_raw` can block on the kernel's socket buffer at most briefly,
/// never on the peer reaching its matching `recv`.
pub struct TcpTransport {
    rank: usize,
    num_ranks: usize,
    writers: Vec<Option<BufWriter<TcpStream>>>,
    mailboxes: Vec<Option<Receiver<Message>>>,
    sockets: Vec<Option<TcpStream>>,
    readers: Vec<JoinHandle<()>>,
}

impl Transport for TcpTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    fn send_raw(&mut self, to: usize, msg: &Message) {
        let writer = self.writers[to].as_mut().expect("no socket to self");
        write_frame(writer, msg).unwrap_or_else(|e| {
            panic!("rank {}: socket write to rank {to} failed: {e}", self.rank)
        });
    }

    fn recv_raw(&mut self, from: usize) -> Message {
        self.mailboxes[from]
            .as_ref()
            .expect("no socket from self")
            .recv()
            .unwrap_or_else(|_| {
                panic!(
                    "rank {}: peer rank {from} closed its socket mid-protocol",
                    self.rank
                )
            })
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        for s in self.sockets.iter().flatten() {
            let _ = s.shutdown(Shutdown::Both);
        }
        for h in self.readers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Builds a world of `num_ranks` peers connected pairwise over loopback
/// TCP.  Fails with the underlying I/O error when the environment forbids
/// sockets (sandboxes); callers probe with [`loopback_tcp_available`] and
/// fall back to [`channel_world`].
pub fn tcp_world(num_ranks: usize) -> std::io::Result<Vec<Endpoint<TcpTransport>>> {
    assert!(num_ranks > 0);
    let listeners: Vec<TcpListener> = (0..num_ranks)
        .map(|_| TcpListener::bind("127.0.0.1:0"))
        .collect::<std::io::Result<_>>()?;
    let addrs: Vec<_> = listeners
        .iter()
        .map(|l| l.local_addr())
        .collect::<std::io::Result<_>>()?;

    // streams[a][b] = rank a's endpoint of the (a, b) connection.  The
    // constructor runs before any rank thread exists, so connect/accept
    // pairs match deterministically.
    let mut streams: Vec<Vec<Option<TcpStream>>> = (0..num_ranks)
        .map(|_| (0..num_ranks).map(|_| None).collect())
        .collect();
    for i in 0..num_ranks {
        for j in (i + 1)..num_ranks {
            let outgoing = TcpStream::connect(addrs[i])?; // rank j -> rank i
            let (incoming, _) = listeners[i].accept()?; // rank i's end
            outgoing.set_nodelay(true)?;
            incoming.set_nodelay(true)?;
            streams[j][i] = Some(outgoing);
            streams[i][j] = Some(incoming);
        }
    }

    let mut world = Vec::with_capacity(num_ranks);
    for (rank, peer_streams) in streams.drain(..).enumerate() {
        let mut writers = Vec::with_capacity(num_ranks);
        let mut mailboxes = Vec::with_capacity(num_ranks);
        let mut sockets = Vec::with_capacity(num_ranks);
        let mut readers = Vec::new();
        for stream in peer_streams {
            match stream {
                None => {
                    writers.push(None);
                    mailboxes.push(None);
                    sockets.push(None);
                }
                Some(stream) => {
                    let mut read_half = stream.try_clone()?;
                    let (tx, rx) = channel();
                    readers.push(std::thread::spawn(move || {
                        while let Ok(msg) = read_frame(&mut read_half) {
                            if tx.send(msg).is_err() {
                                break;
                            }
                        }
                    }));
                    sockets.push(Some(stream.try_clone()?));
                    writers.push(Some(BufWriter::new(stream)));
                    mailboxes.push(Some(rx));
                }
            }
        }
        world.push(Endpoint::new(TcpTransport {
            rank,
            num_ranks,
            writers,
            mailboxes,
            sockets,
            readers,
        }));
    }
    Ok(world)
}

/// Whether this environment allows binding loopback TCP sockets.  CI and
/// sandboxes without network namespaces return `false`; callers should
/// skip the TCP backend (and say so) rather than fail.
pub fn loopback_tcp_available() -> bool {
    TcpListener::bind("127.0.0.1:0").is_ok()
}

/// Which [`Communicator`] backend the executor should run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommBackend {
    /// In-process channels between rank threads (the default: fastest, and
    /// available everywhere).
    #[default]
    Channel,
    /// Real loopback TCP sockets between rank threads; requires
    /// [`loopback_tcp_available`].
    Tcp,
}

impl CommBackend {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            CommBackend::Channel => "channel",
            CommBackend::Tcp => "tcp",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(step: u32) -> Tag {
        Tag::new(Phase::Control, 0, step)
    }

    /// Runs `body(rank_endpoint)` on every rank concurrently; returns the
    /// per-rank results in rank order.
    fn run_world<C, R, F>(world: Vec<C>, body: F) -> Vec<R>
    where
        C: Communicator + 'static,
        R: Send + 'static,
        F: Fn(C) -> R + Sync,
    {
        let body = &body;
        std::thread::scope(|s| {
            let handles: Vec<_> = world
                .into_iter()
                .map(|comm| s.spawn(move || body(comm)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    fn ring_exchange<C: Communicator>(mut comm: C) -> (Vec<f64>, CommCounters) {
        let me = comm.rank();
        let p = comm.num_ranks();
        let next = (me + 1) % p;
        let prev = (me + p - 1) % p;
        let msg = Message {
            tag: tag(1),
            ints: vec![me as u64],
            floats: vec![me as f64, -(me as f64)],
        };
        comm.send(next, &msg);
        let got = comm.recv(prev, tag(1));
        assert_eq!(got.ints, vec![prev as u64]);
        let mut sums = vec![me as f64 + 1.0];
        comm.allreduce_sum(2, &mut sums);
        comm.barrier(3);
        (sums, comm.counters().clone())
    }

    #[test]
    fn channel_ring_allreduce_and_counters() {
        let p = 4;
        let results = run_world(channel_world(p), ring_exchange);
        let expected: f64 = (1..=p).map(|r| r as f64).sum();
        for (sums, _) in &results {
            assert_eq!(sums, &vec![expected]);
        }
        let counters: Vec<CommCounters> = results.iter().map(|(_, c)| c.clone()).collect();
        let merged = CommCounters::merged(&counters);
        // Every send has a matching receive, phase by phase.
        for phase in Phase::ALL {
            let ph = merged.phase(phase);
            assert_eq!(ph.messages_sent, ph.messages_received, "{}", phase.label());
            assert_eq!(ph.floats_sent, ph.floats_received, "{}", phase.label());
            assert_eq!(ph.ints_sent, ph.ints_received, "{}", phase.label());
        }
        // The ring itself moved p messages of 2 floats + 1 int... under
        // Control, mixed with the collectives; just check nonzero totals.
        assert!(merged.messages_total() > 0);
        assert!(merged.bytes_total() > 0);
    }

    #[test]
    fn tcp_ring_matches_channel_ring() {
        if !loopback_tcp_available() {
            eprintln!("skipping: loopback TCP unavailable in this environment");
            return;
        }
        let p = 3;
        let tcp = run_world(tcp_world(p).expect("tcp world"), ring_exchange);
        let chan = run_world(channel_world(p), ring_exchange);
        for ((ts, tc), (cs, cc)) in tcp.iter().zip(chan.iter()) {
            assert_eq!(ts, cs, "allreduce results must agree across backends");
            assert_eq!(tc, cc, "counters must agree across backends");
        }
    }

    #[test]
    fn tcp_roundtrips_exact_bit_patterns() {
        if !loopback_tcp_available() {
            eprintln!("skipping: loopback TCP unavailable in this environment");
            return;
        }
        let world = tcp_world(2).expect("tcp world");
        let payload = vec![0.1, -0.0, f64::MIN_POSITIVE, 1.0 / 3.0, 6.02214076e23];
        let sent = payload.clone();
        let results = run_world(world, move |mut comm| {
            if comm.rank() == 0 {
                comm.send(
                    1,
                    &Message {
                        tag: tag(7),
                        ints: vec![u64::MAX, 0, 42],
                        floats: sent.clone(),
                    },
                );
                Vec::new()
            } else {
                let got = comm.recv(0, tag(7));
                assert_eq!(got.ints, vec![u64::MAX, 0, 42]);
                got.floats
            }
        });
        assert_eq!(
            results[1].iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            payload.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn broadcast_reaches_every_rank() {
        let results = run_world(channel_world(3), |mut comm| {
            let msg = if comm.rank() == 1 {
                Message {
                    tag: tag(9),
                    ints: vec![11, 22],
                    floats: vec![3.5],
                }
            } else {
                Message::empty(tag(9))
            };
            comm.broadcast(1, msg)
        });
        for r in &results {
            assert_eq!(r.ints, vec![11, 22]);
            assert_eq!(r.floats, vec![3.5]);
        }
    }

    #[test]
    fn allreduce_is_rank_order_deterministic() {
        // The reduction at the root runs in ascending rank order, so the
        // result equals the sequential left-to-right sum regardless of
        // which rank's thread runs first.
        let p = 5;
        let contributions: Vec<f64> = (0..p).map(|r| 0.1 * (r as f64 + 1.0)).collect();
        let expected = contributions.iter().fold(0.0, |acc, &x| acc + x);
        for _ in 0..10 {
            let contributions = contributions.clone();
            let results = run_world(channel_world(p), move |mut comm| {
                let mut buf = vec![contributions[comm.rank()]];
                comm.allreduce_sum(1, &mut buf);
                buf[0]
            });
            for r in &results {
                assert_eq!(r.to_bits(), expected.to_bits());
            }
        }
    }

    #[test]
    fn single_rank_world_needs_no_peers() {
        let results = run_world(channel_world(1), |mut comm| {
            comm.barrier(1);
            let mut buf = vec![2.5, -1.0];
            comm.allreduce_sum(2, &mut buf);
            let b = comm.broadcast(
                0,
                Message {
                    tag: tag(3),
                    ints: vec![5],
                    floats: vec![],
                },
            );
            (buf, b.ints)
        });
        assert_eq!(results[0].0, vec![2.5, -1.0]);
        assert_eq!(results[0].1, vec![5]);
    }

    #[test]
    fn tag_encoding_roundtrips() {
        for phase in Phase::ALL {
            let t = Tag::new(phase, 3, 77);
            assert_eq!(Tag::decode(t.encode()), t);
        }
    }
}
