//! The message-passing layer of the distributed executor.
//!
//! [`Communicator`] is the MPI-shaped contract the executor in
//! [`crate::exec`] is written against: every rank knows its id, exchanges
//! typed messages point-to-point ([`Communicator::send`] /
//! [`Communicator::recv`]), and the collectives the algorithm needs
//! ([`Communicator::allreduce_sum`], [`Communicator::barrier`],
//! [`Communicator::broadcast`]) are *provided methods built on the
//! point-to-point primitives*, so every backend gets them — and their
//! deterministic, rank-ordered reduction trees — for free.
//!
//! Two backends prove the trait boundary is honest:
//!
//! * [`channel_world`] — every rank is a long-lived thread in this process
//!   and messages travel over `std::sync::mpsc` channels.  This is the fast
//!   backend the tests and the default executor use.
//! * [`tcp_world`] — every rank owns real loopback TCP sockets to each
//!   peer; messages are framed, serialized to bytes, checksummed, and
//!   travel through the kernel.  Nothing is shared except what crosses a
//!   socket, so an executor that is correct on this backend performs the
//!   algorithm's actual communication, not a simulation of it.
//!
//! # Failure model
//!
//! Every communication primitive returns `Result<_, CommError>` instead of
//! panicking or blocking forever:
//!
//! * a closed channel or socket surfaces [`CommError::PeerDisconnected`];
//! * every `recv` is bounded by the endpoint's [`CommDeadline`] and
//!   surfaces [`CommError::Timeout`] when it expires — the universal
//!   backstop that guarantees no rank hangs, whatever was lost;
//! * a frame that fails its checksum (TCP) or an injected corruption
//!   surfaces [`CommError::Corrupt`];
//! * an unexpected tag is [`CommError::TagMismatch`] — the executor's
//!   protocol is deterministic, so this only happens when a message was
//!   dropped or reordered by a fault;
//! * a poison [`Phase::Control`] abort message from a failing peer is
//!   intercepted inside [`Communicator::recv`] and surfaces as
//!   [`CommError::RemoteAbort`] carrying the origin rank's failure
//!   context, so aborts propagate through ranks blocked in collectives.
//!
//! Every [`Endpoint`] counts the words and messages it moves, classified by
//! protocol [`Phase`] (expand, fold, gather, scatter, control).  The
//! measured counters are what [`crate::exec::execute_hooi`] reports and
//! what the tests cross-validate against the analytic predictions of
//! [`crate::stats::iteration_stats`] — turning the cost model into a tested
//! artifact.
//!
//! Message delivery between one (sender, receiver) pair is ordered on both
//! backends (FIFO channels; TCP byte streams), and the executor's protocol
//! is deterministic, so `recv` can check the tag it expects: a mismatch is
//! a typed error, not a panic.

use std::io::{BufWriter, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which part of the executor's protocol a message belongs to.  Counters
/// are kept per phase so measured traffic can be compared against the cost
/// model phase by phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Partial TTMc contributions sent from the ranks holding nonzeros of a
    /// row to the row's owner (Algorithm 4's fold).
    Fold,
    /// Owned, fully reduced TTMc rows sent to the root for the TRSVD step
    /// (an artifact of centralizing the TRSVD; see the `exec` docs).
    Gather,
    /// Updated factor rows sent from the root back to their owners after
    /// the TRSVD step.
    Scatter,
    /// Factor rows sent from their owner to every rank that needs them for
    /// its local TTMc (Algorithm 4's expand, line 14).
    Expand,
    /// Everything else: convergence flags, collectives, initialization,
    /// abort notifications.
    Control,
}

impl Phase {
    /// All phases, in counter-array order.
    pub const ALL: [Phase; 5] = [
        Phase::Fold,
        Phase::Gather,
        Phase::Scatter,
        Phase::Expand,
        Phase::Control,
    ];

    fn index(self) -> usize {
        match self {
            Phase::Fold => 0,
            Phase::Gather => 1,
            Phase::Scatter => 2,
            Phase::Expand => 3,
            Phase::Control => 4,
        }
    }

    fn from_index(i: u64) -> Phase {
        Phase::ALL[i as usize % Phase::ALL.len()]
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Fold => "fold",
            Phase::Gather => "gather",
            Phase::Scatter => "scatter",
            Phase::Expand => "expand",
            Phase::Control => "control",
        }
    }
}

/// A message tag: protocol phase, tensor mode, and a step counter (the HOOI
/// iteration, or a collective's sequence number).  Tags make the protocol
/// self-checking — `recv` verifies the tag it expects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tag {
    /// Protocol phase of the message.
    pub phase: Phase,
    /// Tensor mode the message concerns (0 for phase-global messages).
    pub mode: u16,
    /// Iteration / sequence number.
    pub step: u32,
}

impl Tag {
    /// Builds a tag.
    pub fn new(phase: Phase, mode: usize, step: u32) -> Tag {
        Tag {
            phase,
            mode: mode as u16,
            step,
        }
    }

    fn encode(self) -> u64 {
        ((self.phase.index() as u64) << 48) | ((self.mode as u64) << 32) | self.step as u64
    }

    fn decode(raw: u64) -> Tag {
        Tag {
            phase: Phase::from_index(raw >> 48),
            mode: ((raw >> 32) & 0xffff) as u16,
            step: (raw & 0xffff_ffff) as u32,
        }
    }
}

/// Step number reserved for poison abort messages on the
/// [`Phase::Control`] plane; no regular protocol step ever uses it.
pub const ABORT_STEP: u32 = 0xffff_ffff;

/// Builds the poison abort message a failing rank sends on its surviving
/// links: `ints = [origin, phase index, iteration]`.
pub fn abort_message(origin: usize, phase: Phase, iteration: u32) -> Message {
    Message {
        tag: Tag::new(Phase::Control, 0, ABORT_STEP),
        ints: vec![origin as u64, phase.index() as u64, iteration as u64],
        floats: Vec::new(),
    }
}

/// Decodes a poison abort message; `None` for regular traffic.
pub fn parse_abort(msg: &Message) -> Option<(usize, Phase, u32)> {
    if msg.tag.phase == Phase::Control && msg.tag.step == ABORT_STEP && msg.ints.len() == 3 {
        Some((
            msg.ints[0] as usize,
            Phase::from_index(msg.ints[1]),
            msg.ints[2] as u32,
        ))
    } else {
        None
    }
}

/// A typed communication failure observed by one rank.  Every variant
/// names the observing rank and the peer involved, so the executor can
/// report exactly which link failed and during which protocol phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The peer's channel or socket closed (the peer terminated or the
    /// link was cut).
    PeerDisconnected {
        /// Observing rank.
        rank: usize,
        /// The peer whose link died.
        peer: usize,
    },
    /// No message arrived from the peer within the endpoint's deadline.
    Timeout {
        /// Observing rank.
        rank: usize,
        /// The peer that never delivered.
        peer: usize,
        /// How long the receiver waited before giving up.
        waited: Duration,
    },
    /// A message arrived with a tag other than the one the deterministic
    /// protocol expects (a frame was dropped or reordered upstream).
    TagMismatch {
        /// Observing rank.
        rank: usize,
        /// The peer that sent the unexpected message.
        peer: usize,
        /// The tag the protocol expected.
        expected: Tag,
        /// The tag that actually arrived.
        got: Tag,
    },
    /// A frame failed validation (checksum mismatch, insane length) or an
    /// injected corruption destroyed it.
    Corrupt {
        /// Observing rank.
        rank: usize,
        /// The peer whose frame was corrupt.
        peer: usize,
        /// Human-readable detail.
        detail: String,
    },
    /// A poison abort from a failing peer: rank `origin` failed in `phase`
    /// at `iteration` and is telling surviving ranks to unwind.
    RemoteAbort {
        /// The rank that originally failed.
        origin: usize,
        /// The protocol phase the origin was in when it failed.
        phase: Phase,
        /// The HOOI iteration the origin was in when it failed.
        iteration: u32,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::PeerDisconnected { rank, peer } => {
                write!(f, "rank {rank}: peer rank {peer} disconnected")
            }
            CommError::Timeout { rank, peer, waited } => write!(
                f,
                "rank {rank}: no message from rank {peer} within {waited:?}"
            ),
            CommError::TagMismatch {
                rank,
                peer,
                expected,
                got,
            } => write!(
                f,
                "rank {rank}: unexpected tag from rank {peer} (expected {expected:?}, got {got:?})"
            ),
            CommError::Corrupt { rank, peer, detail } => {
                write!(f, "rank {rank}: corrupt frame from rank {peer}: {detail}")
            }
            CommError::RemoteAbort {
                origin,
                phase,
                iteration,
            } => write!(
                f,
                "abort from rank {origin} (failed in {} at iteration {iteration})",
                phase.label()
            ),
        }
    }
}

impl std::error::Error for CommError {}

/// Per-endpoint liveness knobs: how long a `recv` may block and how the
/// TCP world's connection phase retries.  The defaults are generous enough
/// for slow CI machines while still guaranteeing that no rank blocks
/// forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommDeadline {
    /// Upper bound on any single `recv` before it fails with
    /// [`CommError::Timeout`].
    pub recv_timeout: Duration,
    /// How many times `tcp_world` retries a refused connection before
    /// giving up.
    pub connect_retries: u32,
    /// Base backoff between connection retries (grows linearly with the
    /// attempt number).
    pub connect_backoff: Duration,
}

impl Default for CommDeadline {
    fn default() -> Self {
        CommDeadline {
            recv_timeout: Duration::from_secs(10),
            connect_retries: 10,
            connect_backoff: Duration::from_millis(20),
        }
    }
}

impl CommDeadline {
    /// A deadline with the given `recv` timeout and default connection
    /// retry policy.
    pub fn with_recv_timeout(recv_timeout: Duration) -> Self {
        CommDeadline {
            recv_timeout,
            ..CommDeadline::default()
        }
    }

    /// Total wall-clock budget for one bounded accept loop.
    fn accept_budget(&self) -> Duration {
        self.recv_timeout
            .max(self.connect_backoff * (self.connect_retries + 1))
    }
}

/// A typed message: a tag plus an integer section (row indices, counts,
/// nonzero ids) and a float section (factor rows, TTMc contributions).
/// Both backends transfer it losslessly — the TCP backend round-trips the
/// exact `f64` bit patterns.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// The tag the receiver will be checked against.
    pub tag: Tag,
    /// Integer payload.
    pub ints: Vec<u64>,
    /// Floating-point payload.
    pub floats: Vec<f64>,
}

impl Message {
    /// An empty message carrying only its tag.
    pub fn empty(tag: Tag) -> Message {
        Message {
            tag,
            ints: Vec::new(),
            floats: Vec::new(),
        }
    }
}

/// Traffic counters for one protocol phase, from one rank's point of view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCounters {
    /// Messages sent.
    pub messages_sent: u64,
    /// Messages received.
    pub messages_received: u64,
    /// `f64` words sent.
    pub floats_sent: u64,
    /// `f64` words received.
    pub floats_received: u64,
    /// `u64` words sent.
    pub ints_sent: u64,
    /// `u64` words received.
    pub ints_received: u64,
}

impl PhaseCounters {
    /// Float words moved in either direction.
    pub fn floats_transferred(&self) -> u64 {
        self.floats_sent + self.floats_received
    }

    /// Total payload bytes moved in either direction (8 bytes per word).
    pub fn bytes_transferred(&self) -> u64 {
        8 * (self.floats_sent + self.floats_received + self.ints_sent + self.ints_received)
    }
}

/// Measured communication of one rank, classified by [`Phase`].  This is
/// the executor's observational counterpart to the analytic per-rank
/// volumes of [`crate::stats::iteration_stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommCounters {
    phases: [PhaseCounters; Phase::ALL.len()],
}

impl CommCounters {
    /// The counters of one phase.
    pub fn phase(&self, phase: Phase) -> &PhaseCounters {
        &self.phases[phase.index()]
    }

    /// Total messages sent plus received across all phases.
    pub fn messages_total(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.messages_sent + p.messages_received)
            .sum()
    }

    /// Total payload bytes moved across all phases.
    pub fn bytes_total(&self) -> u64 {
        self.phases.iter().map(|p| p.bytes_transferred()).sum()
    }

    /// Element-wise sum of per-rank counters (cluster totals; every
    /// send is matched by a receive, so totals count each word twice).
    pub fn merged(all: &[CommCounters]) -> CommCounters {
        let mut out = CommCounters::default();
        for c in all {
            for (o, p) in out.phases.iter_mut().zip(c.phases.iter()) {
                o.messages_sent += p.messages_sent;
                o.messages_received += p.messages_received;
                o.floats_sent += p.floats_sent;
                o.floats_received += p.floats_received;
                o.ints_sent += p.ints_sent;
                o.ints_received += p.ints_received;
            }
        }
        out
    }

    fn record_send(&mut self, msg: &Message) {
        let p = &mut self.phases[msg.tag.phase.index()];
        p.messages_sent += 1;
        p.floats_sent += msg.floats.len() as u64;
        p.ints_sent += msg.ints.len() as u64;
    }

    fn record_recv(&mut self, msg: &Message) {
        let p = &mut self.phases[msg.tag.phase.index()];
        p.messages_received += 1;
        p.floats_received += msg.floats.len() as u64;
        p.ints_received += msg.ints.len() as u64;
    }
}

/// The raw point-to-point transport a backend implements; [`Endpoint`]
/// wraps it with counting, deadline enforcement, and the collective
/// algorithms.
pub trait Transport: Send {
    /// This endpoint's rank id.
    fn rank(&self) -> usize;
    /// Number of ranks in the world.
    fn num_ranks(&self) -> usize;
    /// Delivers a message to `to` (must not be this rank).  May block only
    /// on backend flow control, never on the receiver's progress.
    fn send_raw(&mut self, to: usize, msg: &Message) -> Result<(), CommError>;
    /// Blocks until the next message from `from` arrives, or `timeout`
    /// expires, or the link is observed dead.
    fn recv_raw(&mut self, from: usize, timeout: Duration) -> Result<Message, CommError>;
}

/// A counted communicator over some [`Transport`] — the concrete type the
/// executor's rank loops hold.
pub struct Endpoint<T: Transport> {
    transport: T,
    counters: CommCounters,
    deadline: CommDeadline,
}

impl<T: Transport> Endpoint<T> {
    /// Wraps a transport with zeroed counters and the default deadline.
    pub fn new(transport: T) -> Self {
        Endpoint::with_deadline(transport, CommDeadline::default())
    }

    /// Wraps a transport with zeroed counters and an explicit deadline.
    pub fn with_deadline(transport: T, deadline: CommDeadline) -> Self {
        Endpoint {
            transport,
            counters: CommCounters::default(),
            deadline,
        }
    }

    /// The deadline this endpoint enforces on every `recv`.
    pub fn deadline(&self) -> CommDeadline {
        self.deadline
    }
}

/// What the executor requires of a communication backend: rank identity,
/// counted point-to-point messaging, and the derived collectives.
///
/// The collectives are deliberately *default methods over `send`/`recv`*:
/// their reduction order is fixed (ascending rank at the root), so a
/// collective's floating-point result is bit-identical on every backend
/// and at every timing.
///
/// Every receiving operation can fail with a [`CommError`]; the executor
/// maps the first failure it observes into a poison abort on its surviving
/// links ([`Communicator::send_abort`]) so the whole world unwinds.
pub trait Communicator: Send {
    /// This rank's id (0-based; rank 0 is the executor's root).
    fn rank(&self) -> usize;
    /// Number of ranks in the world.
    fn num_ranks(&self) -> usize;
    /// Sends a message to rank `to`, counting its words.
    fn send(&mut self, to: usize, msg: &Message) -> Result<(), CommError>;
    /// Receives the next message from rank `from`, checking it carries
    /// `expected` — the executor's protocol is deterministic, so any other
    /// tag is [`CommError::TagMismatch`].  A poison abort message is
    /// intercepted here and surfaces as [`CommError::RemoteAbort`].
    fn recv(&mut self, from: usize, expected: Tag) -> Result<Message, CommError>;
    /// The traffic this rank has moved so far.
    fn counters(&self) -> &CommCounters;

    /// Synchronizes all ranks: nobody returns until everyone has entered.
    /// Implemented as a gather-to-root plus release fan-out.
    fn barrier(&mut self, step: u32) -> Result<(), CommError> {
        let tag = Tag::new(Phase::Control, 0, step);
        let me = self.rank();
        let p = self.num_ranks();
        if me == 0 {
            for src in 1..p {
                self.recv(src, tag)?;
            }
            for dst in 1..p {
                self.send(dst, &Message::empty(tag))?;
            }
        } else {
            self.send(0, &Message::empty(tag))?;
            self.recv(0, tag)?;
        }
        Ok(())
    }

    /// Element-wise global sum of `buf` across all ranks; every rank ends
    /// with the same result.  The root accumulates contributions in
    /// ascending rank order, so the floating-point result is deterministic
    /// and backend-independent.
    fn allreduce_sum(&mut self, step: u32, buf: &mut [f64]) -> Result<(), CommError> {
        let tag = Tag::new(Phase::Control, 0, step);
        let me = self.rank();
        let p = self.num_ranks();
        if me == 0 {
            for src in 1..p {
                let part = self.recv(src, tag)?;
                if part.floats.len() != buf.len() {
                    return Err(CommError::Corrupt {
                        rank: me,
                        peer: src,
                        detail: format!(
                            "allreduce length mismatch: expected {}, got {}",
                            buf.len(),
                            part.floats.len()
                        ),
                    });
                }
                for (b, &x) in buf.iter_mut().zip(part.floats.iter()) {
                    *b += x;
                }
            }
            for dst in 1..p {
                self.send(
                    dst,
                    &Message {
                        tag,
                        ints: Vec::new(),
                        floats: buf.to_vec(),
                    },
                )?;
            }
        } else {
            self.send(
                0,
                &Message {
                    tag,
                    ints: Vec::new(),
                    floats: buf.to_vec(),
                },
            )?;
            let result = self.recv(0, tag)?;
            if result.floats.len() != buf.len() {
                return Err(CommError::Corrupt {
                    rank: me,
                    peer: 0,
                    detail: format!(
                        "allreduce length mismatch: expected {}, got {}",
                        buf.len(),
                        result.floats.len()
                    ),
                });
            }
            buf.copy_from_slice(&result.floats);
        }
        Ok(())
    }

    /// Broadcasts `msg` from `root` to every rank; returns the payload
    /// everywhere (non-root callers pass anything — it is replaced).
    fn broadcast(&mut self, root: usize, msg: Message) -> Result<Message, CommError> {
        let me = self.rank();
        let p = self.num_ranks();
        if me == root {
            for dst in 0..p {
                if dst != root {
                    self.send(dst, &msg)?;
                }
            }
            Ok(msg)
        } else {
            self.recv(root, msg.tag)
        }
    }

    /// Best-effort poison fan-out: tells every peer that rank `origin`
    /// failed in `phase` at `iteration`.  Dead links are skipped silently —
    /// the per-recv deadline covers peers this message cannot reach.
    fn send_abort(&mut self, origin: usize, phase: Phase, iteration: u32) {
        let msg = abort_message(origin, phase, iteration);
        let me = self.rank();
        for peer in 0..self.num_ranks() {
            if peer != me {
                let _ = self.send(peer, &msg);
            }
        }
    }
}

impl<T: Transport> Communicator for Endpoint<T> {
    fn rank(&self) -> usize {
        self.transport.rank()
    }

    fn num_ranks(&self) -> usize {
        self.transport.num_ranks()
    }

    fn send(&mut self, to: usize, msg: &Message) -> Result<(), CommError> {
        assert_ne!(to, self.rank(), "self-sends are a protocol bug");
        self.transport.send_raw(to, msg)?;
        self.counters.record_send(msg);
        Ok(())
    }

    fn recv(&mut self, from: usize, expected: Tag) -> Result<Message, CommError> {
        let msg = self.transport.recv_raw(from, self.deadline.recv_timeout)?;
        self.counters.record_recv(&msg);
        if expected.step != ABORT_STEP {
            if let Some((origin, phase, iteration)) = parse_abort(&msg) {
                return Err(CommError::RemoteAbort {
                    origin,
                    phase,
                    iteration,
                });
            }
        }
        if msg.tag != expected {
            return Err(CommError::TagMismatch {
                rank: self.rank(),
                peer: from,
                expected,
                got: msg.tag,
            });
        }
        Ok(msg)
    }

    fn counters(&self) -> &CommCounters {
        &self.counters
    }
}

// ---------------------------------------------------------------------------
// Channel backend
// ---------------------------------------------------------------------------

/// In-process transport: one FIFO channel per ordered rank pair.
pub struct ChannelTransport {
    rank: usize,
    num_ranks: usize,
    senders: Vec<Option<Sender<Message>>>,
    receivers: Vec<Option<Receiver<Message>>>,
}

impl Transport for ChannelTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    fn send_raw(&mut self, to: usize, msg: &Message) -> Result<(), CommError> {
        self.senders[to]
            .as_ref()
            .expect("no channel to self")
            .send(msg.clone())
            .map_err(|_| CommError::PeerDisconnected {
                rank: self.rank,
                peer: to,
            })
    }

    fn recv_raw(&mut self, from: usize, timeout: Duration) -> Result<Message, CommError> {
        self.receivers[from]
            .as_ref()
            .expect("no channel from self")
            .recv_timeout(timeout)
            .map_err(|e| match e {
                RecvTimeoutError::Timeout => CommError::Timeout {
                    rank: self.rank,
                    peer: from,
                    waited: timeout,
                },
                RecvTimeoutError::Disconnected => CommError::PeerDisconnected {
                    rank: self.rank,
                    peer: from,
                },
            })
    }
}

/// Builds the raw channel transports of an in-process world, so callers can
/// wrap them (fault injection) before attaching counters via
/// [`Endpoint::new`].
pub fn channel_transports(num_ranks: usize) -> Vec<ChannelTransport> {
    assert!(num_ranks > 0);
    // mailboxes[dst][src] = receiver of the src -> dst channel.
    let mut senders: Vec<Vec<Option<Sender<Message>>>> = (0..num_ranks)
        .map(|_| (0..num_ranks).map(|_| None).collect())
        .collect();
    let mut mailboxes: Vec<Vec<Option<Receiver<Message>>>> = (0..num_ranks)
        .map(|_| (0..num_ranks).map(|_| None).collect())
        .collect();
    for src in 0..num_ranks {
        for dst in 0..num_ranks {
            if src == dst {
                continue;
            }
            let (tx, rx) = channel();
            senders[src][dst] = Some(tx);
            mailboxes[dst][src] = Some(rx);
        }
    }
    senders
        .drain(..)
        .zip(mailboxes.drain(..))
        .enumerate()
        .map(|(rank, (senders, receivers))| ChannelTransport {
            rank,
            num_ranks,
            senders,
            receivers,
        })
        .collect()
}

/// Builds the in-process channel world: one counted endpoint per rank, all
/// pairs connected by FIFO channels.  Endpoints are handed to the rank
/// threads; dropping one mid-protocol surfaces
/// [`CommError::PeerDisconnected`] at blocked peers instead of hanging.
pub fn channel_world(num_ranks: usize) -> Vec<Endpoint<ChannelTransport>> {
    channel_transports(num_ranks)
        .into_iter()
        .map(Endpoint::new)
        .collect()
}

// ---------------------------------------------------------------------------
// TCP backend
// ---------------------------------------------------------------------------

const FRAME_HEADER_BYTES: usize = 32;

/// Upper bound on either payload section of one frame, in 8-byte words.
/// Far above anything the executor sends; a length beyond it means the
/// stream is corrupt, and rejecting it up front keeps a corrupted length
/// field from triggering a giant allocation.
const MAX_FRAME_WORDS: usize = 1 << 31;

/// FNV-1a over the frame's tag, lengths, and payload bytes — cheap,
/// deterministic, and plenty to catch torn or flipped frames on the wire.
struct FnvHasher(u64);

impl FnvHasher {
    fn new() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

enum FrameError {
    // The io::Error payload is only inspected by tests (the reader thread
    // treats any I/O fault as end-of-stream), but carrying it keeps the
    // diagnostics available where they matter.
    Io(#[cfg_attr(not(test), allow(dead_code))] std::io::Error),
    Corrupt(String),
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

fn write_frame(writer: &mut impl Write, msg: &Message) -> std::io::Result<()> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    header[..8].copy_from_slice(&msg.tag.encode().to_le_bytes());
    header[8..16].copy_from_slice(&(msg.ints.len() as u64).to_le_bytes());
    header[16..24].copy_from_slice(&(msg.floats.len() as u64).to_le_bytes());
    let mut hasher = FnvHasher::new();
    hasher.update(&header[..24]);
    for &v in &msg.ints {
        hasher.update(&v.to_le_bytes());
    }
    for &v in &msg.floats {
        hasher.update(&v.to_bits().to_le_bytes());
    }
    header[24..32].copy_from_slice(&hasher.finish().to_le_bytes());
    writer.write_all(&header)?;
    for &v in &msg.ints {
        writer.write_all(&v.to_le_bytes())?;
    }
    for &v in &msg.floats {
        writer.write_all(&v.to_bits().to_le_bytes())?;
    }
    writer.flush()
}

fn read_frame(reader: &mut impl Read) -> Result<Message, FrameError> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    reader.read_exact(&mut header)?;
    let tag = Tag::decode(u64::from_le_bytes(header[..8].try_into().unwrap()));
    let n_ints = u64::from_le_bytes(header[8..16].try_into().unwrap()) as usize;
    let n_floats = u64::from_le_bytes(header[16..24].try_into().unwrap()) as usize;
    let checksum = u64::from_le_bytes(header[24..32].try_into().unwrap());
    if n_ints > MAX_FRAME_WORDS || n_floats > MAX_FRAME_WORDS {
        return Err(FrameError::Corrupt(format!(
            "frame lengths out of range ({n_ints} ints, {n_floats} floats)"
        )));
    }
    let mut bytes = vec![0u8; 8 * (n_ints + n_floats)];
    reader.read_exact(&mut bytes)?;
    let mut hasher = FnvHasher::new();
    hasher.update(&header[..24]);
    hasher.update(&bytes);
    if hasher.finish() != checksum {
        return Err(FrameError::Corrupt(format!(
            "frame checksum mismatch (tag {tag:?}, {n_ints} ints, {n_floats} floats)"
        )));
    }
    let ints = bytes[..8 * n_ints]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let floats = bytes[8 * n_ints..]
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
        .collect();
    Ok(Message { tag, ints, floats })
}

/// Loopback-socket transport: one TCP connection per rank pair, with a
/// reader thread per peer draining frames into an in-memory mailbox.
///
/// The reader threads are what make the protocol deadlock-free without an
/// asynchronous runtime: a peer's inbound stream is always being drained,
/// so `send_raw` can block on the kernel's socket buffer at most briefly,
/// never on the peer reaching its matching `recv`.
///
/// `Drop` shuts down every socket and joins every reader thread, so an
/// aborted run leaks neither threads nor file descriptors.
pub struct TcpTransport {
    rank: usize,
    num_ranks: usize,
    writers: Vec<Option<BufWriter<TcpStream>>>,
    mailboxes: Vec<Option<Receiver<Result<Message, CommError>>>>,
    sockets: Vec<Option<TcpStream>>,
    readers: Vec<JoinHandle<()>>,
}

impl Transport for TcpTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    fn send_raw(&mut self, to: usize, msg: &Message) -> Result<(), CommError> {
        let writer = self.writers[to].as_mut().expect("no socket to self");
        write_frame(writer, msg).map_err(|_| CommError::PeerDisconnected {
            rank: self.rank,
            peer: to,
        })
    }

    fn recv_raw(&mut self, from: usize, timeout: Duration) -> Result<Message, CommError> {
        match self.mailboxes[from]
            .as_ref()
            .expect("no socket from self")
            .recv_timeout(timeout)
        {
            Ok(result) => result,
            Err(RecvTimeoutError::Timeout) => Err(CommError::Timeout {
                rank: self.rank,
                peer: from,
                waited: timeout,
            }),
            Err(RecvTimeoutError::Disconnected) => Err(CommError::PeerDisconnected {
                rank: self.rank,
                peer: from,
            }),
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        for s in self.sockets.iter().flatten() {
            let _ = s.shutdown(Shutdown::Both);
        }
        for h in self.readers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Connects to `addr`, retrying refused attempts with linear backoff per
/// the deadline's connection policy.
fn connect_with_retry(
    addr: std::net::SocketAddr,
    deadline: &CommDeadline,
) -> std::io::Result<TcpStream> {
    let mut attempt = 0;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if attempt >= deadline.connect_retries {
                    return Err(e);
                }
                attempt += 1;
                std::thread::sleep(deadline.connect_backoff * attempt);
            }
        }
    }
}

/// Accepts one connection with a wall-clock bound instead of blocking
/// forever on a peer that will never dial.
fn accept_with_deadline(
    listener: &TcpListener,
    deadline: &CommDeadline,
) -> std::io::Result<TcpStream> {
    listener.set_nonblocking(true)?;
    let start = Instant::now();
    let budget = deadline.accept_budget();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                listener.set_nonblocking(false)?;
                stream.set_nonblocking(false)?;
                return Ok(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if start.elapsed() > budget {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "accept timed out waiting for a peer",
                    ));
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Builds the raw TCP transports of a loopback world, so callers can wrap
/// them (fault injection) before attaching counters via [`Endpoint::new`].
/// The connection phase is bounded by `deadline`'s retry/backoff policy.
pub fn tcp_transports(
    num_ranks: usize,
    deadline: &CommDeadline,
) -> std::io::Result<Vec<TcpTransport>> {
    assert!(num_ranks > 0);
    let listeners: Vec<TcpListener> = (0..num_ranks)
        .map(|_| TcpListener::bind("127.0.0.1:0"))
        .collect::<std::io::Result<_>>()?;
    let addrs: Vec<_> = listeners
        .iter()
        .map(|l| l.local_addr())
        .collect::<std::io::Result<_>>()?;

    // streams[a][b] = rank a's endpoint of the (a, b) connection.  The
    // constructor runs before any rank thread exists, so connect/accept
    // pairs match deterministically.
    let mut streams: Vec<Vec<Option<TcpStream>>> = (0..num_ranks)
        .map(|_| (0..num_ranks).map(|_| None).collect())
        .collect();
    for i in 0..num_ranks {
        for j in (i + 1)..num_ranks {
            let outgoing = connect_with_retry(addrs[i], deadline)?; // rank j -> rank i
            let incoming = accept_with_deadline(&listeners[i], deadline)?; // rank i's end
            outgoing.set_nodelay(true)?;
            incoming.set_nodelay(true)?;
            streams[j][i] = Some(outgoing);
            streams[i][j] = Some(incoming);
        }
    }

    let mut world = Vec::with_capacity(num_ranks);
    for (rank, peer_streams) in streams.drain(..).enumerate() {
        let mut writers = Vec::with_capacity(num_ranks);
        let mut mailboxes = Vec::with_capacity(num_ranks);
        let mut sockets = Vec::with_capacity(num_ranks);
        let mut readers = Vec::new();
        for (peer, stream) in peer_streams.into_iter().enumerate() {
            match stream {
                None => {
                    writers.push(None);
                    mailboxes.push(None);
                    sockets.push(None);
                }
                Some(stream) => {
                    let mut read_half = stream.try_clone()?;
                    let (tx, rx) = channel();
                    readers.push(std::thread::spawn(move || loop {
                        match read_frame(&mut read_half) {
                            Ok(msg) => {
                                if tx.send(Ok(msg)).is_err() {
                                    break;
                                }
                            }
                            Err(FrameError::Corrupt(detail)) => {
                                // Framing is lost after a corrupt frame, so
                                // report it once and close the mailbox (any
                                // later recv sees PeerDisconnected).
                                let _ = tx.send(Err(CommError::Corrupt { rank, peer, detail }));
                                break;
                            }
                            Err(FrameError::Io(_)) => break,
                        }
                    }));
                    sockets.push(Some(stream.try_clone()?));
                    writers.push(Some(BufWriter::new(stream)));
                    mailboxes.push(Some(rx));
                }
            }
        }
        world.push(TcpTransport {
            rank,
            num_ranks,
            writers,
            mailboxes,
            sockets,
            readers,
        });
    }
    Ok(world)
}

/// Builds a world of `num_ranks` peers connected pairwise over loopback
/// TCP, with `deadline` governing both the connection phase and every
/// endpoint's `recv` bound.  Fails with the underlying I/O error when the
/// environment forbids sockets (sandboxes); callers probe with
/// [`loopback_tcp_available`] and fall back to [`channel_world`].
pub fn tcp_world_with(
    num_ranks: usize,
    deadline: CommDeadline,
) -> std::io::Result<Vec<Endpoint<TcpTransport>>> {
    Ok(tcp_transports(num_ranks, &deadline)?
        .into_iter()
        .map(|t| Endpoint::with_deadline(t, deadline))
        .collect())
}

/// [`tcp_world_with`] under the default [`CommDeadline`].
pub fn tcp_world(num_ranks: usize) -> std::io::Result<Vec<Endpoint<TcpTransport>>> {
    tcp_world_with(num_ranks, CommDeadline::default())
}

/// Whether this environment allows binding loopback TCP sockets.  CI and
/// sandboxes without network namespaces return `false`; callers should
/// skip the TCP backend (and say so) rather than fail.
pub fn loopback_tcp_available() -> bool {
    TcpListener::bind("127.0.0.1:0").is_ok()
}

/// Which [`Communicator`] backend the executor should run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommBackend {
    /// In-process channels between rank threads (the default: fastest, and
    /// available everywhere).
    #[default]
    Channel,
    /// Real loopback TCP sockets between rank threads; requires
    /// [`loopback_tcp_available`].
    Tcp,
}

impl CommBackend {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            CommBackend::Channel => "channel",
            CommBackend::Tcp => "tcp",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(step: u32) -> Tag {
        Tag::new(Phase::Control, 0, step)
    }

    /// Runs `body(rank_endpoint)` on every rank concurrently; returns the
    /// per-rank results in rank order.
    fn run_world<C, R, F>(world: Vec<C>, body: F) -> Vec<R>
    where
        C: Communicator + 'static,
        R: Send + 'static,
        F: Fn(C) -> R + Sync,
    {
        let body = &body;
        std::thread::scope(|s| {
            let handles: Vec<_> = world
                .into_iter()
                .map(|comm| s.spawn(move || body(comm)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    fn ring_exchange<C: Communicator>(mut comm: C) -> (Vec<f64>, CommCounters) {
        let me = comm.rank();
        let p = comm.num_ranks();
        let next = (me + 1) % p;
        let prev = (me + p - 1) % p;
        let msg = Message {
            tag: tag(1),
            ints: vec![me as u64],
            floats: vec![me as f64, -(me as f64)],
        };
        comm.send(next, &msg).unwrap();
        let got = comm.recv(prev, tag(1)).unwrap();
        assert_eq!(got.ints, vec![prev as u64]);
        let mut sums = vec![me as f64 + 1.0];
        comm.allreduce_sum(2, &mut sums).unwrap();
        comm.barrier(3).unwrap();
        (sums, comm.counters().clone())
    }

    #[test]
    fn channel_ring_allreduce_and_counters() {
        let p = 4;
        let results = run_world(channel_world(p), ring_exchange);
        let expected: f64 = (1..=p).map(|r| r as f64).sum();
        for (sums, _) in &results {
            assert_eq!(sums, &vec![expected]);
        }
        let counters: Vec<CommCounters> = results.iter().map(|(_, c)| c.clone()).collect();
        let merged = CommCounters::merged(&counters);
        // Every send has a matching receive, phase by phase.
        for phase in Phase::ALL {
            let ph = merged.phase(phase);
            assert_eq!(ph.messages_sent, ph.messages_received, "{}", phase.label());
            assert_eq!(ph.floats_sent, ph.floats_received, "{}", phase.label());
            assert_eq!(ph.ints_sent, ph.ints_received, "{}", phase.label());
        }
        // The ring itself moved p messages of 2 floats + 1 int... under
        // Control, mixed with the collectives; just check nonzero totals.
        assert!(merged.messages_total() > 0);
        assert!(merged.bytes_total() > 0);
    }

    #[test]
    fn tcp_ring_matches_channel_ring() {
        if !loopback_tcp_available() {
            eprintln!("skipping: loopback TCP unavailable in this environment");
            return;
        }
        let p = 3;
        let tcp = run_world(tcp_world(p).expect("tcp world"), ring_exchange);
        let chan = run_world(channel_world(p), ring_exchange);
        for ((ts, tc), (cs, cc)) in tcp.iter().zip(chan.iter()) {
            assert_eq!(ts, cs, "allreduce results must agree across backends");
            assert_eq!(tc, cc, "counters must agree across backends");
        }
    }

    #[test]
    fn tcp_roundtrips_exact_bit_patterns() {
        if !loopback_tcp_available() {
            eprintln!("skipping: loopback TCP unavailable in this environment");
            return;
        }
        let world = tcp_world(2).expect("tcp world");
        let payload = vec![0.1, -0.0, f64::MIN_POSITIVE, 1.0 / 3.0, 6.02214076e23];
        let sent = payload.clone();
        let results = run_world(world, move |mut comm| {
            if comm.rank() == 0 {
                comm.send(
                    1,
                    &Message {
                        tag: tag(7),
                        ints: vec![u64::MAX, 0, 42],
                        floats: sent.clone(),
                    },
                )
                .unwrap();
                Vec::new()
            } else {
                let got = comm.recv(0, tag(7)).unwrap();
                assert_eq!(got.ints, vec![u64::MAX, 0, 42]);
                got.floats
            }
        });
        assert_eq!(
            results[1].iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            payload.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn broadcast_reaches_every_rank() {
        let results = run_world(channel_world(3), |mut comm| {
            let msg = if comm.rank() == 1 {
                Message {
                    tag: tag(9),
                    ints: vec![11, 22],
                    floats: vec![3.5],
                }
            } else {
                Message::empty(tag(9))
            };
            comm.broadcast(1, msg).unwrap()
        });
        for r in &results {
            assert_eq!(r.ints, vec![11, 22]);
            assert_eq!(r.floats, vec![3.5]);
        }
    }

    #[test]
    fn allreduce_is_rank_order_deterministic() {
        // The reduction at the root runs in ascending rank order, so the
        // result equals the sequential left-to-right sum regardless of
        // which rank's thread runs first.
        let p = 5;
        let contributions: Vec<f64> = (0..p).map(|r| 0.1 * (r as f64 + 1.0)).collect();
        let expected = contributions.iter().fold(0.0, |acc, &x| acc + x);
        for _ in 0..10 {
            let contributions = contributions.clone();
            let results = run_world(channel_world(p), move |mut comm| {
                let mut buf = vec![contributions[comm.rank()]];
                comm.allreduce_sum(1, &mut buf).unwrap();
                buf[0]
            });
            for r in &results {
                assert_eq!(r.to_bits(), expected.to_bits());
            }
        }
    }

    #[test]
    fn single_rank_world_needs_no_peers() {
        let results = run_world(channel_world(1), |mut comm| {
            comm.barrier(1).unwrap();
            let mut buf = vec![2.5, -1.0];
            comm.allreduce_sum(2, &mut buf).unwrap();
            let b = comm
                .broadcast(
                    0,
                    Message {
                        tag: tag(3),
                        ints: vec![5],
                        floats: vec![],
                    },
                )
                .unwrap();
            (buf, b.ints)
        });
        assert_eq!(results[0].0, vec![2.5, -1.0]);
        assert_eq!(results[0].1, vec![5]);
    }

    #[test]
    fn tag_encoding_roundtrips() {
        for phase in Phase::ALL {
            let t = Tag::new(phase, 3, 77);
            assert_eq!(Tag::decode(t.encode()), t);
        }
    }

    #[test]
    fn disconnect_surfaces_typed_error_not_panic() {
        let results = run_world(channel_world(2), |mut comm| {
            if comm.rank() == 1 {
                // Terminate immediately: dropping the endpoint closes every
                // channel this rank owns.
                return None;
            }
            Some(comm.recv(1, tag(1)))
        });
        match &results[0] {
            Some(Err(CommError::PeerDisconnected { rank: 0, peer: 1 })) => {}
            other => panic!("expected PeerDisconnected, got {other:?}"),
        }
    }

    #[test]
    fn send_to_dead_peer_surfaces_typed_error() {
        let results = run_world(channel_world(2), |mut comm| {
            if comm.rank() == 1 {
                return None;
            }
            // Keep sending until the peer's drop is observed.
            loop {
                match comm.send(1, &Message::empty(tag(1))) {
                    Ok(()) => std::thread::sleep(Duration::from_millis(1)),
                    Err(e) => return Some(e),
                }
            }
        });
        assert_eq!(
            results[0],
            Some(CommError::PeerDisconnected { rank: 0, peer: 1 })
        );
    }

    #[test]
    fn recv_times_out_instead_of_hanging() {
        let transports = channel_transports(2);
        let deadline = CommDeadline::with_recv_timeout(Duration::from_millis(25));
        let world: Vec<_> = transports
            .into_iter()
            .map(|t| Endpoint::with_deadline(t, deadline))
            .collect();
        let results = run_world(world, |mut comm| {
            if comm.rank() == 0 {
                // Rank 1 never sends; the deadline must fire while rank 1
                // is still alive (it blocks on our release message below).
                let err = comm.recv(1, tag(1)).unwrap_err();
                comm.send(1, &Message::empty(tag(2))).unwrap();
                Some(err)
            } else {
                // Our own short deadline may fire before rank 0's release
                // arrives; stay alive by retrying until it does.
                loop {
                    match comm.recv(0, tag(2)) {
                        Ok(_) => return None,
                        Err(CommError::Timeout { .. }) => continue,
                        Err(e) => panic!("unexpected error waiting for release: {e:?}"),
                    }
                }
            }
        });
        match results[0] {
            Some(CommError::Timeout {
                rank: 0,
                peer: 1,
                waited,
            }) => {
                assert_eq!(waited, Duration::from_millis(25));
            }
            ref other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn tag_mismatch_is_a_typed_error() {
        let results = run_world(channel_world(2), |mut comm| {
            if comm.rank() == 1 {
                comm.send(0, &Message::empty(tag(5))).unwrap();
                comm.recv(0, tag(6)).unwrap();
                return None;
            }
            let err = comm.recv(1, tag(9)).unwrap_err();
            comm.send(1, &Message::empty(tag(6))).unwrap();
            Some(err)
        });
        match &results[0] {
            Some(CommError::TagMismatch {
                rank: 0,
                peer: 1,
                expected,
                got,
            }) => {
                assert_eq!(*expected, tag(9));
                assert_eq!(*got, tag(5));
            }
            other => panic!("expected TagMismatch, got {other:?}"),
        }
    }

    #[test]
    fn abort_message_interrupts_blocked_recv() {
        let results = run_world(channel_world(2), |mut comm| {
            if comm.rank() == 1 {
                comm.send_abort(1, Phase::Fold, 3);
                return None;
            }
            Some(comm.recv(1, tag(1)))
        });
        match &results[0] {
            Some(Err(CommError::RemoteAbort {
                origin: 1,
                phase: Phase::Fold,
                iteration: 3,
            })) => {}
            other => panic!("expected RemoteAbort, got {other:?}"),
        }
    }

    #[test]
    fn abort_roundtrips_origin_context() {
        let msg = abort_message(7, Phase::Scatter, 42);
        assert_eq!(parse_abort(&msg), Some((7, Phase::Scatter, 42)));
        assert_eq!(parse_abort(&Message::empty(tag(1))), None);
    }

    #[test]
    fn frame_roundtrips_and_detects_corruption() {
        let msg = Message {
            tag: Tag::new(Phase::Gather, 2, 17),
            ints: vec![1, u64::MAX, 42],
            floats: vec![0.1, -0.0, 1.0 / 3.0],
        };
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &msg).unwrap();
        let back = read_frame(&mut bytes.as_slice()).ok().unwrap();
        assert_eq!(back, msg);

        // Flip one payload byte: the checksum must catch it.
        for flip in [FRAME_HEADER_BYTES, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[flip] ^= 0x40;
            match read_frame(&mut bad.as_slice()) {
                Err(FrameError::Corrupt(_)) => {}
                Err(FrameError::Io(e)) => panic!("expected Corrupt, got Io({e})"),
                Ok(m) => panic!("corrupt frame decoded as {m:?}"),
            }
        }

        // A truncated stream is an I/O error (peer died), not corruption.
        match read_frame(&mut bytes[..bytes.len() - 4].as_ref()) {
            Err(FrameError::Io(_)) => {}
            _ => panic!("expected Io error on truncated frame"),
        }
    }

    #[test]
    fn insane_frame_length_is_rejected_before_allocation() {
        // A header whose length fields are absurd must be rejected without
        // attempting the allocation, even if its checksum matches.
        let mut header = [0u8; FRAME_HEADER_BYTES];
        header[..8].copy_from_slice(&tag(1).encode().to_le_bytes());
        header[8..16].copy_from_slice(&(u64::MAX / 8).to_le_bytes());
        header[16..24].copy_from_slice(&0u64.to_le_bytes());
        let mut hasher = FnvHasher::new();
        hasher.update(&header[..24]);
        header[24..32].copy_from_slice(&hasher.finish().to_le_bytes());
        match read_frame(&mut header.as_slice()) {
            Err(FrameError::Corrupt(detail)) => {
                assert!(detail.contains("out of range"), "{detail}");
            }
            _ => panic!("expected Corrupt on insane lengths"),
        }
    }

    #[test]
    fn comm_error_display_is_informative() {
        let e = CommError::Timeout {
            rank: 2,
            peer: 0,
            waited: Duration::from_millis(50),
        };
        assert!(e.to_string().contains("rank 2"));
        assert!(e.to_string().contains("rank 0"));
        let e = CommError::RemoteAbort {
            origin: 3,
            phase: Phase::Expand,
            iteration: 9,
        };
        assert!(e.to_string().contains("rank 3"));
        assert!(e.to_string().contains("expand"));
    }
}
