//! Deterministic fault injection for the distributed executor.
//!
//! [`FaultyTransport`] wraps any [`Transport`] and perturbs exactly the
//! operations named by a [`FaultPlan`]: the plan's triggers fire at precise
//! `(rank, peer, op, nth)` coordinates — the `nth` send or receive this
//! rank performs on that link — so a chaos run is a *pure function of the
//! plan*, with no wall-clock randomness.  The same seed always injects the
//! same fault at the same protocol step, which is what makes chaos tests
//! reproducible and CI-gateable.
//!
//! Fault semantics:
//!
//! * [`FaultAction::Drop`] on a send silently discards the message (the
//!   receiver eventually times out); on a receive it discards the first
//!   arriving message and delivers the next (the receiver typically sees a
//!   [`CommError::TagMismatch`]).
//! * [`FaultAction::Delay`] sleeps before performing the operation,
//!   modeling a stalled link; peers waiting on this rank hit their
//!   deadline.
//! * [`FaultAction::Disconnect`] cuts this side of the link permanently:
//!   the triggering operation and every later one on the link fail with
//!   [`CommError::PeerDisconnected`].
//! * [`FaultAction::Corrupt`] on a receive consumes the inbound message
//!   and reports [`CommError::Corrupt`], modeling a checksum failure; on a
//!   send it mangles the outgoing tag so the receiver observes a typed
//!   [`CommError::TagMismatch`].
//!
//! An **empty plan is an exact pass-through**: every operation reaches the
//! inner transport unmodified, so wrapping with `FaultPlan::empty()` is
//! bit-identical to the unwrapped backend, with identical
//! [`crate::CommCounters`].  The tests in `tests/faults.rs` pin this.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::comm::{CommError, Message, Phase, Tag, Transport};

/// Which side of a point-to-point operation a trigger watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// The rank's `send_raw` calls on the link.
    Send,
    /// The rank's `recv_raw` calls on the link.
    Recv,
}

/// What happens when a trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Discard the message (send) or the first arriving message (recv).
    Drop,
    /// Sleep this long before performing the operation.
    Delay(Duration),
    /// Cut this side of the link permanently.
    Disconnect,
    /// Destroy the frame: `recv` reports [`CommError::Corrupt`], `send`
    /// mangles the tag so the receiver sees a mismatch.
    Corrupt,
}

impl FaultAction {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultAction::Drop => "drop",
            FaultAction::Delay(_) => "delay",
            FaultAction::Disconnect => "disconnect",
            FaultAction::Corrupt => "corrupt",
        }
    }
}

/// One injection point: when rank `rank` performs its `nth` (0-based)
/// operation of kind `op` on the link to `peer`, `action` fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultTrigger {
    /// The rank whose transport misbehaves.
    pub rank: usize,
    /// The peer on the affected link.
    pub peer: usize,
    /// Which operation stream the trigger counts.
    pub op: FaultOp,
    /// 0-based index into that stream.
    pub nth: u64,
    /// What to do when the count is reached.
    pub action: FaultAction,
}

/// A reproducible fault schedule: a set of triggers, each a pure function
/// of `(rank, peer, op, nth)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The injection points, applied independently.
    pub triggers: Vec<FaultTrigger>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// The no-fault plan: wrapping with it is an exact pass-through.
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether this plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.triggers.is_empty()
    }

    /// A single-trigger plan.
    pub fn one(trigger: FaultTrigger) -> FaultPlan {
        FaultPlan {
            triggers: vec![trigger],
        }
    }

    /// Derives a *decisive* single-fault plan from a seed: the trigger sits
    /// on a root-involving link (every rank talks to the root each
    /// iteration, so the trigger point is almost always reached) and uses
    /// only actions that fail the triggering rank immediately
    /// ([`FaultAction::Disconnect`] / [`FaultAction::Corrupt`] on receive),
    /// which guarantees that *if* the trigger fires, every surviving rank
    /// unwinds with a typed error.  Worlds smaller than two ranks have no
    /// links, so the plan is empty.
    pub fn seeded_decisive(seed: u64, num_ranks: usize) -> FaultPlan {
        if num_ranks < 2 {
            return FaultPlan::empty();
        }
        let mut s = seed;
        let nonroot = 1 + (splitmix64(&mut s) as usize) % (num_ranks - 1);
        let faulty_is_root = splitmix64(&mut s).is_multiple_of(2);
        let (rank, peer) = if faulty_is_root {
            (0, nonroot)
        } else {
            (nonroot, 0)
        };
        let nth = splitmix64(&mut s) % 4;
        let (op, action) = match splitmix64(&mut s) % 3 {
            0 => (FaultOp::Send, FaultAction::Disconnect),
            1 => (FaultOp::Recv, FaultAction::Disconnect),
            _ => (FaultOp::Recv, FaultAction::Corrupt),
        };
        FaultPlan::one(FaultTrigger {
            rank,
            peer,
            op,
            nth,
            action,
        })
    }

    /// Derives a single-fault plan from a seed over the *full* action set,
    /// including drops and delays whose outcome depends on where in the
    /// protocol they land: the run must end in a typed error on every rank
    /// or a clean bit-identical completion — never a hang.  `recv_timeout`
    /// sizes the injected delay so it always overshoots the deadline.
    pub fn seeded(seed: u64, num_ranks: usize, recv_timeout: Duration) -> FaultPlan {
        if num_ranks < 2 {
            return FaultPlan::empty();
        }
        let mut s = seed ^ 0xa076_1d64_78bd_642f;
        let nonroot = 1 + (splitmix64(&mut s) as usize) % (num_ranks - 1);
        let faulty_is_root = splitmix64(&mut s).is_multiple_of(2);
        let (rank, peer) = if faulty_is_root {
            (0, nonroot)
        } else {
            (nonroot, 0)
        };
        let nth = splitmix64(&mut s) % 4;
        let op = if splitmix64(&mut s).is_multiple_of(2) {
            FaultOp::Send
        } else {
            FaultOp::Recv
        };
        let action = match splitmix64(&mut s) % 4 {
            0 => FaultAction::Drop,
            1 => FaultAction::Delay(recv_timeout * 2 + Duration::from_millis(50)),
            2 => FaultAction::Disconnect,
            _ => FaultAction::Corrupt,
        };
        FaultPlan::one(FaultTrigger {
            rank,
            peer,
            op,
            nth,
            action,
        })
    }

    /// Wraps a whole world of transports with this plan, sharing `probe`.
    pub fn wrap<T: Transport>(
        &self,
        transports: Vec<T>,
        probe: &FaultProbe,
    ) -> Vec<FaultyTransport<T>> {
        transports
            .into_iter()
            .map(|t| FaultyTransport::new(t, self.clone(), probe.clone()))
            .collect()
    }

    fn action_for(&self, rank: usize, peer: usize, op: FaultOp, nth: u64) -> Option<FaultAction> {
        self.triggers
            .iter()
            .find(|t| t.rank == rank && t.peer == peer && t.op == op && t.nth == nth)
            .map(|t| t.action)
    }
}

/// Shared observer counting how many triggers actually fired across a
/// world.  Tests branch on it: a fired decisive trigger must produce typed
/// failures everywhere; an unfired one must leave the run bit-identical to
/// fault-free execution.
#[derive(Debug, Clone, Default)]
pub struct FaultProbe {
    fired: Arc<AtomicU64>,
}

impl FaultProbe {
    /// A fresh probe with zero recorded firings.
    pub fn new() -> FaultProbe {
        FaultProbe::default()
    }

    /// How many triggers have fired so far.
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::SeqCst)
    }

    fn record(&self) {
        self.fired.fetch_add(1, Ordering::SeqCst);
    }
}

/// A [`Transport`] wrapper that injects the faults of a [`FaultPlan`] at
/// exact operation counts.  With an empty plan it is a bit-identical
/// pass-through.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    plan: FaultPlan,
    probe: FaultProbe,
    send_counts: Vec<u64>,
    recv_counts: Vec<u64>,
    cut: Vec<bool>,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` with the triggers of `plan` that name its rank.
    pub fn new(inner: T, plan: FaultPlan, probe: FaultProbe) -> Self {
        let n = inner.num_ranks();
        FaultyTransport {
            inner,
            plan,
            probe,
            send_counts: vec![0; n],
            recv_counts: vec![0; n],
            cut: vec![false; n],
        }
    }
}

/// Mangles a tag deterministically while keeping it a "regular" protocol
/// tag (never the abort sentinel), so a corrupted send surfaces at the
/// receiver as a typed [`CommError::TagMismatch`].
fn mangle_tag(tag: Tag) -> Tag {
    Tag {
        phase: match tag.phase {
            Phase::Control => Phase::Fold,
            _ => Phase::Control,
        },
        mode: tag.mode ^ 0x1551,
        step: (tag.step ^ 0x0055_aa55) & 0x7fff_ffff,
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn num_ranks(&self) -> usize {
        self.inner.num_ranks()
    }

    fn send_raw(&mut self, to: usize, msg: &Message) -> Result<(), CommError> {
        let nth = self.send_counts[to];
        self.send_counts[to] += 1;
        if self.cut[to] {
            return Err(CommError::PeerDisconnected {
                rank: self.inner.rank(),
                peer: to,
            });
        }
        match self
            .plan
            .action_for(self.inner.rank(), to, FaultOp::Send, nth)
        {
            None => self.inner.send_raw(to, msg),
            Some(FaultAction::Drop) => {
                self.probe.record();
                Ok(())
            }
            Some(FaultAction::Delay(d)) => {
                self.probe.record();
                std::thread::sleep(d);
                self.inner.send_raw(to, msg)
            }
            Some(FaultAction::Disconnect) => {
                self.probe.record();
                self.cut[to] = true;
                Err(CommError::PeerDisconnected {
                    rank: self.inner.rank(),
                    peer: to,
                })
            }
            Some(FaultAction::Corrupt) => {
                self.probe.record();
                let mut mangled = msg.clone();
                mangled.tag = mangle_tag(msg.tag);
                self.inner.send_raw(to, &mangled)
            }
        }
    }

    fn recv_raw(&mut self, from: usize, timeout: Duration) -> Result<Message, CommError> {
        let nth = self.recv_counts[from];
        self.recv_counts[from] += 1;
        if self.cut[from] {
            return Err(CommError::PeerDisconnected {
                rank: self.inner.rank(),
                peer: from,
            });
        }
        match self
            .plan
            .action_for(self.inner.rank(), from, FaultOp::Recv, nth)
        {
            None => self.inner.recv_raw(from, timeout),
            Some(FaultAction::Drop) => {
                self.probe.record();
                // Discard the first arriving message, deliver the next.
                self.inner.recv_raw(from, timeout)?;
                self.inner.recv_raw(from, timeout)
            }
            Some(FaultAction::Delay(d)) => {
                self.probe.record();
                std::thread::sleep(d);
                self.inner.recv_raw(from, timeout)
            }
            Some(FaultAction::Disconnect) => {
                self.probe.record();
                self.cut[from] = true;
                Err(CommError::PeerDisconnected {
                    rank: self.inner.rank(),
                    peer: from,
                })
            }
            Some(FaultAction::Corrupt) => {
                self.probe.record();
                // Consume the inbound message (if any) and report it
                // destroyed, modeling a checksum failure.
                self.inner.recv_raw(from, timeout)?;
                Err(CommError::Corrupt {
                    rank: self.inner.rank(),
                    peer: from,
                    detail: "injected frame corruption".to_string(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{channel_transports, Communicator, Endpoint};

    fn tag(step: u32) -> Tag {
        Tag::new(Phase::Fold, 1, step)
    }

    fn two_rank_world(
        plan: FaultPlan,
    ) -> (
        Vec<Endpoint<FaultyTransport<crate::comm::ChannelTransport>>>,
        FaultProbe,
    ) {
        let probe = FaultProbe::new();
        let world = plan
            .wrap(channel_transports(2), &probe)
            .into_iter()
            .map(Endpoint::new)
            .collect();
        (world, probe)
    }

    fn run_pair<R: Send + 'static>(
        world: Vec<Endpoint<FaultyTransport<crate::comm::ChannelTransport>>>,
        rank0: impl FnOnce(&mut dyn Communicator) -> R + Send,
        rank1: impl FnOnce(&mut dyn Communicator) -> R + Send,
    ) -> (R, R) {
        let mut it = world.into_iter();
        let mut e0 = it.next().unwrap();
        let mut e1 = it.next().unwrap();
        std::thread::scope(|s| {
            let h0 = s.spawn(move || rank0(&mut e0));
            let h1 = s.spawn(move || rank1(&mut e1));
            (h0.join().unwrap(), h1.join().unwrap())
        })
    }

    #[test]
    fn empty_plan_is_exact_pass_through() {
        let (world, probe) = two_rank_world(FaultPlan::empty());
        let msg = Message {
            tag: tag(1),
            ints: vec![9],
            floats: vec![2.5, -0.0],
        };
        let sent = msg.clone();
        let (_, got) = run_pair(
            world,
            move |c| {
                c.send(1, &sent).unwrap();
                None
            },
            |c| Some(c.recv(0, tag(1)).unwrap()),
        );
        assert_eq!(got.unwrap(), msg);
        assert_eq!(probe.fired(), 0);
    }

    #[test]
    fn disconnect_cuts_the_link_permanently() {
        let plan = FaultPlan::one(FaultTrigger {
            rank: 0,
            peer: 1,
            op: FaultOp::Send,
            nth: 1,
            action: FaultAction::Disconnect,
        });
        let (world, probe) = two_rank_world(plan);
        let (errs, _) = run_pair(
            world,
            |c| {
                c.send(1, &Message::empty(tag(1))).unwrap();
                let first = c.send(1, &Message::empty(tag(2))).unwrap_err();
                let second = c.send(1, &Message::empty(tag(3))).unwrap_err();
                Some((first, second))
            },
            |c| {
                c.recv(0, tag(1)).unwrap();
                None
            },
        );
        let (first, second) = errs.unwrap();
        assert_eq!(first, CommError::PeerDisconnected { rank: 0, peer: 1 });
        assert_eq!(second, CommError::PeerDisconnected { rank: 0, peer: 1 });
        assert_eq!(probe.fired(), 1, "the cut itself fires once");
    }

    #[test]
    fn dropped_send_times_out_the_receiver() {
        let plan = FaultPlan::one(FaultTrigger {
            rank: 0,
            peer: 1,
            op: FaultOp::Send,
            nth: 0,
            action: FaultAction::Drop,
        });
        let probe = FaultProbe::new();
        let deadline = crate::comm::CommDeadline::with_recv_timeout(Duration::from_millis(30));
        let mut it = plan
            .wrap(channel_transports(2), &probe)
            .into_iter()
            .map(|t| Endpoint::with_deadline(t, deadline));
        let mut e0 = it.next().unwrap();
        let mut e1 = it.next().unwrap();
        let err = std::thread::scope(|s| {
            let h0 = s.spawn(move || {
                e0.send(1, &Message::empty(tag(1))).unwrap();
                // Hold the endpoint open until released so the peer sees a
                // timeout, not a disconnect; our own deadline may fire
                // first, so retry until the release arrives.
                loop {
                    match e0.recv(1, tag(2)) {
                        Ok(_) => break,
                        Err(crate::comm::CommError::Timeout { .. }) => continue,
                        Err(e) => panic!("unexpected error waiting for release: {e:?}"),
                    }
                }
            });
            let h1 = s.spawn(move || {
                let err = e1.recv(0, tag(1)).unwrap_err();
                e1.send(0, &Message::empty(tag(2))).unwrap();
                err
            });
            h0.join().unwrap();
            h1.join().unwrap()
        });
        assert!(
            matches!(
                err,
                CommError::Timeout {
                    rank: 1,
                    peer: 0,
                    ..
                }
            ),
            "expected Timeout, got {err:?}"
        );
        assert_eq!(probe.fired(), 1);
    }

    #[test]
    fn corrupt_recv_reports_destroyed_frame() {
        let plan = FaultPlan::one(FaultTrigger {
            rank: 1,
            peer: 0,
            op: FaultOp::Recv,
            nth: 0,
            action: FaultAction::Corrupt,
        });
        let (world, probe) = two_rank_world(plan);
        let (_, err) = run_pair(
            world,
            |c| {
                c.send(1, &Message::empty(tag(1))).unwrap();
                None
            },
            |c| Some(c.recv(0, tag(1)).unwrap_err()),
        );
        assert!(
            matches!(
                err,
                Some(CommError::Corrupt {
                    rank: 1,
                    peer: 0,
                    ..
                })
            ),
            "expected Corrupt, got {err:?}"
        );
        assert_eq!(probe.fired(), 1);
    }

    #[test]
    fn corrupt_send_surfaces_as_tag_mismatch_at_receiver() {
        let plan = FaultPlan::one(FaultTrigger {
            rank: 0,
            peer: 1,
            op: FaultOp::Send,
            nth: 0,
            action: FaultAction::Corrupt,
        });
        let (world, probe) = two_rank_world(plan);
        let (_, err) = run_pair(
            world,
            |c| {
                c.send(1, &Message::empty(tag(1))).unwrap();
                None
            },
            |c| Some(c.recv(0, tag(1)).unwrap_err()),
        );
        assert!(
            matches!(
                err,
                Some(CommError::TagMismatch {
                    rank: 1,
                    peer: 0,
                    ..
                })
            ),
            "expected TagMismatch, got {err:?}"
        );
        assert_eq!(probe.fired(), 1);
    }

    #[test]
    fn dropped_recv_discards_one_message() {
        let plan = FaultPlan::one(FaultTrigger {
            rank: 1,
            peer: 0,
            op: FaultOp::Recv,
            nth: 0,
            action: FaultAction::Drop,
        });
        let (world, probe) = two_rank_world(plan);
        let (_, err) = run_pair(
            world,
            |c| {
                c.send(1, &Message::empty(tag(1))).unwrap();
                c.send(1, &Message::empty(tag(2))).unwrap();
                None
            },
            |c| Some(c.recv(0, tag(1)).unwrap_err()),
        );
        // The first message is discarded; the second arrives with the
        // "wrong" tag for the protocol step.
        match err {
            Some(CommError::TagMismatch { got, .. }) => assert_eq!(got, tag(2)),
            other => panic!("expected TagMismatch, got {other:?}"),
        }
        assert_eq!(probe.fired(), 1);
    }

    #[test]
    fn mangled_tag_never_collides_with_abort() {
        for phase in Phase::ALL {
            for step in [0u32, 1, 7, crate::comm::ABORT_STEP] {
                let mangled = mangle_tag(Tag::new(phase, 3, step));
                let as_msg = Message::empty(mangled);
                assert_eq!(crate::comm::parse_abort(&as_msg), None);
                assert_ne!(mangled, Tag::new(phase, 3, step));
            }
        }
    }

    #[test]
    fn seeded_plans_are_pure_functions_of_the_seed() {
        for seed in 0..64u64 {
            for p in 2..5usize {
                let a = FaultPlan::seeded_decisive(seed, p);
                let b = FaultPlan::seeded_decisive(seed, p);
                assert_eq!(a, b);
                assert_eq!(a.triggers.len(), 1);
                let t = &a.triggers[0];
                assert!(t.rank == 0 || t.peer == 0, "decisive fault must touch root");
                assert!(t.rank < p && t.peer < p && t.rank != t.peer);
                let c = FaultPlan::seeded(seed, p, Duration::from_millis(100));
                assert_eq!(c, FaultPlan::seeded(seed, p, Duration::from_millis(100)));
            }
            assert!(FaultPlan::seeded_decisive(seed, 1).is_empty());
        }
    }
}
