//! Distributed-memory simulator for coarse- and fine-grain parallel HOOI.
//!
//! The paper's headline experiments (Tables II–IV) run a hybrid MPI+OpenMP
//! implementation on an IBM BlueGene/Q with up to 256 MPI ranks × 16 cores.
//! This crate is the substitution described in DESIGN.md: it executes the
//! *same algorithm* (Algorithm 4 of the paper) rank by rank on one machine,
//! accounts every word that would cross the network, and converts the
//! measured per-rank work and communication volumes into time with an
//! explicit BlueGene/Q-like machine model.
//!
//! Components:
//!
//! * [`machine`] — the analytic cost model (per-thread TTMc rate, bandwidth
//!   bound TRSVD rate, network bandwidth/latency),
//! * [`setup`] — builds the data distribution for a given grain
//!   (coarse/fine) and partitioning method (random, block, hypergraph),
//! * [`stats`] — per-mode, per-rank `W_TTMc`, `W_TRSVD` and communication
//!   volumes — the raw numbers of the paper's Table III,
//! * [`cost`] — combines statistics and machine model into per-iteration
//!   times and phase breakdowns — Tables II, IV and V,
//! * [`exec`] — a *numerical* distributed execution that runs per-rank
//!   TTMc locally, merges partial results exactly as the algorithm's
//!   communication would, and verifies bit-level agreement with the
//!   shared-memory solver.

pub mod cost;
pub mod exec;
pub mod machine;
pub mod setup;
pub mod stats;

pub use cost::{simulate_iteration, IterationCost};
pub use machine::MachineModel;
pub use setup::{DistributedSetup, Grain, PartitionMethod, SimConfig};
pub use stats::{iteration_stats, IterationStats, ModeRankStats};
