//! Distributed-memory simulator **and executor** for coarse- and
//! fine-grain parallel HOOI.
//!
//! The paper's headline experiments (Tables II–IV) run a hybrid MPI+OpenMP
//! implementation on an IBM BlueGene/Q with up to 256 MPI ranks × 16 cores.
//! This crate substitutes for that machine in two complementary ways:
//!
//! * **The simulator** ([`setup`] → [`stats`] → [`cost`]) never touches
//!   floating-point data: it builds the data distribution for a grain
//!   (coarse/fine) and partitioning method (random, block, hypergraph),
//!   accounts every word that would cross the network, and converts
//!   per-rank work and communication volumes into time with an explicit
//!   BlueGene/Q-like [`machine`] model.  It scales to 256 ranks in
//!   milliseconds and regenerates the paper's tables.
//! * **The executor** ([`comm`] + [`exec`]) actually *runs* Algorithm 4 as
//!   message-passing ranks: long-lived concurrent workers that hold only
//!   their own nonzeros and exchange expand/fold messages through the
//!   [`comm::Communicator`] trait.  Two backends prove the boundary is
//!   honest — in-process channels ([`comm::channel_world`]) and real
//!   loopback TCP sockets ([`comm::tcp_world`]).  The executor's
//!   owner-ordered fold reduction makes its factors and core
//!   **bit-identical** to [`hooi::TuckerSolver`] at matching pool width,
//!   and its measured per-phase byte counters are asserted equal to the
//!   simulator's predicted expand/fold volumes — the cost model is a
//!   tested artifact, not a free-standing formula.
//!
//! Pick the simulator to sweep configurations and regenerate tables; pick
//! the executor (channel backend) to validate numerics and measure real
//! wall time on one machine; pick the TCP backend when you need evidence
//! that the algorithm, not shared memory, produced the result.
//!
//! Components:
//!
//! * [`machine`] — the analytic cost model (per-thread TTMc rate, bandwidth
//!   bound TRSVD rate, network bandwidth/latency),
//! * [`setup`] — the data distribution and the holder/needer row relations
//!   shared by predictions and execution,
//! * [`stats`] — per-mode, per-rank `W_TTMc`, `W_TRSVD`, communication
//!   volumes, and the executor-facing expand/fold word predictions,
//! * [`cost`] — statistics + machine model → per-iteration times (Tables
//!   II, IV and V),
//! * [`comm`] — the `Communicator` trait, counters, typed
//!   [`comm::CommError`]s with per-endpoint [`comm::CommDeadline`]s, and
//!   the channel/TCP backends,
//! * [`fault`] — deterministic fault injection: a seeded
//!   [`fault::FaultPlan`] drives a [`fault::FaultyTransport`] wrapper that
//!   drops, delays, disconnects, or corrupts exact messages so chaos tests
//!   are reproducible,
//! * [`exec`] — the message-passing executor
//!   ([`exec::distributed_hooi`], [`exec::execute_hooi`],
//!   [`exec::distributed_ttmc`], and the chaos entry point
//!   [`exec::execute_hooi_chaos`]).
//!
//! The executor's failure model: every receive is bounded by the
//! endpoint's deadline, any observed [`comm::CommError`] triggers a poison
//! abort on surviving links, and every live rank unwinds to a typed
//! `TuckerError::RankFailed` carrying the origin rank, phase, and
//! iteration — no hangs, no cross-thread panics.

pub mod comm;
pub mod cost;
pub mod exec;
pub mod fault;
pub mod machine;
pub mod setup;
pub mod stats;

pub use comm::{
    channel_world, loopback_tcp_available, tcp_world, tcp_world_with, CommBackend, CommCounters,
    CommDeadline, CommError, Communicator, Message, Phase, Tag,
};
pub use cost::{simulate_iteration, IterationCost};
pub use exec::{
    distributed_hooi, distributed_ttmc, execute_hooi, execute_hooi_chaos, ChaosRun, DistributedRun,
    ExecOptions, FailureSource, RankFailure,
};
pub use fault::{FaultAction, FaultOp, FaultPlan, FaultProbe, FaultTrigger, FaultyTransport};
pub use machine::MachineModel;
pub use setup::{DistributedSetup, Grain, ModeRelations, PartitionMethod, RowRelations, SimConfig};
pub use stats::{iteration_stats, IterationStats, ModeRankStats};
