//! Fit and reconstruction-error metrics.
//!
//! With orthonormal factor matrices, the Tucker approximation error obeys
//! `‖X − [[G; U₁,…,U_N]]‖² = ‖X‖² − ‖G‖²`, so HOOI can monitor convergence
//! from the core norm alone (the `(|X| − |G|)/|X|` measure the paper checks
//! at the end of each iteration) without ever reconstructing the tensor.

use crate::core_tensor::reconstruct_at;
use linalg::Matrix;
use sptensor::{DenseTensor, SparseTensor};

/// The fit of a Tucker approximation computed from norms:
/// `fit = 1 − sqrt(max(0, ‖X‖² − ‖G‖²)) / ‖X‖` (1 = perfect).
///
/// Valid when the factor matrices are orthonormal.  Returns 1 for a zero
/// tensor.
pub fn fit_from_norms(tensor_norm: f64, core_norm: f64) -> f64 {
    if tensor_norm == 0.0 {
        return 1.0;
    }
    let residual_sq = (tensor_norm * tensor_norm - core_norm * core_norm).max(0.0);
    1.0 - residual_sq.sqrt() / tensor_norm
}

/// The relative residual `sqrt(max(0, ‖X‖² − ‖G‖²)) / ‖X‖` — the quantity
/// the paper calls the change-monitored fit measure.  0 = perfect.
pub fn relative_residual_from_norms(tensor_norm: f64, core_norm: f64) -> f64 {
    1.0 - fit_from_norms(tensor_norm, core_norm)
}

/// Root-mean-square error of the model evaluated at the stored nonzeros
/// only: `sqrt(Σ (x − x̂)² / nnz)`.  This is the metric recommender-system
/// applications of Tucker actually care about, and it does not require the
/// factors to be orthonormal.
pub fn rmse_at_nonzeros(tensor: &SparseTensor, core: &DenseTensor, factors: &[Matrix]) -> f64 {
    if tensor.nnz() == 0 {
        return 0.0;
    }
    let mut sum = 0.0;
    for (idx, v) in tensor.iter() {
        let approx = reconstruct_at(core, factors, idx);
        sum += (v - approx) * (v - approx);
    }
    (sum / tensor.nnz() as f64).sqrt()
}

/// Exact relative Frobenius error `‖X − X̂‖_F / ‖X‖_F` computed by
/// materializing both tensors densely.  Exponential in memory — use only on
/// small tensors (tests, examples).
///
/// # Panics
/// Panics if the dense tensor would exceed `max_entries` entries.
pub fn full_relative_error(
    tensor: &SparseTensor,
    core: &DenseTensor,
    factors: &[Matrix],
    max_entries: usize,
) -> f64 {
    let total: usize = tensor.dims().iter().product();
    assert!(
        total <= max_entries,
        "refusing to materialize a dense tensor with {total} entries (limit {max_entries})"
    );
    let mut dense = DenseTensor::zeros(tensor.dims().to_vec());
    for (idx, v) in tensor.iter() {
        let lin = dense.linear_index(idx);
        dense.as_mut_slice()[lin] += v;
    }
    let factor_refs: Vec<&Matrix> = factors.iter().collect();
    let approx = core.ttm_chain(&factor_refs, false);
    let norm = dense.frobenius_norm();
    if norm == 0.0 {
        return 0.0;
    }
    dense.frobenius_distance(&approx) / norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core_tensor::core_from_scratch;
    use datagen::{lowrank_tensor, LowRankSpec};

    #[test]
    fn fit_bounds() {
        assert_eq!(fit_from_norms(10.0, 10.0), 1.0);
        assert!((fit_from_norms(10.0, 0.0) - 0.0).abs() < 1e-12);
        // Core norm slightly above tensor norm from rounding: clamped.
        assert_eq!(fit_from_norms(10.0, 10.0 + 1e-9), 1.0);
        assert_eq!(fit_from_norms(0.0, 0.0), 1.0);
    }

    #[test]
    fn residual_complements_fit() {
        let f = fit_from_norms(5.0, 3.0);
        let r = relative_residual_from_norms(5.0, 3.0);
        assert!((f + r - 1.0).abs() < 1e-12);
        assert!((r - 4.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn exact_lowrank_model_has_zero_rmse() {
        let lr = lowrank_tensor(&LowRankSpec {
            dims: vec![15, 12, 10],
            ranks: vec![2, 2, 2],
            nnz: 400,
            noise: 0.0,
            seed: 3,
        });
        let rmse = rmse_at_nonzeros(&lr.tensor, &lr.core, &lr.factors);
        assert!(rmse < 1e-10, "rmse {rmse}");
    }

    #[test]
    fn noisy_model_has_positive_rmse() {
        let lr = lowrank_tensor(&LowRankSpec {
            dims: vec![15, 12, 10],
            ranks: vec![2, 2, 2],
            nnz: 400,
            noise: 0.05,
            seed: 3,
        });
        let rmse = rmse_at_nonzeros(&lr.tensor, &lr.core, &lr.factors);
        assert!(rmse > 1e-4);
    }

    #[test]
    fn norm_identity_holds_for_orthonormal_factors() {
        // ‖X − X̂‖² = ‖X‖² − ‖G‖² when factors are orthonormal and G is the
        // exact projection; verify through the dense path.
        let lr = lowrank_tensor(&LowRankSpec {
            dims: vec![8, 7, 6],
            ranks: vec![2, 2, 2],
            nnz: 150,
            noise: 0.2,
            seed: 9,
        });
        let core = core_from_scratch(&lr.tensor, &lr.factors);
        let full_err = full_relative_error(&lr.tensor, &core, &lr.factors, 1_000_000);
        let norm_err =
            relative_residual_from_norms(lr.tensor.frobenius_norm(), core.frobenius_norm());
        assert!(
            (full_err - norm_err).abs() < 1e-8,
            "{full_err} vs {norm_err}"
        );
    }

    #[test]
    #[should_panic]
    fn full_error_refuses_huge_tensors() {
        let t = SparseTensor::new(vec![1000, 1000, 1000]);
        let core = DenseTensor::zeros(vec![1, 1, 1]);
        let factors = vec![
            Matrix::zeros(1000, 1),
            Matrix::zeros(1000, 1),
            Matrix::zeros(1000, 1),
        ];
        let _ = full_relative_error(&t, &core, &factors, 1_000_000);
    }

    #[test]
    fn rmse_of_empty_tensor_is_zero() {
        let t = SparseTensor::new(vec![3, 3]);
        let core = DenseTensor::zeros(vec![1, 1]);
        let factors = vec![Matrix::zeros(3, 1), Matrix::zeros(3, 1)];
        assert_eq!(rmse_at_nonzeros(&t, &core, &factors), 0.0);
    }
}
