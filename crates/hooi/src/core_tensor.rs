//! Core tensor formation.
//!
//! After the factor matrices of all modes are updated, HOOI forms the core
//! `G = X ×₁ U₁ᵀ ×₂ … ×_N U_Nᵀ` to evaluate the fit (Algorithm 1, line 6).
//! The paper observes that at the last mode the TTMc result `Y` already
//! holds `X ×₁ U₁ᵀ … ×_{N−1} U_{N−1}ᵀ` in matricized form, so the core is a
//! single small dense multiplication `G_(N) = U_Nᵀ Y_(N)` — negligible cost
//! compared to the sparse TTMc (Table IV reports 0.7 – 5.2 %).

use crate::symbolic::SymbolicMode;
use linalg::blas::gemm_tn;
use linalg::Matrix;
use sptensor::{DenseTensor, SparseTensor};

/// Forms the core tensor from the *last mode's* TTMc result.
///
/// * `compact` — the compact TTMc result of the last mode
///   (`|J_{N-1}| × Π_{t≠N-1} R_t`),
/// * `sym` — symbolic data of the last mode (row mapping),
/// * `factor_last` — the just-updated factor matrix `U_{N-1}` (`I_{N-1} × R_{N-1}`),
/// * `ranks` — the rank of every mode, used to shape the core.
pub fn core_from_last_ttmc(
    compact: &Matrix,
    sym: &SymbolicMode,
    factor_last: &Matrix,
    ranks: &[usize],
) -> DenseTensor {
    let mut core = DenseTensor::zeros(ranks.to_vec());
    core_from_last_ttmc_into(compact, sym, factor_last, ranks, &mut core);
    core
}

/// [`core_from_last_ttmc`] writing into an existing `R_1 × … × R_N` tensor,
/// overwriting every entry — the buffer-reusing variant the HOOI loop calls
/// with the workspace's core buffer every iteration.
pub fn core_from_last_ttmc_into(
    compact: &Matrix,
    sym: &SymbolicMode,
    factor_last: &Matrix,
    ranks: &[usize],
    out: &mut DenseTensor,
) {
    let last = ranks.len() - 1;
    let width: usize = ranks[..last].iter().product();
    assert_eq!(compact.ncols(), width, "TTMc width does not match ranks");
    assert_eq!(compact.nrows(), sym.num_rows());
    assert_eq!(factor_last.ncols(), ranks[last]);
    assert_eq!(out.dims(), ranks, "core buffer shape does not match ranks");

    // G_(last) = U_lastᵀ (restricted to the nonempty rows) · Y_compact.
    let u_rows = factor_last.select_rows(&sym.rows);
    let g_unfolded = gemm_tn(&u_rows, compact); // R_last × Π_{t≠last} R_t
    DenseTensor::fold_into(&g_unfolded, last, out);
}

/// Forms the core tensor directly from the sparse tensor and all factor
/// matrices: `g(r₁,…,r_N) = Σ_{x ∈ X} x · Π_n U_n(i_n, r_n)`.
///
/// Cost `O(nnz · Π R_n)`; used for verification and by callers that do not
/// run the full HOOI loop.
pub fn core_from_scratch(tensor: &SparseTensor, factors: &[Matrix]) -> DenseTensor {
    assert_eq!(factors.len(), tensor.order());
    let ranks: Vec<usize> = factors.iter().map(|u| u.ncols()).collect();
    let len: usize = ranks.iter().product();
    let mut data = vec![0.0; len];
    let mut scratch = vec![0.0; len];
    let mut rows: Vec<&[f64]> = Vec::with_capacity(tensor.order());
    for (idx, value) in tensor.iter() {
        rows.clear();
        for (t, &i) in idx.iter().enumerate() {
            rows.push(factors[t].row(i));
        }
        sptensor::kron::accumulate_scaled_kron(value, &rows, &mut data, &mut scratch);
    }
    DenseTensor::from_vec(ranks, data)
}

/// Reconstructs the value of the Tucker model `[[G; U₁,…,U_N]]` at a single
/// coordinate.
pub fn reconstruct_at(core: &DenseTensor, factors: &[Matrix], index: &[usize]) -> f64 {
    debug_assert_eq!(factors.len(), core.order());
    let mut sum = 0.0;
    let mut ridx = vec![0usize; core.order()];
    for pos in 0..core.len() {
        let g = core.as_slice()[pos];
        if g == 0.0 {
            continue;
        }
        core.unlinearize(pos, &mut ridx);
        let mut prod = g;
        for (n, &r) in ridx.iter().enumerate() {
            prod *= factors[n][(index[n], r)];
            if prod == 0.0 {
                break;
            }
        }
        sum += prod;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::SymbolicTtmc;
    use crate::ttmc::ttmc_mode;
    use datagen::random_tensor;

    fn orthonormal_factors(dims: &[usize], ranks: &[usize], seed: u64) -> Vec<Matrix> {
        dims.iter()
            .zip(ranks.iter())
            .enumerate()
            .map(|(m, (&d, &r))| {
                let mut u = Matrix::random_signed(d, r, seed + m as u64);
                linalg::qr::orthonormalize_columns(&mut u);
                u
            })
            .collect()
    }

    #[test]
    fn core_from_last_ttmc_matches_scratch() {
        let t = random_tensor(&[12, 10, 8], 300, 4);
        let ranks = [3, 3, 2];
        let factors = orthonormal_factors(t.dims(), &ranks, 7);
        let sym = SymbolicTtmc::build(&t);
        let last = 2;
        let compact = ttmc_mode(&t, sym.mode(last), &factors, last);
        let g1 = core_from_last_ttmc(&compact, sym.mode(last), &factors[last], &ranks);
        let g2 = core_from_scratch(&t, &factors);
        assert_eq!(g1.dims(), &ranks);
        assert!(g1.frobenius_distance(&g2) < 1e-9 * g2.frobenius_norm().max(1.0));
    }

    #[test]
    fn core_from_last_ttmc_matches_scratch_4mode() {
        let t = random_tensor(&[6, 7, 5, 8], 200, 9);
        let ranks = [2, 2, 2, 3];
        let factors = orthonormal_factors(t.dims(), &ranks, 3);
        let sym = SymbolicTtmc::build(&t);
        let last = 3;
        let compact = ttmc_mode(&t, sym.mode(last), &factors, last);
        let g1 = core_from_last_ttmc(&compact, sym.mode(last), &factors[last], &ranks);
        let g2 = core_from_scratch(&t, &factors);
        assert!(g1.frobenius_distance(&g2) < 1e-9 * g2.frobenius_norm().max(1.0));
    }

    #[test]
    fn core_from_scratch_matches_dense_ttm_chain() {
        let t = random_tensor(&[5, 6, 7], 80, 2);
        let ranks = [2, 3, 2];
        let factors = orthonormal_factors(t.dims(), &ranks, 5);
        // Dense reference: materialize X, apply Uᵀ along every mode.
        let mut dense = DenseTensor::zeros(t.dims().to_vec());
        for (idx, v) in t.iter() {
            let lin = dense.linear_index(idx);
            dense.as_mut_slice()[lin] += v;
        }
        let mut reference = dense;
        for (m, u) in factors.iter().enumerate() {
            reference = reference.ttm(m, u, true);
        }
        let g = core_from_scratch(&t, &factors);
        assert!(g.frobenius_distance(&reference) < 1e-9 * reference.frobenius_norm().max(1.0));
    }

    #[test]
    fn reconstruct_at_matches_full_reconstruction() {
        let t = random_tensor(&[6, 5, 4], 40, 8);
        let ranks = [2, 2, 2];
        let factors = orthonormal_factors(t.dims(), &ranks, 11);
        let g = core_from_scratch(&t, &factors);
        let factor_refs: Vec<&Matrix> = factors.iter().collect();
        let full = g.ttm_chain(&factor_refs, false);
        for (idx, _) in t.iter().take(20) {
            let a = reconstruct_at(&g, &factors, idx);
            let b = full.get(idx);
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn core_of_empty_tensor_is_zero() {
        let t = SparseTensor::new(vec![4, 4, 4]);
        let factors = orthonormal_factors(&[4, 4, 4], &[2, 2, 2], 1);
        let g = core_from_scratch(&t, &factors);
        assert_eq!(g.frobenius_norm(), 0.0);
    }
}
