//! Ready-made [`IterationObserver`]s.
//!
//! Every caller that wants a wall-clock budget used to hand-roll the same
//! closure: check the elapsed time, remember the best fit, return
//! [`IterationControl::Stop`].  [`DeadlineObserver`] packages that pattern —
//! a service attaches one per request and reads back whether the solve was
//! truncated and what fit it had reached when the budget expired.

use crate::solver::{IterationControl, IterationObserver, IterationReport};
use std::time::{Duration, Instant};

/// Stops a solve once a wall-clock budget is spent, keeping the best fit
/// seen so far.
///
/// HOOI improves the fit monotonically and every completed iteration leaves
/// a full, orthonormal factor set, so stopping after iteration `k` returns
/// the exact decomposition a `max_iterations = k` solve would have produced
/// — a *deterministic prefix* of the untruncated trajectory.  Only the
/// number of completed iterations depends on the clock.
///
/// ```
/// use hooi::{DeadlineObserver, PlanOptions, TuckerConfig, TuckerSolver};
/// use sptensor::SparseTensor;
/// use std::time::Duration;
///
/// let tensor = SparseTensor::from_entries(
///     vec![6, 5, 4],
///     &[(vec![0, 1, 2], 1.0), (vec![3, 2, 0], 2.0), (vec![5, 4, 3], 3.0)],
/// );
/// let mut solver = TuckerSolver::plan(&tensor, PlanOptions::new().num_threads(1))?;
/// let mut deadline = DeadlineObserver::after(Duration::from_secs(60));
/// let result = solver.solve_with_observer(
///     &TuckerConfig::new(vec![2, 2, 2]).max_iterations(3),
///     &mut deadline,
/// )?;
/// // A generous budget never truncates; the observer still tracked the fit.
/// assert!(!deadline.stopped_early());
/// assert_eq!(deadline.best_fit(), Some(result.final_fit()));
/// # Ok::<(), hooi::TuckerError>(())
/// ```
#[derive(Debug)]
pub struct DeadlineObserver {
    deadline: Instant,
    stopped_early: bool,
    best_fit: Option<f64>,
    iterations_seen: usize,
}

impl DeadlineObserver {
    /// An observer that stops the solve at the first completed iteration
    /// after `budget` of wall-clock time, counted from this call.
    pub fn after(budget: Duration) -> Self {
        DeadlineObserver::at(Instant::now() + budget)
    }

    /// An observer that stops the solve at the first completed iteration
    /// after the absolute `deadline` — what a service uses when the budget
    /// is counted from the request's *arrival*, not from the solve start.
    pub fn at(deadline: Instant) -> Self {
        DeadlineObserver {
            deadline,
            stopped_early: false,
            best_fit: None,
            iterations_seen: 0,
        }
    }

    /// Whether the observer cut the solve short because the deadline
    /// passed.  `false` also while no solve has run yet.
    pub fn stopped_early(&self) -> bool {
        self.stopped_early
    }

    /// The best (= latest, since HOOI is monotone) fit seen so far; `None`
    /// before the first completed iteration.
    pub fn best_fit(&self) -> Option<f64> {
        self.best_fit
    }

    /// Number of completed iterations the observer has seen.
    pub fn iterations_seen(&self) -> usize {
        self.iterations_seen
    }

    /// Resets the flags and fit so the observer can watch another solve
    /// against the same deadline.
    pub fn reset(&mut self) {
        self.stopped_early = false;
        self.best_fit = None;
        self.iterations_seen = 0;
    }
}

impl IterationObserver for DeadlineObserver {
    fn on_iteration(&mut self, report: &IterationReport) -> IterationControl {
        self.iterations_seen = report.iteration;
        let best = self.best_fit.get_or_insert(report.fit);
        if report.fit > *best {
            *best = report.fit;
        }
        if Instant::now() >= self.deadline {
            self.stopped_early = true;
            IterationControl::Stop
        } else {
            IterationControl::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TuckerConfig;
    use crate::solver::{PlanOptions, TuckerSolver};
    use datagen::random_tensor;

    #[test]
    fn expired_deadline_stops_after_one_iteration() {
        let t = random_tensor(&[15, 15, 15], 600, 4);
        let mut solver = TuckerSolver::plan(&t, PlanOptions::new().num_threads(1)).unwrap();
        let config = TuckerConfig::new(vec![2, 2, 2])
            .max_iterations(50)
            .fit_tolerance(-1.0); // never self-stop
        let mut obs = DeadlineObserver::after(Duration::ZERO);
        let result = solver.solve_with_observer(&config, &mut obs).unwrap();
        // The deadline was already over when the first iteration completed:
        // the solve stops there, with that iteration's full factor set.
        assert_eq!(result.iterations, 1);
        assert!(obs.stopped_early());
        assert_eq!(obs.best_fit(), Some(result.final_fit()));
        assert_eq!(obs.iterations_seen(), 1);
    }

    #[test]
    fn generous_deadline_never_truncates() {
        let t = random_tensor(&[12, 12, 12], 400, 9);
        let mut solver = TuckerSolver::plan(&t, PlanOptions::new().num_threads(1)).unwrap();
        let config = TuckerConfig::new(vec![2, 2, 2]).max_iterations(4);
        let plain = solver.solve(&config).unwrap();
        let mut obs = DeadlineObserver::after(Duration::from_secs(3600));
        let watched = solver.solve_with_observer(&config, &mut obs).unwrap();
        assert!(!obs.stopped_early());
        assert_eq!(watched.fits, plain.fits);
        assert_eq!(watched.factors, plain.factors);
    }

    #[test]
    fn truncated_solve_is_a_prefix_of_the_full_trajectory() {
        let t = random_tensor(&[15, 12, 10], 500, 21);
        let mut solver = TuckerSolver::plan(&t, PlanOptions::new().num_threads(1)).unwrap();
        let config = TuckerConfig::new(vec![3, 3, 3])
            .max_iterations(20)
            .fit_tolerance(-1.0)
            .seed(5);
        let mut obs = DeadlineObserver::after(Duration::ZERO);
        let truncated = solver.solve_with_observer(&config, &mut obs).unwrap();
        assert!(obs.stopped_early());
        // Re-solving with max_iterations pinned to the truncation point must
        // reproduce the truncated result bit for bit.
        let replay = solver
            .solve(&config.clone().max_iterations(truncated.iterations))
            .unwrap();
        assert_eq!(truncated.factors, replay.factors);
        assert_eq!(truncated.core.as_slice(), replay.core.as_slice());
        assert_eq!(truncated.fits, replay.fits);
    }

    #[test]
    fn reset_clears_state_for_reuse() {
        let t = random_tensor(&[10, 10, 10], 200, 2);
        let mut solver = TuckerSolver::plan(&t, PlanOptions::new().num_threads(1)).unwrap();
        let config = TuckerConfig::new(vec![2, 2, 2]).max_iterations(3);
        let mut obs = DeadlineObserver::after(Duration::ZERO);
        solver.solve_with_observer(&config, &mut obs).unwrap();
        assert!(obs.stopped_early());
        obs.reset();
        assert!(!obs.stopped_early());
        assert_eq!(obs.best_fit(), None);
        assert_eq!(obs.iterations_seen(), 0);
    }
}
