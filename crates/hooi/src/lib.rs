//! Sparse Tucker decomposition via HOOI — the primary contribution of
//! Kaya & Uçar (ICPP 2016), reimplemented in Rust.
//!
//! The pipeline mirrors the paper's Algorithm 3:
//!
//! 1. [`symbolic`] — the *symbolic TTMc* preprocessing step: for every mode
//!    `n`, build the update list `ul_n(i)` of nonzeros contributing to row
//!    `i` of the matricized TTMc result, so that the numeric step is
//!    lock-free and all index arithmetic is hoisted out of the HOOI loop.
//! 2. [`ttmc`] — the *nonzero-based* numeric TTMc (paper Eq. (4) /
//!    Algorithm 2): each nonzero contributes `x · ⊗_{t≠n} U_t(i_t, :)` to
//!    its row, computed in parallel over rows with rayon, streaming the
//!    mode-sorted nonzero layout; [`dimtree`] — the flop-sharing
//!    dimension-tree variant that materializes shared partial contractions
//!    once per iteration and serves every mode from them (the solver's
//!    default, [`TtmcStrategy::DimensionTree`]).
//! 3. [`trsvd`] — the truncated SVD of the matricized result using the
//!    matrix-free Lanczos solver (the SLEPc stand-in), or alternatives.
//! 4. [`solver`] — the plan/execute split: [`TuckerSolver::plan`] runs the
//!    symbolic analysis once and owns the thread pool and scratch
//!    [`workspace`]; [`TuckerSolver::solve`] /
//!    [`TuckerSolver::solve_many`] run HOOI at any rank/seed/backend
//!    without re-planning, report failures as [`TuckerError`] values, and
//!    stream [`solver::IterationReport`]s to an [`IterationObserver`].
//! 5. [`hooi`] — the result types ([`TuckerDecomposition`],
//!    [`TimingBreakdown`]) and the one-shot [`tucker_hooi`] convenience
//!    wrapper over a single-use solver session.
//!
//! Baselines and extras:
//!
//! * [`met`] — a MET-style (Kolda & Sun) TTM-chain baseline that
//!   materializes semi-sparse intermediates, used in the paper's
//!   single-core comparison;
//! * [`hosvd`] — HOSVD-style initialization for small tensors plus the
//!   default random initialization;
//! * [`core_tensor`], [`fit`] — core extraction and fit/error metrics.

pub mod config;
pub mod core_tensor;
pub mod dimtree;
pub mod error;
pub mod fit;
pub mod hooi;
pub mod hosvd;
pub mod met;
pub mod observers;
pub mod solver;
pub mod symbolic;
pub mod trsvd;
pub mod ttmc;
pub mod workspace;

pub use config::{IndexLayout, Initialization, TrsvdBackend, TtmcStrategy, TuckerConfig};
pub use dimtree::{per_mode_costs, DimTree, TtmcCosts};
pub use error::TuckerError;
pub use hooi::{tucker_hooi, tucker_hooi_in_current_pool, TimingBreakdown, TuckerDecomposition};
pub use observers::DeadlineObserver;
pub use solver::{
    IterationControl, IterationObserver, IterationReport, PlanOptions, TuckerSession, TuckerSolver,
};
pub use sptensor::simd::KernelIsa;
pub use symbolic::{SymbolicMode, SymbolicTtmc};
pub use ttmc::{
    ttmc_contribution_into, ttmc_mode, ttmc_mode_into, ttmc_mode_into_isa, ttmc_mode_sequential,
    ttmc_row_into,
};
pub use workspace::HooiWorkspace;
