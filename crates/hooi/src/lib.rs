//! Sparse Tucker decomposition via HOOI — the primary contribution of
//! Kaya & Uçar (ICPP 2016), reimplemented in Rust.
//!
//! The pipeline mirrors the paper's Algorithm 3:
//!
//! 1. [`symbolic`] — the *symbolic TTMc* preprocessing step: for every mode
//!    `n`, build the update list `ul_n(i)` of nonzeros contributing to row
//!    `i` of the matricized TTMc result, so that the numeric step is
//!    lock-free and all index arithmetic is hoisted out of the HOOI loop.
//! 2. [`ttmc`] — the *nonzero-based* numeric TTMc (paper Eq. (4) /
//!    Algorithm 2): each nonzero contributes `x · ⊗_{t≠n} U_t(i_t, :)` to
//!    its row, computed in parallel over rows with rayon.
//! 3. [`trsvd`] — the truncated SVD of the matricized result using the
//!    matrix-free Lanczos solver (the SLEPc stand-in), or alternatives.
//! 4. [`hooi`] — the ALS driver: per-mode TTMc + TRSVD, core tensor
//!    formation, fit monitoring, and timing breakdowns used by the
//!    experiment tables.
//!
//! Baselines and extras:
//!
//! * [`met`] — a MET-style (Kolda & Sun) TTM-chain baseline that
//!   materializes semi-sparse intermediates, used in the paper's
//!   single-core comparison;
//! * [`hosvd`] — HOSVD-style initialization for small tensors plus the
//!   default random initialization;
//! * [`core_tensor`], [`fit`] — core extraction and fit/error metrics.

pub mod config;
pub mod core_tensor;
pub mod fit;
pub mod hooi;
pub mod hosvd;
pub mod met;
pub mod symbolic;
pub mod trsvd;
pub mod ttmc;
pub mod workspace;

pub use config::{Initialization, TrsvdBackend, TuckerConfig};
pub use hooi::{tucker_hooi, tucker_hooi_in_current_pool, TimingBreakdown, TuckerDecomposition};
pub use symbolic::{SymbolicMode, SymbolicTtmc};
pub use ttmc::{ttmc_mode, ttmc_mode_into, ttmc_mode_sequential};
pub use workspace::HooiWorkspace;
