//! Flop-sharing dimension-tree TTMc.
//!
//! The baseline HOOI loop recomputes `N` independent per-mode TTMc's per
//! iteration; the Kronecker factors of different modes overlap almost
//! entirely, so most of that work is repeated.  A *dimension tree* (Kaya &
//! Uçar's follow-up line of work) shares it: a binary tree over the modes
//! where node `ν` with contiguous mode range `[lo, hi)` holds the tensor
//! contracted with the factors of every mode *outside* the range —
//!
//! `T_ν[j] = Σ_{x : proj_{[lo,hi)}(x) = j} x · ⊗_t U_t(i_t^x)` over `t ∉ [lo, hi)`
//!
//! — stored sparsely: one row per *distinct projection* of the nonzeros onto
//! `[lo, hi)`, each row a dense vector of length `Π_{t ∉ [lo,hi)} R_t`.  The
//! root is the tensor itself; each child contracts the sibling range's
//! factor rows into the parent's rows (a single Kronecker-accumulate per
//! parent entry), and the leaf of mode `n` *is* the compact mode-`n` TTMc
//! result.  Two flop-sharing effects compound: a child reuses the parent's
//! already-contracted value vector instead of rebuilding the full Kronecker
//! product, and parent entries that collide under projection are contracted
//! once instead of once per nonzero.
//!
//! Column ordering: a node's value columns are the Kronecker product of the
//! contracted modes in *contraction order* along the root path (each
//! contracted range ascending internally), because appending new factors on
//! the right is what lets a child reuse `parent_value ⊗ K` with one
//! bilinear accumulate.  Leaves whose contraction order happens to be
//! ascending (every leaf for order ≤ 3, the two rightmost leaves in
//! general) are *canonical* and served by a straight copy; the rest get a
//! precomputed column permutation.  Column permutations do not change left
//! singular vectors, so the TRSVD that consumes the result is unaffected
//! either way; serving canonical layouts keeps the core extraction and all
//! downstream consumers oblivious to the strategy.
//!
//! Factor-version semantics match the per-mode Gauss–Seidel sweep exactly:
//! a node is recomputed lazily when a factor *outside* its range has been
//! updated since it was last built, so every leaf sees new factors for
//! already-visited modes and old factors for the rest — the same values the
//! per-mode path would use, up to floating-point reassociation.
//!
//! [`DimTree::costs`] / [`per_mode_costs`] count the floating-point
//! operations and memory words each strategy performs per iteration as
//! deterministic functions of the sparsity structure and the ranks, so the
//! flop reduction is assertable in tests rather than inferred from wall
//! time.

use crate::symbolic::{SymbolicMode, SymbolicTtmc};
use crate::workspace::HooiWorkspace;
use linalg::Matrix;
use rayon::prelude::*;
use sptensor::kron::{accumulate_scaled_kron_isa, kron_rows};
use sptensor::simd::KernelIsa;
use sptensor::SparseTensor;

/// Sentinel for "no node" in parent/child links.
const NONE: usize = usize::MAX;

/// Minimum members per segment when a node entry's member group is split
/// for privatized accumulation; groups at or below this size are never
/// split (the merge would cost more than the imbalance it cures).
const MIN_SEGMENT_MEMBERS: usize = 32;

/// Soft cap on the number of segments a node's schedule produces: the
/// grain grows with the node's total member count so the whole schedule
/// stays around this many tasks.  Together with [`MIN_SEGMENT_MEMBERS`]
/// this makes the grain — and therefore every segment boundary — a pure
/// function of the sparsity structure, independent of the thread count,
/// which is what keeps tree TTMc results bit-identical across pool widths.
const TARGET_SEGMENTS: usize = 1024;

/// One node of the dimension tree.
#[derive(Debug, Clone)]
struct Node {
    /// Contiguous mode range `[lo, hi)` this node retains.
    lo: usize,
    hi: usize,
    /// Parent node id (`NONE` for the root).
    parent: usize,
    /// Child node ids (`NONE` for leaves).
    children: [usize; 2],
    /// Modes of the value columns in contraction order (slowest first).
    col_modes: Vec<usize>,
    /// Modes contracted when computing this node from its parent
    /// (`parent range \ [lo, hi)`, ascending).  Empty only for the root.
    d_modes: Vec<usize>,
    /// CSR offsets over [`members`](Self::members): group `g` (this node's
    /// entry `g`) covers `members[group_ptr[g]..group_ptr[g+1]]`.
    group_ptr: Vec<usize>,
    /// Parent entry ids grouped by projection onto `[lo, hi)`; groups are
    /// sorted by projected tuple, members ascending within a group.
    members: Vec<usize>,
    /// For each member, the `d_modes` indices of that parent entry
    /// (`d_modes.len()` entries per member, streamed by the kernel).
    contract_idx: Vec<usize>,
    /// Number of stored entries (distinct projections).
    entries: usize,
    /// Segmentation grain of this node's member groups (see
    /// [`MIN_SEGMENT_MEMBERS`] / [`TARGET_SEGMENTS`]); groups larger than
    /// the grain are split into `ceil(size / grain)` segments accumulated
    /// into private partial rows and merged in ascending segment order.
    seg_grain: usize,
    /// CSR offsets over the node's split-entry segments: entry `g` owns
    /// partial rows `seg_ptr[g]..seg_ptr[g+1]` (equal bounds mean the
    /// entry is unsplit and accumulates directly into the output row).
    seg_ptr: Vec<usize>,
    /// Owning entry of each segment (`seg_entry[s] = g`), for the parallel
    /// sweep over partial rows.
    seg_entry: Vec<usize>,
    /// The projected index tuple of each entry (`hi - lo` entries per
    /// entry).  Children group on these during the build; once a node's
    /// children exist the runtime kernels never read it again, so
    /// [`DimTree::split`] drops it for the root and internal nodes (the
    /// root's copy alone is a full `nnz × order` duplicate of the COO
    /// indices).  Leaves keep theirs: it is their sorted row set.
    entry_idx: Vec<usize>,
}

impl Node {
    fn span(&self) -> usize {
        self.hi - self.lo
    }

    fn num_entries(&self) -> usize {
        self.entries
    }

    fn is_leaf(&self) -> bool {
        self.children[0] == NONE
    }

    /// Total number of split-entry segments (partial rows) of this node.
    fn num_segments(&self) -> usize {
        self.seg_ptr.last().copied().unwrap_or(0)
    }

    /// Member size of entry `g`'s group.
    fn group_size(&self, g: usize) -> usize {
        self.group_ptr[g + 1] - self.group_ptr[g]
    }

    /// Absolute member range (into [`members`](Self::members)) of segment
    /// `s`, which must belong to entry `g`.
    fn segment_members(&self, g: usize, s: usize) -> (usize, usize) {
        let local = s - self.seg_ptr[g];
        let klo = self.group_ptr[g] + local * self.seg_grain;
        let khi = (klo + self.seg_grain).min(self.group_ptr[g + 1]);
        (klo, khi)
    }
}

/// Builds a node's segment schedule from its member grouping: the grain is
/// `max(MIN_SEGMENT_MEMBERS, total_members / TARGET_SEGMENTS)` (a pure
/// function of structure), and only groups strictly larger than the grain
/// are split.  Returns `(grain, seg_ptr, seg_entry)`.
fn segment_schedule(group_ptr: &[usize]) -> (usize, Vec<usize>, Vec<usize>) {
    if group_ptr.is_empty() {
        return (MIN_SEGMENT_MEMBERS, Vec::new(), Vec::new());
    }
    let entries = group_ptr.len() - 1;
    let total = *group_ptr.last().unwrap();
    let grain = total.div_ceil(TARGET_SEGMENTS).max(MIN_SEGMENT_MEMBERS);
    let mut seg_ptr = Vec::with_capacity(entries + 1);
    let mut seg_entry = Vec::new();
    seg_ptr.push(0usize);
    for g in 0..entries {
        let size = group_ptr[g + 1] - group_ptr[g];
        let segs = if size > grain {
            size.div_ceil(grain)
        } else {
            0
        };
        for _ in 0..segs {
            seg_entry.push(g);
        }
        seg_ptr.push(seg_ptr[g] + segs);
    }
    (grain, seg_ptr, seg_entry)
}

/// A binary dimension tree over the modes of one sparse tensor: structure
/// plus the per-node symbolic grouping, built once at plan time and reused
/// by every iteration of every solve.
#[derive(Debug, Clone)]
pub struct DimTree {
    order: usize,
    nnz: usize,
    /// Preorder storage: a parent always precedes its children.
    nodes: Vec<Node>,
    leaf_of_mode: Vec<usize>,
}

/// Deterministic per-iteration cost of a TTMc strategy: floating-point
/// operations and memory words moved (reads of nonzero data, factor rows
/// and partial values, plus result writes), as executed by the kernels in
/// this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TtmcCosts {
    /// Floating-point operations per HOOI iteration (all modes).
    pub flops: u64,
    /// Words read and written per HOOI iteration (all modes).
    pub words: u64,
}

/// Flops [`kron_rows`] spends materializing the product of rows with the
/// given lengths: the running prefix is expanded once per factor.
fn kron_materialize_flops(lens: &[usize]) -> u64 {
    let mut total = 0u64;
    let mut filled = 1u64;
    for &l in lens {
        filled *= l as u64;
        total += filled;
    }
    total
}

/// Flops [`accumulate_scaled_kron`](sptensor::kron::accumulate_scaled_kron)
/// spends adding `alpha · (⊗ rows)` into an accumulator, per its per-arity
/// branches (the order-3 micro-kernel in [`crate::ttmc`] performs exactly
/// the two-factor count).  SIMD dispatch does not change the count: the
/// vector bodies perform the same multiplies and adds, just four lanes at a
/// time.
fn accumulate_flops(lens: &[usize]) -> u64 {
    let width: u64 = lens.iter().map(|&l| l as u64).product();
    match lens.len() {
        0 => 1,
        1 => 2 * width,
        2 => lens[0] as u64 + 2 * width,
        _ => kron_materialize_flops(lens) + 2 * width,
    }
}

/// Per-iteration cost of the baseline per-mode strategy: every mode visits
/// every nonzero once, accumulating one scaled Kronecker product, streaming
/// the mode-sorted layout (value + foreign indices + factor rows) and
/// writing the compact result once.
pub fn per_mode_costs(symbolic: &SymbolicTtmc, nnz: usize, ranks: &[usize]) -> TtmcCosts {
    let order = ranks.len();
    let mut costs = TtmcCosts::default();
    for mode in 0..order {
        let lens: Vec<usize> = ranks
            .iter()
            .enumerate()
            .filter(|&(t, _)| t != mode)
            .map(|(_, &r)| r)
            .collect();
        let width: u64 = lens.iter().map(|&l| l as u64).product();
        let row_words: u64 = lens.iter().map(|&l| l as u64).sum();
        costs.flops += nnz as u64 * accumulate_flops(&lens);
        // Reads: value + (order-1) coords + factor rows per nonzero; writes:
        // the compact result once.
        costs.words +=
            nnz as u64 * (order as u64 + row_words) + symbolic.mode(mode).num_rows() as u64 * width;
    }
    costs
}

impl DimTree {
    /// Builds the tree and its symbolic grouping for a tensor.
    ///
    /// # Panics
    /// Panics if the tensor has fewer than two modes (callers fall back to
    /// the per-mode strategy there) or no nonzeros.
    pub fn build(tensor: &SparseTensor) -> Self {
        let order = tensor.order();
        assert!(order >= 2, "a dimension tree needs at least two modes");
        assert!(tensor.nnz() > 0, "a dimension tree needs nonzeros");
        // Root: one entry per nonzero, the full index tuple, nothing
        // contracted.
        let mut entry_idx = Vec::with_capacity(tensor.nnz() * order);
        for t in 0..tensor.nnz() {
            entry_idx.extend_from_slice(tensor.index(t));
        }
        let root = Node {
            lo: 0,
            hi: order,
            parent: NONE,
            children: [NONE, NONE],
            col_modes: Vec::new(),
            d_modes: Vec::new(),
            group_ptr: Vec::new(),
            members: Vec::new(),
            contract_idx: Vec::new(),
            entries: tensor.nnz(),
            seg_grain: MIN_SEGMENT_MEMBERS,
            seg_ptr: Vec::new(),
            seg_entry: Vec::new(),
            entry_idx,
        };
        let mut tree = DimTree {
            order,
            nnz: tensor.nnz(),
            nodes: vec![root],
            leaf_of_mode: vec![NONE; order],
        };
        tree.split(0);
        debug_assert!(tree.leaf_of_mode.iter().all(|&id| id != NONE));
        tree
    }

    /// Recursively splits `node_id` (preorder, so parents precede children).
    fn split(&mut self, node_id: usize) {
        let (lo, hi) = (self.nodes[node_id].lo, self.nodes[node_id].hi);
        if hi - lo == 1 {
            self.leaf_of_mode[lo] = node_id;
            return;
        }
        let mid = lo + (hi - lo) / 2;
        let left = self.make_child(node_id, lo, mid);
        let left_id = self.nodes.len();
        self.nodes.push(left);
        self.nodes[node_id].children[0] = left_id;
        self.split(left_id);
        let right = self.make_child(node_id, mid, hi);
        let right_id = self.nodes.len();
        self.nodes.push(right);
        self.nodes[node_id].children[1] = right_id;
        self.split(right_id);
        // Both children are grouped; the projected tuples have served their
        // purpose (see the field docs) — free them.
        self.nodes[node_id].entry_idx = Vec::new();
    }

    /// Builds the symbolic grouping of a child `[lo, hi)` of `parent_id`.
    fn make_child(&self, parent_id: usize, lo: usize, hi: usize) -> Node {
        let parent = &self.nodes[parent_id];
        let span_p = parent.span();
        let span = hi - lo;
        let off = lo - parent.lo;
        let d_modes: Vec<usize> = (parent.lo..parent.hi)
            .filter(|t| !(lo..hi).contains(t))
            .collect();
        let d_len = d_modes.len();
        // Positions of the contracted modes within the parent tuple: the
        // range split is contiguous, so they are a prefix (right child) or a
        // suffix (left child) of the parent tuple.
        let d_off = if lo == parent.lo { span } else { 0 };
        let n_parent = parent.num_entries();
        let key = |e: usize| &parent.entry_idx[e * span_p + off..e * span_p + off + span];

        let mut by_key: Vec<usize> = (0..n_parent).collect();
        by_key.sort_unstable_by(|&a, &b| key(a).cmp(key(b)).then(a.cmp(&b)));

        let mut group_ptr = vec![0usize];
        let mut entry_idx = Vec::new();
        let mut contract_idx = Vec::with_capacity(n_parent * d_len);
        for (pos, &e) in by_key.iter().enumerate() {
            if pos == 0 || key(by_key[pos - 1]) != key(e) {
                if pos > 0 {
                    group_ptr.push(pos);
                }
                entry_idx.extend_from_slice(key(e));
            }
            let d_src = e * span_p + d_off;
            contract_idx.extend_from_slice(&parent.entry_idx[d_src..d_src + d_len]);
        }
        group_ptr.push(n_parent);
        if n_parent == 0 {
            group_ptr = Vec::new();
        }

        let mut col_modes = parent.col_modes.clone();
        col_modes.extend_from_slice(&d_modes);
        let entries = entry_idx.len() / span;
        let (seg_grain, seg_ptr, seg_entry) = segment_schedule(&group_ptr);
        Node {
            lo,
            hi,
            parent: parent_id,
            children: [NONE, NONE],
            col_modes,
            d_modes,
            group_ptr,
            members: by_key,
            contract_idx,
            entries,
            seg_grain,
            seg_ptr,
            seg_entry,
            entry_idx,
        }
    }

    /// Number of modes the tree spans.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of nonzeros of the tensor the tree was built for.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Number of nodes (`2·order − 1`).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Id of the leaf node of `mode`.
    pub fn leaf_of_mode(&self, mode: usize) -> usize {
        self.leaf_of_mode[mode]
    }

    /// Parent id of a node (`usize::MAX` for the root).
    pub fn parent_of(&self, id: usize) -> usize {
        self.nodes[id].parent
    }

    /// Whether `id` is a leaf.
    pub fn is_leaf(&self, id: usize) -> bool {
        self.nodes[id].is_leaf()
    }

    /// The mode a leaf node serves.
    ///
    /// # Panics
    /// Panics if `id` is not a leaf.
    pub fn leaf_mode(&self, id: usize) -> usize {
        assert!(self.nodes[id].is_leaf(), "node {id} is not a leaf");
        self.nodes[id].lo
    }

    /// Whether `id` retains `mode` (nodes retaining an updated mode stay
    /// valid; all others go stale).
    pub fn node_contains_mode(&self, id: usize, mode: usize) -> bool {
        (self.nodes[id].lo..self.nodes[id].hi).contains(&mode)
    }

    /// Number of stored entries (distinct projections) of a node.
    pub fn node_entries(&self, id: usize) -> usize {
        self.nodes[id].num_entries()
    }

    /// Width of a node's value vectors at the given ranks
    /// (`Π_{t ∉ [lo,hi)} R_t`).
    pub fn node_width(&self, id: usize, ranks: &[usize]) -> usize {
        self.nodes[id].col_modes.iter().map(|&t| ranks[t]).product()
    }

    /// Whether `mode`'s leaf already produces the canonical (ascending
    /// foreign-mode) column order.
    pub fn leaf_is_canonical(&self, mode: usize) -> bool {
        self.nodes[self.leaf_of_mode[mode]]
            .col_modes
            .windows(2)
            .all(|w| w[0] < w[1])
    }

    /// Column permutation mapping `mode`'s leaf layout to the canonical
    /// compact layout (`perm[tree_col] = canonical_col`), or `None` when the
    /// leaf is already canonical.
    pub fn leaf_permutation(&self, mode: usize, ranks: &[usize]) -> Option<Vec<usize>> {
        if self.leaf_is_canonical(mode) {
            return None;
        }
        let col_modes = &self.nodes[self.leaf_of_mode[mode]].col_modes;
        let width: usize = col_modes.iter().map(|&t| ranks[t]).product();
        // Canonical strides: ascending foreign modes, last fastest.
        let mut sorted = col_modes.clone();
        sorted.sort_unstable();
        let mut canon_stride = vec![0usize; self.order];
        let mut stride = 1;
        for &t in sorted.iter().rev() {
            canon_stride[t] = stride;
            stride *= ranks[t];
        }
        let mut perm = vec![0usize; width];
        for (c, slot) in perm.iter_mut().enumerate() {
            let mut rem = c;
            let mut canonical = 0usize;
            for &t in col_modes.iter().rev() {
                let digit = rem % ranks[t];
                rem /= ranks[t];
                canonical += digit * canon_stride[t];
            }
            *slot = canonical;
        }
        Some(perm)
    }

    /// Per-iteration cost of the tree strategy at the given ranks: every
    /// non-root node is rebuilt once per iteration (one Kronecker-accumulate
    /// per member, sharing the parent's partial value), plus the copy
    /// serving non-canonical leaves into canonical order.
    pub fn costs(&self, ranks: &[usize]) -> TtmcCosts {
        let mut costs = TtmcCosts::default();
        for node in self.nodes.iter().skip(1) {
            let d_lens: Vec<usize> = node.d_modes.iter().map(|&t| ranks[t]).collect();
            let wd: u64 = d_lens.iter().map(|&l| l as u64).product();
            let width = self.width_of(node, ranks) as u64;
            let wp = width / wd.max(1);
            let members = node.members.len() as u64;
            let entries = node.num_entries() as u64;
            let parent_is_root = node.parent == 0;
            let per_member_flops = if parent_is_root {
                accumulate_flops(&d_lens)
            } else if d_lens.len() == 1 {
                accumulate_flops(&[wp as usize, d_lens[0]])
            } else {
                kron_materialize_flops(&d_lens) + accumulate_flops(&[wp as usize, wd as usize])
            };
            costs.flops += members * per_member_flops;
            // Reads per member: contracted indices + factor rows + the
            // parent value (the nonzero value itself at the root); writes:
            // this node's entries once.
            let d_row_words: u64 = d_lens.iter().map(|&l| l as u64).sum();
            let parent_words = if parent_is_root { 1 } else { wp };
            costs.words += members * (node.d_modes.len() as u64 + d_row_words + parent_words)
                + entries * width;
            // Privatized segments: each partial row is written once by its
            // segment and read plus added once by the owning entry's merge.
            let segments = node.num_segments() as u64;
            costs.flops += segments * width;
            costs.words += 2 * segments * width;
            if node.is_leaf() {
                let mode = node.lo;
                if !self.leaf_is_canonical(mode) {
                    // Permuting into the canonical compact buffer reads and
                    // writes every entry once more.
                    costs.words += 2 * entries * width;
                }
            }
        }
        costs
    }

    fn width_of(&self, node: &Node, ranks: &[usize]) -> usize {
        node.col_modes.iter().map(|&t| ranks[t]).product()
    }

    /// Measured memory footprint of the tree's symbolic grouping in bytes:
    /// every node's member lists, contract-index arrays, CSR offsets,
    /// segment schedules and retained projection tuples.  The per-node
    /// *value* matrices live in the [`crate::HooiWorkspace`] and are
    /// counted there; together the two make up a dimension-tree plan's
    /// cache footprint ([`crate::TuckerSession::memory_bytes`]).
    pub fn memory_bytes(&self) -> usize {
        let words: usize = self
            .nodes
            .iter()
            .map(|n| {
                n.col_modes.len()
                    + n.d_modes.len()
                    + n.group_ptr.len()
                    + n.members.len()
                    + n.contract_idx.len()
                    + n.seg_ptr.len()
                    + n.seg_entry.len()
                    + n.entry_idx.len()
            })
            .sum::<usize>()
            + self.leaf_of_mode.len();
        words * std::mem::size_of::<usize>()
    }

    /// Number of privatized partial rows node `id`'s computation needs —
    /// the height of the `partials` buffer [`compute_node_into`] takes
    /// (zero when no entry's member group exceeds the segmentation grain).
    ///
    /// [`compute_node_into`]: Self::compute_node_into
    pub fn node_segments(&self, id: usize) -> usize {
        self.nodes[id].num_segments()
    }

    /// Computes node `id`'s value matrix from its parent's, parallel over
    /// the node's entries.  `parent_values` must be `None` exactly when the
    /// parent is the root (the tensor itself); `out` must be
    /// `num_entries × node_width` and is overwritten; `partials` must be
    /// `node_segments × node_width` scratch (see [`Self::node_segments`]).
    ///
    /// Entries whose member group exceeds the segmentation grain are
    /// *privatized*: each segment of the group accumulates into its own
    /// partial row (so several workers can share one hot output row without
    /// locks or false sharing), and the owning entry then merges its
    /// partial rows in ascending segment order.  Both parallel sweeps cut
    /// their spans by symbolic member-count weights, and every
    /// segment/merge boundary is a pure function of the sparsity structure
    /// — never of the thread count — so results stay bit-identical across
    /// pool widths.
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn compute_node_into(
        &self,
        id: usize,
        tensor: &SparseTensor,
        factors: &[Matrix],
        parent_values: Option<&Matrix>,
        out: &mut Matrix,
        partials: &mut Matrix,
    ) {
        self.compute_node_into_isa(
            id,
            tensor,
            factors,
            parent_values,
            out,
            partials,
            KernelIsa::resolved_default(),
        );
    }

    /// [`Self::compute_node_into`] at an explicit kernel ISA — the form the
    /// solver threads its plan-resolved [`KernelIsa`] through (see
    /// [`crate::TuckerSolver::kernel_isa`]).
    #[allow(clippy::too_many_arguments)]
    pub fn compute_node_into_isa(
        &self,
        id: usize,
        tensor: &SparseTensor,
        factors: &[Matrix],
        parent_values: Option<&Matrix>,
        out: &mut Matrix,
        partials: &mut Matrix,
        isa: KernelIsa,
    ) {
        let node = &self.nodes[id];
        assert_ne!(id, 0, "the root is the tensor itself and is never computed");
        let ranks: Vec<usize> = factors.iter().map(|u| u.ncols()).collect();
        let width = self.width_of(node, &ranks);
        let d_len = node.d_modes.len();
        let wd: usize = node.d_modes.iter().map(|&t| ranks[t]).product();
        assert_eq!(
            out.shape(),
            (node.num_entries(), width),
            "dimension-tree node buffer has the wrong shape"
        );
        assert_eq!(
            partials.shape(),
            (node.num_segments(), width),
            "dimension-tree partials buffer has the wrong shape"
        );
        assert_eq!(
            parent_values.is_none(),
            node.parent == 0,
            "parent values must be supplied exactly for non-root parents"
        );
        if let Some(pv) = parent_values {
            let parent = &self.nodes[node.parent];
            assert_eq!(
                pv.shape(),
                (parent.num_entries(), self.width_of(parent, &ranks)),
                "parent value buffer has the wrong shape"
            );
        }
        if width == 0 || node.num_entries() == 0 {
            return;
        }
        // Sweep 1: split-entry segments into private partial rows, spans
        // weighted by segment member counts.
        if node.num_segments() > 0 {
            let seg_costs: Vec<u64> = (0..node.num_segments())
                .map(|s| {
                    let (klo, khi) = node.segment_members(node.seg_entry[s], s);
                    (khi - klo) as u64
                })
                .collect();
            partials
                .as_mut_slice()
                .par_chunks_mut(width)
                .enumerate()
                .for_each_init_weighted(
                    &seg_costs,
                    || (vec![0.0; wd], vec![0.0; width], Vec::with_capacity(d_len)),
                    |(kbuf, sbuf, d_rows), (s, seg_out)| {
                        let g = node.seg_entry[s];
                        let (klo, khi) = node.segment_members(g, s);
                        self.accumulate_members(
                            node,
                            klo,
                            khi,
                            tensor,
                            factors,
                            parent_values,
                            seg_out,
                            kbuf,
                            sbuf,
                            d_rows,
                            isa,
                        );
                    },
                );
        }
        // Sweep 2: unsplit entries accumulate directly; split entries merge
        // their partial rows in ascending segment order.  Weights: member
        // count for direct entries, segment count for merges (a merge adds
        // one row per segment — a fraction of a member accumulate).
        let entry_costs: Vec<u64> = (0..node.num_entries())
            .map(|g| {
                let segs = node.seg_ptr[g + 1] - node.seg_ptr[g];
                let cost = if segs > 0 {
                    segs as u64
                } else {
                    node.group_size(g) as u64
                };
                cost.max(1)
            })
            .collect();
        let partials = &*partials;
        out.as_mut_slice()
            .par_chunks_mut(width)
            .enumerate()
            .for_each_init_weighted(
                &entry_costs,
                || (vec![0.0; wd], vec![0.0; width], Vec::with_capacity(d_len)),
                |(kbuf, sbuf, d_rows), (g, row_out)| {
                    let (s0, s1) = (node.seg_ptr[g], node.seg_ptr[g + 1]);
                    if s1 > s0 {
                        row_out.iter_mut().for_each(|v| *v = 0.0);
                        for s in s0..s1 {
                            for (a, &p) in row_out.iter_mut().zip(partials.row(s).iter()) {
                                *a += p;
                            }
                        }
                    } else {
                        self.accumulate_members(
                            node,
                            node.group_ptr[g],
                            node.group_ptr[g + 1],
                            tensor,
                            factors,
                            parent_values,
                            row_out,
                            kbuf,
                            sbuf,
                            d_rows,
                            isa,
                        );
                    }
                },
            );
    }

    /// Zeroes `row_out` and accumulates the contributions of members
    /// `klo..khi` (absolute indices into the node's member array) into it —
    /// a whole entry for unsplit groups, one segment for split ones.
    #[allow(clippy::too_many_arguments)]
    fn accumulate_members<'a>(
        &self,
        node: &Node,
        klo: usize,
        khi: usize,
        tensor: &SparseTensor,
        factors: &'a [Matrix],
        parent_values: Option<&Matrix>,
        row_out: &mut [f64],
        kbuf: &mut [f64],
        sbuf: &mut [f64],
        d_rows: &mut Vec<&'a [f64]>,
        isa: KernelIsa,
    ) {
        row_out.iter_mut().for_each(|v| *v = 0.0);
        let d_len = node.d_modes.len();
        for k in klo..khi {
            let e = node.members[k];
            let d_idx = &node.contract_idx[k * d_len..(k + 1) * d_len];
            d_rows.clear();
            for (j, &t) in node.d_modes.iter().enumerate() {
                d_rows.push(factors[t].row(d_idx[j]));
            }
            match parent_values {
                // Child of the root: contract the factor rows against the
                // scalar nonzero value.
                None => accumulate_scaled_kron_isa(isa, tensor.value(e), d_rows, row_out, sbuf),
                // Deeper node: `row += parent_value ⊗ K`, a single bilinear
                // accumulate that reuses everything already contracted.
                Some(pv) => {
                    let parent_row = pv.row(e);
                    if d_len == 1 {
                        accumulate_scaled_kron_isa(
                            isa,
                            1.0,
                            &[parent_row, d_rows[0]],
                            row_out,
                            sbuf,
                        );
                    } else {
                        let wd = kbuf.len();
                        kron_rows(d_rows, kbuf);
                        accumulate_scaled_kron_isa(
                            isa,
                            1.0,
                            &[parent_row, &kbuf[..wd]],
                            row_out,
                            sbuf,
                        );
                    }
                }
            }
        }
    }

    /// Computes the compact TTMc of every mode with one *fixed* set of
    /// factors (no in-sweep updates), returning canonical compact matrices
    /// aligned with the symbolic row sets — the standalone entry used by
    /// equality tests and the strategy bench.
    pub fn ttmc_all_modes(
        &self,
        tensor: &SparseTensor,
        symbolic: &SymbolicTtmc,
        factors: &[Matrix],
    ) -> Vec<Matrix> {
        let ranks: Vec<usize> = factors.iter().map(|u| u.ncols()).collect();
        let mut values: Vec<Matrix> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(id, n)| {
                if id == 0 {
                    Matrix::zeros(0, 0)
                } else {
                    Matrix::zeros(n.num_entries(), self.node_width(id, &ranks))
                }
            })
            .collect();
        for id in 1..self.nodes.len() {
            let (before, rest) = values.split_at_mut(id);
            let parent = self.nodes[id].parent;
            let pv = if parent == 0 {
                None
            } else {
                Some(&before[parent])
            };
            let mut partials = Matrix::zeros(self.node_segments(id), self.node_width(id, &ranks));
            self.compute_node_into(id, tensor, factors, pv, &mut rest[0], &mut partials);
        }
        (0..self.order)
            .map(|mode| {
                let leaf = &values[self.leaf_of_mode[mode]];
                debug_assert_eq!(leaf.nrows(), symbolic.mode(mode).num_rows());
                match self.leaf_permutation(mode, &ranks) {
                    None => leaf.clone(),
                    Some(perm) => {
                        let mut out = Matrix::zeros(leaf.nrows(), leaf.ncols());
                        permute_columns(leaf, &perm, &mut out);
                        out
                    }
                }
            })
            .collect()
    }
}

/// Scatters `src`'s columns into `dst` at the permuted positions
/// (`dst[r][perm[c]] = src[r][c]`).
pub(crate) fn permute_columns(src: &Matrix, perm: &[usize], dst: &mut Matrix) {
    assert_eq!(src.shape(), dst.shape());
    assert_eq!(src.ncols(), perm.len());
    for p in 0..src.nrows() {
        let src_row = src.row(p);
        let dst_row = dst.row_mut(p);
        for (c, &v) in src_row.iter().enumerate() {
            dst_row[perm[c]] = v;
        }
    }
}

/// Recomputes the stale ancestors of `mode`'s leaf and serves the leaf's
/// compact TTMc (canonical column order) into the workspace's compact buffer
/// for `mode` — the dimension-tree replacement for
/// [`crate::ttmc::ttmc_mode_into`] inside the HOOI sweep.
///
/// Node validity lives in the workspace ([`HooiWorkspace::ensure_tree`]
/// resets it per solve); after each factor update the caller must call
/// [`factor_updated`] so nodes contracted with the stale factor are rebuilt
/// on their next use.
pub fn serve_mode_into(
    tree: &DimTree,
    tensor: &SparseTensor,
    sym: &SymbolicMode,
    factors: &[Matrix],
    mode: usize,
    workspace: &mut HooiWorkspace,
) {
    serve_mode_into_isa(
        tree,
        tensor,
        sym,
        factors,
        mode,
        workspace,
        KernelIsa::resolved_default(),
    );
}

/// [`serve_mode_into`] at an explicit kernel ISA — the form the HOOI sweep
/// threads its plan-resolved [`KernelIsa`] through (see
/// [`crate::TuckerSolver::kernel_isa`]).
#[allow(clippy::too_many_arguments)]
pub fn serve_mode_into_isa(
    tree: &DimTree,
    tensor: &SparseTensor,
    sym: &SymbolicMode,
    factors: &[Matrix],
    mode: usize,
    workspace: &mut HooiWorkspace,
    isa: KernelIsa,
) {
    let leaf = tree.leaf_of_mode(mode);
    debug_assert_eq!(tree.node_entries(leaf), sym.num_rows());
    // Stale chain from the leaf upward; ancestors above the first valid node
    // are valid too (staleness propagates downward: a factor outside an
    // ancestor's range is also outside every descendant's range).
    let mut chain = vec![leaf];
    let mut id = tree.parent_of(leaf);
    while id != 0 && !workspace.tree_valid[id] {
        chain.push(id);
        id = tree.parent_of(id);
    }
    for &id in chain.iter().rev() {
        let parent = tree.parent_of(id);
        let canonical = id == leaf && tree.leaf_is_canonical(mode);
        // Split disjoint workspace fields: the parent's value buffer is read
        // while the target (tree buffer or compact matrix) is written.
        let ws = &mut *workspace;
        if canonical {
            // The leaf's entries are the compact rows in the same (sorted)
            // order — compute straight into the compact buffer.
            let parent_values = if parent == 0 {
                None
            } else {
                Some(&ws.tree_values[parent])
            };
            tree.compute_node_into_isa(
                id,
                tensor,
                factors,
                parent_values,
                &mut ws.compact[mode],
                &mut ws.tree_partials[id],
                isa,
            );
        } else {
            let (before, rest) = ws.tree_values.split_at_mut(id);
            let parent_values = if parent == 0 {
                None
            } else {
                Some(&before[parent])
            };
            tree.compute_node_into_isa(
                id,
                tensor,
                factors,
                parent_values,
                &mut rest[0],
                &mut ws.tree_partials[id],
                isa,
            );
        }
        ws.tree_valid[id] = true;
    }
    if !tree.leaf_is_canonical(mode) {
        let ws = &mut *workspace;
        permute_columns(
            &ws.tree_values[leaf],
            &ws.leaf_perms[mode],
            &mut ws.compact[mode],
        );
    }
}

/// Marks every node *not* retaining `mode` stale after `mode`'s factor was
/// updated; retained nodes (and the root) stay valid.
pub fn factor_updated(tree: &DimTree, mode: usize, workspace: &mut HooiWorkspace) {
    for id in 1..tree.num_nodes() {
        if !tree.node_contains_mode(id, mode) {
            workspace.tree_valid[id] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ttmc::ttmc_mode;
    use datagen::random_tensor;

    fn factors_for(tensor: &SparseTensor, ranks: &[usize], seed: u64) -> Vec<Matrix> {
        tensor
            .dims()
            .iter()
            .zip(ranks.iter())
            .enumerate()
            .map(|(m, (&d, &r))| Matrix::random(d, r, seed + m as u64))
            .collect()
    }

    #[test]
    fn tree_shape_and_leaves() {
        let t = random_tensor(&[6, 5, 4, 3], 50, 1);
        let tree = DimTree::build(&t);
        assert_eq!(tree.num_nodes(), 7);
        assert_eq!(tree.order(), 4);
        for mode in 0..4 {
            let leaf = tree.leaf_of_mode(mode);
            assert!(tree.is_leaf(leaf));
            assert!(tree.node_contains_mode(leaf, mode));
        }
        // The rightmost leaves contract ascending ranges and are canonical.
        assert!(tree.leaf_is_canonical(2));
        assert!(tree.leaf_is_canonical(3));
        assert!(!tree.leaf_is_canonical(0));
        assert!(!tree.leaf_is_canonical(1));
    }

    #[test]
    fn order3_tree_is_fully_canonical() {
        let t = random_tensor(&[8, 7, 6], 60, 2);
        let tree = DimTree::build(&t);
        assert_eq!(tree.num_nodes(), 5);
        for mode in 0..3 {
            assert!(tree.leaf_is_canonical(mode), "mode {mode}");
            assert!(tree.leaf_permutation(mode, &[2, 3, 4]).is_none());
        }
    }

    #[test]
    fn groups_partition_parent_entries() {
        let t = random_tensor(&[9, 8, 7, 6], 120, 3);
        let tree = DimTree::build(&t);
        for id in 1..tree.num_nodes() {
            let node = &tree.nodes[id];
            let parent_entries = tree.nodes[node.parent].num_entries();
            let mut seen: Vec<usize> = node.members.clone();
            seen.sort_unstable();
            assert_eq!(seen, (0..parent_entries).collect::<Vec<_>>());
            assert_eq!(*node.group_ptr.last().unwrap(), node.members.len());
            assert_eq!(node.group_ptr.len(), node.num_entries() + 1);
        }
    }

    #[test]
    fn leaf_entries_match_symbolic_rows() {
        let t = random_tensor(&[10, 9, 8, 7], 150, 4);
        let tree = DimTree::build(&t);
        let sym = SymbolicTtmc::build(&t);
        for mode in 0..4 {
            let node = &tree.nodes[tree.leaf_of_mode(mode)];
            assert_eq!(node.entry_idx, sym.mode(mode).rows, "mode {mode}");
        }
    }

    #[test]
    fn tree_ttmc_matches_per_mode_order3() {
        let t = random_tensor(&[12, 10, 8], 300, 5);
        let ranks = [3, 4, 2];
        let factors = factors_for(&t, &ranks, 11);
        let sym = SymbolicTtmc::build(&t);
        let tree = DimTree::build(&t);
        let tree_results = tree.ttmc_all_modes(&t, &sym, &factors);
        for mode in 0..3 {
            let per_mode = ttmc_mode(&t, sym.mode(mode), &factors, mode);
            assert_eq!(per_mode.shape(), tree_results[mode].shape());
            let dist = per_mode.frobenius_distance(&tree_results[mode]);
            assert!(
                dist < 1e-12 * per_mode.frobenius_norm().max(1.0),
                "mode {mode}: distance {dist}"
            );
        }
    }

    #[test]
    fn tree_ttmc_matches_per_mode_orders_4_and_5() {
        for (dims, ranks, nnz, seed) in [
            (vec![7, 6, 5, 4], vec![2, 3, 2, 2], 200usize, 7u64),
            (vec![6, 5, 4, 3, 4], vec![2, 2, 3, 2, 2], 150, 9),
        ] {
            let t = random_tensor(&dims, nnz, seed);
            let factors = factors_for(&t, &ranks, seed + 100);
            let sym = SymbolicTtmc::build(&t);
            let tree = DimTree::build(&t);
            let tree_results = tree.ttmc_all_modes(&t, &sym, &factors);
            for mode in 0..dims.len() {
                let per_mode = ttmc_mode(&t, sym.mode(mode), &factors, mode);
                assert_eq!(per_mode.shape(), tree_results[mode].shape());
                let dist = per_mode.frobenius_distance(&tree_results[mode]);
                assert!(
                    dist < 1e-12 * per_mode.frobenius_norm().max(1.0),
                    "order {} mode {mode}: distance {dist}",
                    dims.len()
                );
            }
        }
    }

    #[test]
    fn permutation_is_a_bijection() {
        let t = random_tensor(&[5, 5, 5, 5], 80, 13);
        let tree = DimTree::build(&t);
        let ranks = [2, 3, 4, 2];
        let perm = tree
            .leaf_permutation(0, &ranks)
            .expect("leaf 0 is permuted");
        assert_eq!(perm.len(), 3 * 4 * 2);
        let mut seen = vec![false; perm.len()];
        for &p in &perm {
            assert!(!seen[p]);
            seen[p] = true;
        }
    }

    #[test]
    fn tree_flops_strictly_below_per_mode_for_order_4_plus() {
        for (dims, ranks, nnz, seed) in [
            (vec![10, 9, 8, 7], vec![5, 5, 5, 5], 400usize, 1u64),
            (vec![8, 7, 6, 5], vec![2, 2, 2, 2], 250, 2),
            (vec![7, 6, 5, 4, 3], vec![3, 3, 3, 3, 3], 300, 3),
        ] {
            let t = random_tensor(&dims, nnz, seed);
            let sym = SymbolicTtmc::build(&t);
            let tree = DimTree::build(&t);
            let tree_costs = tree.costs(&ranks);
            let baseline = per_mode_costs(&sym, t.nnz(), &ranks);
            assert!(
                tree_costs.flops < baseline.flops,
                "order {}: tree {} !< per-mode {}",
                dims.len(),
                tree_costs.flops,
                baseline.flops
            );
        }
    }

    #[test]
    fn cost_counters_are_deterministic_and_scale_with_rank() {
        let t = random_tensor(&[10, 10, 10, 10], 500, 21);
        let tree = DimTree::build(&t);
        assert_eq!(tree.costs(&[4, 4, 4, 4]), tree.costs(&[4, 4, 4, 4]));
        assert!(tree.costs(&[6, 6, 6, 6]).flops > tree.costs(&[2, 2, 2, 2]).flops);
        assert!(tree.costs(&[4, 4, 4, 4]).words > 0);
    }

    #[test]
    fn memory_bytes_counts_node_structures() {
        let small = DimTree::build(&random_tensor(&[10, 10, 10], 200, 3));
        let large = DimTree::build(&random_tensor(&[10, 10, 10], 800, 3));
        assert!(small.memory_bytes() > 0);
        assert!(
            large.memory_bytes() > small.memory_bytes(),
            "more nonzeros, bigger grouping: {} vs {}",
            large.memory_bytes(),
            small.memory_bytes()
        );
        // At minimum the root's retained projection tuples are counted.
        assert!(large.memory_bytes() >= large.nnz() * large.order() * 8);
    }

    #[test]
    fn order2_tree_works() {
        let t = random_tensor(&[9, 7], 30, 17);
        let ranks = [3, 2];
        let factors = factors_for(&t, &ranks, 3);
        let sym = SymbolicTtmc::build(&t);
        let tree = DimTree::build(&t);
        let results = tree.ttmc_all_modes(&t, &sym, &factors);
        for mode in 0..2 {
            let per_mode = ttmc_mode(&t, sym.mode(mode), &factors, mode);
            assert!(per_mode.frobenius_distance(&results[mode]) < 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn order1_tree_rejected() {
        let t = SparseTensor::from_entries(vec![4], &[(vec![1], 1.0)]);
        let _ = DimTree::build(&t);
    }

    #[test]
    fn segment_schedule_splits_only_oversized_groups() {
        // Groups of sizes 10, 100, 32, 33: grain is MIN_SEGMENT_MEMBERS (32)
        // at this scale, so only the 100- and 33-member groups split.
        let group_ptr = [0usize, 10, 110, 142, 175];
        let (grain, seg_ptr, seg_entry) = segment_schedule(&group_ptr);
        assert_eq!(grain, MIN_SEGMENT_MEMBERS);
        assert_eq!(seg_ptr, vec![0, 0, 4, 4, 6]);
        assert_eq!(seg_entry, vec![1, 1, 1, 1, 3, 3]);
        // Segment member ranges tile each split group exactly.
        let node = Node {
            lo: 0,
            hi: 1,
            parent: NONE,
            children: [NONE; 2],
            col_modes: Vec::new(),
            d_modes: Vec::new(),
            group_ptr: group_ptr.to_vec(),
            members: Vec::new(),
            contract_idx: Vec::new(),
            entries: 4,
            seg_grain: grain,
            seg_ptr,
            seg_entry,
            entry_idx: Vec::new(),
        };
        for g in [1usize, 3] {
            let (s0, s1) = (node.seg_ptr[g], node.seg_ptr[g + 1]);
            let mut cursor = node.group_ptr[g];
            for s in s0..s1 {
                let (klo, khi) = node.segment_members(g, s);
                assert_eq!(klo, cursor);
                assert!(khi > klo);
                cursor = khi;
            }
            assert_eq!(cursor, node.group_ptr[g + 1]);
        }
    }

    #[test]
    fn segmented_tree_matches_per_mode_and_is_thread_invariant() {
        // Every nonzero shares mode-0 index 0, so the mode-0 leaf has a
        // single entry whose member group (~500) far exceeds the grain (32):
        // its accumulation really runs through the privatized-partial path.
        let entries: Vec<(Vec<usize>, f64)> = (0..500usize)
            .map(|k| {
                let j = (k * 7 + 3) % 40;
                let l = (k * 13 + 5) % 30;
                (vec![0, j, l], 0.25 + (k % 17) as f64 * 0.125)
            })
            .collect();
        let t = SparseTensor::from_entries(vec![2, 40, 30], &entries);
        let ranks = [2, 4, 3];
        let factors = factors_for(&t, &ranks, 29);
        let sym = SymbolicTtmc::build(&t);
        let tree = DimTree::build(&t);
        assert!(
            (1..tree.num_nodes()).any(|id| tree.node_segments(id) > 1),
            "profile must actually trigger segmentation"
        );
        let reference = tree.ttmc_all_modes(&t, &sym, &factors);
        for mode in 0..3 {
            let per_mode = ttmc_mode(&t, sym.mode(mode), &factors, mode);
            let dist = per_mode.frobenius_distance(&reference[mode]);
            assert!(
                dist < 1e-12 * per_mode.frobenius_norm().max(1.0),
                "mode {mode}: distance {dist}"
            );
        }
        // Segment boundaries are a pure function of structure, so the merge
        // order — and therefore every bit — is thread-count independent.
        for threads in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let results = pool.install(|| tree.ttmc_all_modes(&t, &sym, &factors));
            for mode in 0..3 {
                assert_eq!(
                    reference[mode].as_slice(),
                    results[mode].as_slice(),
                    "mode {mode} differs at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn kron_and_accumulate_flop_formulas() {
        assert_eq!(kron_materialize_flops(&[3]), 3);
        assert_eq!(kron_materialize_flops(&[2, 3]), 2 + 6);
        assert_eq!(kron_materialize_flops(&[2, 3, 4]), 2 + 6 + 24);
        assert_eq!(accumulate_flops(&[]), 1);
        assert_eq!(accumulate_flops(&[5]), 10);
        assert_eq!(accumulate_flops(&[2, 3]), 2 + 12);
        assert_eq!(accumulate_flops(&[2, 3, 4]), (2 + 6 + 24) + 48);
    }
}
