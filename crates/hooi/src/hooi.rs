//! The one-shot HOOI entry points and result types (paper Algorithm 3).
//!
//! Per iteration, for every mode `n`:
//!
//! 1. numeric TTMc (`Y_(n) ← X ×_{-n} U_tᵀ`, parallel over the rows of
//!    `J_n` using the precomputed symbolic update lists),
//! 2. TRSVD (`U_n ←` leading `R_n` left singular vectors of `Y_(n)`).
//!
//! After the last mode, the core tensor is extracted from the already
//! available TTMc result and the fit is monitored.  Wall-clock time is
//! accounted per phase (symbolic, init, TTMc, TRSVD, core) because the
//! paper's Tables IV and V report exactly those breakdowns.
//!
//! The driver itself lives in [`crate::solver`]: [`tucker_hooi`] is a thin
//! convenience wrapper over a one-shot [`TuckerSolver`] session.  Callers
//! that decompose the same tensor more than once should plan a session
//! instead and amortize the symbolic analysis, thread pool and scratch
//! buffers across solves.

use crate::config::TuckerConfig;
use crate::core_tensor::reconstruct_at;
use crate::error::TuckerError;
use crate::solver::{PlanOptions, TuckerSolver};
use crate::workspace::HooiWorkspace;
use linalg::Matrix;
use sptensor::{DenseTensor, SparseTensor};
use std::time::{Duration, Instant};

/// Wall-clock time spent in each phase of a HOOI run.
#[derive(Debug, Clone, Default)]
pub struct TimingBreakdown {
    /// Symbolic TTMc preprocessing (once per plan; a session's later solves
    /// report zero here because the analysis is reused, not redone).
    pub symbolic: Duration,
    /// Worker-pool startup (once per plan; a session's later solves report
    /// zero here because the persistent workers are reused, not respawned —
    /// a nonzero value marks the one solve that paid for pool bring-up).
    pub pool: Duration,
    /// Factor initialization (random or HOSVD), once per solve.
    pub init: Duration,
    /// Numeric TTMc across all iterations and modes.
    pub ttmc: Duration,
    /// TRSVD across all iterations and modes.
    pub trsvd: Duration,
    /// Core tensor formation across all iterations.
    pub core: Duration,
}

impl TimingBreakdown {
    /// Total time across all phases.
    pub fn total(&self) -> Duration {
        self.symbolic + self.pool + self.init + self.ttmc + self.trsvd + self.core
    }

    /// Time spent inside the iteration loop (everything but the one-time
    /// plan costs — symbolic analysis and pool startup — and the factor
    /// initialization).
    pub fn iteration_time(&self) -> Duration {
        self.ttmc + self.trsvd + self.core
    }

    /// Relative share (in percent) of TTMc, TRSVD and core within the
    /// iteration time — the rows of the paper's Table IV.
    pub fn relative_shares(&self) -> (f64, f64, f64) {
        let total = self.iteration_time().as_secs_f64();
        if total == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            100.0 * self.ttmc.as_secs_f64() / total,
            100.0 * self.trsvd.as_secs_f64() / total,
            100.0 * self.core.as_secs_f64() / total,
        )
    }
}

/// The result of a Tucker-HOOI run.
#[derive(Debug, Clone)]
pub struct TuckerDecomposition {
    /// The core tensor `G` (`R_1 × … × R_N`).
    pub core: DenseTensor,
    /// The factor matrices `U_n` (`I_n × R_n`), orthonormal columns.
    pub factors: Vec<Matrix>,
    /// The fit after each completed iteration (1 = exact).
    pub fits: Vec<f64>,
    /// Number of ALS iterations performed.
    pub iterations: usize,
    /// Leading singular values of the final TRSVD per mode.
    pub singular_values: Vec<Vec<f64>>,
    /// Wall-clock breakdown.
    pub timings: TimingBreakdown,
}

impl TuckerDecomposition {
    /// The fit reached at the end of the run (1 = exact reconstruction).
    pub fn final_fit(&self) -> f64 {
        self.fits.last().copied().unwrap_or(0.0)
    }

    /// The ranks of the decomposition.
    pub fn ranks(&self) -> Vec<usize> {
        self.factors.iter().map(|u| u.ncols()).collect()
    }

    /// Reconstructs the model value `[[G; U₁,…,U_N]]` at one coordinate —
    /// the prediction a recommender reads off the decomposition for a
    /// (user, item, …) index.
    ///
    /// # Panics
    /// Panics if `index` has the wrong arity or an entry exceeds its mode
    /// size.
    pub fn predict(&self, index: &[usize]) -> f64 {
        assert_eq!(
            index.len(),
            self.factors.len(),
            "index arity does not match the decomposition order"
        );
        reconstruct_at(&self.core, &self.factors, index)
    }

    /// Batch prediction: the model values at many coordinates — the shape a
    /// served recommender reads scores in (one user slice per request).
    ///
    /// A per-index [`predict`](Self::predict) loop re-walks the dense core
    /// and re-unlinearizes every position for every coordinate; this variant
    /// enumerates the nonzero core entries and their multi-indices exactly
    /// once and streams every query through that flat term list.  Each value
    /// is bit-identical to the corresponding [`predict`](Self::predict)
    /// call (same terms, same order, same arithmetic).
    ///
    /// # Panics
    /// Panics if any index has the wrong arity or an entry exceeds its mode
    /// size.
    pub fn predict_many(&self, indices: &[Vec<usize>]) -> Vec<f64> {
        let order = self.factors.len();
        // Enumerate the nonzero core terms once: their values and flattened
        // multi-indices, in ascending core position (the order `predict`
        // walks them in).
        let mut term_values: Vec<f64> = Vec::new();
        let mut term_ridx: Vec<usize> = Vec::new();
        let mut ridx = vec![0usize; order];
        for pos in 0..self.core.len() {
            let g = self.core.as_slice()[pos];
            if g == 0.0 {
                continue;
            }
            self.core.unlinearize(pos, &mut ridx);
            term_values.push(g);
            term_ridx.extend_from_slice(&ridx);
        }
        indices
            .iter()
            .map(|index| {
                assert_eq!(
                    index.len(),
                    order,
                    "index arity does not match the decomposition order"
                );
                let mut sum = 0.0;
                for (t, &g) in term_values.iter().enumerate() {
                    let ridx = &term_ridx[t * order..(t + 1) * order];
                    let mut prod = g;
                    for (n, &r) in ridx.iter().enumerate() {
                        prod *= self.factors[n][(index[n], r)];
                        if prod == 0.0 {
                            break;
                        }
                    }
                    sum += prod;
                }
                sum
            })
            .collect()
    }
}

/// Runs shared-memory parallel HOOI on a sparse tensor, one-shot.
///
/// This is a thin convenience wrapper over a single-use [`TuckerSolver`]
/// session: it plans (symbolic TTMc + a persistent worker pool sized by
/// [`TuckerConfig::num_threads`]), solves once, and discards the plan
/// (joining the pool's workers).
/// Callers decomposing the same tensor repeatedly — rank sweeps, seed
/// restarts, services — should call [`TuckerSolver::plan`] once and
/// [`TuckerSolver::solve`] per request instead.
///
/// Invalid input (empty tensor, rank/order mismatch, zero rank) is reported
/// as a [`TuckerError`], never a panic.
pub fn tucker_hooi(
    tensor: &SparseTensor,
    config: &TuckerConfig,
) -> Result<TuckerDecomposition, TuckerError> {
    TuckerSolver::plan(
        tensor,
        PlanOptions::new()
            .num_threads(config.num_threads)
            .ttmc_strategy(config.ttmc_strategy)
            .index_layout(config.index_layout)
            .kernel_isa(config.kernel_isa),
    )?
    .solve(config)
}

/// The pool-agnostic one-shot entry: runs in whatever thread context the
/// caller established.  [`tucker_hooi`] wraps it in a pool sized by the
/// configuration; embedders that already hold a pool (or want the ambient
/// thread count) call this directly.
pub fn tucker_hooi_in_current_pool(
    tensor: &SparseTensor,
    config: &TuckerConfig,
) -> Result<TuckerDecomposition, TuckerError> {
    if tensor.order() == 0 || tensor.nnz() == 0 {
        return Err(TuckerError::EmptyTensor);
    }
    let ranks = config.validated_ranks(tensor.dims())?;
    let t0 = Instant::now();
    // Same plan-time resolution as a solver session, so a pooled and a
    // pool-agnostic run of one configuration execute the same strategy.
    let (symbolic, tree) =
        crate::solver::resolve_plan(tensor, config.ttmc_strategy, config.index_layout);
    let symbolic_time = t0.elapsed();
    let mut workspace = HooiWorkspace::new(&symbolic, &ranks);
    Ok(crate::solver::run_hooi(
        tensor,
        &symbolic,
        tree.as_ref(),
        &mut workspace,
        tensor.frobenius_norm(),
        &ranks,
        config,
        symbolic_time,
        Duration::ZERO, // no pool is built: the ambient thread context runs it
        config.kernel_isa.resolve(),
        &mut |_: &crate::solver::IterationReport| crate::solver::IterationControl::Continue,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Initialization, TrsvdBackend};
    use crate::fit::{full_relative_error, rmse_at_nonzeros};
    use datagen::{lowrank_tensor, random_tensor, LowRankSpec};
    use linalg::qr::orthogonality_error;

    #[test]
    fn hooi_fit_at_least_matches_planted_model() {
        // A partially sampled low-rank tensor (zeros at the unsampled
        // positions) is no longer exactly low rank, so HOOI cannot recover
        // the planted model exactly; it must however reach a fit at least as
        // good as the planted factors evaluated on the *sampled* tensor,
        // since ALS monotonically improves the fit from any starting point
        // and the planted factors are one admissible candidate.
        let lr = lowrank_tensor(&LowRankSpec {
            dims: vec![25, 20, 15],
            ranks: vec![3, 3, 2],
            nnz: 25 * 20 * 15 / 3,
            noise: 0.0,
            seed: 42,
        });
        let config = TuckerConfig::new(vec![3, 3, 2]).max_iterations(10).seed(7);
        let result = tucker_hooi(&lr.tensor, &config).unwrap();
        let planted_core = crate::core_tensor::core_from_scratch(&lr.tensor, &lr.factors);
        let planted_fit =
            crate::fit::fit_from_norms(lr.tensor.frobenius_norm(), planted_core.frobenius_norm());
        assert!(
            result.final_fit() >= planted_fit - 0.02,
            "HOOI fit {} vs planted fit {planted_fit}",
            result.final_fit()
        );
        // The model should still explain the observed entries far better
        // than predicting zero everywhere.
        let rmse = rmse_at_nonzeros(&lr.tensor, &result.core, &result.factors);
        let scale = lr.tensor.frobenius_norm() / (lr.tensor.nnz() as f64).sqrt();
        assert!(rmse < scale, "rmse {rmse} vs scale {scale}");
    }

    #[test]
    fn recovers_fully_observed_lowrank_tensor_exactly() {
        // Fully sampled low-rank tensor: HOOI with the planted ranks must
        // reach fit ≈ 1.
        let dims = vec![12, 10, 8];
        let total: usize = dims.iter().product();
        let lr = lowrank_tensor(&LowRankSpec {
            dims: dims.clone(),
            ranks: vec![2, 2, 2],
            nnz: total,
            noise: 0.0,
            seed: 5,
        });
        assert_eq!(lr.tensor.nnz(), total);
        let config = TuckerConfig::new(vec![2, 2, 2]).max_iterations(15).seed(3);
        let result = tucker_hooi(&lr.tensor, &config).unwrap();
        assert!(
            result.final_fit() > 0.999,
            "fit {} should be ~1",
            result.final_fit()
        );
        let err = full_relative_error(&lr.tensor, &result.core, &result.factors, 1_000_000);
        assert!(err < 1e-3, "relative error {err}");
    }

    #[test]
    fn factors_are_orthonormal() {
        let t = random_tensor(&[30, 25, 20], 2000, 11);
        let config = TuckerConfig::new(vec![4, 4, 4]).max_iterations(3);
        let result = tucker_hooi(&t, &config).unwrap();
        for u in &result.factors {
            assert!(orthogonality_error(u) < 1e-6);
        }
        assert_eq!(result.core.dims(), &[4, 4, 4]);
    }

    #[test]
    fn fit_is_monotone_nondecreasing() {
        let t = random_tensor(&[20, 20, 20], 1500, 3);
        let config = TuckerConfig::new(vec![3, 3, 3])
            .max_iterations(6)
            .fit_tolerance(-1.0); // never early-stop
        let result = tucker_hooi(&t, &config).unwrap();
        for w in result.fits.windows(2) {
            assert!(w[1] >= w[0] - 1e-8, "fit decreased: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn early_stopping_respects_tolerance() {
        let t = random_tensor(&[15, 15, 15], 800, 9);
        let config = TuckerConfig::new(vec![2, 2, 2])
            .max_iterations(50)
            .fit_tolerance(0.5); // huge tolerance: stop after 2 iterations
        let result = tucker_hooi(&t, &config).unwrap();
        assert!(result.iterations <= 3);
    }

    #[test]
    fn works_on_4mode_tensor() {
        let t = random_tensor(&[10, 12, 8, 6], 600, 17);
        let config = TuckerConfig::new(vec![2, 2, 2, 2]).max_iterations(3);
        let result = tucker_hooi(&t, &config).unwrap();
        assert_eq!(result.core.dims(), &[2, 2, 2, 2]);
        assert_eq!(result.factors.len(), 4);
        assert!(result.final_fit() > 0.0);
    }

    #[test]
    fn ranks_clamped_to_dims() {
        let t = random_tensor(&[5, 30, 30], 400, 2);
        let config = TuckerConfig::new(vec![10, 4, 4]).max_iterations(2);
        let result = tucker_hooi(&t, &config).unwrap();
        assert_eq!(result.ranks(), vec![5, 4, 4]);
    }

    #[test]
    fn invalid_input_is_an_error_not_a_panic() {
        let t = random_tensor(&[10, 10, 10], 200, 1);
        let config = TuckerConfig::new(vec![2, 2]);
        assert!(matches!(
            tucker_hooi(&t, &config),
            Err(TuckerError::OrderMismatch { .. })
        ));
        let config = TuckerConfig::new(vec![2, 0, 2]);
        assert_eq!(
            tucker_hooi(&t, &config).unwrap_err(),
            TuckerError::ZeroRank { mode: 1 }
        );
        let empty = SparseTensor::new(vec![4, 4, 4]);
        assert_eq!(
            tucker_hooi(&empty, &TuckerConfig::new(vec![2, 2, 2])).unwrap_err(),
            TuckerError::EmptyTensor
        );
    }

    #[test]
    fn backends_reach_similar_fit() {
        let t = random_tensor(&[25, 20, 15], 1200, 5);
        let base = TuckerConfig::new(vec![3, 3, 3]).max_iterations(4).seed(1);
        let lanczos = tucker_hooi(&t, &base.clone().trsvd(TrsvdBackend::Lanczos)).unwrap();
        let dense = tucker_hooi(&t, &base.clone().trsvd(TrsvdBackend::Dense)).unwrap();
        let randomized = tucker_hooi(&t, &base.clone().trsvd(TrsvdBackend::Randomized)).unwrap();
        assert!((lanczos.final_fit() - dense.final_fit()).abs() < 1e-3);
        assert!((randomized.final_fit() - dense.final_fit()).abs() < 5e-3);
    }

    #[test]
    fn hosvd_init_at_least_as_good_as_random_on_lowrank() {
        let lr = lowrank_tensor(&LowRankSpec {
            dims: vec![15, 12, 10],
            ranks: vec![2, 2, 2],
            nnz: 15 * 12 * 10,
            noise: 0.01,
            seed: 21,
        });
        let base = TuckerConfig::new(vec![2, 2, 2]).max_iterations(1).seed(4);
        let random = tucker_hooi(&lr.tensor, &base.clone()).unwrap();
        let hosvd = tucker_hooi(
            &lr.tensor,
            &base.clone().initialization(Initialization::Hosvd),
        )
        .unwrap();
        // After a single iteration the HOSVD start should not be worse by
        // more than a small margin (it is usually better).
        assert!(hosvd.final_fit() >= random.final_fit() - 0.05);
    }

    #[test]
    fn timing_breakdown_is_populated() {
        let t = random_tensor(&[40, 40, 40], 4000, 7);
        let config = TuckerConfig::new(vec![4, 4, 4]).max_iterations(2);
        let result = tucker_hooi(&t, &config).unwrap();
        assert!(result.timings.ttmc > Duration::ZERO);
        assert!(result.timings.trsvd > Duration::ZERO);
        assert!(result.timings.init > Duration::ZERO);
        assert!(result.timings.total() >= result.timings.iteration_time() + result.timings.init);
        let (a, b, c) = result.timings.relative_shares();
        assert!((a + b + c - 100.0).abs() < 1e-6);
    }

    #[test]
    fn singular_values_recorded_per_mode() {
        let t = random_tensor(&[20, 20, 20], 1000, 13);
        let config = TuckerConfig::new(vec![3, 3, 3]).max_iterations(2);
        let result = tucker_hooi(&t, &config).unwrap();
        assert_eq!(result.singular_values.len(), 3);
        for sv in &result.singular_values {
            assert_eq!(sv.len(), 3);
            assert!(sv[0] >= sv[1]);
        }
    }

    #[test]
    fn predict_matches_reconstruct_at() {
        let t = random_tensor(&[12, 10, 8], 300, 19);
        let config = TuckerConfig::new(vec![3, 3, 3]).max_iterations(2);
        let result = tucker_hooi(&t, &config).unwrap();
        for (idx, _) in t.iter().take(10) {
            let direct = crate::core_tensor::reconstruct_at(&result.core, &result.factors, idx);
            assert_eq!(result.predict(idx), direct);
        }
    }

    #[test]
    fn predict_many_matches_per_index_predict_bitwise() {
        let t = random_tensor(&[14, 11, 9], 350, 29);
        let config = TuckerConfig::new(vec![3, 2, 3]).max_iterations(2);
        let result = tucker_hooi(&t, &config).unwrap();
        let indices: Vec<Vec<usize>> = t.iter().take(25).map(|(idx, _)| idx.to_vec()).collect();
        let batch = result.predict_many(&indices);
        assert_eq!(batch.len(), indices.len());
        for (idx, &value) in indices.iter().zip(batch.iter()) {
            assert_eq!(value, result.predict(idx), "diverged at {idx:?}");
        }
        assert!(result.predict_many(&[]).is_empty());
    }

    #[test]
    fn in_current_pool_matches_pooled_entry() {
        let t = random_tensor(&[15, 12, 10], 400, 23);
        let config = TuckerConfig::new(vec![2, 2, 2]).max_iterations(2).seed(8);
        let pooled = tucker_hooi(&t, &config).unwrap();
        let ambient = tucker_hooi_in_current_pool(&t, &config).unwrap();
        assert_eq!(pooled.fits, ambient.fits);
        assert_eq!(pooled.factors, ambient.factors);
    }
}
