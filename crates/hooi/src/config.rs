//! Configuration of the HOOI solver.

/// How the factor matrices are initialized before the first HOOI iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Initialization {
    /// Random orthonormal columns (the default; cheap and what the paper's
    /// scalability experiments effectively measure, since the per-iteration
    /// cost does not depend on the starting point).
    Random,
    /// HOSVD-style initialization: leading left singular vectors of each
    /// mode unfolding.  Only sensible for small tensors; falls back to
    /// random when the unfolding is too large to handle (see
    /// [`crate::hosvd`]).
    Hosvd,
}

/// Which truncated-SVD backend updates the factor matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrsvdBackend {
    /// Golub–Kahan–Lanczos with full reorthogonalization (the SLEPc
    /// stand-in; default).
    Lanczos,
    /// Randomized range-finder SVD (used by the ablation benches).
    Randomized,
    /// Dense SVD of the explicitly assembled matricized result (only for
    /// small problems / verification).
    Dense,
}

/// Options controlling a Tucker-HOOI run.
#[derive(Debug, Clone)]
pub struct TuckerConfig {
    /// Requested rank per mode (`R_1, …, R_N`).
    pub ranks: Vec<usize>,
    /// Maximum number of ALS iterations.
    pub max_iterations: usize,
    /// Stop when the fit improves by less than this between iterations.
    pub fit_tolerance: f64,
    /// Factor initialization scheme.
    pub initialization: Initialization,
    /// TRSVD backend.
    pub trsvd: TrsvdBackend,
    /// RNG seed (initialization and iterative TRSVD starting vectors).
    pub seed: u64,
    /// Number of worker threads for the parallel TTMc/TRSVD/HOOI sweep;
    /// `0` (the default) uses every available hardware thread.  The solver
    /// builds one scoped thread pool from this value and runs the whole
    /// pipeline inside it, so `num_threads = 1` executes the identical code
    /// path fully sequentially — the configuration the paper's
    /// thread-scalability experiments (Table V) sweep.
    pub num_threads: usize,
}

impl TuckerConfig {
    /// Creates a configuration with the given ranks and the defaults used in
    /// the paper's experiments: 5 HOOI iterations, Lanczos TRSVD, random
    /// initialization.
    pub fn new(ranks: Vec<usize>) -> Self {
        assert!(!ranks.is_empty(), "at least one mode rank is required");
        assert!(ranks.iter().all(|&r| r > 0), "ranks must be positive");
        TuckerConfig {
            ranks,
            max_iterations: 5,
            fit_tolerance: 1e-5,
            initialization: Initialization::Random,
            trsvd: TrsvdBackend::Lanczos,
            seed: 0x7c4a_u64 ^ 0x00c0_ffee,
            num_threads: 0,
        }
    }

    /// Uniform rank `r` across `order` modes.
    pub fn with_uniform_rank(order: usize, r: usize) -> Self {
        TuckerConfig::new(vec![r; order])
    }

    /// Builder-style setter for the iteration count.
    pub fn max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Builder-style setter for the fit tolerance.
    pub fn fit_tolerance(mut self, tol: f64) -> Self {
        self.fit_tolerance = tol;
        self
    }

    /// Builder-style setter for the initialization scheme.
    pub fn initialization(mut self, init: Initialization) -> Self {
        self.initialization = init;
        self
    }

    /// Builder-style setter for the TRSVD backend.
    pub fn trsvd(mut self, backend: TrsvdBackend) -> Self {
        self.trsvd = backend;
        self
    }

    /// Builder-style setter for the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style setter for the worker thread count (`0` = all
    /// available hardware threads).
    pub fn num_threads(mut self, threads: usize) -> Self {
        self.num_threads = threads;
        self
    }

    /// Validates the configuration against a tensor's mode sizes, clamping
    /// ranks that exceed their mode size (the decomposition rank can never
    /// exceed the dimension).
    pub fn clamped_ranks(&self, dims: &[usize]) -> Vec<usize> {
        assert_eq!(
            dims.len(),
            self.ranks.len(),
            "configuration has {} ranks but the tensor has {} modes",
            self.ranks.len(),
            dims.len()
        );
        self.ranks
            .iter()
            .zip(dims.iter())
            .map(|(&r, &d)| r.min(d))
            .collect()
    }

    /// Product of the ranks of all modes except `mode` — the width of the
    /// mode-`mode` matricized TTMc result.
    pub fn ttmc_width(&self, mode: usize) -> usize {
        self.ranks
            .iter()
            .enumerate()
            .filter(|&(m, _)| m != mode)
            .map(|(_, &r)| r)
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = TuckerConfig::new(vec![10, 10, 10]);
        assert_eq!(c.max_iterations, 5);
        assert_eq!(c.trsvd, TrsvdBackend::Lanczos);
        assert_eq!(c.initialization, Initialization::Random);
    }

    #[test]
    fn uniform_rank_constructor() {
        let c = TuckerConfig::with_uniform_rank(4, 5);
        assert_eq!(c.ranks, vec![5, 5, 5, 5]);
    }

    #[test]
    fn builder_setters() {
        let c = TuckerConfig::new(vec![3, 3])
            .max_iterations(12)
            .fit_tolerance(1e-9)
            .initialization(Initialization::Hosvd)
            .trsvd(TrsvdBackend::Dense)
            .seed(99);
        assert_eq!(c.max_iterations, 12);
        assert_eq!(c.fit_tolerance, 1e-9);
        assert_eq!(c.initialization, Initialization::Hosvd);
        assert_eq!(c.trsvd, TrsvdBackend::Dense);
        assert_eq!(c.seed, 99);
    }

    #[test]
    fn num_threads_builder_and_default() {
        let c = TuckerConfig::new(vec![2, 2]);
        assert_eq!(c.num_threads, 0, "default uses all hardware threads");
        let c = c.num_threads(4);
        assert_eq!(c.num_threads, 4);
    }

    #[test]
    fn clamped_ranks_respect_dims() {
        let c = TuckerConfig::new(vec![10, 10, 10]);
        assert_eq!(c.clamped_ranks(&[100, 5, 50]), vec![10, 5, 10]);
    }

    #[test]
    #[should_panic]
    fn clamped_ranks_arity_mismatch() {
        let c = TuckerConfig::new(vec![10, 10]);
        let _ = c.clamped_ranks(&[100, 100, 100]);
    }

    #[test]
    fn ttmc_width_excludes_mode() {
        let c = TuckerConfig::new(vec![2, 3, 4]);
        assert_eq!(c.ttmc_width(0), 12);
        assert_eq!(c.ttmc_width(1), 8);
        assert_eq!(c.ttmc_width(2), 6);
    }

    #[test]
    #[should_panic]
    fn zero_rank_rejected() {
        let _ = TuckerConfig::new(vec![2, 0]);
    }
}
