//! Configuration of the HOOI solver.

use crate::error::TuckerError;
use linalg::simd::KernelIsa;

/// How the factor matrices are initialized before the first HOOI iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Initialization {
    /// Random orthonormal columns (the default; cheap and what the paper's
    /// scalability experiments effectively measure, since the per-iteration
    /// cost does not depend on the starting point).
    Random,
    /// HOSVD-style initialization: leading left singular vectors of each
    /// mode unfolding.  Only sensible for small tensors; falls back to
    /// random when the unfolding is too large to handle (see
    /// [`crate::hosvd`]).
    Hosvd,
}

/// How the per-iteration TTMc sweep is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TtmcStrategy {
    /// One independent nonzero-based TTMc per mode (paper Algorithm 2) —
    /// the baseline the distributed executor's bit-identity contract is
    /// pinned to.
    PerMode,
    /// Flop-sharing dimension-tree TTMc ([`crate::dimtree`]): partial
    /// contractions are materialized once per iteration at the internal
    /// nodes of a binary mode tree and every leaf serves its mode's compact
    /// result from them.  Strictly fewer flops for order ≥ 4; tensors with
    /// a single mode silently fall back to [`PerMode`](Self::PerMode).
    DimensionTree,
    /// Pick the cheaper of [`PerMode`](Self::PerMode) and
    /// [`DimensionTree`](Self::DimensionTree) per tensor at plan time by
    /// comparing the strategies' modeled per-iteration flops
    /// ([`crate::dimtree::DimTree::costs`] vs
    /// [`crate::dimtree::per_mode_costs`]) at a fixed rank hint.  The
    /// default: order ≥ 4 profiles resolve to the tree, while tensors whose
    /// projections never collide (where sharing cannot pay for the extra
    /// partial-value traffic) resolve to the per-mode sweep.  Ties resolve
    /// to [`PerMode`](Self::PerMode), the simpler kernel.
    #[default]
    Auto,
}

/// Which per-mode nonzero index structure the per-mode numeric TTMc
/// streams.
///
/// All three concrete layouts accumulate every output row in the same
/// order with the same arithmetic, so solves are bit-identical across
/// them — the choice trades memory footprint against streaming speed:
///
/// * [`Coo`](Self::Coo) stores nothing beyond the symbolic update lists
///   and gathers each nonzero through its COO id (slowest, zero extra
///   memory),
/// * [`ModeSorted`](Self::ModeSorted) copies values + foreign indices per
///   mode into update-list order (fastest streaming, `order²·nnz` words),
/// * [`Csf`](Self::Csf) compresses shared foreign-index prefixes into
///   fiber hierarchies with `u32` ids where the dimensions permit (smaller
///   than `ModeSorted`, hoists one factor-row lookup per fiber).
///
/// Only per-mode plans consult this knob; dimension-tree plans serve TTMc
/// from their own node structures and carry no per-mode layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexLayout {
    /// Gather through COO ids; no per-mode copy of the nonzero data.
    Coo,
    /// Mode-sorted value/index copies per mode (the PR 5 layout).
    ModeSorted,
    /// Compressed sparse fiber hierarchies per mode.
    Csf,
    /// Resolve at plan time from the tensor's size: [`Csf`](Self::Csf)
    /// when the estimated `ModeSorted` footprint exceeds
    /// [`AUTO_CSF_THRESHOLD_BYTES`](Self::AUTO_CSF_THRESHOLD_BYTES),
    /// [`ModeSorted`](Self::ModeSorted) otherwise.  A pure function of
    /// `(order, nnz)`, so the resolution is deterministic per tensor.
    #[default]
    Auto,
}

impl IndexLayout {
    /// [`Auto`](Self::Auto) switches to CSF above this estimated
    /// `ModeSorted` footprint (64 MiB): small tensors keep the flat copies
    /// cache-resident, large ones take the compressed hierarchies.
    pub const AUTO_CSF_THRESHOLD_BYTES: usize = 64 << 20;

    /// Estimated total `ModeSorted` footprint for a tensor shape: per mode,
    /// `nnz` values plus `(order-1)·nnz` word-sized indices, across `order`
    /// modes.
    pub fn mode_sorted_estimate_bytes(order: usize, nnz: usize) -> usize {
        order * order * nnz * std::mem::size_of::<usize>()
    }

    /// The concrete layout this knob selects for a tensor with the given
    /// order and nonzero count; identity on everything but
    /// [`Auto`](Self::Auto).
    pub fn resolve_for(self, order: usize, nnz: usize) -> IndexLayout {
        match self {
            IndexLayout::Auto => {
                if Self::mode_sorted_estimate_bytes(order, nnz) > Self::AUTO_CSF_THRESHOLD_BYTES {
                    IndexLayout::Csf
                } else {
                    IndexLayout::ModeSorted
                }
            }
            concrete => concrete,
        }
    }
}

/// Which truncated-SVD backend updates the factor matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrsvdBackend {
    /// Golub–Kahan–Lanczos with full reorthogonalization (the SLEPc
    /// stand-in; default).
    Lanczos,
    /// Randomized range-finder SVD (used by the ablation benches).
    Randomized,
    /// Dense SVD of the explicitly assembled matricized result (only for
    /// small problems / verification).
    Dense,
}

/// Options controlling a Tucker-HOOI run.
#[derive(Debug, Clone)]
pub struct TuckerConfig {
    /// Requested rank per mode (`R_1, …, R_N`).
    pub ranks: Vec<usize>,
    /// Maximum number of ALS iterations.
    pub max_iterations: usize,
    /// Stop when the fit improves by less than this between iterations.
    pub fit_tolerance: f64,
    /// Factor initialization scheme.
    pub initialization: Initialization,
    /// TRSVD backend.
    pub trsvd: TrsvdBackend,
    /// RNG seed (initialization and iterative TRSVD starting vectors).
    pub seed: u64,
    /// Number of worker threads for the parallel TTMc/TRSVD/HOOI sweep;
    /// `0` (the default) uses every available hardware thread.  The one-shot
    /// [`crate::tucker_hooi`] entry builds one scoped thread pool from this
    /// value and runs the whole pipeline inside it, so `num_threads = 1`
    /// executes the identical code path fully sequentially — the
    /// configuration the paper's thread-scalability experiments (Table V)
    /// sweep.  A planned [`crate::TuckerSolver`] owns its pool instead (see
    /// [`crate::PlanOptions::num_threads`]); this field is ignored by
    /// `solve` so one plan serves any number of configurations.
    pub num_threads: usize,
    /// How the TTMc sweep is computed by the one-shot entry points
    /// ([`crate::tucker_hooi`], [`crate::tucker_hooi_in_current_pool`]);
    /// defaults to [`TtmcStrategy::Auto`].  A planned
    /// [`crate::TuckerSolver`] fixes the strategy at plan time instead (see
    /// [`crate::PlanOptions::ttmc_strategy`]) and ignores this field.
    pub ttmc_strategy: TtmcStrategy,
    /// Which per-mode index layout a per-mode TTMc plan streams; defaults
    /// to [`IndexLayout::Auto`].  Like the strategy, a planned
    /// [`crate::TuckerSolver`] fixes this at plan time (see
    /// [`crate::PlanOptions::index_layout`]) and ignores this field during
    /// solves.  Dimension-tree plans ignore it entirely.
    pub index_layout: IndexLayout,
    /// Which SIMD kernel tier the numeric TTMc and Kronecker-accumulate
    /// kernels run at; defaults to [`KernelIsa::Auto`] (the widest tier
    /// whose results are bit-identical to scalar — AVX2 where available).
    /// [`KernelIsa::Fma`] must be requested explicitly because fused
    /// multiply-adds round differently from scalar.  Consulted by the
    /// one-shot entry points; a planned [`crate::TuckerSolver`] fixes the
    /// resolved ISA at plan time instead (see
    /// [`crate::PlanOptions::kernel_isa`]) and ignores this field during
    /// solves.  The `TUCKER_KERNEL` environment variable overrides
    /// everything (see [`KernelIsa::resolve`]).
    pub kernel_isa: KernelIsa,
}

impl TuckerConfig {
    /// Creates a configuration with the given ranks and the defaults used in
    /// the paper's experiments: 5 HOOI iterations, Lanczos TRSVD, random
    /// initialization.
    ///
    /// Construction never fails: the ranks are validated against a concrete
    /// tensor when the configuration is used (see
    /// [`validated_ranks`](Self::validated_ranks)), so an invalid
    /// configuration surfaces as a [`TuckerError`] instead of a panic.
    pub fn new(ranks: Vec<usize>) -> Self {
        TuckerConfig {
            ranks,
            max_iterations: 5,
            fit_tolerance: 1e-5,
            initialization: Initialization::Random,
            trsvd: TrsvdBackend::Lanczos,
            seed: 0x7c4a_u64 ^ 0x00c0_ffee,
            num_threads: 0,
            ttmc_strategy: TtmcStrategy::default(),
            index_layout: IndexLayout::default(),
            kernel_isa: KernelIsa::default(),
        }
    }

    /// Uniform rank `r` across `order` modes.
    pub fn with_uniform_rank(order: usize, r: usize) -> Self {
        TuckerConfig::new(vec![r; order])
    }

    /// Builder-style setter for the iteration count.
    pub fn max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Builder-style setter for the fit tolerance.
    pub fn fit_tolerance(mut self, tol: f64) -> Self {
        self.fit_tolerance = tol;
        self
    }

    /// Builder-style setter for the initialization scheme.
    pub fn initialization(mut self, init: Initialization) -> Self {
        self.initialization = init;
        self
    }

    /// Builder-style setter for the TRSVD backend.
    pub fn trsvd(mut self, backend: TrsvdBackend) -> Self {
        self.trsvd = backend;
        self
    }

    /// Builder-style setter for the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style setter for the worker thread count (`0` = all
    /// available hardware threads).
    pub fn num_threads(mut self, threads: usize) -> Self {
        self.num_threads = threads;
        self
    }

    /// Builder-style setter for the TTMc strategy used by the one-shot
    /// entry points.
    pub fn ttmc_strategy(mut self, strategy: TtmcStrategy) -> Self {
        self.ttmc_strategy = strategy;
        self
    }

    /// Builder-style setter for the per-mode index layout used by the
    /// one-shot entry points.
    pub fn index_layout(mut self, layout: IndexLayout) -> Self {
        self.index_layout = layout;
        self
    }

    /// Builder-style setter for the SIMD kernel tier used by the one-shot
    /// entry points.
    pub fn kernel_isa(mut self, isa: KernelIsa) -> Self {
        self.kernel_isa = isa;
        self
    }

    /// Validates the configuration against a tensor's mode sizes and returns
    /// the effective per-mode ranks, clamping requests that exceed their
    /// mode size (the decomposition rank can never exceed the dimension).
    ///
    /// This is the non-panicking validation every public solver entry point
    /// runs before touching the tensor:
    ///
    /// ```
    /// use hooi::{TuckerConfig, TuckerError};
    ///
    /// let config = TuckerConfig::new(vec![10, 10, 0]);
    /// assert_eq!(
    ///     config.validated_ranks(&[50, 5, 50]),
    ///     Err(TuckerError::ZeroRank { mode: 2 })
    /// );
    /// let config = TuckerConfig::new(vec![10, 10]);
    /// assert_eq!(
    ///     config.validated_ranks(&[50, 5]),
    ///     Ok(vec![10, 5]) // clamped to the mode size
    /// );
    /// ```
    pub fn validated_ranks(&self, dims: &[usize]) -> Result<Vec<usize>, TuckerError> {
        if self.ranks.len() != dims.len() {
            return Err(TuckerError::OrderMismatch {
                config_modes: self.ranks.len(),
                tensor_modes: dims.len(),
            });
        }
        if let Some(mode) = self.ranks.iter().position(|&r| r == 0) {
            return Err(TuckerError::ZeroRank { mode });
        }
        Ok(self
            .ranks
            .iter()
            .zip(dims.iter())
            .map(|(&r, &d)| r.min(d))
            .collect())
    }

    /// Like [`validated_ranks`](Self::validated_ranks) but panicking on a
    /// rank/order mismatch — for internal callers that have already
    /// validated (the distributed simulator, the MET baseline).
    pub fn clamped_ranks(&self, dims: &[usize]) -> Vec<usize> {
        assert_eq!(
            dims.len(),
            self.ranks.len(),
            "configuration has {} ranks but the tensor has {} modes",
            self.ranks.len(),
            dims.len()
        );
        self.ranks
            .iter()
            .zip(dims.iter())
            .map(|(&r, &d)| r.min(d))
            .collect()
    }

    /// Product of the ranks of all modes except `mode` — the width of the
    /// mode-`mode` matricized TTMc result.
    pub fn ttmc_width(&self, mode: usize) -> usize {
        self.ranks
            .iter()
            .enumerate()
            .filter(|&(m, _)| m != mode)
            .map(|(_, &r)| r)
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = TuckerConfig::new(vec![10, 10, 10]);
        assert_eq!(c.max_iterations, 5);
        assert_eq!(c.trsvd, TrsvdBackend::Lanczos);
        assert_eq!(c.initialization, Initialization::Random);
    }

    #[test]
    fn uniform_rank_constructor() {
        let c = TuckerConfig::with_uniform_rank(4, 5);
        assert_eq!(c.ranks, vec![5, 5, 5, 5]);
    }

    #[test]
    fn builder_setters() {
        let c = TuckerConfig::new(vec![3, 3])
            .max_iterations(12)
            .fit_tolerance(1e-9)
            .initialization(Initialization::Hosvd)
            .trsvd(TrsvdBackend::Dense)
            .seed(99);
        assert_eq!(c.max_iterations, 12);
        assert_eq!(c.fit_tolerance, 1e-9);
        assert_eq!(c.initialization, Initialization::Hosvd);
        assert_eq!(c.trsvd, TrsvdBackend::Dense);
        assert_eq!(c.seed, 99);
    }

    #[test]
    fn num_threads_builder_and_default() {
        let c = TuckerConfig::new(vec![2, 2]);
        assert_eq!(c.num_threads, 0, "default uses all hardware threads");
        let c = c.num_threads(4);
        assert_eq!(c.num_threads, 4);
    }

    #[test]
    fn clamped_ranks_respect_dims() {
        let c = TuckerConfig::new(vec![10, 10, 10]);
        assert_eq!(c.clamped_ranks(&[100, 5, 50]), vec![10, 5, 10]);
    }

    #[test]
    #[should_panic]
    fn clamped_ranks_arity_mismatch() {
        let c = TuckerConfig::new(vec![10, 10]);
        let _ = c.clamped_ranks(&[100, 100, 100]);
    }

    #[test]
    fn validated_ranks_reject_order_mismatch() {
        let c = TuckerConfig::new(vec![10, 10]);
        assert_eq!(
            c.validated_ranks(&[100, 100, 100]),
            Err(TuckerError::OrderMismatch {
                config_modes: 2,
                tensor_modes: 3,
            })
        );
    }

    #[test]
    fn validated_ranks_reject_zero_rank() {
        let c = TuckerConfig::new(vec![2, 0, 3]);
        assert_eq!(
            c.validated_ranks(&[10, 10, 10]),
            Err(TuckerError::ZeroRank { mode: 1 })
        );
        // Empty ranks are an order mismatch against any non-empty tensor.
        let c = TuckerConfig::new(vec![]);
        assert_eq!(
            c.validated_ranks(&[10, 10]),
            Err(TuckerError::OrderMismatch {
                config_modes: 0,
                tensor_modes: 2,
            })
        );
    }

    #[test]
    fn validated_ranks_clamp_like_clamped_ranks() {
        let c = TuckerConfig::new(vec![10, 10, 10]);
        assert_eq!(c.validated_ranks(&[100, 5, 50]).unwrap(), vec![10, 5, 10]);
    }

    #[test]
    fn index_layout_auto_resolves_by_memory_estimate() {
        // Concrete layouts are fixed points.
        for l in [IndexLayout::Coo, IndexLayout::ModeSorted, IndexLayout::Csf] {
            assert_eq!(l.resolve_for(3, 1), l);
            assert_eq!(l.resolve_for(5, 1_000_000_000), l);
        }
        // Auto: small tensors keep the flat mode-sorted copies …
        assert_eq!(
            IndexLayout::Auto.resolve_for(3, 60_000),
            IndexLayout::ModeSorted
        );
        // … and tensors whose estimated ModeSorted footprint exceeds the
        // threshold switch to CSF.  order²·nnz·8 > 64 MiB at order 3 means
        // nnz > ~932k.
        assert_eq!(
            IndexLayout::Auto.resolve_for(3, 1_000_000),
            IndexLayout::Csf
        );
        assert_eq!(
            IndexLayout::Auto.resolve_for(4, 30_000_000),
            IndexLayout::Csf
        );
        // The boundary is exactly the threshold: equality stays flat.
        let just_fits = IndexLayout::AUTO_CSF_THRESHOLD_BYTES / (3 * 3 * 8);
        assert_eq!(
            IndexLayout::Auto.resolve_for(3, just_fits),
            IndexLayout::ModeSorted
        );
        assert_eq!(
            IndexLayout::Auto.resolve_for(3, just_fits + 1),
            IndexLayout::Csf
        );
    }

    #[test]
    fn index_layout_builder_and_default() {
        let c = TuckerConfig::new(vec![2, 2, 2]);
        assert_eq!(c.index_layout, IndexLayout::Auto);
        let c = c.index_layout(IndexLayout::Csf);
        assert_eq!(c.index_layout, IndexLayout::Csf);
    }

    #[test]
    fn kernel_isa_builder_and_default() {
        let c = TuckerConfig::new(vec![2, 2, 2]);
        assert_eq!(c.kernel_isa, KernelIsa::Auto);
        let c = c.kernel_isa(KernelIsa::Scalar);
        assert_eq!(c.kernel_isa, KernelIsa::Scalar);
    }

    #[test]
    fn ttmc_width_excludes_mode() {
        let c = TuckerConfig::new(vec![2, 3, 4]);
        assert_eq!(c.ttmc_width(0), 12);
        assert_eq!(c.ttmc_width(1), 8);
        assert_eq!(c.ttmc_width(2), 6);
    }
}
