//! Symbolic TTMc — the preprocessing step of the paper (§III-A1).
//!
//! For each mode `n`, the nonzero-based TTMc adds one scaled Kronecker
//! product per nonzero to row `i_n` of the matricized result.  Two threads
//! processing nonzeros with the same `i_n` would race; instead of locks, the
//! paper performs one pass over the data *before* the HOOI iterations to
//! build, for every mode, the *update list* `ul_n(i)`: the nonzeros whose
//! mode-`n` index is `i`.  The set `J_n` of rows with non-empty lists is
//! kept alongside.  During the numeric TTMc each row is then an independent
//! task — embarrassingly parallel, lock-free, and the index arithmetic is
//! done exactly once regardless of how many HOOI iterations (or how many
//! different rank configurations) follow.
//!
//! The update lists store nonzero *ids* (positions in the COO arrays), not
//! copies of the nonzeros, exactly as the paper describes.

use rayon::prelude::*;
use sptensor::csf::CsfMode;
use sptensor::layout::ModeSortedNonzeros;
use sptensor::SparseTensor;

/// Update lists for one mode, in CSR-like form.
#[derive(Debug, Clone)]
pub struct SymbolicMode {
    /// The mode this structure describes.
    pub mode: usize,
    /// Sorted list of row indices with at least one nonzero (`J_n`).
    pub rows: Vec<usize>,
    /// Offsets into [`nonzero_ids`](Self::nonzero_ids); `row_ptr[p]..row_ptr[p+1]`
    /// is the update list of `rows[p]`.
    pub row_ptr: Vec<usize>,
    /// Nonzero ids grouped by row.
    pub nonzero_ids: Vec<usize>,
    /// Dense inverse map from a global row index to its position in
    /// [`rows`](Self::rows); `usize::MAX` marks an empty row.  One `Vec`
    /// lookup per nonzero in the build and per `position_of` call, replacing
    /// the previous hash-map probe on both hot paths.
    row_pos: Vec<usize>,
    /// The nonzero data (values + foreign-mode indices) permuted into
    /// update-list order so the per-mode numeric TTMc streams contiguously.
    /// Costs one extra copy of the nonzero data per mode (`nnz` values +
    /// `(order-1)·nnz` indices) — the same memory/speed trade the per-mode
    /// CSF layouts of the follow-up literature make — so it is only
    /// materialized where that kernel actually runs: `None` on
    /// dimension-tree plans (the tree streams its own per-node
    /// contract-index arrays instead), in which case
    /// [`crate::ttmc`] gathers through COO ids in the identical
    /// accumulation order.
    layout: Option<ModeSortedNonzeros>,
    /// Compressed fiber hierarchy for this mode, present exactly when the
    /// plan resolved to the CSF index layout
    /// ([`crate::config::IndexLayout::Csf`]).  Built from
    /// [`nonzero_ids`](Self::nonzero_ids) / [`row_ptr`](Self::row_ptr), so
    /// its leaf order *is* the update-list order and the CSF kernel
    /// accumulates bit-identically to the COO and mode-sorted paths.
    csf: Option<CsfMode>,
}

impl SymbolicMode {
    /// Builds the update lists for `mode` with a counting pass followed by a
    /// filling pass (two passes over the nonzeros, no sort), then the
    /// mode-sorted nonzero layout the per-mode numeric kernel streams.
    pub fn build(tensor: &SparseTensor, mode: usize) -> Self {
        SymbolicMode::build_with_layout(tensor, mode, true)
    }

    /// [`build`](Self::build) with the mode-sorted layout made optional:
    /// dimension-tree plans pass `false` and skip the per-mode value/index
    /// copies (the tree serves TTMc from its own node structures).
    ///
    /// The update lists themselves ([`nonzero_ids`](Self::nonzero_ids)) are
    /// always built, even though the tree path reads only
    /// [`rows`](Self::rows): they are the paper's symbolic-TTMc artifact
    /// and what keeps [`update_list`](Self::update_list) and the per-mode
    /// kernel's COO-gather fallback valid on *every* plan — a deliberate
    /// `order·nnz`-word trade against silently breaking this type's public
    /// invariants on tree plans.
    pub fn build_with_layout(tensor: &SparseTensor, mode: usize, with_layout: bool) -> Self {
        assert!(mode < tensor.order());
        let dim = tensor.dims()[mode];
        // Pass 1: count nonzeros per row.
        let mut counts = vec![0usize; dim];
        for t in 0..tensor.nnz() {
            counts[tensor.index(t)[mode]] += 1;
        }
        // Compact to nonempty rows.
        let rows: Vec<usize> = (0..dim).filter(|&i| counts[i] > 0).collect();
        let mut row_pos = vec![usize::MAX; dim];
        for (p, &i) in rows.iter().enumerate() {
            row_pos[i] = p;
        }
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        row_ptr.push(0usize);
        for &i in &rows {
            row_ptr.push(row_ptr.last().unwrap() + counts[i]);
        }
        // Pass 2: fill the ids.
        let mut cursor: Vec<usize> = row_ptr[..rows.len()].to_vec();
        let mut nonzero_ids = vec![0usize; tensor.nnz()];
        for t in 0..tensor.nnz() {
            let i = tensor.index(t)[mode];
            let p = row_pos[i];
            nonzero_ids[cursor[p]] = t;
            cursor[p] += 1;
        }
        let layout = with_layout.then(|| ModeSortedNonzeros::build(tensor, mode, &nonzero_ids));
        SymbolicMode {
            mode,
            rows,
            row_ptr,
            nonzero_ids,
            row_pos,
            layout,
            csf: None,
        }
    }

    /// Number of non-empty rows (`|J_n|`).
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The update list (nonzero ids) of the `p`-th non-empty row.
    pub fn update_list(&self, p: usize) -> &[usize] {
        &self.nonzero_ids[self.row_ptr[p]..self.row_ptr[p + 1]]
    }

    /// Position of global row `i` in [`rows`](Self::rows), if non-empty.
    pub fn position_of(&self, i: usize) -> Option<usize> {
        match self.row_pos.get(i).copied() {
            Some(usize::MAX) | None => None,
            p => p,
        }
    }

    /// The mode-sorted nonzero layout: values and foreign-mode indices in
    /// update-list order, aligned with [`row_ptr`](Self::row_ptr) /
    /// [`nonzero_ids`](Self::nonzero_ids).  `None` when the symbolic data
    /// was built for a dimension-tree plan
    /// ([`SymbolicTtmc::build_without_layout`]); the per-mode kernel then
    /// gathers through COO ids instead, in the same accumulation order.
    #[inline]
    pub fn layout(&self) -> Option<&ModeSortedNonzeros> {
        self.layout.as_ref()
    }

    /// The compressed fiber hierarchy for this mode, if the plan resolved to
    /// the CSF index layout.  The numeric kernel checks this before
    /// [`layout`](Self::layout); both produce bit-identical results, they
    /// differ only in memory footprint and streaming pattern.
    #[inline]
    pub fn csf(&self) -> Option<&CsfMode> {
        self.csf.as_ref()
    }

    /// The length of the longest update list — the largest atomic task in
    /// this mode, which bounds the parallel load imbalance.
    pub fn max_update_list_len(&self) -> usize {
        (0..self.num_rows())
            .map(|p| self.row_ptr[p + 1] - self.row_ptr[p])
            .max()
            .unwrap_or(0)
    }

    /// Per-row scheduling weights: `costs[p]` is the update-list length of
    /// the `p`-th non-empty row.  Every nonzero contributes the same
    /// `2·Π_{t≠n} R_t` flops to its row, so the list length *is* the row's
    /// relative flop count — exactly what the weighted chunked-span
    /// scheduler needs to balance spans by work instead of by row count.
    pub fn row_costs(&self) -> Vec<u64> {
        (0..self.num_rows())
            .map(|p| (self.row_ptr[p + 1] - self.row_ptr[p]) as u64)
            .collect()
    }

    /// Builds and attaches the mode-sorted layout if absent — the upgrade
    /// path for an `Auto` plan that built its symbolic data layout-free for
    /// the cost comparison and then resolved to the per-mode strategy.
    pub fn attach_layout(&mut self, tensor: &SparseTensor) {
        if self.layout.is_none() {
            self.layout = Some(ModeSortedNonzeros::build(
                tensor,
                self.mode,
                &self.nonzero_ids,
            ));
        }
    }

    /// Builds and attaches the compressed fiber hierarchy if absent — the
    /// plan-time upgrade path for the CSF index layout.  The hierarchy is
    /// built from the update-list permutation, so root slice `p` aligns with
    /// [`rows`](Self::rows)`[p]` and the leaf order matches the COO-gather
    /// accumulation order exactly.
    pub fn attach_csf(&mut self, tensor: &SparseTensor) {
        if self.csf.is_none() {
            self.csf = Some(CsfMode::build(
                tensor,
                self.mode,
                &self.nonzero_ids,
                &self.row_ptr,
            ));
        }
    }
}

/// Symbolic TTMc data for every mode of a tensor.
#[derive(Debug, Clone)]
pub struct SymbolicTtmc {
    /// One [`SymbolicMode`] per mode, in mode order.
    pub modes: Vec<SymbolicMode>,
}

impl SymbolicTtmc {
    /// Builds the update lists of all modes; modes are processed in parallel
    /// (the "symbolic TTMc of each dimension can be performed independently"
    /// observation of the paper).
    pub fn build(tensor: &SparseTensor) -> Self {
        let modes: Vec<SymbolicMode> = (0..tensor.order())
            .into_par_iter()
            .map(|m| SymbolicMode::build(tensor, m))
            .collect();
        SymbolicTtmc { modes }
    }

    /// [`build`](Self::build) without the mode-sorted nonzero layouts —
    /// what a dimension-tree plan uses, since its TTMc never runs the
    /// per-mode streaming kernel and the layouts would be one dead copy of
    /// the nonzero data per mode.
    pub fn build_without_layout(tensor: &SparseTensor) -> Self {
        let modes: Vec<SymbolicMode> = (0..tensor.order())
            .into_par_iter()
            .map(|m| SymbolicMode::build_with_layout(tensor, m, false))
            .collect();
        SymbolicTtmc { modes }
    }

    /// Sequential variant, used to measure the benefit of mode-parallel
    /// symbolic construction.
    pub fn build_sequential(tensor: &SparseTensor) -> Self {
        let modes: Vec<SymbolicMode> = (0..tensor.order())
            .map(|m| SymbolicMode::build(tensor, m))
            .collect();
        SymbolicTtmc { modes }
    }

    /// The symbolic data for one mode.
    pub fn mode(&self, mode: usize) -> &SymbolicMode {
        &self.modes[mode]
    }

    /// Attaches the mode-sorted layouts to every mode that lacks one (see
    /// [`SymbolicMode::attach_layout`]); modes are processed in parallel
    /// like the build itself.
    pub fn attach_layouts(&mut self, tensor: &SparseTensor) {
        let modes = std::mem::take(&mut self.modes);
        self.modes = modes
            .into_par_iter()
            .map(|mut m| {
                m.attach_layout(tensor);
                m
            })
            .collect::<SymbolicMode, Vec<SymbolicMode>>();
    }

    /// Attaches the compressed fiber hierarchies to every mode that lacks
    /// one (see [`SymbolicMode::attach_csf`]); modes are processed in
    /// parallel like the build itself.
    pub fn attach_csf_layouts(&mut self, tensor: &SparseTensor) {
        let modes = std::mem::take(&mut self.modes);
        self.modes = modes
            .into_par_iter()
            .map(|mut m| {
                m.attach_csf(tensor);
                m
            })
            .collect::<SymbolicMode, Vec<SymbolicMode>>();
    }

    /// Number of modes.
    pub fn order(&self) -> usize {
        self.modes.len()
    }

    /// Total memory footprint of the symbolic structures in bytes
    /// (approximate; used in the experiment reports).
    pub fn memory_bytes(&self) -> usize {
        self.modes
            .iter()
            .map(|m| {
                (m.rows.len() + m.row_ptr.len() + m.nonzero_ids.len() + m.row_pos.len())
                    * std::mem::size_of::<usize>()
                    + m.layout.as_ref().map_or(0, |l| l.memory_bytes())
                    + m.csf.as_ref().map_or(0, |c| c.memory_bytes())
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseTensor {
        SparseTensor::from_entries(
            vec![4, 3, 5],
            &[
                (vec![0, 0, 0], 1.0),
                (vec![0, 1, 2], 2.0),
                (vec![2, 1, 2], 3.0),
                (vec![2, 2, 4], 4.0),
                (vec![3, 0, 0], 5.0),
            ],
        )
    }

    #[test]
    fn rows_are_nonempty_and_sorted() {
        let t = sample();
        let s = SymbolicMode::build(&t, 0);
        assert_eq!(s.rows, vec![0, 2, 3]);
        assert_eq!(s.num_rows(), 3);
    }

    #[test]
    fn update_lists_cover_all_nonzeros_exactly_once() {
        let t = sample();
        for mode in 0..3 {
            let s = SymbolicMode::build(&t, mode);
            let mut all: Vec<usize> = Vec::new();
            for p in 0..s.num_rows() {
                all.extend_from_slice(s.update_list(p));
            }
            all.sort_unstable();
            assert_eq!(all, (0..t.nnz()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn update_list_members_have_matching_index() {
        let t = sample();
        for mode in 0..3 {
            let s = SymbolicMode::build(&t, mode);
            for (p, &row) in s.rows.iter().enumerate() {
                for &id in s.update_list(p) {
                    assert_eq!(t.index(id)[mode], row);
                }
            }
        }
    }

    #[test]
    fn position_of_maps_back() {
        let t = sample();
        let s = SymbolicMode::build(&t, 0);
        assert_eq!(s.position_of(2), Some(1));
        assert_eq!(s.position_of(1), None);
        assert_eq!(s.position_of(3), Some(2));
    }

    #[test]
    fn layout_mirrors_update_list_order() {
        let t = sample();
        for mode in 0..3 {
            let s = SymbolicMode::build(&t, mode);
            let lay = s.layout().expect("default build carries the layout");
            assert_eq!(lay.len(), t.nnz());
            for (pos, &id) in s.nonzero_ids.iter().enumerate() {
                assert_eq!(lay.value(pos), t.value(id));
                let full = t.index(id);
                let expect: Vec<usize> = full
                    .iter()
                    .enumerate()
                    .filter(|&(m, _)| m != mode)
                    .map(|(_, &i)| i)
                    .collect();
                assert_eq!(lay.coords(pos), &expect[..], "mode {mode} pos {pos}");
            }
        }
    }

    #[test]
    fn layoutless_build_matches_update_lists() {
        let t = sample();
        for mode in 0..3 {
            let with = SymbolicMode::build(&t, mode);
            let without = SymbolicMode::build_with_layout(&t, mode, false);
            assert!(without.layout().is_none());
            assert_eq!(with.rows, without.rows);
            assert_eq!(with.row_ptr, without.row_ptr);
            assert_eq!(with.nonzero_ids, without.nonzero_ids);
        }
        let bare = SymbolicTtmc::build_without_layout(&t);
        assert!(bare.memory_bytes() < SymbolicTtmc::build(&t).memory_bytes());
    }

    #[test]
    fn attached_csf_mirrors_update_list_order() {
        let t = sample();
        for mode in 0..3 {
            let mut s = SymbolicMode::build_with_layout(&t, mode, false);
            assert!(s.csf().is_none());
            s.attach_csf(&t);
            let csf = s.csf().expect("csf attached");
            assert_eq!(csf.num_rows(), s.num_rows());
            assert_eq!(csf.nnz(), t.nnz());
            let mut seen: Vec<(usize, Vec<usize>, f64)> = Vec::new();
            csf.for_each_nonzero(|root, foreign, value| {
                seen.push((root, foreign.to_vec(), value));
            });
            let expect: Vec<(usize, Vec<usize>, f64)> = s
                .nonzero_ids
                .iter()
                .map(|&id| {
                    let full = t.index(id);
                    let foreign: Vec<usize> = full
                        .iter()
                        .enumerate()
                        .filter(|&(m, _)| m != mode)
                        .map(|(_, &i)| i)
                        .collect();
                    (full[mode], foreign, t.value(id))
                })
                .collect();
            assert_eq!(seen, expect, "mode {mode}");
        }
    }

    #[test]
    fn attach_csf_layouts_grows_memory_and_covers_all_modes() {
        let t = sample();
        let mut s = SymbolicTtmc::build_without_layout(&t);
        let bare = s.memory_bytes();
        s.attach_csf_layouts(&t);
        assert!(s.memory_bytes() > bare);
        for m in 0..s.order() {
            assert!(s.mode(m).csf().is_some());
        }
    }

    #[test]
    fn max_update_list_len_matches_histogram() {
        let t = sample();
        let s = SymbolicMode::build(&t, 0);
        assert_eq!(s.max_update_list_len(), 2);
        let s1 = SymbolicMode::build(&t, 1);
        assert_eq!(s1.max_update_list_len(), 2);
    }

    #[test]
    fn parallel_and_sequential_builds_agree() {
        let t = sample();
        let a = SymbolicTtmc::build(&t);
        let b = SymbolicTtmc::build_sequential(&t);
        assert_eq!(a.order(), b.order());
        for m in 0..3 {
            assert_eq!(a.mode(m).rows, b.mode(m).rows);
            assert_eq!(a.mode(m).row_ptr, b.mode(m).row_ptr);
            assert_eq!(a.mode(m).nonzero_ids, b.mode(m).nonzero_ids);
        }
    }

    #[test]
    fn empty_tensor_symbolic() {
        let t = SparseTensor::new(vec![3, 3]);
        let s = SymbolicTtmc::build(&t);
        assert_eq!(s.mode(0).num_rows(), 0);
        assert_eq!(s.mode(0).max_update_list_len(), 0);
    }

    #[test]
    fn memory_bytes_nonzero_for_nonempty() {
        let t = sample();
        let s = SymbolicTtmc::build(&t);
        assert!(s.memory_bytes() > 0);
    }
}
