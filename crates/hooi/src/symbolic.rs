//! Symbolic TTMc — the preprocessing step of the paper (§III-A1).
//!
//! For each mode `n`, the nonzero-based TTMc adds one scaled Kronecker
//! product per nonzero to row `i_n` of the matricized result.  Two threads
//! processing nonzeros with the same `i_n` would race; instead of locks, the
//! paper performs one pass over the data *before* the HOOI iterations to
//! build, for every mode, the *update list* `ul_n(i)`: the nonzeros whose
//! mode-`n` index is `i`.  The set `J_n` of rows with non-empty lists is
//! kept alongside.  During the numeric TTMc each row is then an independent
//! task — embarrassingly parallel, lock-free, and the index arithmetic is
//! done exactly once regardless of how many HOOI iterations (or how many
//! different rank configurations) follow.
//!
//! The update lists store nonzero *ids* (positions in the COO arrays), not
//! copies of the nonzeros, exactly as the paper describes.

use rayon::prelude::*;
use sptensor::hash::FxHashMap;
use sptensor::SparseTensor;

/// Update lists for one mode, in CSR-like form.
#[derive(Debug, Clone)]
pub struct SymbolicMode {
    /// The mode this structure describes.
    pub mode: usize,
    /// Sorted list of row indices with at least one nonzero (`J_n`).
    pub rows: Vec<usize>,
    /// Offsets into [`nonzero_ids`](Self::nonzero_ids); `row_ptr[p]..row_ptr[p+1]`
    /// is the update list of `rows[p]`.
    pub row_ptr: Vec<usize>,
    /// Nonzero ids grouped by row.
    pub nonzero_ids: Vec<usize>,
    /// Inverse map from a global row index to its position in
    /// [`rows`](Self::rows).
    row_pos: FxHashMap<usize, usize>,
}

impl SymbolicMode {
    /// Builds the update lists for `mode` with a counting pass followed by a
    /// filling pass (two passes over the nonzeros, no sort).
    pub fn build(tensor: &SparseTensor, mode: usize) -> Self {
        assert!(mode < tensor.order());
        let dim = tensor.dims()[mode];
        // Pass 1: count nonzeros per row.
        let mut counts = vec![0usize; dim];
        for t in 0..tensor.nnz() {
            counts[tensor.index(t)[mode]] += 1;
        }
        // Compact to nonempty rows.
        let rows: Vec<usize> = (0..dim).filter(|&i| counts[i] > 0).collect();
        let mut row_pos = FxHashMap::default();
        row_pos.reserve(rows.len());
        for (p, &i) in rows.iter().enumerate() {
            row_pos.insert(i, p);
        }
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        row_ptr.push(0usize);
        for &i in &rows {
            row_ptr.push(row_ptr.last().unwrap() + counts[i]);
        }
        // Pass 2: fill the ids.
        let mut cursor: Vec<usize> = row_ptr[..rows.len()].to_vec();
        let mut nonzero_ids = vec![0usize; tensor.nnz()];
        for t in 0..tensor.nnz() {
            let i = tensor.index(t)[mode];
            let p = row_pos[&i];
            nonzero_ids[cursor[p]] = t;
            cursor[p] += 1;
        }
        SymbolicMode {
            mode,
            rows,
            row_ptr,
            nonzero_ids,
            row_pos,
        }
    }

    /// Number of non-empty rows (`|J_n|`).
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The update list (nonzero ids) of the `p`-th non-empty row.
    pub fn update_list(&self, p: usize) -> &[usize] {
        &self.nonzero_ids[self.row_ptr[p]..self.row_ptr[p + 1]]
    }

    /// Position of global row `i` in [`rows`](Self::rows), if non-empty.
    pub fn position_of(&self, i: usize) -> Option<usize> {
        self.row_pos.get(&i).copied()
    }

    /// The length of the longest update list — the largest atomic task in
    /// this mode, which bounds the parallel load imbalance.
    pub fn max_update_list_len(&self) -> usize {
        (0..self.num_rows())
            .map(|p| self.row_ptr[p + 1] - self.row_ptr[p])
            .max()
            .unwrap_or(0)
    }
}

/// Symbolic TTMc data for every mode of a tensor.
#[derive(Debug, Clone)]
pub struct SymbolicTtmc {
    /// One [`SymbolicMode`] per mode, in mode order.
    pub modes: Vec<SymbolicMode>,
}

impl SymbolicTtmc {
    /// Builds the update lists of all modes; modes are processed in parallel
    /// (the "symbolic TTMc of each dimension can be performed independently"
    /// observation of the paper).
    pub fn build(tensor: &SparseTensor) -> Self {
        let modes: Vec<SymbolicMode> = (0..tensor.order())
            .into_par_iter()
            .map(|m| SymbolicMode::build(tensor, m))
            .collect();
        SymbolicTtmc { modes }
    }

    /// Sequential variant, used to measure the benefit of mode-parallel
    /// symbolic construction.
    pub fn build_sequential(tensor: &SparseTensor) -> Self {
        let modes: Vec<SymbolicMode> = (0..tensor.order())
            .map(|m| SymbolicMode::build(tensor, m))
            .collect();
        SymbolicTtmc { modes }
    }

    /// The symbolic data for one mode.
    pub fn mode(&self, mode: usize) -> &SymbolicMode {
        &self.modes[mode]
    }

    /// Number of modes.
    pub fn order(&self) -> usize {
        self.modes.len()
    }

    /// Total memory footprint of the symbolic structures in bytes
    /// (approximate; used in the experiment reports).
    pub fn memory_bytes(&self) -> usize {
        self.modes
            .iter()
            .map(|m| {
                (m.rows.len() + m.row_ptr.len() + m.nonzero_ids.len())
                    * std::mem::size_of::<usize>()
                    + m.rows.len() * 2 * std::mem::size_of::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseTensor {
        SparseTensor::from_entries(
            vec![4, 3, 5],
            &[
                (vec![0, 0, 0], 1.0),
                (vec![0, 1, 2], 2.0),
                (vec![2, 1, 2], 3.0),
                (vec![2, 2, 4], 4.0),
                (vec![3, 0, 0], 5.0),
            ],
        )
    }

    #[test]
    fn rows_are_nonempty_and_sorted() {
        let t = sample();
        let s = SymbolicMode::build(&t, 0);
        assert_eq!(s.rows, vec![0, 2, 3]);
        assert_eq!(s.num_rows(), 3);
    }

    #[test]
    fn update_lists_cover_all_nonzeros_exactly_once() {
        let t = sample();
        for mode in 0..3 {
            let s = SymbolicMode::build(&t, mode);
            let mut all: Vec<usize> = Vec::new();
            for p in 0..s.num_rows() {
                all.extend_from_slice(s.update_list(p));
            }
            all.sort_unstable();
            assert_eq!(all, (0..t.nnz()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn update_list_members_have_matching_index() {
        let t = sample();
        for mode in 0..3 {
            let s = SymbolicMode::build(&t, mode);
            for (p, &row) in s.rows.iter().enumerate() {
                for &id in s.update_list(p) {
                    assert_eq!(t.index(id)[mode], row);
                }
            }
        }
    }

    #[test]
    fn position_of_maps_back() {
        let t = sample();
        let s = SymbolicMode::build(&t, 0);
        assert_eq!(s.position_of(2), Some(1));
        assert_eq!(s.position_of(1), None);
        assert_eq!(s.position_of(3), Some(2));
    }

    #[test]
    fn max_update_list_len_matches_histogram() {
        let t = sample();
        let s = SymbolicMode::build(&t, 0);
        assert_eq!(s.max_update_list_len(), 2);
        let s1 = SymbolicMode::build(&t, 1);
        assert_eq!(s1.max_update_list_len(), 2);
    }

    #[test]
    fn parallel_and_sequential_builds_agree() {
        let t = sample();
        let a = SymbolicTtmc::build(&t);
        let b = SymbolicTtmc::build_sequential(&t);
        assert_eq!(a.order(), b.order());
        for m in 0..3 {
            assert_eq!(a.mode(m).rows, b.mode(m).rows);
            assert_eq!(a.mode(m).row_ptr, b.mode(m).row_ptr);
            assert_eq!(a.mode(m).nonzero_ids, b.mode(m).nonzero_ids);
        }
    }

    #[test]
    fn empty_tensor_symbolic() {
        let t = SparseTensor::new(vec![3, 3]);
        let s = SymbolicTtmc::build(&t);
        assert_eq!(s.mode(0).num_rows(), 0);
        assert_eq!(s.mode(0).max_update_list_len(), 0);
    }

    #[test]
    fn memory_bytes_nonzero_for_nonempty() {
        let t = sample();
        let s = SymbolicTtmc::build(&t);
        assert!(s.memory_bytes() > 0);
    }
}
