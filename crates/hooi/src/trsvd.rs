//! The TRSVD step: leading left singular vectors of the matricized TTMc
//! result (paper §III-A2).
//!
//! The matricized result `Y_(n)` is `I_n × Π_{t≠n} R_t`; `I_n` can be in the
//! millions, so forming the Gram matrix `Y_(n) Y_(n)ᵀ` (the dense-Tucker
//! approach of Austin et al.) is infeasible, and direct SVD methods compute
//! all singular values when only `R_n` are needed.  The paper therefore uses
//! a matrix-free iterative solver (SLEPc); here the [`linalg::lanczos`]
//! solver plays that role, with the randomized and dense backends available
//! for comparison and verification.
//!
//! The solver sees only the *compact* TTMc result (non-empty rows); the
//! recovered left singular vectors are scattered back into the full factor
//! matrix, with rows of empty slices left at zero (those rows never
//! participate in any TTMc).

use crate::config::TrsvdBackend;
use crate::symbolic::SymbolicMode;
use linalg::lanczos::{lanczos_svd_with, LanczosOptions, LanczosWorkspace};
use linalg::operator::DenseOperator;
use linalg::randomized::{randomized_svd, RandomizedOptions};
use linalg::svd::dense_svd;
use linalg::Matrix;

/// Outcome of a TRSVD step.
#[derive(Debug, Clone)]
pub struct TrsvdResult {
    /// The updated factor matrix `U_n` (`I_n × R_n`), rows of empty slices
    /// are zero.
    pub factor: Matrix,
    /// The leading singular values of the matricized TTMc result.
    pub singular_values: Vec<f64>,
    /// Number of operator applications (MxV + MTxV) used by the iterative
    /// solver (0 for the dense backend).
    pub operator_applications: usize,
}

/// Computes the `rank` leading left singular vectors of the compact TTMc
/// result and scatters them into a full `dim × rank` factor matrix.
///
/// * `compact` — `|J_n| × Π_{t≠n} R_t` TTMc result,
/// * `sym` — the symbolic data of the mode (provides the row mapping),
/// * `dim` — the full mode size `I_n`.
pub fn trsvd_factor(
    compact: &Matrix,
    sym: &SymbolicMode,
    dim: usize,
    rank: usize,
    backend: TrsvdBackend,
    seed: u64,
) -> TrsvdResult {
    trsvd_factor_with(
        compact,
        sym,
        dim,
        rank,
        backend,
        seed,
        &mut LanczosWorkspace::new(),
    )
}

/// [`trsvd_factor`] with caller-provided TRSVD scratch: the Lanczos backend
/// draws its Krylov bases and projected problem from `scratch` instead of
/// allocating per call — the HOOI loop passes the workspace buffers here
/// (see [`crate::workspace::HooiWorkspace`]).  The other backends ignore
/// the scratch.
pub fn trsvd_factor_with(
    compact: &Matrix,
    sym: &SymbolicMode,
    dim: usize,
    rank: usize,
    backend: TrsvdBackend,
    seed: u64,
    scratch: &mut LanczosWorkspace,
) -> TrsvdResult {
    assert_eq!(compact.nrows(), sym.num_rows());
    let effective_rank = rank.min(compact.nrows().max(1)).min(compact.ncols().max(1));
    let (u_compact, singular_values, applications) = if compact.nrows() == 0 {
        (Matrix::zeros(0, rank), vec![0.0; rank], 0)
    } else {
        match backend {
            TrsvdBackend::Lanczos => {
                let op = DenseOperator::parallel(compact);
                let opts = LanczosOptions {
                    seed,
                    ..LanczosOptions::default()
                };
                let svd = lanczos_svd_with(&op, effective_rank, &opts, scratch);
                (svd.u, svd.singular_values, svd.operator_applications)
            }
            TrsvdBackend::Randomized => {
                let op = DenseOperator::parallel(compact);
                let opts = RandomizedOptions {
                    seed,
                    ..RandomizedOptions::default()
                };
                let svd = randomized_svd(&op, effective_rank, &opts);
                (svd.u, svd.singular_values, svd.operator_applications)
            }
            TrsvdBackend::Dense => {
                let svd = dense_svd(compact);
                let take = effective_rank.min(svd.singular_values.len());
                let mut u = Matrix::zeros(compact.nrows(), take);
                for j in 0..take {
                    u.set_col(j, &svd.u.col(j));
                }
                (u, svd.singular_values[..take].to_vec(), 0)
            }
        }
    };

    // Scatter compact rows into the full factor matrix.
    let mut factor = Matrix::zeros(dim, rank);
    let copy_cols = u_compact.ncols().min(rank);
    for (p, &i) in sym.rows.iter().enumerate() {
        factor.row_mut(i)[..copy_cols].copy_from_slice(&u_compact.row(p)[..copy_cols]);
    }
    let mut singular_values = singular_values;
    singular_values.resize(rank, 0.0);

    TrsvdResult {
        factor,
        singular_values,
        operator_applications: applications,
    }
}

/// Work measure of the TRSVD step used by the paper's Table III
/// (`W_TRSVD`): the number of rows the iterative solver multiplies per
/// MxV/MTxV pass, i.e. the number of (compact) rows of `Y_(n)` owned.  In
/// the shared-memory case this is simply `|J_n|`.
pub fn trsvd_work(sym: &SymbolicMode) -> usize {
    sym.num_rows()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::SymbolicTtmc;
    use crate::ttmc::ttmc_mode;
    use datagen::random_tensor;
    use linalg::qr::orthogonality_error;

    fn setup() -> (sptensor::SparseTensor, Vec<Matrix>, SymbolicTtmc) {
        let t = random_tensor(&[40, 30, 20], 2000, 9);
        let factors = vec![
            Matrix::random(40, 4, 1),
            Matrix::random(30, 4, 2),
            Matrix::random(20, 4, 3),
        ];
        let sym = SymbolicTtmc::build(&t);
        (t, factors, sym)
    }

    #[test]
    fn factor_has_orthonormal_nonzero_rows() {
        let (t, factors, sym) = setup();
        let compact = ttmc_mode(&t, sym.mode(0), &factors, 0);
        let result = trsvd_factor(&compact, sym.mode(0), 40, 4, TrsvdBackend::Lanczos, 5);
        assert_eq!(result.factor.shape(), (40, 4));
        // All 40 slices are nonempty with 2000 nonzeros, so the factor's
        // columns should be orthonormal.
        assert!(orthogonality_error(&result.factor) < 1e-6);
    }

    #[test]
    fn backends_agree_on_singular_values() {
        let (t, factors, sym) = setup();
        let compact = ttmc_mode(&t, sym.mode(1), &factors, 1);
        let lanczos = trsvd_factor(&compact, sym.mode(1), 30, 3, TrsvdBackend::Lanczos, 5);
        let dense = trsvd_factor(&compact, sym.mode(1), 30, 3, TrsvdBackend::Dense, 5);
        let randomized = trsvd_factor(&compact, sym.mode(1), 30, 3, TrsvdBackend::Randomized, 5);
        for i in 0..3 {
            assert!(
                (lanczos.singular_values[i] - dense.singular_values[i]).abs()
                    < 1e-5 * dense.singular_values[0],
                "lanczos σ_{i}"
            );
            assert!(
                (randomized.singular_values[i] - dense.singular_values[i]).abs()
                    < 1e-3 * dense.singular_values[0],
                "randomized σ_{i}"
            );
        }
    }

    #[test]
    fn empty_rows_stay_zero() {
        // Mode 0 has size 10 but only rows 2 and 7 carry nonzeros.
        let t = sptensor::SparseTensor::from_entries(
            vec![10, 4, 4],
            &[
                (vec![2, 1, 1], 1.0),
                (vec![7, 2, 3], 2.0),
                (vec![2, 0, 3], 3.0),
            ],
        );
        let factors = vec![
            Matrix::random(10, 2, 1),
            Matrix::random(4, 2, 2),
            Matrix::random(4, 2, 3),
        ];
        let sym = SymbolicTtmc::build(&t);
        let compact = ttmc_mode(&t, sym.mode(0), &factors, 0);
        let result = trsvd_factor(&compact, sym.mode(0), 10, 2, TrsvdBackend::Dense, 1);
        for i in 0..10 {
            let row_norm: f64 = result.factor.row(i).iter().map(|x| x * x).sum();
            if i == 2 || i == 7 {
                assert!(row_norm > 0.0);
            } else {
                assert_eq!(row_norm, 0.0, "row {i} should be zero");
            }
        }
    }

    #[test]
    fn rank_larger_than_rows_is_padded() {
        let t = sptensor::SparseTensor::from_entries(
            vec![5, 3, 3],
            &[(vec![0, 0, 0], 1.0), (vec![1, 1, 1], 2.0)],
        );
        let factors = vec![
            Matrix::random(5, 2, 1),
            Matrix::random(3, 2, 2),
            Matrix::random(3, 2, 3),
        ];
        let sym = SymbolicTtmc::build(&t);
        let compact = ttmc_mode(&t, sym.mode(0), &factors, 0);
        // Only 2 nonempty rows but rank 4 requested.
        let result = trsvd_factor(&compact, sym.mode(0), 5, 4, TrsvdBackend::Lanczos, 1);
        assert_eq!(result.factor.shape(), (5, 4));
        assert_eq!(result.singular_values.len(), 4);
    }

    #[test]
    fn singular_values_descending() {
        let (t, factors, sym) = setup();
        let compact = ttmc_mode(&t, sym.mode(2), &factors, 2);
        let result = trsvd_factor(&compact, sym.mode(2), 20, 4, TrsvdBackend::Lanczos, 2);
        for w in result.singular_values.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
    }

    #[test]
    fn trsvd_work_is_row_count() {
        let (t, _, sym) = setup();
        assert_eq!(trsvd_work(sym.mode(0)), sym.mode(0).num_rows());
        let _ = t;
    }
}
