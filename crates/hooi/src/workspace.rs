//! Reusable scratch state for the HOOI iteration loop.
//!
//! Per iteration, every mode `n` produces a compact TTMc result of shape
//! `|J_n| × Π_{t≠n} R_t`, runs a TRSVD on it, and the last mode's result is
//! folded into the core tensor.  All of that scratch depends only on the
//! symbolic data and the (clamped) Tucker ranks — neither changes across
//! iterations, and across *solves* of one planned [`crate::TuckerSolver`]
//! only the ranks can change — so the workspace owns it all and hands the
//! same buffers to every sweep:
//!
//! * the per-mode compact TTMc result matrices
//!   ([`crate::ttmc::ttmc_mode_into`] writes into them),
//! * the TRSVD scratch ([`linalg::lanczos::LanczosWorkspace`]: Krylov basis
//!   vectors and the projected bidiagonal problem),
//! * the core tensor buffer
//!   ([`crate::core_tensor::core_from_last_ttmc_into`] folds into it).
//!
//! [`ensure`](HooiWorkspace::ensure) reshapes lazily: solving the same
//! configuration twice reallocates nothing, switching ranks reallocates only
//! the buffers whose shape actually changed.

use crate::dimtree::DimTree;
use crate::symbolic::SymbolicTtmc;
use linalg::lanczos::LanczosWorkspace;
use linalg::Matrix;
use sptensor::DenseTensor;

/// Preallocated scratch for a HOOI run, reused across iterations and across
/// the solves of one planned solver session.
#[derive(Debug)]
pub struct HooiWorkspace {
    pub(crate) compact: Vec<Matrix>,
    trsvd: LanczosWorkspace,
    core: DenseTensor,
    /// Per-node value matrices of the dimension tree (empty for the root,
    /// for canonical leaves — those compute straight into `compact` — and
    /// whenever the per-mode strategy runs).
    pub(crate) tree_values: Vec<Matrix>,
    /// Whether each tree node's values are current w.r.t. the factors; the
    /// root (the tensor itself) is always valid.
    pub(crate) tree_valid: Vec<bool>,
    /// Per-node privatized partial rows for segmented (split) member groups:
    /// one row per segment of the node, merged in ascending segment order by
    /// [`crate::dimtree::DimTree::compute_node_into`].  Nodes whose groups
    /// are all below the segmentation grain have zero rows here.
    pub(crate) tree_partials: Vec<Matrix>,
    /// Column permutation serving each mode's leaf into canonical order
    /// (empty for canonical leaves).
    pub(crate) leaf_perms: Vec<Vec<usize>>,
    /// The ranks the tree buffers and permutations are currently shaped
    /// for; same-rank solves skip the reshaping entirely.
    tree_ranks: Vec<usize>,
}

impl HooiWorkspace {
    /// Creates an empty workspace for an order-`order` tensor; buffers are
    /// shaped on the first [`ensure`](Self::ensure).
    pub fn for_order(order: usize) -> Self {
        assert!(order > 0, "workspace needs at least one mode");
        HooiWorkspace {
            compact: (0..order).map(|_| Matrix::zeros(0, 0)).collect(),
            trsvd: LanczosWorkspace::new(),
            core: DenseTensor::zeros(vec![0; order]),
            tree_values: Vec::new(),
            tree_valid: Vec::new(),
            tree_partials: Vec::new(),
            leaf_perms: Vec::new(),
            tree_ranks: Vec::new(),
        }
    }

    /// Allocates the buffers for the given symbolic data and (clamped)
    /// Tucker ranks.
    pub fn new(symbolic: &SymbolicTtmc, ranks: &[usize]) -> Self {
        let mut ws = HooiWorkspace::for_order(symbolic.order());
        ws.ensure(symbolic, ranks);
        ws
    }

    /// Shapes the buffers for a solve at `ranks`, reallocating only those
    /// whose shape changed since the previous solve.  The core buffer is
    /// zeroed so no state can leak between solves.
    pub fn ensure(&mut self, symbolic: &SymbolicTtmc, ranks: &[usize]) {
        assert_eq!(symbolic.order(), self.compact.len());
        assert_eq!(ranks.len(), self.compact.len());
        for mode in 0..self.compact.len() {
            let width: usize = ranks
                .iter()
                .enumerate()
                .filter(|&(t, _)| t != mode)
                .map(|(_, &r)| r)
                .product();
            let rows = symbolic.mode(mode).num_rows();
            if self.compact[mode].shape() != (rows, width) {
                self.compact[mode] = Matrix::zeros(rows, width);
            }
        }
        if self.core.dims() == ranks {
            self.core.as_mut_slice().fill(0.0);
        } else {
            self.core = DenseTensor::zeros(ranks.to_vec());
        }
    }

    /// Shapes the dimension-tree node buffers for a solve at `ranks` (called
    /// in addition to [`ensure`](Self::ensure) when the
    /// [`DimensionTree`](crate::config::TtmcStrategy::DimensionTree)
    /// strategy runs), recomputes the leaf column permutations, and marks
    /// every node stale so the first sweep rebuilds the tree against the
    /// fresh factors.  Same-shape solves reallocate nothing.
    pub fn ensure_tree(&mut self, tree: &DimTree, ranks: &[usize]) {
        let nodes = tree.num_nodes();
        if self.tree_values.len() != nodes {
            self.tree_values = (0..nodes).map(|_| Matrix::zeros(0, 0)).collect();
            self.tree_partials = (0..nodes).map(|_| Matrix::zeros(0, 0)).collect();
            self.tree_valid = vec![false; nodes];
            self.tree_ranks.clear();
        }
        // Buffer shapes and leaf permutations depend only on the tree and
        // the ranks; a same-rank solve reuses both untouched.
        if self.tree_ranks != ranks {
            for id in 1..nodes {
                // Canonical leaves compute straight into the compact
                // buffers; only internal nodes and permuted leaves need
                // storage here.
                let needs_buffer = !tree.is_leaf(id) || !tree.leaf_is_canonical(tree.leaf_mode(id));
                let shape = if needs_buffer {
                    (tree.node_entries(id), tree.node_width(id, ranks))
                } else {
                    (0, 0)
                };
                if self.tree_values[id].shape() != shape {
                    self.tree_values[id] = Matrix::zeros(shape.0, shape.1);
                }
                // Privatized partial rows for split member groups, one row
                // per segment; nodes with no segments keep an empty matrix.
                let pshape = (tree.node_segments(id), tree.node_width(id, ranks));
                if self.tree_partials[id].shape() != pshape {
                    self.tree_partials[id] = Matrix::zeros(pshape.0, pshape.1);
                }
            }
            self.leaf_perms = (0..tree.order())
                .map(|mode| tree.leaf_permutation(mode, ranks).unwrap_or_default())
                .collect();
            self.tree_ranks = ranks.to_vec();
        }
        self.tree_valid.fill(false);
        self.tree_valid[0] = true; // the root is the tensor itself
    }

    /// Total number of `f64` entries held by the dimension-tree node
    /// buffers (zero while the per-mode strategy runs).
    pub fn tree_len(&self) -> usize {
        self.tree_values.iter().map(|m| m.as_slice().len()).sum()
    }

    /// The compact TTMc buffer of `mode`, for writing.
    pub fn compact_mut(&mut self, mode: usize) -> &mut Matrix {
        &mut self.compact[mode]
    }

    /// The compact TTMc buffer of `mode`, for reading (e.g. the core-tensor
    /// extraction from the last mode's result).
    pub fn compact(&self, mode: usize) -> &Matrix {
        &self.compact[mode]
    }

    /// The compact TTMc result of `mode` together with the TRSVD scratch —
    /// what one factor update reads and mutates.
    pub fn trsvd_buffers(&mut self, mode: usize) -> (&Matrix, &mut LanczosWorkspace) {
        (&self.compact[mode], &mut self.trsvd)
    }

    /// The compact TTMc result of `mode` together with the core buffer —
    /// what the core extraction reads and writes.
    pub fn core_buffers(&mut self, mode: usize) -> (&Matrix, &mut DenseTensor) {
        (&self.compact[mode], &mut self.core)
    }

    /// The core tensor written by the most recent iteration.
    pub fn core(&self) -> &DenseTensor {
        &self.core
    }

    /// Total number of `f64` entries held by the compact TTMc buffers.
    pub fn len(&self) -> usize {
        self.compact.iter().map(|m| m.as_slice().len()).sum()
    }

    /// Measured memory footprint of all scratch owned by this workspace, in
    /// bytes: the compact TTMc buffers, the dimension-tree node values and
    /// privatized partials, the leaf permutations, the core buffer, and the
    /// pooled Lanczos basis/projected-problem storage.  This is the
    /// workspace's share of a plan's cache footprint
    /// ([`crate::TuckerSession::memory_bytes`]); it grows on the first
    /// solve at each rank shape and is stable afterwards.
    pub fn memory_bytes(&self) -> usize {
        let floats = self.len()
            + self.tree_len()
            + self
                .tree_partials
                .iter()
                .map(|m| m.as_slice().len())
                .sum::<usize>()
            + self.core.as_slice().len()
            + self.trsvd.pooled_floats();
        let indices = self.leaf_perms.iter().map(Vec::len).sum::<usize>() + self.tree_ranks.len();
        floats * std::mem::size_of::<f64>()
            + indices * std::mem::size_of::<usize>()
            + self.tree_valid.len() * std::mem::size_of::<bool>()
    }

    /// Whether the compact TTMc buffers hold no data (all modes empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sptensor::SparseTensor;

    fn sample() -> SparseTensor {
        SparseTensor::from_entries(
            vec![4, 3, 5],
            &[
                (vec![0, 0, 0], 1.0),
                (vec![0, 1, 2], 2.0),
                (vec![2, 1, 2], 3.0),
                (vec![3, 2, 4], 4.0),
            ],
        )
    }

    #[test]
    fn buffers_have_compact_shapes() {
        let t = sample();
        let sym = SymbolicTtmc::build(&t);
        let ws = HooiWorkspace::new(&sym, &[2, 3, 4]);
        assert_eq!(ws.compact(0).shape(), (sym.mode(0).num_rows(), 12));
        assert_eq!(ws.compact(1).shape(), (sym.mode(1).num_rows(), 8));
        assert_eq!(ws.compact(2).shape(), (sym.mode(2).num_rows(), 6));
        assert_eq!(ws.core().dims(), &[2, 3, 4]);
        assert!(!ws.is_empty());
    }

    #[test]
    fn empty_tensor_gives_empty_workspace() {
        let t = SparseTensor::new(vec![3, 3, 3]);
        let sym = SymbolicTtmc::build(&t);
        let ws = HooiWorkspace::new(&sym, &[2, 2, 2]);
        assert!(ws.is_empty());
        assert_eq!(ws.compact(1).nrows(), 0);
    }

    #[test]
    fn buffers_are_writable_and_stable_across_reuse() {
        let t = sample();
        let sym = SymbolicTtmc::build(&t);
        let mut ws = HooiWorkspace::new(&sym, &[2, 2, 2]);
        let ptr_before = ws.compact(0).as_slice().as_ptr();
        ws.compact_mut(0).as_mut_slice().fill(7.0);
        let ptr_after = ws.compact(0).as_slice().as_ptr();
        assert_eq!(ptr_before, ptr_after, "reuse must not reallocate");
        assert!(ws.compact(0).as_slice().iter().all(|&x| x == 7.0));
    }

    #[test]
    fn ensure_with_same_ranks_keeps_allocations() {
        let t = sample();
        let sym = SymbolicTtmc::build(&t);
        let mut ws = HooiWorkspace::new(&sym, &[2, 2, 2]);
        ws.compact_mut(0).as_mut_slice().fill(3.0);
        let ptr_before = ws.compact(0).as_slice().as_ptr();
        ws.ensure(&sym, &[2, 2, 2]);
        assert_eq!(ws.compact(0).as_slice().as_ptr(), ptr_before);
        // The core buffer is zeroed between solves.
        assert!(ws.core().as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn ensure_tree_reuses_buffers_at_same_ranks() {
        let t = SparseTensor::from_entries(
            vec![4, 3, 5, 2],
            &[
                (vec![0, 0, 0, 0], 1.0),
                (vec![1, 1, 2, 1], 2.0),
                (vec![3, 2, 4, 0], 3.0),
                (vec![1, 0, 2, 1], 4.0),
            ],
        );
        let sym = SymbolicTtmc::build(&t);
        let tree = crate::dimtree::DimTree::build(&t);
        let mut ws = HooiWorkspace::new(&sym, &[2, 2, 2, 2]);
        ws.ensure_tree(&tree, &[2, 2, 2, 2]);
        assert!(ws.tree_len() > 0);
        // Mark a node valid, grab a buffer pointer, re-ensure at the same
        // ranks: allocations stay, validity resets.
        ws.tree_valid[1] = true;
        let ptr = ws.tree_values[1].as_slice().as_ptr();
        let perms_before: Vec<usize> = ws.leaf_perms.iter().map(|p| p.len()).collect();
        ws.ensure_tree(&tree, &[2, 2, 2, 2]);
        assert_eq!(ws.tree_values[1].as_slice().as_ptr(), ptr);
        assert!(!ws.tree_valid[1], "validity must reset per solve");
        assert!(ws.tree_valid[0], "the root is always valid");
        let perms_after: Vec<usize> = ws.leaf_perms.iter().map(|p| p.len()).collect();
        assert_eq!(perms_before, perms_after);
        // Rank change reshapes.
        ws.ensure_tree(&tree, &[2, 3, 2, 2]);
        assert_ne!(ws.tree_len(), 0);
    }

    #[test]
    fn memory_bytes_tracks_buffer_growth() {
        let t = sample();
        let sym = SymbolicTtmc::build(&t);
        let mut ws = HooiWorkspace::for_order(3);
        let empty = ws.memory_bytes();
        ws.ensure(&sym, &[2, 2, 2]);
        let small = ws.memory_bytes();
        assert!(small > empty, "shaping buffers must grow the footprint");
        ws.ensure(&sym, &[3, 3, 3]);
        assert!(ws.memory_bytes() > small, "larger ranks, larger footprint");
        // At minimum the compact buffers and core are counted as f64s.
        assert!(ws.memory_bytes() >= (ws.len() + ws.core().as_slice().len()) * 8);
    }

    #[test]
    fn ensure_reshapes_on_rank_change() {
        let t = sample();
        let sym = SymbolicTtmc::build(&t);
        let mut ws = HooiWorkspace::new(&sym, &[2, 2, 2]);
        ws.ensure(&sym, &[3, 2, 2]);
        // Mode 0 keeps width 4 = 2·2, but modes 1 and 2 now see rank 3.
        assert_eq!(ws.compact(0).ncols(), 4);
        assert_eq!(ws.compact(1).ncols(), 6);
        assert_eq!(ws.compact(2).ncols(), 6);
        assert_eq!(ws.core().dims(), &[3, 2, 2]);
    }
}
