//! Reusable scratch buffers for the HOOI iteration loop.
//!
//! Per iteration, every mode `n` produces a compact TTMc result of shape
//! `|J_n| × Π_{t≠n} R_t`.  Those shapes depend only on the symbolic data
//! and the (clamped) Tucker ranks — neither changes across iterations — so
//! the driver allocates them once here and hands
//! [`crate::ttmc::ttmc_mode_into`] the same buffers every sweep instead of
//! allocating `order × max_iterations` matrices in the hot loop.

use crate::symbolic::SymbolicTtmc;
use linalg::Matrix;

/// Preallocated per-mode buffers for a HOOI run.
#[derive(Debug)]
pub struct HooiWorkspace {
    compact: Vec<Matrix>,
}

impl HooiWorkspace {
    /// Allocates one compact TTMc result buffer per mode for the given
    /// symbolic data and (clamped) Tucker ranks.
    pub fn new(symbolic: &SymbolicTtmc, ranks: &[usize]) -> Self {
        assert_eq!(symbolic.order(), ranks.len());
        let compact = (0..symbolic.order())
            .map(|mode| {
                let width: usize = ranks
                    .iter()
                    .enumerate()
                    .filter(|&(t, _)| t != mode)
                    .map(|(_, &r)| r)
                    .product();
                Matrix::zeros(symbolic.mode(mode).num_rows(), width)
            })
            .collect();
        HooiWorkspace { compact }
    }

    /// The compact TTMc buffer of `mode`, for writing.
    pub fn compact_mut(&mut self, mode: usize) -> &mut Matrix {
        &mut self.compact[mode]
    }

    /// The compact TTMc buffer of `mode`, for reading (e.g. the core-tensor
    /// extraction from the last mode's result).
    pub fn compact(&self, mode: usize) -> &Matrix {
        &self.compact[mode]
    }

    /// Total number of `f64` entries held by the workspace.
    pub fn len(&self) -> usize {
        self.compact.iter().map(|m| m.as_slice().len()).sum()
    }

    /// Whether the workspace holds no data (all modes empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sptensor::SparseTensor;

    fn sample() -> SparseTensor {
        SparseTensor::from_entries(
            vec![4, 3, 5],
            &[
                (vec![0, 0, 0], 1.0),
                (vec![0, 1, 2], 2.0),
                (vec![2, 1, 2], 3.0),
                (vec![3, 2, 4], 4.0),
            ],
        )
    }

    #[test]
    fn buffers_have_compact_shapes() {
        let t = sample();
        let sym = SymbolicTtmc::build(&t);
        let ws = HooiWorkspace::new(&sym, &[2, 3, 4]);
        assert_eq!(ws.compact(0).shape(), (sym.mode(0).num_rows(), 12));
        assert_eq!(ws.compact(1).shape(), (sym.mode(1).num_rows(), 8));
        assert_eq!(ws.compact(2).shape(), (sym.mode(2).num_rows(), 6));
        assert!(!ws.is_empty());
    }

    #[test]
    fn empty_tensor_gives_empty_workspace() {
        let t = SparseTensor::new(vec![3, 3, 3]);
        let sym = SymbolicTtmc::build(&t);
        let ws = HooiWorkspace::new(&sym, &[2, 2, 2]);
        assert!(ws.is_empty());
        assert_eq!(ws.compact(1).nrows(), 0);
    }

    #[test]
    fn buffers_are_writable_and_stable_across_reuse() {
        let t = sample();
        let sym = SymbolicTtmc::build(&t);
        let mut ws = HooiWorkspace::new(&sym, &[2, 2, 2]);
        let ptr_before = ws.compact(0).as_slice().as_ptr();
        ws.compact_mut(0).as_mut_slice().fill(7.0);
        let ptr_after = ws.compact(0).as_slice().as_ptr();
        assert_eq!(ptr_before, ptr_after, "reuse must not reallocate");
        assert!(ws.compact(0).as_slice().iter().all(|&x| x == 7.0));
    }
}
