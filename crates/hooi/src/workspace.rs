//! Reusable scratch state for the HOOI iteration loop.
//!
//! Per iteration, every mode `n` produces a compact TTMc result of shape
//! `|J_n| × Π_{t≠n} R_t`, runs a TRSVD on it, and the last mode's result is
//! folded into the core tensor.  All of that scratch depends only on the
//! symbolic data and the (clamped) Tucker ranks — neither changes across
//! iterations, and across *solves* of one planned [`crate::TuckerSolver`]
//! only the ranks can change — so the workspace owns it all and hands the
//! same buffers to every sweep:
//!
//! * the per-mode compact TTMc result matrices
//!   ([`crate::ttmc::ttmc_mode_into`] writes into them),
//! * the TRSVD scratch ([`linalg::lanczos::LanczosWorkspace`]: Krylov basis
//!   vectors and the projected bidiagonal problem),
//! * the core tensor buffer
//!   ([`crate::core_tensor::core_from_last_ttmc_into`] folds into it).
//!
//! [`ensure`](HooiWorkspace::ensure) reshapes lazily: solving the same
//! configuration twice reallocates nothing, switching ranks reallocates only
//! the buffers whose shape actually changed.

use crate::symbolic::SymbolicTtmc;
use linalg::lanczos::LanczosWorkspace;
use linalg::Matrix;
use sptensor::DenseTensor;

/// Preallocated scratch for a HOOI run, reused across iterations and across
/// the solves of one planned solver session.
#[derive(Debug)]
pub struct HooiWorkspace {
    compact: Vec<Matrix>,
    trsvd: LanczosWorkspace,
    core: DenseTensor,
}

impl HooiWorkspace {
    /// Creates an empty workspace for an order-`order` tensor; buffers are
    /// shaped on the first [`ensure`](Self::ensure).
    pub fn for_order(order: usize) -> Self {
        assert!(order > 0, "workspace needs at least one mode");
        HooiWorkspace {
            compact: (0..order).map(|_| Matrix::zeros(0, 0)).collect(),
            trsvd: LanczosWorkspace::new(),
            core: DenseTensor::zeros(vec![0; order]),
        }
    }

    /// Allocates the buffers for the given symbolic data and (clamped)
    /// Tucker ranks.
    pub fn new(symbolic: &SymbolicTtmc, ranks: &[usize]) -> Self {
        let mut ws = HooiWorkspace::for_order(symbolic.order());
        ws.ensure(symbolic, ranks);
        ws
    }

    /// Shapes the buffers for a solve at `ranks`, reallocating only those
    /// whose shape changed since the previous solve.  The core buffer is
    /// zeroed so no state can leak between solves.
    pub fn ensure(&mut self, symbolic: &SymbolicTtmc, ranks: &[usize]) {
        assert_eq!(symbolic.order(), self.compact.len());
        assert_eq!(ranks.len(), self.compact.len());
        for mode in 0..self.compact.len() {
            let width: usize = ranks
                .iter()
                .enumerate()
                .filter(|&(t, _)| t != mode)
                .map(|(_, &r)| r)
                .product();
            let rows = symbolic.mode(mode).num_rows();
            if self.compact[mode].shape() != (rows, width) {
                self.compact[mode] = Matrix::zeros(rows, width);
            }
        }
        if self.core.dims() == ranks {
            self.core.as_mut_slice().fill(0.0);
        } else {
            self.core = DenseTensor::zeros(ranks.to_vec());
        }
    }

    /// The compact TTMc buffer of `mode`, for writing.
    pub fn compact_mut(&mut self, mode: usize) -> &mut Matrix {
        &mut self.compact[mode]
    }

    /// The compact TTMc buffer of `mode`, for reading (e.g. the core-tensor
    /// extraction from the last mode's result).
    pub fn compact(&self, mode: usize) -> &Matrix {
        &self.compact[mode]
    }

    /// The compact TTMc result of `mode` together with the TRSVD scratch —
    /// what one factor update reads and mutates.
    pub fn trsvd_buffers(&mut self, mode: usize) -> (&Matrix, &mut LanczosWorkspace) {
        (&self.compact[mode], &mut self.trsvd)
    }

    /// The compact TTMc result of `mode` together with the core buffer —
    /// what the core extraction reads and writes.
    pub fn core_buffers(&mut self, mode: usize) -> (&Matrix, &mut DenseTensor) {
        (&self.compact[mode], &mut self.core)
    }

    /// The core tensor written by the most recent iteration.
    pub fn core(&self) -> &DenseTensor {
        &self.core
    }

    /// Total number of `f64` entries held by the compact TTMc buffers.
    pub fn len(&self) -> usize {
        self.compact.iter().map(|m| m.as_slice().len()).sum()
    }

    /// Whether the compact TTMc buffers hold no data (all modes empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sptensor::SparseTensor;

    fn sample() -> SparseTensor {
        SparseTensor::from_entries(
            vec![4, 3, 5],
            &[
                (vec![0, 0, 0], 1.0),
                (vec![0, 1, 2], 2.0),
                (vec![2, 1, 2], 3.0),
                (vec![3, 2, 4], 4.0),
            ],
        )
    }

    #[test]
    fn buffers_have_compact_shapes() {
        let t = sample();
        let sym = SymbolicTtmc::build(&t);
        let ws = HooiWorkspace::new(&sym, &[2, 3, 4]);
        assert_eq!(ws.compact(0).shape(), (sym.mode(0).num_rows(), 12));
        assert_eq!(ws.compact(1).shape(), (sym.mode(1).num_rows(), 8));
        assert_eq!(ws.compact(2).shape(), (sym.mode(2).num_rows(), 6));
        assert_eq!(ws.core().dims(), &[2, 3, 4]);
        assert!(!ws.is_empty());
    }

    #[test]
    fn empty_tensor_gives_empty_workspace() {
        let t = SparseTensor::new(vec![3, 3, 3]);
        let sym = SymbolicTtmc::build(&t);
        let ws = HooiWorkspace::new(&sym, &[2, 2, 2]);
        assert!(ws.is_empty());
        assert_eq!(ws.compact(1).nrows(), 0);
    }

    #[test]
    fn buffers_are_writable_and_stable_across_reuse() {
        let t = sample();
        let sym = SymbolicTtmc::build(&t);
        let mut ws = HooiWorkspace::new(&sym, &[2, 2, 2]);
        let ptr_before = ws.compact(0).as_slice().as_ptr();
        ws.compact_mut(0).as_mut_slice().fill(7.0);
        let ptr_after = ws.compact(0).as_slice().as_ptr();
        assert_eq!(ptr_before, ptr_after, "reuse must not reallocate");
        assert!(ws.compact(0).as_slice().iter().all(|&x| x == 7.0));
    }

    #[test]
    fn ensure_with_same_ranks_keeps_allocations() {
        let t = sample();
        let sym = SymbolicTtmc::build(&t);
        let mut ws = HooiWorkspace::new(&sym, &[2, 2, 2]);
        ws.compact_mut(0).as_mut_slice().fill(3.0);
        let ptr_before = ws.compact(0).as_slice().as_ptr();
        ws.ensure(&sym, &[2, 2, 2]);
        assert_eq!(ws.compact(0).as_slice().as_ptr(), ptr_before);
        // The core buffer is zeroed between solves.
        assert!(ws.core().as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn ensure_reshapes_on_rank_change() {
        let t = sample();
        let sym = SymbolicTtmc::build(&t);
        let mut ws = HooiWorkspace::new(&sym, &[2, 2, 2]);
        ws.ensure(&sym, &[3, 2, 2]);
        // Mode 0 keeps width 4 = 2·2, but modes 1 and 2 now see rank 3.
        assert_eq!(ws.compact(0).ncols(), 4);
        assert_eq!(ws.compact(1).ncols(), 6);
        assert_eq!(ws.compact(2).ncols(), 6);
        assert_eq!(ws.core().dims(), &[3, 2, 2]);
    }
}
