//! MET-style baseline: Tucker via a chain of tensor-times-matrix products
//! with materialized semi-sparse intermediates.
//!
//! The paper compares its nonzero-based formulation against the Memory
//! Efficient Tucker (MET) implementation of the Matlab Tensor Toolbox
//! (Kolda & Sun, ICDM 2008): five HOOI iterations on a random
//! `10K × 10K × 10K` tensor with 1M nonzeros took 87.2 s in MET versus
//! 11.3 s in the paper's code on a single core.  MET computes the TTMc one
//! mode at a time, materializing a *semi-sparse* intermediate after each
//! TTM: the contracted modes become dense (of size `Π R_t` so far) while the
//! remaining modes stay sparse.  The repeated materialization and the
//! associated index bookkeeping are what the nonzero-based formulation
//! avoids.
//!
//! This module reimplements that TTM-chain strategy faithfully (hash-keyed
//! semi-sparse intermediates, one TTM at a time) so the comparison measures
//! the algorithmic difference rather than a language difference.

use crate::config::TrsvdBackend;
use crate::config::TuckerConfig;
use crate::core_tensor::core_from_scratch;
use crate::error::TuckerError;
use crate::fit::fit_from_norms;
use crate::hooi::{TimingBreakdown, TuckerDecomposition};
use crate::hosvd::random_factors;
use crate::trsvd::TrsvdResult;
use linalg::lanczos::{lanczos_svd, LanczosOptions};
use linalg::operator::DenseOperator;
use linalg::randomized::{randomized_svd, RandomizedOptions};
use linalg::svd::dense_svd;
use linalg::Matrix;
use sptensor::hash::FxHashMap;
use sptensor::SparseTensor;
use std::time::Instant;

/// The mode-`n` TTMc computed MET-style: TTM with one factor at a time,
/// materializing semi-sparse intermediates keyed by the not-yet-contracted
/// indices.
///
/// Returns `(rows, compact)`: the sorted list of non-empty mode-`n` indices
/// and the corresponding `|rows| × Π_{t≠n} R_t` matrix (same layout as
/// [`crate::ttmc::ttmc_mode`]).
pub fn met_ttmc(tensor: &SparseTensor, factors: &[Matrix], mode: usize) -> (Vec<usize>, Matrix) {
    assert_eq!(factors.len(), tensor.order());
    let order = tensor.order();

    // The intermediate maps the indices of the modes not yet contracted
    // (always including `mode`) to a dense block over the contracted modes.
    // Initially nothing is contracted: key = full index tuple, block = [x].
    let mut remaining: Vec<usize> = (0..order).collect();
    let mut inter: FxHashMap<Vec<usize>, Vec<f64>> = FxHashMap::default();
    inter.reserve(tensor.nnz());
    for (idx, v) in tensor.iter() {
        inter
            .entry(idx.to_vec())
            .and_modify(|b| b[0] += v)
            .or_insert_with(|| vec![v]);
    }

    // Contract the modes t ≠ mode in increasing order; the dense block grows
    // by a factor R_t at each step with the new mode varying fastest, which
    // reproduces the C-order Kronecker layout of the nonzero-based TTMc.
    for t in 0..order {
        if t == mode {
            continue;
        }
        let u = &factors[t];
        let pos = remaining
            .iter()
            .position(|&m| m == t)
            .expect("mode present");
        let mut next: FxHashMap<Vec<usize>, Vec<f64>> = FxHashMap::default();
        next.reserve(inter.len());
        let r_t = u.ncols();
        for (key, block) in inter.iter() {
            let i_t = key[pos];
            let row = u.row(i_t);
            let mut new_key = key.clone();
            new_key.remove(pos);
            let entry = next
                .entry(new_key)
                .or_insert_with(|| vec![0.0; block.len() * r_t]);
            // entry += block ⊗ row  (block slow, row fast)
            for (bi, &b) in block.iter().enumerate() {
                if b == 0.0 {
                    continue;
                }
                let dst = &mut entry[bi * r_t..(bi + 1) * r_t];
                for (d, &r) in dst.iter_mut().zip(row.iter()) {
                    *d += b * r;
                }
            }
        }
        remaining.remove(pos);
        inter = next;
    }

    // Only `mode` remains: keys are single-element tuples [i_mode].
    debug_assert_eq!(remaining, vec![mode]);
    let width: usize = factors
        .iter()
        .enumerate()
        .filter(|&(t, _)| t != mode)
        .map(|(_, u)| u.ncols())
        .product();
    let mut rows: Vec<usize> = inter.keys().map(|k| k[0]).collect();
    rows.sort_unstable();
    let mut compact = Matrix::zeros(rows.len(), width);
    for (p, &i) in rows.iter().enumerate() {
        let block = &inter[&vec![i]];
        compact.row_mut(p).copy_from_slice(block);
    }
    (rows, compact)
}

/// Full Tucker-HOOI using the MET-style TTMc.  Mirrors
/// [`crate::hooi::tucker_hooi`] — including the structured-error contract —
/// so the two can be compared head-to-head in the `met_comparison`
/// experiment.
pub fn tucker_met(
    tensor: &SparseTensor,
    config: &TuckerConfig,
) -> Result<TuckerDecomposition, TuckerError> {
    if tensor.order() == 0 || tensor.nnz() == 0 {
        return Err(TuckerError::EmptyTensor);
    }
    let order = tensor.order();
    let ranks = config.validated_ranks(tensor.dims())?;
    let mut timings = TimingBreakdown::default();
    let mut factors = random_factors(tensor.dims(), &ranks, config.seed);
    let tensor_norm = tensor.frobenius_norm();
    let mut fits = Vec::new();
    let mut singular_values = vec![Vec::new(); order];
    let mut iterations = 0;

    for _ in 0..config.max_iterations {
        iterations += 1;
        for mode in 0..order {
            let t_ttmc = Instant::now();
            let (rows, compact) = met_ttmc(tensor, &factors, mode);
            timings.ttmc += t_ttmc.elapsed();

            let t_trsvd = Instant::now();
            let result = met_trsvd(
                &compact,
                &rows,
                tensor.dims()[mode],
                ranks[mode],
                config.trsvd,
                config.seed ^ ((mode as u64 + 1) << 8),
            );
            timings.trsvd += t_trsvd.elapsed();
            factors[mode] = result.factor;
            singular_values[mode] = result.singular_values;
        }
        let t_core = Instant::now();
        let core = core_from_scratch(tensor, &factors);
        timings.core += t_core.elapsed();
        let fit = fit_from_norms(tensor_norm, core.frobenius_norm());
        let improved = match fits.last() {
            Some(&prev) => fit - prev > config.fit_tolerance,
            None => true,
        };
        fits.push(fit);
        if !improved {
            break;
        }
    }

    let core = core_from_scratch(tensor, &factors);
    Ok(TuckerDecomposition {
        core,
        factors,
        fits,
        iterations,
        singular_values,
        timings,
    })
}

/// TRSVD on a MET compact result (same as [`crate::trsvd::trsvd_factor`] but
/// with an explicit row list instead of a [`crate::symbolic::SymbolicMode`]).
fn met_trsvd(
    compact: &Matrix,
    rows: &[usize],
    dim: usize,
    rank: usize,
    backend: TrsvdBackend,
    seed: u64,
) -> TrsvdResult {
    let effective_rank = rank.min(compact.nrows().max(1)).min(compact.ncols().max(1));
    let (u_compact, mut singular_values, applications) = if compact.nrows() == 0 {
        (Matrix::zeros(0, rank), vec![0.0; rank], 0)
    } else {
        match backend {
            TrsvdBackend::Lanczos => {
                let op = DenseOperator::parallel(compact);
                let svd = lanczos_svd(
                    &op,
                    effective_rank,
                    &LanczosOptions {
                        seed,
                        ..LanczosOptions::default()
                    },
                );
                (svd.u, svd.singular_values, svd.operator_applications)
            }
            TrsvdBackend::Randomized => {
                let op = DenseOperator::parallel(compact);
                let svd = randomized_svd(
                    &op,
                    effective_rank,
                    &RandomizedOptions {
                        seed,
                        ..RandomizedOptions::default()
                    },
                );
                (svd.u, svd.singular_values, svd.operator_applications)
            }
            TrsvdBackend::Dense => {
                let svd = dense_svd(compact);
                let take = effective_rank.min(svd.singular_values.len());
                let mut u = Matrix::zeros(compact.nrows(), take);
                for j in 0..take {
                    u.set_col(j, &svd.u.col(j));
                }
                (u, svd.singular_values[..take].to_vec(), 0)
            }
        }
    };
    let mut factor = Matrix::zeros(dim, rank);
    let copy_cols = u_compact.ncols().min(rank);
    for (p, &i) in rows.iter().enumerate() {
        factor.row_mut(i)[..copy_cols].copy_from_slice(&u_compact.row(p)[..copy_cols]);
    }
    singular_values.resize(rank, 0.0);
    TrsvdResult {
        factor,
        singular_values,
        operator_applications: applications,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::SymbolicTtmc;
    use crate::ttmc::ttmc_mode;
    use crate::tucker_hooi;
    use datagen::random_tensor;

    fn factors_for(tensor: &SparseTensor, ranks: &[usize], seed: u64) -> Vec<Matrix> {
        tensor
            .dims()
            .iter()
            .zip(ranks.iter())
            .enumerate()
            .map(|(m, (&d, &r))| Matrix::random(d, r, seed + m as u64))
            .collect()
    }

    #[test]
    fn met_ttmc_matches_nonzero_based_3mode() {
        let t = random_tensor(&[15, 12, 10], 400, 3);
        let factors = factors_for(&t, &[3, 4, 2], 7);
        let sym = SymbolicTtmc::build(&t);
        for mode in 0..3 {
            let (rows, met) = met_ttmc(&t, &factors, mode);
            let nz = ttmc_mode(&t, sym.mode(mode), &factors, mode);
            assert_eq!(rows, sym.mode(mode).rows, "row sets differ for mode {mode}");
            assert!(
                met.frobenius_distance(&nz) < 1e-9 * nz.frobenius_norm().max(1.0),
                "mode {mode} values differ"
            );
        }
    }

    #[test]
    fn met_ttmc_matches_nonzero_based_4mode() {
        let t = random_tensor(&[8, 6, 7, 5], 200, 5);
        let factors = factors_for(&t, &[2, 2, 3, 2], 9);
        let sym = SymbolicTtmc::build(&t);
        for mode in 0..4 {
            let (rows, met) = met_ttmc(&t, &factors, mode);
            let nz = ttmc_mode(&t, sym.mode(mode), &factors, mode);
            assert_eq!(rows, sym.mode(mode).rows);
            assert!(met.frobenius_distance(&nz) < 1e-9 * nz.frobenius_norm().max(1.0));
        }
    }

    #[test]
    fn tucker_met_reaches_same_fit_as_hooi() {
        let t = random_tensor(&[20, 18, 16], 900, 11);
        let config = TuckerConfig::new(vec![3, 3, 3]).max_iterations(4).seed(2);
        let met = tucker_met(&t, &config).unwrap();
        let hooi = tucker_hooi(&t, &config).unwrap();
        assert!(
            (met.final_fit() - hooi.final_fit()).abs() < 1e-3,
            "MET fit {} vs HOOI fit {}",
            met.final_fit(),
            hooi.final_fit()
        );
    }

    #[test]
    fn met_handles_duplicate_free_small_tensor() {
        let t = SparseTensor::from_entries(
            vec![3, 3, 3],
            &[(vec![0, 1, 2], 1.0), (vec![2, 2, 2], -2.0)],
        );
        let factors = factors_for(&t, &[2, 2, 2], 1);
        let (rows, compact) = met_ttmc(&t, &factors, 0);
        assert_eq!(rows, vec![0, 2]);
        assert_eq!(compact.shape(), (2, 4));
    }
}
