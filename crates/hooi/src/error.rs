//! Structured errors for the Tucker solver's public entry points.
//!
//! The solver treats failures as values: planning and solving return
//! [`TuckerError`] instead of panicking, so a long-lived service holding
//! many planned tensors (the ROADMAP's batched-decomposition shape) can
//! reject one bad request without tearing down the process.

use std::fmt;
use std::time::Duration;

/// Everything that can go wrong on the public solver path.
///
/// ```
/// use hooi::{PlanOptions, TuckerConfig, TuckerError, TuckerSolver};
/// use sptensor::SparseTensor;
///
/// // Planning an empty tensor fails as a value, not a panic.
/// let empty = SparseTensor::new(vec![4, 4, 4]);
/// let err = TuckerSolver::plan(&empty, PlanOptions::new()).unwrap_err();
/// assert_eq!(err, TuckerError::EmptyTensor);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuckerError {
    /// The tensor has no modes or no stored nonzeros; there is nothing to
    /// decompose (the fit is undefined for a zero-norm tensor).
    EmptyTensor,
    /// The configuration's rank count does not match the tensor order.
    OrderMismatch {
        /// Number of ranks in the configuration.
        config_modes: usize,
        /// Number of modes of the planned tensor.
        tensor_modes: usize,
    },
    /// A requested decomposition rank is zero.
    ZeroRank {
        /// The offending mode.
        mode: usize,
    },
    /// The solver's thread pool could not be built; carries the pool
    /// runtime's reason (e.g. an absurd thread count or an OS spawn
    /// failure).
    PoolFailure(String),
    /// A service request named a tensor id that is not in the registry
    /// (never ingested, or removed by an evict request).
    UnknownTensorId {
        /// The id the request asked for.
        tensor_id: String,
    },
    /// A single plan's measured memory footprint exceeds the service's
    /// whole plan-cache budget, so it could never be admitted no matter
    /// what else is evicted.
    PlanOverBudget {
        /// The id of the tensor whose plan was priced.
        tensor_id: String,
        /// Measured footprint of the plan (workspace + symbolic + tree
        /// buffers), in bytes.
        required_bytes: usize,
        /// The configured plan-cache budget, in bytes.
        budget_bytes: usize,
    },
    /// A request's deadline had already expired before its solve started
    /// (it spent its whole budget waiting in the queue), so the service
    /// rejected it instead of returning a zero-iteration decomposition.
    DeadlineExpired {
        /// How long the request waited before being scheduled.
        waited: Duration,
        /// The request's whole deadline budget.
        deadline: Duration,
    },
    /// A predict request named a tensor that has been ingested but never
    /// successfully decomposed, so there is no model to read scores from.
    NothingDecomposed {
        /// The id the request asked for.
        tensor_id: String,
    },
    /// A rank of the distributed executor failed mid-solve — a peer
    /// disconnected, a receive timed out, or a frame arrived corrupt — and
    /// the failure was propagated to every surviving rank through the
    /// executor's abort protocol.  `rank` is the rank that first observed
    /// the fault (the *origin*), so all survivors agree on the attribution;
    /// `phase` and `iteration` locate the failure inside Algorithm 4, and
    /// `source` carries the underlying comm error's message.  The fields
    /// are plain strings because the solver crate does not depend on the
    /// executor's comm types.
    RankFailed {
        /// The rank that first observed the failure.
        rank: usize,
        /// The Algorithm 4 phase label (e.g. "fold", "gather") at the
        /// failure point.
        phase: String,
        /// The HOOI iteration in which the failure occurred
        /// (`u64::from(u32::MAX)` marks the final collectives after the
        /// iteration loop).
        iteration: u64,
        /// Human-readable description of the underlying fault.
        source: String,
    },
    /// A solve or predict running inside the decomposition service
    /// panicked.  The panic was caught at the request boundary, the
    /// offending tensor entry was quarantined, and every other tenant kept
    /// serving — this variant is the poisoned request's answer.
    SolvePanicked {
        /// The id of the tensor whose request panicked.
        tensor_id: String,
        /// The panic payload's message, if it was a string.
        detail: String,
    },
    /// A `.tns` ingestion failure — parse error, index out of the declared
    /// range, rejected duplicate, truncated file, or an I/O fault — with
    /// the reader's message (line numbers included) carried as a string so
    /// the error stays `Eq`-comparable.  Produced by the `From`
    /// conversion from [`sptensor::io::TensorIoError`], so `?` works across
    /// the ingestion boundary.
    Ingestion(String),
}

impl From<sptensor::io::TensorIoError> for TuckerError {
    fn from(e: sptensor::io::TensorIoError) -> Self {
        TuckerError::Ingestion(e.to_string())
    }
}

impl fmt::Display for TuckerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuckerError::EmptyTensor => {
                write!(f, "tensor has no modes or no stored nonzeros")
            }
            TuckerError::OrderMismatch {
                config_modes,
                tensor_modes,
            } => write!(
                f,
                "configuration has {config_modes} ranks but the tensor has {tensor_modes} modes"
            ),
            TuckerError::ZeroRank { mode } => {
                write!(f, "requested rank for mode {mode} is zero")
            }
            TuckerError::PoolFailure(reason) => {
                write!(f, "failed to build the solver thread pool: {reason}")
            }
            TuckerError::UnknownTensorId { tensor_id } => {
                write!(f, "no tensor with id '{tensor_id}' is registered")
            }
            TuckerError::PlanOverBudget {
                tensor_id,
                required_bytes,
                budget_bytes,
            } => write!(
                f,
                "plan for tensor '{tensor_id}' needs {required_bytes} bytes but the whole \
                 plan-cache budget is {budget_bytes} bytes"
            ),
            TuckerError::DeadlineExpired { waited, deadline } => write!(
                f,
                "deadline of {:.3} s expired before the solve started (waited {:.3} s in queue)",
                deadline.as_secs_f64(),
                waited.as_secs_f64()
            ),
            TuckerError::NothingDecomposed { tensor_id } => {
                write!(
                    f,
                    "tensor '{tensor_id}' has no completed decomposition to predict from"
                )
            }
            TuckerError::RankFailed {
                rank,
                phase,
                iteration,
                source,
            } => {
                if *iteration == u64::from(u32::MAX) {
                    write!(
                        f,
                        "rank {rank} failed during {phase} in the final collectives: {source}"
                    )
                } else {
                    write!(
                        f,
                        "rank {rank} failed during {phase} at iteration {iteration}: {source}"
                    )
                }
            }
            TuckerError::SolvePanicked { tensor_id, detail } => write!(
                f,
                "solve for tensor '{tensor_id}' panicked and the entry was quarantined: {detail}"
            ),
            TuckerError::Ingestion(reason) => {
                write!(f, "tensor ingestion failed: {reason}")
            }
        }
    }
}

impl std::error::Error for TuckerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_problem() {
        assert!(TuckerError::EmptyTensor.to_string().contains("nonzeros"));
        let msg = TuckerError::OrderMismatch {
            config_modes: 2,
            tensor_modes: 3,
        }
        .to_string();
        assert!(msg.contains('2') && msg.contains('3'));
        assert!(TuckerError::ZeroRank { mode: 1 }
            .to_string()
            .contains("mode 1"));
        assert!(TuckerError::PoolFailure("oom".into())
            .to_string()
            .contains("oom"));
    }

    #[test]
    fn pool_build_errors_surface_the_builders_reason() {
        // The rayon shim's build error carries a message; planning must
        // forward it verbatim inside `PoolFailure`.
        let build_err = rayon::ThreadPoolBuilder::new()
            .num_threads(usize::MAX)
            .build()
            .unwrap_err();
        let mapped = TuckerError::PoolFailure(build_err.to_string());
        let msg = mapped.to_string();
        assert!(
            msg.contains("at most"),
            "mapped error lost the builder's reason: {msg}"
        );
    }

    #[test]
    fn service_level_variants_name_the_failure() {
        let msg = TuckerError::UnknownTensorId {
            tensor_id: "netflix".into(),
        }
        .to_string();
        assert!(msg.contains("netflix"));
        let msg = TuckerError::PlanOverBudget {
            tensor_id: "nell".into(),
            required_bytes: 4096,
            budget_bytes: 1024,
        }
        .to_string();
        assert!(msg.contains("4096") && msg.contains("1024") && msg.contains("nell"));
        let msg = TuckerError::DeadlineExpired {
            waited: Duration::from_millis(250),
            deadline: Duration::from_millis(100),
        }
        .to_string();
        assert!(msg.contains("0.100") && msg.contains("0.250"));
        let msg = TuckerError::NothingDecomposed {
            tensor_id: "flickr".into(),
        }
        .to_string();
        assert!(msg.contains("flickr") && msg.contains("decomposition"));
    }

    #[test]
    fn robustness_variants_carry_full_attribution() {
        let msg = TuckerError::RankFailed {
            rank: 2,
            phase: "fold".into(),
            iteration: 5,
            source: "recv from peer 1 timed out after 300 ms".into(),
        }
        .to_string();
        assert!(
            msg.contains("rank 2") && msg.contains("fold") && msg.contains("iteration 5"),
            "attribution lost: {msg}"
        );
        assert!(msg.contains("timed out"), "source lost: {msg}");

        let msg = TuckerError::RankFailed {
            rank: 0,
            phase: "control".into(),
            iteration: u64::from(u32::MAX),
            source: "peer 3 disconnected".into(),
        }
        .to_string();
        assert!(
            msg.contains("final collectives"),
            "sentinel iteration must not print as a number: {msg}"
        );

        let msg = TuckerError::SolvePanicked {
            tensor_id: "poisoned".into(),
            detail: "index out of bounds".into(),
        }
        .to_string();
        assert!(
            msg.contains("poisoned") && msg.contains("quarantined") && msg.contains("index"),
            "panic answer lost context: {msg}"
        );
    }

    #[test]
    fn ingestion_errors_convert_with_line_numbers() {
        let io_err = sptensor::io::TensorIoError::Parse(7, "bad value".into());
        let mapped: TuckerError = io_err.into();
        let msg = mapped.to_string();
        assert!(
            msg.contains("line 7") && msg.contains("ingestion"),
            "conversion lost the reader's context: {msg}"
        );
    }

    #[test]
    fn error_trait_is_implemented() {
        let err: Box<dyn std::error::Error> = Box::new(TuckerError::EmptyTensor);
        assert!(!err.to_string().is_empty());
    }
}
