//! Factor matrix initialization: random orthonormal factors (default) and
//! HOSVD-style initialization for small tensors.
//!
//! Algorithm 1 of the paper initializes the factor matrices "randomly or
//! using the higher-order SVD".  The scalability experiments use random
//! initialization (per-iteration cost is independent of the starting point);
//! HOSVD initialization generally improves the fit reached within a fixed
//! number of iterations, so it is provided here for small tensors where the
//! mode unfoldings can be assembled.

use linalg::lanczos::{lanczos_svd, LanczosOptions};
use linalg::operator::LinearOperator;
use linalg::qr::orthonormalize_columns;
use linalg::Matrix;
use sptensor::SparseTensor;

/// Default cap on a mode unfolding's column count for HOSVD-style
/// initialization; wider modes fall back to random factors.  The solver
/// and the distributed executor must use the same cap — a divergence
/// would make them take the fallback branch for different modes and break
/// the executor's bit-identity contract.
pub const DEFAULT_HOSVD_MAX_COLS: usize = 2_000_000;

/// Generates random orthonormal factor matrices, one per mode.
pub fn random_factors(dims: &[usize], ranks: &[usize], seed: u64) -> Vec<Matrix> {
    assert_eq!(dims.len(), ranks.len());
    dims.iter()
        .zip(ranks.iter())
        .enumerate()
        .map(|(m, (&d, &r))| {
            let mut u = Matrix::random_signed(d, r.min(d), seed ^ ((m as u64 + 1) * 0x9e37_79b9));
            orthonormalize_columns(&mut u);
            if r > d {
                // Pad with zero columns if the rank was clamped (degenerate
                // configuration kept consistent for the caller).
                let mut padded = Matrix::zeros(d, r);
                for j in 0..d {
                    padded.set_col(j, &u.col(j));
                }
                padded
            } else {
                u
            }
        })
        .collect()
}

/// A matrix-free view of the mode-`n` unfolding of a sparse tensor.
///
/// `X_(n)` has `I_n` rows and `Π_{t≠n} I_t` columns; the operator never
/// materializes it and applies MxV / MTxV in `O(nnz)` time.  Note that the
/// *column dimension* can be astronomically large, so the right-hand vectors
/// themselves can be too big to allocate; [`hosvd_factors`] therefore guards
/// on the column count before using this operator.
pub struct SparseUnfoldingOperator<'a> {
    tensor: &'a SparseTensor,
    mode: usize,
    ncols: usize,
    /// Precomputed column index of every nonzero.
    col_of_nonzero: Vec<usize>,
}

impl<'a> SparseUnfoldingOperator<'a> {
    /// Builds the operator for one mode.
    ///
    /// # Panics
    /// Panics if the column count `Π_{t≠mode} I_t` overflows `usize`.
    pub fn new(tensor: &'a SparseTensor, mode: usize) -> Self {
        assert!(mode < tensor.order());
        let mut ncols: usize = 1;
        for (t, &d) in tensor.dims().iter().enumerate() {
            if t != mode {
                ncols = ncols
                    .checked_mul(d)
                    .expect("unfolding column count overflows usize");
            }
        }
        let col_of_nonzero = (0..tensor.nnz())
            .map(|k| {
                let idx = tensor.index(k);
                let mut col = 0usize;
                for (t, (&i, &d)) in idx.iter().zip(tensor.dims().iter()).enumerate() {
                    if t == mode {
                        continue;
                    }
                    col = col * d + i;
                }
                col
            })
            .collect();
        SparseUnfoldingOperator {
            tensor,
            mode,
            ncols,
            col_of_nonzero,
        }
    }
}

impl LinearOperator for SparseUnfoldingOperator<'_> {
    fn nrows(&self) -> usize {
        self.tensor.dims()[self.mode]
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        y.iter_mut().for_each(|v| *v = 0.0);
        for k in 0..self.tensor.nnz() {
            let row = self.tensor.index(k)[self.mode];
            y[row] += self.tensor.value(k) * x[self.col_of_nonzero[k]];
        }
    }

    fn apply_transpose(&self, x: &[f64], y: &mut [f64]) {
        y.iter_mut().for_each(|v| *v = 0.0);
        for k in 0..self.tensor.nnz() {
            let row = self.tensor.index(k)[self.mode];
            y[self.col_of_nonzero[k]] += self.tensor.value(k) * x[row];
        }
    }
}

/// HOSVD-style initialization: for each mode, the leading left singular
/// vectors of the sparse mode unfolding, computed matrix-free.
///
/// When a mode's unfolding has more than `max_cols` columns (so even a
/// single right-hand Krylov vector would be too large), that mode falls back
/// to a random orthonormal factor.  Returns one factor per mode.
pub fn hosvd_factors(
    tensor: &SparseTensor,
    ranks: &[usize],
    max_cols: usize,
    seed: u64,
) -> Vec<Matrix> {
    assert_eq!(tensor.order(), ranks.len());
    let fallback = random_factors(tensor.dims(), ranks, seed);
    (0..tensor.order())
        .map(|mode| {
            let cols: u128 = tensor
                .dims()
                .iter()
                .enumerate()
                .filter(|&(t, _)| t != mode)
                .map(|(_, &d)| d as u128)
                .product();
            if cols > max_cols as u128 || tensor.nnz() == 0 {
                return fallback[mode].clone();
            }
            let op = SparseUnfoldingOperator::new(tensor, mode);
            let rank = ranks[mode].min(op.nrows()).min(op.ncols()).max(1);
            let svd = lanczos_svd(
                &op,
                rank,
                &LanczosOptions {
                    seed: seed ^ (mode as u64),
                    ..LanczosOptions::default()
                },
            );
            // Pad to the requested rank if necessary.
            let mut u = Matrix::zeros(op.nrows(), ranks[mode]);
            for j in 0..svd.u.ncols().min(ranks[mode]) {
                u.set_col(j, &svd.u.col(j));
            }
            u
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{lowrank_tensor, random_tensor, LowRankSpec};
    use linalg::qr::orthogonality_error;

    #[test]
    fn random_factors_are_orthonormal() {
        let factors = random_factors(&[20, 15, 10], &[4, 3, 2], 7);
        assert_eq!(factors.len(), 3);
        for (u, (&d, &r)) in factors
            .iter()
            .zip([20usize, 15, 10].iter().zip([4usize, 3, 2].iter()))
        {
            assert_eq!(u.shape(), (d, r));
            assert!(orthogonality_error(u) < 1e-10);
        }
    }

    #[test]
    fn random_factors_deterministic() {
        let a = random_factors(&[10, 10], &[3, 3], 5);
        let b = random_factors(&[10, 10], &[3, 3], 5);
        assert_eq!(a[0], b[0]);
        assert_eq!(a[1], b[1]);
    }

    #[test]
    fn unfolding_operator_matches_dense() {
        let t = random_tensor(&[6, 5, 4], 50, 3);
        for mode in 0..3 {
            let op = SparseUnfoldingOperator::new(&t, mode);
            let dense_op = op.to_dense();
            // Build the dense unfolding directly for comparison.
            let mut dense = sptensor::DenseTensor::zeros(t.dims().to_vec());
            for (idx, v) in t.iter() {
                let lin = dense.linear_index(idx);
                dense.as_mut_slice()[lin] += v;
            }
            let reference = dense.unfold(mode);
            assert!(dense_op.frobenius_distance(&reference) < 1e-12);
        }
    }

    #[test]
    fn hosvd_factors_orthonormal_for_small_tensor() {
        let t = random_tensor(&[12, 10, 8], 300, 5);
        let factors = hosvd_factors(&t, &[3, 3, 3], 1_000_000, 1);
        for u in &factors {
            assert!(orthogonality_error(u) < 1e-6);
        }
    }

    /// Residual of the planted factor columns after projection onto the
    /// column space of `basis` (0 = planted subspace fully captured).
    fn subspace_residual(basis: &Matrix, planted: &Matrix) -> f64 {
        let proj = linalg::blas::gemm_tn(basis, planted);
        let reconstructed = linalg::blas::gemm(basis, &proj);
        planted.frobenius_distance(&reconstructed)
    }

    #[test]
    fn hosvd_recovers_planted_subspace_better_than_random() {
        // On a fully observed low-rank tensor the HOSVD factors capture the
        // planted column space exactly; on a partially sampled one they
        // capture it substantially better than random orthonormal factors.
        let dims = vec![20, 18, 16];
        let total: usize = dims.iter().product();
        let lr = lowrank_tensor(&LowRankSpec {
            dims: dims.clone(),
            ranks: vec![3, 3, 3],
            nnz: total,
            noise: 0.0,
            seed: 13,
        });
        let hosvd = hosvd_factors(&lr.tensor, &[3, 3, 3], 10_000_000, 2);
        let random = random_factors(lr.tensor.dims(), &[3, 3, 3], 2);
        for (mode, planted) in lr.factors.iter().enumerate() {
            let err_hosvd = subspace_residual(&hosvd[mode], planted);
            let err_random = subspace_residual(&random[mode], planted);
            assert!(
                err_hosvd < 1e-6 * planted.frobenius_norm().max(1.0),
                "mode {mode}: HOSVD subspace error {err_hosvd} on a fully observed tensor"
            );
            assert!(
                err_hosvd < err_random,
                "mode {mode}: HOSVD ({err_hosvd}) not better than random ({err_random})"
            );
        }
    }

    #[test]
    fn hosvd_falls_back_to_random_when_too_wide() {
        let t = random_tensor(&[10, 10, 10], 100, 9);
        // max_cols = 1 forces the fallback for every mode.
        let factors = hosvd_factors(&t, &[2, 2, 2], 1, 3);
        let reference = random_factors(t.dims(), &[2, 2, 2], 3);
        for (a, b) in factors.iter().zip(reference.iter()) {
            assert_eq!(a, b);
        }
    }
}
