//! Nonzero-based numeric TTMc (paper Eq. (4) / Algorithm 2).
//!
//! Given the symbolic update lists of a mode, the matricized TTMc result is
//! computed row by row: row `i_n` accumulates
//! `Σ_{x ∈ ul_n(i_n)} x · ⊗_{t≠n} U_t(i_t, :)`.
//!
//! Rows are independent, so the parallel variant hands each row of `J_n` to
//! rayon (the OpenMP `parallel for` with dynamic scheduling of the paper).
//! The result is returned in *compact* form: one row per non-empty slice,
//! `|J_n| × Π_{t≠n} R_t`; rows of the full matricization outside `J_n` are
//! identically zero and never materialized.

use crate::symbolic::SymbolicMode;
use linalg::Matrix;
use rayon::prelude::*;
use sptensor::kron::accumulate_scaled_kron;
use sptensor::SparseTensor;

/// Computes the width `Π_{t≠mode} R_t` of the compact TTMc result from the
/// factor matrices.
pub fn ttmc_result_width(factors: &[Matrix], mode: usize) -> usize {
    factors
        .iter()
        .enumerate()
        .filter(|&(t, _)| t != mode)
        .map(|(_, u)| u.ncols())
        .product()
}

/// Computes one row of the compact TTMc result into `out`.
///
/// `out` must have length `Π_{t≠mode} R_t` and is overwritten.
fn compute_row(
    tensor: &SparseTensor,
    sym: &SymbolicMode,
    factors: &[Matrix],
    mode: usize,
    row_position: usize,
    out: &mut [f64],
    scratch: &mut [f64],
) {
    out.iter_mut().for_each(|v| *v = 0.0);
    let order = tensor.order();
    // Collect the factor rows for each nonzero in the update list.
    let mut rows: Vec<&[f64]> = Vec::with_capacity(order - 1);
    for &id in sym.update_list(row_position) {
        let index = tensor.index(id);
        let value = tensor.value(id);
        rows.clear();
        for t in 0..order {
            if t == mode {
                continue;
            }
            rows.push(factors[t].row(index[t]));
        }
        accumulate_scaled_kron(value, &rows, out, scratch);
    }
}

/// Numeric TTMc for one mode, parallel over the rows of `J_n` (rayon).
///
/// Returns the compact `|J_n| × Π_{t≠mode} R_t` matrix; row `p` corresponds
/// to tensor index `sym.rows[p]` along `mode`.
///
/// # Panics
/// Panics if the factor matrices do not match the tensor's mode sizes.
pub fn ttmc_mode(
    tensor: &SparseTensor,
    sym: &SymbolicMode,
    factors: &[Matrix],
    mode: usize,
) -> Matrix {
    let mut out = Matrix::zeros(sym.num_rows(), ttmc_result_width(factors, mode));
    ttmc_mode_into(tensor, sym, factors, mode, &mut out);
    out
}

/// Numeric TTMc for one mode, writing into a caller-provided compact result
/// matrix — the allocation-free entry point the HOOI loop uses so the
/// `|J_n| × Π_{t≠mode} R_t` buffer is reused across iterations (see
/// [`crate::workspace::HooiWorkspace`]).
///
/// # Panics
/// Panics if the factor matrices do not match the tensor's mode sizes or
/// `out` does not have shape `|J_n| × Π_{t≠mode} R_t`.
pub fn ttmc_mode_into(
    tensor: &SparseTensor,
    sym: &SymbolicMode,
    factors: &[Matrix],
    mode: usize,
    out: &mut Matrix,
) {
    validate_factors(tensor, factors, mode);
    let width = ttmc_result_width(factors, mode);
    assert_eq!(
        out.shape(),
        (sym.num_rows(), width),
        "ttmc_mode_into: result buffer has the wrong shape"
    );
    if width == 0 {
        return;
    }
    // Parallelize over rows; each worker gets one scratch buffer through
    // `for_each_init`, so scratch allocation is amortized over all the rows
    // a worker processes.
    out.as_mut_slice()
        .par_chunks_mut(width)
        .enumerate()
        .for_each_init(
            || vec![0.0; width],
            |scratch, (p, row_out)| {
                compute_row(tensor, sym, factors, mode, p, row_out, scratch);
            },
        );
}

/// Computes one row of the compact TTMc result into `out`, overwriting it.
///
/// `row_position` indexes the non-empty rows of `sym` (`sym.rows[p]` is the
/// tensor index along `mode`); `out` must have length `Π_{t≠mode} R_t` and
/// `scratch` at least that length.  This is the per-task kernel the parallel
/// and sequential sweeps share; the distributed executor also calls it
/// directly for rows whose update list is entirely local to one rank.
pub fn ttmc_row_into(
    tensor: &SparseTensor,
    sym: &SymbolicMode,
    factors: &[Matrix],
    mode: usize,
    row_position: usize,
    out: &mut [f64],
    scratch: &mut [f64],
) {
    compute_row(tensor, sym, factors, mode, row_position, out, scratch);
}

/// Computes the contribution of a single nonzero to its row of the mode-
/// `mode` TTMc result: `x · ⊗_{t≠mode} U_t(i_t, :)`, overwriting `out`.
///
/// Adding these vectors to a row accumulator in update-list order produces
/// exactly the same floating-point result as [`ttmc_row_into`] — each
/// accumulation step `acc[j] += x · k_j` performs the identical multiply and
/// add either way.  The distributed executor relies on this to merge
/// remotely computed contributions bit-identically to the shared-memory
/// sweep.
///
/// `rows` is caller-provided scratch for the factor-row list (cleared and
/// refilled here); hoisting it keeps the executor's per-nonzero fold loop
/// allocation-free.
pub fn ttmc_contribution_into<'a>(
    tensor: &SparseTensor,
    factors: &'a [Matrix],
    mode: usize,
    nonzero_id: usize,
    out: &mut [f64],
    scratch: &mut [f64],
    rows: &mut Vec<&'a [f64]>,
) {
    out.iter_mut().for_each(|v| *v = 0.0);
    let order = tensor.order();
    let index = tensor.index(nonzero_id);
    let value = tensor.value(nonzero_id);
    rows.clear();
    for t in 0..order {
        if t == mode {
            continue;
        }
        rows.push(factors[t].row(index[t]));
    }
    accumulate_scaled_kron(value, rows, out, scratch);
}

/// Sequential numeric TTMc (used for verification, the single-thread
/// baselines of Table V, and inside the per-rank loops of the distributed
/// simulator where parallelism is across ranks instead).
pub fn ttmc_mode_sequential(
    tensor: &SparseTensor,
    sym: &SymbolicMode,
    factors: &[Matrix],
    mode: usize,
) -> Matrix {
    validate_factors(tensor, factors, mode);
    let width = ttmc_result_width(factors, mode);
    let nrows = sym.num_rows();
    let mut out = Matrix::zeros(nrows, width);
    let mut scratch = vec![0.0; width];
    for p in 0..nrows {
        let row_start = p * width;
        // Split borrow: compute into a temporary row slice.
        let row = &mut out.as_mut_slice()[row_start..row_start + width];
        // Safety not needed — plain indexing; compute_row takes a fresh slice.
        compute_row_into(tensor, sym, factors, mode, p, row, &mut scratch);
    }
    out
}

// Separate non-parallel helper so the sequential path avoids the closure.
fn compute_row_into(
    tensor: &SparseTensor,
    sym: &SymbolicMode,
    factors: &[Matrix],
    mode: usize,
    row_position: usize,
    out: &mut [f64],
    scratch: &mut [f64],
) {
    compute_row(tensor, sym, factors, mode, row_position, out, scratch);
}

/// Number of floating point operations performed by the nonzero-based TTMc
/// for one mode: every nonzero contributes `2 · Π_{t≠mode} R_t` flops (one
/// multiply and one add per output entry, amortizing the Kronecker
/// expansion).  This is the `W_TTMc` work measure of the paper's Table III.
pub fn ttmc_work(tensor: &SparseTensor, ranks: &[usize], mode: usize) -> usize {
    let width: usize = ranks
        .iter()
        .enumerate()
        .filter(|&(t, _)| t != mode)
        .map(|(_, &r)| r)
        .product();
    2 * tensor.nnz() * width
}

fn validate_factors(tensor: &SparseTensor, factors: &[Matrix], mode: usize) {
    assert_eq!(
        factors.len(),
        tensor.order(),
        "expected one factor matrix per mode"
    );
    for (t, u) in factors.iter().enumerate() {
        if t == mode {
            continue;
        }
        assert_eq!(
            u.nrows(),
            tensor.dims()[t],
            "factor matrix for mode {t} has {} rows but the mode size is {}",
            u.nrows(),
            tensor.dims()[t]
        );
    }
}

/// Reference TTMc computed densely: materializes the full tensor, performs
/// dense TTMs along every mode except `mode`, and unfolds.  Exponential in
/// memory — tests only.
pub fn ttmc_dense_reference(tensor: &SparseTensor, factors: &[Matrix], mode: usize) -> Matrix {
    use sptensor::DenseTensor;
    let mut dense = DenseTensor::zeros(tensor.dims().to_vec());
    for (idx, v) in tensor.iter() {
        let lin = dense.linear_index(idx);
        dense.as_mut_slice()[lin] += v;
    }
    let mut cur = dense;
    for (t, u) in factors.iter().enumerate() {
        if t == mode {
            continue;
        }
        cur = cur.ttm(t, u, true);
    }
    cur.unfold(mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::SymbolicTtmc;
    use datagen::random_tensor;

    fn factors_for(tensor: &SparseTensor, ranks: &[usize], seed: u64) -> Vec<Matrix> {
        tensor
            .dims()
            .iter()
            .zip(ranks.iter())
            .enumerate()
            .map(|(m, (&d, &r))| Matrix::random(d, r, seed + m as u64))
            .collect()
    }

    /// Expands the compact result into the full `I_mode × width` matrix.
    fn expand(compact: &Matrix, sym: &SymbolicMode, dim: usize) -> Matrix {
        let mut full = Matrix::zeros(dim, compact.ncols());
        for (p, &i) in sym.rows.iter().enumerate() {
            full.row_mut(i).copy_from_slice(compact.row(p));
        }
        full
    }

    #[test]
    fn ttmc_matches_dense_reference_3mode() {
        let t = random_tensor(&[8, 9, 10], 120, 3);
        let ranks = [3, 4, 2];
        let factors = factors_for(&t, &ranks, 11);
        let sym = SymbolicTtmc::build(&t);
        for mode in 0..3 {
            let compact = ttmc_mode(&t, sym.mode(mode), &factors, mode);
            let full = expand(&compact, sym.mode(mode), t.dims()[mode]);
            let reference = ttmc_dense_reference(&t, &factors, mode);
            assert!(
                full.frobenius_distance(&reference) < 1e-9 * reference.frobenius_norm().max(1.0),
                "mode {mode} mismatch"
            );
        }
    }

    #[test]
    fn ttmc_matches_dense_reference_4mode() {
        let t = random_tensor(&[5, 6, 4, 7], 100, 5);
        let ranks = [2, 3, 2, 2];
        let factors = factors_for(&t, &ranks, 23);
        let sym = SymbolicTtmc::build(&t);
        for mode in 0..4 {
            let compact = ttmc_mode(&t, sym.mode(mode), &factors, mode);
            let full = expand(&compact, sym.mode(mode), t.dims()[mode]);
            let reference = ttmc_dense_reference(&t, &factors, mode);
            assert!(
                full.frobenius_distance(&reference) < 1e-9 * reference.frobenius_norm().max(1.0),
                "mode {mode} mismatch"
            );
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let t = random_tensor(&[30, 25, 20], 1500, 7);
        let ranks = [4, 4, 4];
        let factors = factors_for(&t, &ranks, 1);
        let sym = SymbolicTtmc::build(&t);
        for mode in 0..3 {
            let a = ttmc_mode(&t, sym.mode(mode), &factors, mode);
            let b = ttmc_mode_sequential(&t, sym.mode(mode), &factors, mode);
            assert!(a.frobenius_distance(&b) < 1e-10 * a.frobenius_norm().max(1.0));
        }
    }

    #[test]
    fn compact_rows_correspond_to_nonempty_slices() {
        let t = SparseTensor::from_entries(
            vec![6, 3, 3],
            &[(vec![1, 0, 0], 1.0), (vec![4, 2, 2], 2.0)],
        );
        let ranks = [2, 2, 2];
        let factors = factors_for(&t, &ranks, 2);
        let sym = SymbolicTtmc::build(&t);
        let compact = ttmc_mode(&t, sym.mode(0), &factors, 0);
        assert_eq!(compact.nrows(), 2); // only rows 1 and 4 are nonempty
        assert_eq!(sym.mode(0).rows, vec![1, 4]);
    }

    #[test]
    fn single_nonzero_row_is_scaled_kron() {
        let t = SparseTensor::from_entries(vec![2, 3, 4], &[(vec![1, 2, 3], 2.5)]);
        let factors = vec![
            Matrix::random(2, 2, 1),
            Matrix::random(3, 2, 2),
            Matrix::random(4, 3, 3),
        ];
        let sym = SymbolicTtmc::build(&t);
        let compact = ttmc_mode(&t, sym.mode(0), &factors, 0);
        assert_eq!(compact.shape(), (1, 6));
        let mut expected = vec![0.0; 6];
        sptensor::kron::kron_rows(&[factors[1].row(2), factors[2].row(3)], &mut expected);
        for (a, b) in compact.row(0).iter().zip(expected.iter()) {
            assert!((a - 2.5 * b).abs() < 1e-12);
        }
    }

    #[test]
    fn contribution_replay_is_bit_identical_to_row_sweep() {
        // Accumulating per-nonzero contribution vectors in update-list order
        // must reproduce ttmc_row_into bit for bit — the property the
        // distributed executor's fold/merge builds on.
        let t = random_tensor(&[12, 10, 8], 300, 17);
        let ranks = [3, 2, 4];
        let factors = factors_for(&t, &ranks, 5);
        let sym = SymbolicTtmc::build(&t);
        for mode in 0..3 {
            let width = ttmc_result_width(&factors, mode);
            let sm = sym.mode(mode);
            let mut direct = vec![0.0; width];
            let mut replayed = vec![0.0; width];
            let mut contrib = vec![0.0; width];
            let mut scratch = vec![0.0; width];
            let mut rows_buf = Vec::new();
            for p in 0..sm.num_rows() {
                ttmc_row_into(&t, sm, &factors, mode, p, &mut direct, &mut scratch);
                replayed.iter_mut().for_each(|v| *v = 0.0);
                for &id in sm.update_list(p) {
                    ttmc_contribution_into(
                        &t,
                        &factors,
                        mode,
                        id,
                        &mut contrib,
                        &mut scratch,
                        &mut rows_buf,
                    );
                    for (r, &c) in replayed.iter_mut().zip(contrib.iter()) {
                        *r += c;
                    }
                }
                assert_eq!(
                    direct.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    replayed.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "mode {mode} row {p} diverged"
                );
            }
        }
    }

    #[test]
    fn ttmc_work_formula() {
        let t = random_tensor(&[10, 10, 10], 100, 1);
        assert_eq!(ttmc_work(&t, &[10, 10, 10], 0), 2 * 100 * 100);
        assert_eq!(ttmc_work(&t, &[2, 3, 4], 1), 2 * 100 * 8);
    }

    #[test]
    fn result_width_helper() {
        let factors = vec![
            Matrix::zeros(5, 2),
            Matrix::zeros(6, 3),
            Matrix::zeros(7, 4),
        ];
        assert_eq!(ttmc_result_width(&factors, 0), 12);
        assert_eq!(ttmc_result_width(&factors, 2), 6);
    }

    #[test]
    #[should_panic]
    fn mismatched_factor_rows_rejected() {
        let t = random_tensor(&[4, 4, 4], 10, 1);
        let factors = vec![
            Matrix::zeros(4, 2),
            Matrix::zeros(5, 2), // wrong: mode 1 has size 4
            Matrix::zeros(4, 2),
        ];
        let sym = SymbolicTtmc::build(&t);
        let _ = ttmc_mode(&t, sym.mode(0), &factors, 0);
    }

    #[test]
    fn empty_tensor_gives_empty_result() {
        let t = SparseTensor::new(vec![4, 4, 4]);
        let factors = vec![
            Matrix::zeros(4, 2),
            Matrix::zeros(4, 2),
            Matrix::zeros(4, 2),
        ];
        let sym = SymbolicTtmc::build(&t);
        let compact = ttmc_mode(&t, sym.mode(1), &factors, 1);
        assert_eq!(compact.nrows(), 0);
        assert_eq!(compact.ncols(), 4);
    }
}
