//! Nonzero-based numeric TTMc (paper Eq. (4) / Algorithm 2).
//!
//! Given the symbolic update lists of a mode, the matricized TTMc result is
//! computed row by row: row `i_n` accumulates
//! `Σ_{x ∈ ul_n(i_n)} x · ⊗_{t≠n} U_t(i_t, :)`.
//!
//! Rows are independent, so the parallel variant hands each row of `J_n` to
//! rayon (the OpenMP `parallel for` with dynamic scheduling of the paper).
//! The result is returned in *compact* form: one row per non-empty slice,
//! `|J_n| × Π_{t≠n} R_t`; rows of the full matricization outside `J_n` are
//! identically zero and never materialized.
//!
//! The numeric kernel streams the mode-sorted layout built by the symbolic
//! step ([`SymbolicMode::layout`]) — values and foreign-mode indices in
//! update-list order — instead of gathering each nonzero through COO ids,
//! and order-3 tensors (the common case) take a specialized two-row
//! outer-product micro-kernel with an unrolled inner axpy.  Both changes
//! keep the accumulation order of every row, so results stay bit-identical
//! to the id-gathering formulation the distributed executor replays.

use crate::symbolic::SymbolicMode;
use linalg::Matrix;
use rayon::prelude::*;
use sptensor::csf::{CsfData, CsfIndex, CsfMode};
use sptensor::kron::accumulate_scaled_kron_isa;
use sptensor::simd::{self, KernelIsa};
use sptensor::SparseTensor;

/// Computes the width `Π_{t≠mode} R_t` of the compact TTMc result from the
/// factor matrices.
pub fn ttmc_result_width(factors: &[Matrix], mode: usize) -> usize {
    factors
        .iter()
        .enumerate()
        .filter(|&(t, _)| t != mode)
        .map(|(_, u)| u.ncols())
        .product()
}

/// Computes one row of the compact TTMc result into `out`.
///
/// `out` must have length `Π_{t≠mode} R_t` and is overwritten; `rows` is
/// caller-owned scratch for the factor-row list so the parallel sweep hoists
/// its allocation into the per-worker state.  When the symbolic data
/// carries a mode-sorted layout the kernel streams it (order 3 through the
/// specialized micro-kernel); otherwise it gathers through COO ids in the
/// identical accumulation order, so both paths produce the same bits.
#[allow(clippy::too_many_arguments)]
fn compute_row<'a>(
    tensor: &SparseTensor,
    sym: &SymbolicMode,
    factors: &'a [Matrix],
    mode: usize,
    row_position: usize,
    out: &mut [f64],
    scratch: &mut [f64],
    rows: &mut Vec<&'a [f64]>,
    isa: KernelIsa,
) {
    out.iter_mut().for_each(|v| *v = 0.0);
    if let Some(csf) = sym.csf() {
        // CSF plans stream the fiber hierarchy: factor-row lookups are
        // hoisted per fiber, but every per-element multiply/add runs in the
        // exact order of the flat kernels below, so the bits match.
        match csf {
            CsfMode::Small(d) => {
                compute_row_csf(d, row_position, factors, mode, out, scratch, rows, isa)
            }
            CsfMode::Wide(d) => {
                compute_row_csf(d, row_position, factors, mode, out, scratch, rows, isa)
            }
        }
        return;
    }
    let lo = sym.row_ptr[row_position];
    let hi = sym.row_ptr[row_position + 1];
    let Some(layout) = sym.layout() else {
        // No layout (dimension-tree plans): gather each nonzero's value and
        // indices from the COO arrays.
        for &id in sym.update_list(row_position) {
            let index = tensor.index(id);
            rows.clear();
            for (t, factor) in factors.iter().enumerate() {
                if t == mode {
                    continue;
                }
                rows.push(factor.row(index[t]));
            }
            accumulate_scaled_kron_isa(isa, tensor.value(id), rows, out, scratch);
        }
        return;
    };
    let arity = layout.arity();
    if arity == 2 {
        // Order 3: the dominant case gets the specialized micro-kernel.
        let (a, b) = foreign_pair(mode);
        compute_row3(
            layout.values_range(lo, hi),
            layout.coords_range(lo, hi),
            &factors[a],
            &factors[b],
            out,
            isa,
        );
        return;
    }
    if arity == 3 {
        // Order 4 (the paper's Delicious/Flickr shapes): fused three-row
        // kernel, no scratch materialization.
        let (a, b, c) = foreign_triple(mode);
        compute_row4(
            layout.values_range(lo, hi),
            layout.coords_range(lo, hi),
            &factors[a],
            &factors[b],
            &factors[c],
            out,
            isa,
        );
        return;
    }
    let values = layout.values_range(lo, hi);
    let coords = layout.coords_range(lo, hi);
    for (k, &value) in values.iter().enumerate() {
        let c = &coords[k * arity..(k + 1) * arity];
        if k + 1 < values.len() {
            // The next entry's first factor row is a gather through an
            // index array; start pulling its cache line now.
            prefetch(factors[if mode == 0 { 1 } else { 0 }].row(coords[(k + 1) * arity]));
        }
        rows.clear();
        let mut j = 0;
        for (t, factor) in factors.iter().enumerate() {
            if t == mode {
                continue;
            }
            rows.push(factor.row(c[j]));
            j += 1;
        }
        accumulate_scaled_kron_isa(isa, value, rows, out, scratch);
    }
}

/// The two foreign modes of `mode` in an order-3 tensor, ascending.
#[inline]
fn foreign_pair(mode: usize) -> (usize, usize) {
    match mode {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    }
}

/// The three foreign modes of `mode` in an order-4 tensor, ascending.
#[inline]
fn foreign_triple(mode: usize) -> (usize, usize, usize) {
    match mode {
        0 => (1, 2, 3),
        1 => (0, 2, 3),
        2 => (0, 1, 3),
        _ => (0, 1, 2),
    }
}

/// Software prefetch of the first cache line of a factor row — a pure
/// hint, so it cannot change any result bits.  No-op off x86_64.
#[inline(always)]
fn prefetch(row: &[f64]) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch(row.as_ptr() as *const i8, _MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = row;
}

/// Order-3 micro-kernel: accumulates `Σ_k x_k · (U_a(i_a) ⊗ U_b(i_b))` into
/// `out`, streaming the mode-sorted `values`/`coords` arrays.  The scaled
/// outer product of the two factor rows is written directly (coefficient
/// hoisted per `a`-entry, inner axpy on SIMD lanes); the per-element
/// operations and their order match [`accumulate_scaled_kron`]'s two-factor
/// branch exactly, so the result is bit-identical to the generic path.
///
/// [`accumulate_scaled_kron`]: sptensor::kron::accumulate_scaled_kron
fn compute_row3(
    values: &[f64],
    coords: &[usize],
    fa: &Matrix,
    fb: &Matrix,
    out: &mut [f64],
    isa: KernelIsa,
) {
    for (k, &x) in values.iter().enumerate() {
        if k + 1 < values.len() {
            prefetch(fa.row(coords[2 * (k + 1)]));
            prefetch(fb.row(coords[2 * (k + 1) + 1]));
        }
        let u = fa.row(coords[2 * k]);
        let v = fb.row(coords[2 * k + 1]);
        scaled_outer2(isa, x, u, v, out);
    }
}

/// The per-nonzero body of the order-3 kernel: `out += x · (u ⊗ v)`,
/// coefficient hoisted per `u`-entry with a **zero-coefficient skip**
/// (bit-transparent for finite inputs; see
/// [`sptensor::kron::accumulate_scaled_kron_isa`] for the contract), inner
/// axpy on the runtime-dispatched SIMD lanes ([`sptensor::simd`]).  Shared
/// by the mode-sorted and CSF streaming kernels so the two layouts run
/// byte-for-byte the same arithmetic; `Scalar` and `Avx2` produce identical
/// bits, `Fma` is the opt-in fused tier.
///
/// `out` is row-major `u.len() × v.len()`.  Public so the kernel microbench
/// (`bench --bin kernels`) and the equivalence tests drive exactly the body
/// the TTMc sweeps run.
#[inline(always)]
pub fn scaled_outer2(isa: KernelIsa, x: f64, u: &[f64], v: &[f64], out: &mut [f64]) {
    simd::scaled_outer2(isa, x, u, v, out);
}

/// Order-4 micro-kernel: accumulates
/// `Σ_k x_k · (U_a(i_a) ⊗ U_b(i_b) ⊗ U_c(i_c))` into `out`, streaming the
/// mode-sorted `values`/`coords` arrays without materializing the Kronecker
/// product.
///
/// Bit-identity contract: the generic path ([`accumulate_scaled_kron`]'s
/// arity ≥ 3 branch) expands `((1.0·u_i)·v_j)·w_k` via [`kron_rows`] and
/// then adds `x · s` — `1.0·u_i` is bitwise `u_i`, so the fused form
/// `t = (u_i·v_j)·w_k; acc += x·t` performs the identical multiplies and
/// add, in the identical order, for every output element.  In particular
/// `x` multiplies *last* and there is no zero-coefficient skip, matching
/// the generic branch exactly.
///
/// [`kron_rows`]: sptensor::kron::kron_rows
#[allow(clippy::too_many_arguments)]
fn compute_row4(
    values: &[f64],
    coords: &[usize],
    fa: &Matrix,
    fb: &Matrix,
    fc: &Matrix,
    out: &mut [f64],
    isa: KernelIsa,
) {
    for (k, &x) in values.iter().enumerate() {
        if k + 1 < values.len() {
            prefetch(fa.row(coords[3 * (k + 1)]));
            prefetch(fb.row(coords[3 * (k + 1) + 1]));
            prefetch(fc.row(coords[3 * (k + 1) + 2]));
        }
        let u = fa.row(coords[3 * k]);
        let v = fb.row(coords[3 * k + 1]);
        let w = fc.row(coords[3 * k + 2]);
        scaled_outer3(isa, x, u, v, w, out);
    }
}

/// The per-nonzero body of the order-4 kernel:
/// `out += x · (u ⊗ v ⊗ w)` without materializing the Kronecker product, on
/// the runtime-dispatched SIMD lanes ([`sptensor::simd`]).  Shared by the
/// mode-sorted and CSF streaming kernels so the two layouts run
/// byte-for-byte the same arithmetic.
///
/// Contract: each element computes `t = (u_i·v_j)·w_k` then `acc += x·t` —
/// `x` multiplies **last** and there is **no** zero-coefficient skip,
/// matching the materialized arity-3 path of
/// [`sptensor::kron::accumulate_scaled_kron_isa`] bit for bit (see the
/// zero-coefficient contract there for why the arity-2 skip is nonetheless
/// equivalent).  `out` is row-major `u.len()·v.len() × w.len()`.  Public
/// for the kernel microbench and the equivalence tests.
#[inline(always)]
pub fn scaled_outer3(isa: KernelIsa, x: f64, u: &[f64], v: &[f64], w: &[f64], out: &mut [f64]) {
    simd::scaled_outer3(isa, x, u, v, w, out);
}

/// Computes one row of the compact TTMc result from a CSF fiber hierarchy,
/// accumulating into a pre-zeroed `out`.
///
/// Root slice `row_position` of the hierarchy aligns with the symbolic
/// data's `rows[row_position]` because the hierarchy is built from the same
/// update-list permutation.  Arities 2 and 3 stream through the shared
/// per-nonzero bodies of the flat micro-kernels ([`scaled_outer2`] /
/// [`scaled_outer3`]) with the factor-row lookups hoisted per fiber; every
/// other arity walks the hierarchy and feeds [`accumulate_scaled_kron`] with
/// the factor rows in ascending foreign-mode order — exactly what the COO
/// gather does — so all layouts produce the same bits.
#[allow(clippy::too_many_arguments)]
fn compute_row_csf<'a, I: CsfIndex>(
    csf: &CsfData<I>,
    row_position: usize,
    factors: &'a [Matrix],
    mode: usize,
    out: &mut [f64],
    scratch: &mut [f64],
    rows: &mut Vec<&'a [f64]>,
    isa: KernelIsa,
) {
    let arity = csf.arity();
    if arity == 2 {
        let (a, b) = foreign_pair(mode);
        compute_row3_csf(csf, row_position, &factors[a], &factors[b], out, isa);
        return;
    }
    if arity == 3 {
        let (a, b, c) = foreign_triple(mode);
        compute_row4_csf(
            csf,
            row_position,
            &factors[a],
            &factors[b],
            &factors[c],
            out,
            isa,
        );
        return;
    }
    rows.clear();
    let (lo, hi) = csf.root_range(row_position);
    walk_csf(csf, 0, lo, hi, factors, mode, out, scratch, rows, isa);
}

/// Order-3 CSF kernel: one `U_a` row lookup per level-0 fiber, the leaf
/// level streams `(i_b, x)` pairs through [`scaled_outer2`].
fn compute_row3_csf<I: CsfIndex>(
    csf: &CsfData<I>,
    p: usize,
    fa: &Matrix,
    fb: &Matrix,
    out: &mut [f64],
    isa: KernelIsa,
) {
    let (flo, fhi) = csf.root_range(p);
    for f in flo..fhi {
        let u = fa.row(csf.fiber_id(0, f));
        let (lo, hi) = csf.fiber_range(0, f);
        let (ids, values) = csf.leaves(lo, hi);
        for (k, &x) in values.iter().enumerate() {
            if k + 1 < values.len() {
                prefetch(fb.row(ids[k + 1].to_usize()));
            }
            let v = fb.row(ids[k].to_usize());
            scaled_outer2(isa, x, u, v, out);
        }
    }
}

/// Order-4 CSF kernel: `U_a` hoisted per level-0 fiber, `U_b` per level-1
/// fiber, leaves stream `(i_c, x)` through [`scaled_outer3`].
#[allow(clippy::too_many_arguments)]
fn compute_row4_csf<I: CsfIndex>(
    csf: &CsfData<I>,
    p: usize,
    fa: &Matrix,
    fb: &Matrix,
    fc: &Matrix,
    out: &mut [f64],
    isa: KernelIsa,
) {
    let (alo, ahi) = csf.root_range(p);
    for fib_a in alo..ahi {
        let u = fa.row(csf.fiber_id(0, fib_a));
        let (blo, bhi) = csf.fiber_range(0, fib_a);
        for fib_b in blo..bhi {
            let v = fb.row(csf.fiber_id(1, fib_b));
            let (lo, hi) = csf.fiber_range(1, fib_b);
            let (ids, values) = csf.leaves(lo, hi);
            for (k, &x) in values.iter().enumerate() {
                if k + 1 < values.len() {
                    prefetch(fc.row(ids[k + 1].to_usize()));
                }
                let w = fc.row(ids[k].to_usize());
                scaled_outer3(isa, x, u, v, w, out);
            }
        }
    }
}

/// Generic-arity CSF walk (orders 2 and ≥ 5): descends the hierarchy
/// pushing one factor row per level (ascending foreign-mode order) and
/// calls [`accumulate_scaled_kron`] per leaf — the identical call the COO
/// gather makes per nonzero, in the identical order.
#[allow(clippy::too_many_arguments)]
fn walk_csf<'a, I: CsfIndex>(
    csf: &CsfData<I>,
    level: usize,
    lo: usize,
    hi: usize,
    factors: &'a [Matrix],
    mode: usize,
    out: &mut [f64],
    scratch: &mut [f64],
    rows: &mut Vec<&'a [f64]>,
    isa: KernelIsa,
) {
    let arity = csf.arity();
    if arity == 0 {
        // Order-1 tensor: no foreign modes, each leaf adds its value.
        for k in lo..hi {
            accumulate_scaled_kron_isa(isa, csf.value(k), rows, out, scratch);
        }
        return;
    }
    let foreign = if level < mode { level } else { level + 1 };
    if level + 1 == arity {
        let (ids, values) = csf.leaves(lo, hi);
        for (k, &x) in values.iter().enumerate() {
            rows.push(factors[foreign].row(ids[k].to_usize()));
            accumulate_scaled_kron_isa(isa, x, rows, out, scratch);
            rows.pop();
        }
        return;
    }
    for f in lo..hi {
        rows.push(factors[foreign].row(csf.fiber_id(level, f)));
        let (clo, chi) = csf.fiber_range(level, f);
        walk_csf(
            csf,
            level + 1,
            clo,
            chi,
            factors,
            mode,
            out,
            scratch,
            rows,
            isa,
        );
        rows.pop();
    }
}

/// Numeric TTMc for one mode, parallel over the rows of `J_n` (rayon).
///
/// Returns the compact `|J_n| × Π_{t≠mode} R_t` matrix; row `p` corresponds
/// to tensor index `sym.rows[p]` along `mode`.
///
/// # Panics
/// Panics if the factor matrices do not match the tensor's mode sizes.
pub fn ttmc_mode(
    tensor: &SparseTensor,
    sym: &SymbolicMode,
    factors: &[Matrix],
    mode: usize,
) -> Matrix {
    let mut out = Matrix::zeros(sym.num_rows(), ttmc_result_width(factors, mode));
    ttmc_mode_into(tensor, sym, factors, mode, &mut out);
    out
}

/// Numeric TTMc for one mode, writing into a caller-provided compact result
/// matrix — the allocation-free entry point the HOOI loop uses so the
/// `|J_n| × Π_{t≠mode} R_t` buffer is reused across iterations (see
/// [`crate::workspace::HooiWorkspace`]).
///
/// # Panics
/// Panics if the factor matrices do not match the tensor's mode sizes or
/// `out` does not have shape `|J_n| × Π_{t≠mode} R_t`.
pub fn ttmc_mode_into(
    tensor: &SparseTensor,
    sym: &SymbolicMode,
    factors: &[Matrix],
    mode: usize,
    out: &mut Matrix,
) {
    ttmc_mode_into_isa(
        tensor,
        sym,
        factors,
        mode,
        out,
        KernelIsa::resolved_default(),
    );
}

/// [`ttmc_mode_into`] at an explicit kernel ISA — the form the planned
/// solver session uses, with the ISA it resolved at plan time
/// ([`crate::TuckerSolver::kernel_isa`]).  `Scalar` and `Avx2` are
/// bit-identical; `Fma` is the opt-in fused tier.
pub fn ttmc_mode_into_isa(
    tensor: &SparseTensor,
    sym: &SymbolicMode,
    factors: &[Matrix],
    mode: usize,
    out: &mut Matrix,
    isa: KernelIsa,
) {
    validate_factors(tensor, factors, mode);
    let width = ttmc_result_width(factors, mode);
    assert_eq!(
        out.shape(),
        (sym.num_rows(), width),
        "ttmc_mode_into: result buffer has the wrong shape"
    );
    if width == 0 {
        return;
    }
    let order = tensor.order();
    // Parallelize over rows; each worker gets one scratch buffer and one
    // factor-row list through `for_each_init`, so both allocations are
    // amortized over all the rows a worker processes.  Spans are cut by the
    // rows' symbolic flop weights (update-list lengths), so on skewed
    // distributions no span carries most of the work — a pure scheduling
    // change: every row is still computed whole, within one span, so the
    // bits match the unweighted sweep and the executor's replay exactly.
    let row_costs = sym.row_costs();
    out.as_mut_slice()
        .par_chunks_mut(width)
        .enumerate()
        .for_each_init_weighted(
            &row_costs,
            || (vec![0.0; width], Vec::with_capacity(order - 1)),
            |(scratch, rows), (p, row_out)| {
                compute_row(tensor, sym, factors, mode, p, row_out, scratch, rows, isa);
            },
        );
}

/// Computes one row of the compact TTMc result into `out`, overwriting it.
///
/// `row_position` indexes the non-empty rows of `sym` (`sym.rows[p]` is the
/// tensor index along `mode`); `out` must have length `Π_{t≠mode} R_t` and
/// `scratch` at least that length.  This is the per-task kernel the parallel
/// and sequential sweeps share; the distributed executor also calls it
/// directly for rows whose update list is entirely local to one rank.
pub fn ttmc_row_into(
    tensor: &SparseTensor,
    sym: &SymbolicMode,
    factors: &[Matrix],
    mode: usize,
    row_position: usize,
    out: &mut [f64],
    scratch: &mut [f64],
) {
    let mut rows = Vec::with_capacity(factors.len().saturating_sub(1));
    compute_row(
        tensor,
        sym,
        factors,
        mode,
        row_position,
        out,
        scratch,
        &mut rows,
        KernelIsa::resolved_default(),
    );
}

/// Computes the contribution of a single nonzero to its row of the mode-
/// `mode` TTMc result: `x · ⊗_{t≠mode} U_t(i_t, :)`, overwriting `out`.
///
/// Adding these vectors to a row accumulator in update-list order produces
/// exactly the same floating-point result as [`ttmc_row_into`] — each
/// accumulation step `acc[j] += x · k_j` performs the identical multiply and
/// add either way.  The distributed executor relies on this to merge
/// remotely computed contributions bit-identically to the shared-memory
/// sweep.
///
/// `rows` is caller-provided scratch for the factor-row list (cleared and
/// refilled here); hoisting it keeps the executor's per-nonzero fold loop
/// allocation-free.
pub fn ttmc_contribution_into<'a>(
    tensor: &SparseTensor,
    factors: &'a [Matrix],
    mode: usize,
    nonzero_id: usize,
    out: &mut [f64],
    scratch: &mut [f64],
    rows: &mut Vec<&'a [f64]>,
) {
    out.iter_mut().for_each(|v| *v = 0.0);
    let order = tensor.order();
    let index = tensor.index(nonzero_id);
    let value = tensor.value(nonzero_id);
    rows.clear();
    for t in 0..order {
        if t == mode {
            continue;
        }
        rows.push(factors[t].row(index[t]));
    }
    accumulate_scaled_kron_isa(KernelIsa::resolved_default(), value, rows, out, scratch);
}

/// Sequential numeric TTMc (used for verification, the single-thread
/// baselines of Table V, and inside the per-rank loops of the distributed
/// simulator where parallelism is across ranks instead).
pub fn ttmc_mode_sequential(
    tensor: &SparseTensor,
    sym: &SymbolicMode,
    factors: &[Matrix],
    mode: usize,
) -> Matrix {
    validate_factors(tensor, factors, mode);
    let width = ttmc_result_width(factors, mode);
    let nrows = sym.num_rows();
    let mut out = Matrix::zeros(nrows, width);
    let mut scratch = vec![0.0; width];
    let mut rows = Vec::with_capacity(tensor.order() - 1);
    let isa = KernelIsa::resolved_default();
    for p in 0..nrows {
        let row_start = p * width;
        // Split borrow: compute into a temporary row slice.
        let row = &mut out.as_mut_slice()[row_start..row_start + width];
        compute_row(
            tensor,
            sym,
            factors,
            mode,
            p,
            row,
            &mut scratch,
            &mut rows,
            isa,
        );
    }
    out
}

/// Number of floating point operations performed by the nonzero-based TTMc
/// for one mode: every nonzero contributes `2 · Π_{t≠mode} R_t` flops (one
/// multiply and one add per output entry, amortizing the Kronecker
/// expansion).  This is the `W_TTMc` work measure of the paper's Table III.
pub fn ttmc_work(tensor: &SparseTensor, ranks: &[usize], mode: usize) -> usize {
    let width: usize = ranks
        .iter()
        .enumerate()
        .filter(|&(t, _)| t != mode)
        .map(|(_, &r)| r)
        .product();
    2 * tensor.nnz() * width
}

fn validate_factors(tensor: &SparseTensor, factors: &[Matrix], mode: usize) {
    assert_eq!(
        factors.len(),
        tensor.order(),
        "expected one factor matrix per mode"
    );
    for (t, u) in factors.iter().enumerate() {
        if t == mode {
            continue;
        }
        assert_eq!(
            u.nrows(),
            tensor.dims()[t],
            "factor matrix for mode {t} has {} rows but the mode size is {}",
            u.nrows(),
            tensor.dims()[t]
        );
    }
}

/// Reference TTMc computed densely: materializes the full tensor, performs
/// dense TTMs along every mode except `mode`, and unfolds.  Exponential in
/// memory — tests only.
pub fn ttmc_dense_reference(tensor: &SparseTensor, factors: &[Matrix], mode: usize) -> Matrix {
    use sptensor::DenseTensor;
    let mut dense = DenseTensor::zeros(tensor.dims().to_vec());
    for (idx, v) in tensor.iter() {
        let lin = dense.linear_index(idx);
        dense.as_mut_slice()[lin] += v;
    }
    let mut cur = dense;
    for (t, u) in factors.iter().enumerate() {
        if t == mode {
            continue;
        }
        cur = cur.ttm(t, u, true);
    }
    cur.unfold(mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::SymbolicTtmc;
    use datagen::random_tensor;

    fn factors_for(tensor: &SparseTensor, ranks: &[usize], seed: u64) -> Vec<Matrix> {
        tensor
            .dims()
            .iter()
            .zip(ranks.iter())
            .enumerate()
            .map(|(m, (&d, &r))| Matrix::random(d, r, seed + m as u64))
            .collect()
    }

    /// Expands the compact result into the full `I_mode × width` matrix.
    fn expand(compact: &Matrix, sym: &SymbolicMode, dim: usize) -> Matrix {
        let mut full = Matrix::zeros(dim, compact.ncols());
        for (p, &i) in sym.rows.iter().enumerate() {
            full.row_mut(i).copy_from_slice(compact.row(p));
        }
        full
    }

    #[test]
    fn ttmc_matches_dense_reference_3mode() {
        let t = random_tensor(&[8, 9, 10], 120, 3);
        let ranks = [3, 4, 2];
        let factors = factors_for(&t, &ranks, 11);
        let sym = SymbolicTtmc::build(&t);
        for mode in 0..3 {
            let compact = ttmc_mode(&t, sym.mode(mode), &factors, mode);
            let full = expand(&compact, sym.mode(mode), t.dims()[mode]);
            let reference = ttmc_dense_reference(&t, &factors, mode);
            assert!(
                full.frobenius_distance(&reference) < 1e-9 * reference.frobenius_norm().max(1.0),
                "mode {mode} mismatch"
            );
        }
    }

    #[test]
    fn ttmc_matches_dense_reference_4mode() {
        let t = random_tensor(&[5, 6, 4, 7], 100, 5);
        let ranks = [2, 3, 2, 2];
        let factors = factors_for(&t, &ranks, 23);
        let sym = SymbolicTtmc::build(&t);
        for mode in 0..4 {
            let compact = ttmc_mode(&t, sym.mode(mode), &factors, mode);
            let full = expand(&compact, sym.mode(mode), t.dims()[mode]);
            let reference = ttmc_dense_reference(&t, &factors, mode);
            assert!(
                full.frobenius_distance(&reference) < 1e-9 * reference.frobenius_norm().max(1.0),
                "mode {mode} mismatch"
            );
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let t = random_tensor(&[30, 25, 20], 1500, 7);
        let ranks = [4, 4, 4];
        let factors = factors_for(&t, &ranks, 1);
        let sym = SymbolicTtmc::build(&t);
        for mode in 0..3 {
            let a = ttmc_mode(&t, sym.mode(mode), &factors, mode);
            let b = ttmc_mode_sequential(&t, sym.mode(mode), &factors, mode);
            assert!(a.frobenius_distance(&b) < 1e-10 * a.frobenius_norm().max(1.0));
        }
    }

    #[test]
    fn compact_rows_correspond_to_nonempty_slices() {
        let t = SparseTensor::from_entries(
            vec![6, 3, 3],
            &[(vec![1, 0, 0], 1.0), (vec![4, 2, 2], 2.0)],
        );
        let ranks = [2, 2, 2];
        let factors = factors_for(&t, &ranks, 2);
        let sym = SymbolicTtmc::build(&t);
        let compact = ttmc_mode(&t, sym.mode(0), &factors, 0);
        assert_eq!(compact.nrows(), 2); // only rows 1 and 4 are nonempty
        assert_eq!(sym.mode(0).rows, vec![1, 4]);
    }

    #[test]
    fn single_nonzero_row_is_scaled_kron() {
        let t = SparseTensor::from_entries(vec![2, 3, 4], &[(vec![1, 2, 3], 2.5)]);
        let factors = vec![
            Matrix::random(2, 2, 1),
            Matrix::random(3, 2, 2),
            Matrix::random(4, 3, 3),
        ];
        let sym = SymbolicTtmc::build(&t);
        let compact = ttmc_mode(&t, sym.mode(0), &factors, 0);
        assert_eq!(compact.shape(), (1, 6));
        let mut expected = vec![0.0; 6];
        sptensor::kron::kron_rows(&[factors[1].row(2), factors[2].row(3)], &mut expected);
        for (a, b) in compact.row(0).iter().zip(expected.iter()) {
            assert!((a - 2.5 * b).abs() < 1e-12);
        }
    }

    #[test]
    fn contribution_replay_is_bit_identical_to_row_sweep() {
        // Accumulating per-nonzero contribution vectors in update-list order
        // must reproduce ttmc_row_into bit for bit — the property the
        // distributed executor's fold/merge builds on.
        let t = random_tensor(&[12, 10, 8], 300, 17);
        let ranks = [3, 2, 4];
        let factors = factors_for(&t, &ranks, 5);
        let sym = SymbolicTtmc::build(&t);
        for mode in 0..3 {
            let width = ttmc_result_width(&factors, mode);
            let sm = sym.mode(mode);
            let mut direct = vec![0.0; width];
            let mut replayed = vec![0.0; width];
            let mut contrib = vec![0.0; width];
            let mut scratch = vec![0.0; width];
            let mut rows_buf = Vec::new();
            for p in 0..sm.num_rows() {
                ttmc_row_into(&t, sm, &factors, mode, p, &mut direct, &mut scratch);
                replayed.iter_mut().for_each(|v| *v = 0.0);
                for &id in sm.update_list(p) {
                    ttmc_contribution_into(
                        &t,
                        &factors,
                        mode,
                        id,
                        &mut contrib,
                        &mut scratch,
                        &mut rows_buf,
                    );
                    for (r, &c) in replayed.iter_mut().zip(contrib.iter()) {
                        *r += c;
                    }
                }
                assert_eq!(
                    direct.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    replayed.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "mode {mode} row {p} diverged"
                );
            }
        }
    }

    #[test]
    fn layoutless_symbolic_gives_bit_identical_results() {
        // Dimension-tree plans build the symbolic data without the
        // mode-sorted layout; the per-mode kernel's COO-gather fallback must
        // reproduce the streaming path bit for bit (same accumulation
        // order, same arithmetic).
        for (dims, nnz) in [(vec![14, 11, 9], 400usize), (vec![7, 6, 5, 4], 250)] {
            let t = random_tensor(&dims, nnz, 29);
            let ranks: Vec<usize> = dims.iter().map(|_| 3).collect();
            let factors = factors_for(&t, &ranks, 31);
            let with = SymbolicTtmc::build(&t);
            let without = SymbolicTtmc::build_without_layout(&t);
            for mode in 0..dims.len() {
                let a = ttmc_mode(&t, with.mode(mode), &factors, mode);
                let b = ttmc_mode(&t, without.mode(mode), &factors, mode);
                assert_eq!(
                    a.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    b.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "order {} mode {mode}",
                    dims.len()
                );
            }
        }
    }

    #[test]
    fn csf_symbolic_gives_bit_identical_results() {
        // The CSF plan must reproduce the mode-sorted streaming kernel and
        // the COO gather bit for bit, across the specialized arities (2, 3)
        // and the generic walker (arity 1 and ≥ 4).
        for (dims, nnz) in [
            (vec![20, 15], 120usize),
            (vec![14, 11, 9], 400),
            (vec![7, 6, 5, 4], 250),
            (vec![5, 4, 3, 4, 3], 150),
        ] {
            let t = random_tensor(&dims, nnz, 37);
            let ranks: Vec<usize> = dims.iter().map(|_| 3).collect();
            let factors = factors_for(&t, &ranks, 41);
            let with = SymbolicTtmc::build(&t);
            let coo = SymbolicTtmc::build_without_layout(&t);
            let mut csf = SymbolicTtmc::build_without_layout(&t);
            csf.attach_csf_layouts(&t);
            for mode in 0..dims.len() {
                let a = ttmc_mode(&t, with.mode(mode), &factors, mode);
                let b = ttmc_mode(&t, csf.mode(mode), &factors, mode);
                let c = ttmc_mode(&t, coo.mode(mode), &factors, mode);
                let bits =
                    |m: &Matrix| m.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&a), bits(&b), "order {} mode {mode}", dims.len());
                assert_eq!(bits(&c), bits(&b), "order {} mode {mode}", dims.len());
            }
        }
    }

    #[test]
    fn ttmc_work_formula() {
        let t = random_tensor(&[10, 10, 10], 100, 1);
        assert_eq!(ttmc_work(&t, &[10, 10, 10], 0), 2 * 100 * 100);
        assert_eq!(ttmc_work(&t, &[2, 3, 4], 1), 2 * 100 * 8);
    }

    #[test]
    fn result_width_helper() {
        let factors = vec![
            Matrix::zeros(5, 2),
            Matrix::zeros(6, 3),
            Matrix::zeros(7, 4),
        ];
        assert_eq!(ttmc_result_width(&factors, 0), 12);
        assert_eq!(ttmc_result_width(&factors, 2), 6);
    }

    #[test]
    #[should_panic]
    fn mismatched_factor_rows_rejected() {
        let t = random_tensor(&[4, 4, 4], 10, 1);
        let factors = vec![
            Matrix::zeros(4, 2),
            Matrix::zeros(5, 2), // wrong: mode 1 has size 4
            Matrix::zeros(4, 2),
        ];
        let sym = SymbolicTtmc::build(&t);
        let _ = ttmc_mode(&t, sym.mode(0), &factors, 0);
    }

    #[test]
    fn empty_tensor_gives_empty_result() {
        let t = SparseTensor::new(vec![4, 4, 4]);
        let factors = vec![
            Matrix::zeros(4, 2),
            Matrix::zeros(4, 2),
            Matrix::zeros(4, 2),
        ];
        let sym = SymbolicTtmc::build(&t);
        let compact = ttmc_mode(&t, sym.mode(1), &factors, 1);
        assert_eq!(compact.nrows(), 0);
        assert_eq!(compact.ncols(), 4);
    }
}
