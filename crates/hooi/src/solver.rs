//! The plan/execute split: a reusable Tucker solver session.
//!
//! The paper's central trick is hoisting all index arithmetic into a
//! one-time *symbolic TTMc* step.  A one-shot `tucker_hooi` call throws
//! that work away after every decomposition; [`TuckerSolver`] keeps it.
//! [`TuckerSolver::plan`] performs the symbolic analysis once and owns the
//! persistent worker pool (threads spawn at plan time and serve every
//! solve — [`TimingBreakdown::pool`](crate::TimingBreakdown::pool) is
//! nonzero only on the first solve) plus the [`HooiWorkspace`] scratch
//! (compact TTMc buffers, Lanczos bases, the projected TRSVD problem, the
//! core buffer);
//! [`TuckerSolver::solve`] then runs HOOI at any rank/seed/backend without
//! re-planning, and [`TuckerSolver::solve_many`] amortizes one plan across
//! a batch of configurations — the shape a long-lived decomposition service
//! needs.
//!
//! Failures are values ([`TuckerError`]), and every iteration can be
//! observed (and stopped early) through an [`IterationObserver`].
//!
//! ```
//! use hooi::{PlanOptions, TuckerConfig, TuckerSolver};
//! use sptensor::SparseTensor;
//!
//! let tensor = SparseTensor::from_entries(
//!     vec![6, 5, 4],
//!     &[
//!         (vec![0, 0, 0], 1.0),
//!         (vec![1, 2, 3], 2.0),
//!         (vec![5, 4, 1], 3.0),
//!         (vec![2, 1, 2], 4.0),
//!     ],
//! );
//! let mut solver = TuckerSolver::plan(&tensor, PlanOptions::new().num_threads(1))?;
//! let coarse = solver.solve(&TuckerConfig::new(vec![2, 2, 2]))?;
//! let fine = solver.solve(&TuckerConfig::new(vec![3, 3, 3]))?;
//! // The symbolic analysis ran exactly once, at plan time: the second
//! // solve reports zero symbolic cost.
//! assert!(coarse.timings.symbolic >= fine.timings.symbolic);
//! assert_eq!(fine.timings.symbolic, std::time::Duration::ZERO);
//! # Ok::<(), hooi::TuckerError>(())
//! ```

use crate::config::{IndexLayout, Initialization, TtmcStrategy, TuckerConfig};
use crate::core_tensor::core_from_last_ttmc_into;
use crate::dimtree::{self, DimTree};
use crate::error::TuckerError;
use crate::fit::fit_from_norms;
use crate::hooi::{TimingBreakdown, TuckerDecomposition};
use crate::hosvd::{hosvd_factors, random_factors, DEFAULT_HOSVD_MAX_COLS};
use crate::symbolic::SymbolicTtmc;
use crate::trsvd::trsvd_factor_with;
use crate::ttmc::ttmc_mode_into_isa;
use crate::workspace::HooiWorkspace;
use sptensor::simd::KernelIsa;
use sptensor::SparseTensor;
use std::time::{Duration, Instant};

/// Options fixed at planning time: everything the session keeps alive
/// across solves, as opposed to the per-solve [`TuckerConfig`].
#[derive(Debug, Clone, Default)]
pub struct PlanOptions {
    /// Worker thread count of the session's pool; `0` (the default) uses
    /// every available hardware thread.  Ignored when
    /// [`caller_pool`](Self::caller_pool) is set.
    pub num_threads: usize,
    /// How the session computes its TTMc sweeps.  Fixed at plan time
    /// because the dimension tree's symbolic grouping is part of the plan;
    /// defaults to [`TtmcStrategy::Auto`], which compares the strategies'
    /// modeled flops for this tensor and keeps the cheaper one.  Single-
    /// mode tensors fall back to [`TtmcStrategy::PerMode`] silently.
    pub ttmc_strategy: TtmcStrategy,
    /// Which per-mode index layout the session's TTMc streams when the
    /// per-mode strategy runs; defaults to [`IndexLayout::Auto`], which
    /// resolves from the tensor's size at plan time (flat mode-sorted
    /// copies while they stay cache-friendly, compressed fiber hierarchies
    /// beyond).  Dimension-tree plans ignore this knob — the tree serves
    /// TTMc from its own node structures.
    pub index_layout: IndexLayout,
    /// Which SIMD kernel tier the session's numeric kernels run at; defaults
    /// to [`KernelIsa::Auto`] (the widest tier that stays bit-identical to
    /// scalar — AVX2 where the hardware has it).  Resolved to a concrete
    /// tier at plan time ([`KernelIsa::resolve`], which also honors the
    /// `TUCKER_KERNEL` environment override) and fixed for the session's
    /// lifetime, so every solve of one plan runs the same kernels;
    /// [`TuckerSession::kernel_isa`] reports the resolution.
    /// [`KernelIsa::Fma`] changes rounding and must be requested explicitly.
    pub kernel_isa: KernelIsa,
    /// When `true`, the session builds **no pool of its own**: the symbolic
    /// analysis and every solve run in whatever thread context the caller
    /// establishes (e.g. inside `shared_pool.install(..)`).  This is how a
    /// multi-tenant service runs many cached sessions on *one* shared pool
    /// instead of spawning workers per planned tensor.  Determinism note:
    /// results are a function of the effective thread count, so a caller
    /// that always installs the same pool gets bit-identical solves no
    /// matter how many sessions share it.
    pub use_caller_pool: bool,
}

impl PlanOptions {
    /// Default options: all hardware threads, flop-model-picked TTMc
    /// strategy ([`TtmcStrategy::Auto`]).
    pub fn new() -> Self {
        PlanOptions::default()
    }

    /// Builder-style setter for the worker thread count (`0` = all
    /// available hardware threads).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builder-style setter for the TTMc strategy of the session.
    pub fn ttmc_strategy(mut self, strategy: TtmcStrategy) -> Self {
        self.ttmc_strategy = strategy;
        self
    }

    /// Builder-style setter for the per-mode index layout of the session.
    pub fn index_layout(mut self, layout: IndexLayout) -> Self {
        self.index_layout = layout;
        self
    }

    /// Builder-style setter for the SIMD kernel tier of the session.
    pub fn kernel_isa(mut self, isa: KernelIsa) -> Self {
        self.kernel_isa = isa;
        self
    }

    /// Builder-style opt-in to [`use_caller_pool`](Self::use_caller_pool):
    /// plan and solve in the caller's ambient thread context instead of
    /// building a session-owned pool.
    pub fn caller_pool(mut self) -> Self {
        self.use_caller_pool = true;
        self
    }
}

/// The per-mode rank the [`TtmcStrategy::Auto`] cost comparison evaluates
/// both strategies at (clamped to each mode's size).  The winner is robust
/// to the exact hint — flop sharing either pays on a sparsity profile or it
/// does not — but the hint must be fixed so the resolution is a
/// deterministic function of the tensor alone.
const AUTO_RANK_HINT: usize = 8;

/// Plan-time TTMc strategy resolution shared by [`TuckerSolver::plan`] and
/// [`crate::tucker_hooi_in_current_pool`]: turns the requested strategy
/// into concrete plan artifacts — the symbolic analysis (with per-mode
/// streaming layouts exactly when the per-mode kernel will run them) and
/// the dimension tree when that strategy won.
///
/// [`TtmcStrategy::Auto`] builds the tree's symbolic grouping, prices both
/// strategies with the plan-time cost model ([`DimTree::costs`] vs
/// [`dimtree::per_mode_costs`]) at a fixed rank hint, and keeps the cheaper
/// one; ties resolve to the simpler per-mode sweep.  Order-1 tensors always
/// run per-mode (there is no tree over a single mode).
pub(crate) fn resolve_plan(
    tensor: &SparseTensor,
    requested: TtmcStrategy,
    layout: IndexLayout,
) -> (SymbolicTtmc, Option<DimTree>) {
    let layout = layout.resolve_for(tensor.order(), tensor.nnz());
    if tensor.order() < 2 || requested == TtmcStrategy::PerMode {
        let mut symbolic = SymbolicTtmc::build_without_layout(tensor);
        apply_index_layout(&mut symbolic, tensor, layout);
        return (symbolic, None);
    }
    if requested == TtmcStrategy::DimensionTree {
        return (
            SymbolicTtmc::build_without_layout(tensor),
            Some(DimTree::build(tensor)),
        );
    }
    let mut symbolic = SymbolicTtmc::build_without_layout(tensor);
    let tree = DimTree::build(tensor);
    let hint: Vec<usize> = tensor
        .dims()
        .iter()
        .map(|&d| d.min(AUTO_RANK_HINT))
        .collect();
    let tree_flops = tree.costs(&hint).flops;
    let per_mode_flops = dimtree::per_mode_costs(&symbolic, tensor.nnz(), &hint).flops;
    if tree_flops < per_mode_flops {
        (symbolic, Some(tree))
    } else {
        // The per-mode kernel won: give it the streaming index structures
        // the tree plan skipped.
        apply_index_layout(&mut symbolic, tensor, layout);
        (symbolic, None)
    }
}

/// Attaches the per-mode streaming structures a resolved [`IndexLayout`]
/// calls for to layout-free symbolic data.  [`IndexLayout::Coo`] attaches
/// nothing — the kernel then gathers through COO ids.
fn apply_index_layout(symbolic: &mut SymbolicTtmc, tensor: &SparseTensor, layout: IndexLayout) {
    match layout {
        IndexLayout::Coo => {}
        IndexLayout::Csf => symbolic.attach_csf_layouts(tensor),
        // `Auto` was resolved by the caller; treat it like its default arm
        // for robustness.
        IndexLayout::ModeSorted | IndexLayout::Auto => symbolic.attach_layouts(tensor),
    }
}

/// What one completed HOOI iteration looked like, as handed to an
/// [`IterationObserver`].
#[derive(Debug, Clone)]
pub struct IterationReport {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Fit after this iteration (1 = exact reconstruction).
    pub fit: f64,
    /// Fit improvement over the previous iteration; on the first iteration
    /// this is the fit itself (the baseline model explains nothing).
    pub fit_improvement: f64,
    /// Numeric TTMc time of this iteration.
    pub ttmc: Duration,
    /// TRSVD time of this iteration.
    pub trsvd: Duration,
    /// Core-formation time of this iteration.
    pub core: Duration,
}

/// An observer's verdict after seeing an [`IterationReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterationControl {
    /// Keep iterating (subject to the configuration's own stopping rules).
    Continue,
    /// Stop after this iteration; the decomposition reflects the state at
    /// the moment of the request.
    Stop,
}

/// Per-iteration callback: progress reporting, convergence logging, and
/// early stopping under a caller-side budget (wall clock, fit target, …).
///
/// Any `FnMut(&IterationReport) -> IterationControl` closure is an
/// observer:
///
/// ```
/// use hooi::{IterationControl, IterationReport, PlanOptions, TuckerConfig, TuckerSolver};
/// use sptensor::SparseTensor;
///
/// let tensor = SparseTensor::from_entries(
///     vec![5, 5, 5],
///     &[(vec![0, 1, 2], 1.0), (vec![3, 2, 0], 2.0), (vec![4, 4, 4], 3.0)],
/// );
/// let mut solver = TuckerSolver::plan(&tensor, PlanOptions::new().num_threads(1))?;
/// let config = TuckerConfig::new(vec![2, 2, 2]).max_iterations(50);
/// let mut seen = 0;
/// let result = solver.solve_with_observer(&config, &mut |r: &IterationReport| {
///     seen += 1;
///     if r.fit > 0.99 || r.iteration >= 2 {
///         IterationControl::Stop
///     } else {
///         IterationControl::Continue
///     }
/// })?;
/// assert_eq!(result.iterations, seen);
/// assert!(result.iterations <= 2);
/// # Ok::<(), hooi::TuckerError>(())
/// ```
pub trait IterationObserver {
    /// Called after every completed iteration (factor sweep + core + fit).
    fn on_iteration(&mut self, report: &IterationReport) -> IterationControl;
}

impl<F: FnMut(&IterationReport) -> IterationControl> IterationObserver for F {
    fn on_iteration(&mut self, report: &IterationReport) -> IterationControl {
        self(report)
    }
}

/// The do-nothing observer used by [`TuckerSolver::solve`].
struct NoopObserver;

impl IterationObserver for NoopObserver {
    fn on_iteration(&mut self, _report: &IterationReport) -> IterationControl {
        IterationControl::Continue
    }
}

/// A planned Tucker decomposition session over one sparse tensor.
///
/// Created by [`plan`](TuckerSession::plan), which runs the symbolic TTMc
/// analysis exactly once; every subsequent [`solve`](TuckerSession::solve)
/// reuses it together with the session's thread pool and scratch workspace.
///
/// The session is generic over how the tensor is held: any
/// `T: Borrow<SparseTensor>` works.  The two shapes in use are
///
/// * [`TuckerSolver<'a>`] = `TuckerSession<&'a SparseTensor>` — the
///   borrowing session of the original API (the tensor must outlive the
///   session), and
/// * `TuckerSession<Arc<SparseTensor>>` — a *self-contained* session that
///   shares ownership of its tensor, the shape a long-lived service's plan
///   cache stores (no lifetime ties the cache entry to a registry borrow).
pub struct TuckerSession<T: std::borrow::Borrow<SparseTensor>> {
    tensor: T,
    symbolic: SymbolicTtmc,
    dimtree: Option<DimTree>,
    /// `None` when the session was planned with
    /// [`PlanOptions::use_caller_pool`]: solves then run in the ambient
    /// thread context instead of a session-owned pool.
    pool: Option<rayon::ThreadPool>,
    workspace: HooiWorkspace,
    tensor_norm: f64,
    symbolic_time: Duration,
    pool_build_time: Duration,
    completed_solves: usize,
    /// Concrete kernel tier resolved at plan time; every solve runs it.
    kernel_isa: KernelIsa,
}

/// The borrowing [`TuckerSession`]: plans against `&'a SparseTensor`, so
/// the tensor must outlive the session.  This is the shape every one-shot
/// and example workflow uses; services that own their tensors plan a
/// `TuckerSession<Arc<SparseTensor>>` instead.
pub type TuckerSolver<'a> = TuckerSession<&'a SparseTensor>;

impl<T: std::borrow::Borrow<SparseTensor>> TuckerSession<T> {
    /// Plans a session: validates the tensor, spawns the session's
    /// persistent worker pool, and runs the symbolic TTMc analysis (inside
    /// the pool) exactly once.  Worker threads live until the solver is
    /// dropped, so every solve of the session reuses them — the startup
    /// cost shows up once, in the first solve's
    /// [`TimingBreakdown::pool`](crate::TimingBreakdown::pool).
    /// With [`PlanOptions::use_caller_pool`] no pool is built at all and
    /// both the analysis and every solve run in the caller's thread
    /// context.
    ///
    /// Returns [`TuckerError::EmptyTensor`] for a tensor with no modes or
    /// no stored nonzeros and [`TuckerError::PoolFailure`] (carrying the
    /// pool runtime's reason) if the pool cannot be built.
    pub fn plan(tensor: T, options: PlanOptions) -> Result<Self, TuckerError> {
        {
            let tensor = tensor.borrow();
            if tensor.order() == 0 || tensor.nnz() == 0 {
                return Err(TuckerError::EmptyTensor);
            }
        }
        let t_pool = Instant::now();
        let pool = if options.use_caller_pool {
            // No workers of our own: parallel regions run on whatever pool
            // the caller installs around each solve.
            None
        } else {
            Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(options.num_threads)
                    .build()
                    .map_err(|e| TuckerError::PoolFailure(e.to_string()))?,
            )
        };
        let pool_build_time = if pool.is_some() {
            t_pool.elapsed()
        } else {
            Duration::ZERO
        };
        let t0 = Instant::now();
        // The dimension tree's symbolic grouping is part of the plan: built
        // once here, reused by every solve.  [`resolve_plan`] settles an
        // `Auto` request here too, so solves never re-decide; a tree plan
        // skips the per-mode streaming layouts — its TTMc never runs the
        // per-mode kernel, and they would duplicate the nonzero data once
        // per mode.
        let (symbolic, dimtree) = {
            let t = tensor.borrow();
            let strategy = options.ttmc_strategy;
            let layout = options.index_layout;
            match &pool {
                Some(pool) => pool.install(|| resolve_plan(t, strategy, layout)),
                None => resolve_plan(t, strategy, layout),
            }
        };
        let symbolic_time = t0.elapsed();
        let (order, norm) = {
            let t = tensor.borrow();
            (t.order(), t.frobenius_norm())
        };
        Ok(TuckerSession {
            tensor,
            workspace: HooiWorkspace::for_order(order),
            tensor_norm: norm,
            symbolic,
            dimtree,
            pool,
            symbolic_time,
            pool_build_time,
            completed_solves: 0,
            kernel_isa: options.kernel_isa.resolve(),
        })
    }

    /// The planned tensor.
    pub fn tensor(&self) -> &SparseTensor {
        self.tensor.borrow()
    }

    /// The symbolic TTMc structure computed at plan time.
    pub fn symbolic(&self) -> &SymbolicTtmc {
        &self.symbolic
    }

    /// The concrete TTMc strategy this session runs: the plan-time option
    /// with the order-1 fallback applied and an [`TtmcStrategy::Auto`]
    /// request resolved to whichever strategy the cost model picked.
    pub fn ttmc_strategy(&self) -> TtmcStrategy {
        if self.dimtree.is_some() {
            TtmcStrategy::DimensionTree
        } else {
            TtmcStrategy::PerMode
        }
    }

    /// The dimension tree built at plan time, if the session uses the
    /// [`TtmcStrategy::DimensionTree`] strategy.
    pub fn dimtree(&self) -> Option<&DimTree> {
        self.dimtree.as_ref()
    }

    /// The concrete per-mode index layout this session's TTMc streams: the
    /// plan-time option with [`IndexLayout::Auto`] resolved.  Derived from
    /// the symbolic structures themselves, so it reports what is actually
    /// attached; dimension-tree plans carry no per-mode structures and
    /// report [`IndexLayout::Coo`] (the per-mode kernel's gather fallback).
    pub fn index_layout(&self) -> IndexLayout {
        let m = self.symbolic.mode(0);
        if m.csf().is_some() {
            IndexLayout::Csf
        } else if m.layout().is_some() {
            IndexLayout::ModeSorted
        } else {
            IndexLayout::Coo
        }
    }

    /// The concrete SIMD kernel tier this session's numeric kernels run at:
    /// the plan-time [`PlanOptions::kernel_isa`] request after
    /// [`KernelIsa::resolve`] applied the `TUCKER_KERNEL` environment
    /// override and downgraded tiers the hardware lacks.  Never
    /// [`KernelIsa::Auto`].
    pub fn kernel_isa(&self) -> KernelIsa {
        self.kernel_isa
    }

    /// Wall-clock time the one-time symbolic analysis took.
    pub fn symbolic_time(&self) -> Duration {
        self.symbolic_time
    }

    /// Wall-clock time spawning the session's persistent worker pool took
    /// (paid once at plan time; solves reuse the workers).  Zero for
    /// caller-pool sessions, which own no workers.
    pub fn pool_build_time(&self) -> Duration {
        self.pool_build_time
    }

    /// Worker thread count of the session's pool; for a caller-pool session
    /// this is the thread count of the *current ambient* context, which is
    /// what a solve issued right now would run at.
    pub fn num_threads(&self) -> usize {
        match &self.pool {
            Some(pool) => pool.current_num_threads(),
            None => rayon::current_num_threads(),
        }
    }

    /// Whether this session runs in the caller's thread context instead of
    /// a pool of its own (see [`PlanOptions::use_caller_pool`]).
    pub fn uses_caller_pool(&self) -> bool {
        self.pool.is_none()
    }

    /// How many solves this session has completed.
    pub fn completed_solves(&self) -> usize {
        self.completed_solves
    }

    /// Measured memory footprint of the plan in bytes: the symbolic TTMc
    /// structures (update lists, mode-sorted layouts), the dimension tree's
    /// node groupings when that strategy runs, and the workspace scratch
    /// (compact TTMc buffers, tree value/partial matrices, Lanczos bases,
    /// core buffer).  The tensor itself is *not* counted — it is owned (or
    /// shared) independently of the plan.
    ///
    /// The workspace part grows on the first solve at each rank shape, so a
    /// service that budgets its plan cache by this number should re-measure
    /// after every request, not only at plan time.
    pub fn memory_bytes(&self) -> usize {
        self.symbolic.memory_bytes()
            + self.dimtree.as_ref().map_or(0, |t| t.memory_bytes())
            + self.workspace.memory_bytes()
    }

    /// Checks a configuration against the planned tensor without running
    /// anything; returns the effective (clamped) per-mode ranks.
    pub fn validate(&self, config: &TuckerConfig) -> Result<Vec<usize>, TuckerError> {
        config.validated_ranks(self.tensor.borrow().dims())
    }

    /// Runs HOOI with this configuration, reusing the session's symbolic
    /// analysis, thread pool and scratch buffers.
    ///
    /// Any rank/seed/backend/iteration settings may vary between solves;
    /// [`TuckerConfig::num_threads`] is ignored here — the session's pool
    /// (fixed at plan time) runs every solve.  The first solve's
    /// [`TimingBreakdown::symbolic`] reports the plan-time symbolic cost;
    /// later solves report [`Duration::ZERO`] there, because the analysis
    /// is not redone.
    pub fn solve(&mut self, config: &TuckerConfig) -> Result<TuckerDecomposition, TuckerError> {
        self.solve_with_observer(config, &mut NoopObserver)
    }

    /// [`solve`](Self::solve) with a per-iteration [`IterationObserver`]
    /// that can watch convergence and request an early stop.
    pub fn solve_with_observer(
        &mut self,
        config: &TuckerConfig,
        observer: &mut dyn IterationObserver,
    ) -> Result<TuckerDecomposition, TuckerError> {
        let ranks = self.validate(config)?;
        // Plan-time costs are charged to the first completed solve only:
        // later solves reuse the symbolic analysis and the persistent
        // workers, and their breakdowns say so by reporting zero here.
        let (symbolic_time, pool_time) = if self.completed_solves == 0 {
            (self.symbolic_time, self.pool_build_time)
        } else {
            (Duration::ZERO, Duration::ZERO)
        };
        // Field-by-field borrows: the tensor (behind `T`), the shared plan
        // data, and the mutable workspace are disjoint.
        let TuckerSession {
            tensor,
            tensor_norm,
            symbolic,
            dimtree,
            workspace,
            pool,
            kernel_isa,
            ..
        } = self;
        let tensor: &SparseTensor = (*tensor).borrow();
        let tensor_norm = *tensor_norm;
        let tree = dimtree.as_ref();
        let isa = *kernel_isa;
        let mut run = move || {
            run_hooi(
                tensor,
                symbolic,
                tree,
                workspace,
                tensor_norm,
                &ranks,
                config,
                symbolic_time,
                pool_time,
                isa,
                observer,
            )
        };
        let result = match pool {
            Some(pool) => pool.install(run),
            None => run(),
        };
        self.completed_solves += 1;
        Ok(result)
    }

    /// Runs a batch of configurations against one plan — the service-scale
    /// shape (one tensor, many rank/seed requests).  The session's
    /// persistent workers serve the whole batch; no threads are spawned
    /// between requests, and every result after the first reports
    /// [`Duration::ZERO`] pool and symbolic time.
    ///
    /// The whole batch is validated up front, so either every configuration
    /// runs or none does and the first offending configuration's error is
    /// returned.
    pub fn solve_many(
        &mut self,
        configs: &[TuckerConfig],
    ) -> Result<Vec<TuckerDecomposition>, TuckerError> {
        for config in configs {
            self.validate(config)?;
        }
        configs.iter().map(|config| self.solve(config)).collect()
    }
}

impl<T: std::borrow::Borrow<SparseTensor>> std::fmt::Debug for TuckerSession<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TuckerSolver")
            .field("dims", &self.tensor.borrow().dims())
            .field("nnz", &self.tensor.borrow().nnz())
            .field("num_threads", &self.num_threads())
            .field("symbolic_time", &self.symbolic_time)
            .field("completed_solves", &self.completed_solves)
            .finish()
    }
}

/// The pool-agnostic HOOI driver shared by every entry point: numeric TTMc
/// (per-mode sweeps, or dimension-tree serves when `tree` is given) + TRSVD
/// over preplanned symbolic data, core extraction from the last mode's
/// result, fit monitoring, observer callbacks, and per-phase timing.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_hooi(
    tensor: &SparseTensor,
    symbolic: &SymbolicTtmc,
    tree: Option<&DimTree>,
    workspace: &mut HooiWorkspace,
    tensor_norm: f64,
    ranks: &[usize],
    config: &TuckerConfig,
    symbolic_time: Duration,
    pool_time: Duration,
    isa: KernelIsa,
    observer: &mut dyn IterationObserver,
) -> TuckerDecomposition {
    let order = tensor.order();
    let mut timings = TimingBreakdown {
        symbolic: symbolic_time,
        pool: pool_time,
        ..TimingBreakdown::default()
    };

    // Factor initialization.
    let t_init = Instant::now();
    let mut factors = match config.initialization {
        Initialization::Random => random_factors(tensor.dims(), ranks, config.seed),
        Initialization::Hosvd => hosvd_factors(tensor, ranks, DEFAULT_HOSVD_MAX_COLS, config.seed),
    };
    timings.init = t_init.elapsed();

    workspace.ensure(symbolic, ranks);
    if let Some(tree) = tree {
        workspace.ensure_tree(tree, ranks);
    }

    let mut fits: Vec<f64> = Vec::with_capacity(config.max_iterations);
    let mut singular_values = vec![Vec::new(); order];
    let mut iterations = 0;

    for iter in 0..config.max_iterations {
        iterations += 1;
        let mut iter_ttmc = Duration::ZERO;
        let mut iter_trsvd = Duration::ZERO;

        for mode in 0..order {
            let t_ttmc = Instant::now();
            match tree {
                Some(tree) => dimtree::serve_mode_into_isa(
                    tree,
                    tensor,
                    symbolic.mode(mode),
                    &factors,
                    mode,
                    workspace,
                    isa,
                ),
                None => ttmc_mode_into_isa(
                    tensor,
                    symbolic.mode(mode),
                    &factors,
                    mode,
                    workspace.compact_mut(mode),
                    isa,
                ),
            }
            iter_ttmc += t_ttmc.elapsed();

            let t_trsvd = Instant::now();
            let (compact, scratch) = workspace.trsvd_buffers(mode);
            let result = trsvd_factor_with(
                compact,
                symbolic.mode(mode),
                tensor.dims()[mode],
                ranks[mode],
                config.trsvd,
                config.seed ^ ((mode as u64 + 1) << 8),
                scratch,
            );
            iter_trsvd += t_trsvd.elapsed();

            factors[mode] = result.factor;
            singular_values[mode] = result.singular_values;
            if let Some(tree) = tree {
                // The factor just changed: every tree node contracted with
                // it goes stale and is rebuilt on its next serve.
                dimtree::factor_updated(tree, mode, workspace);
            }
        }

        // Core tensor from the last mode's TTMc result (already computed
        // with all other factors at their new values).
        let t_core = Instant::now();
        let (compact, core) = workspace.core_buffers(order - 1);
        core_from_last_ttmc_into(
            compact,
            symbolic.mode(order - 1),
            &factors[order - 1],
            ranks,
            core,
        );
        let iter_core = t_core.elapsed();

        timings.ttmc += iter_ttmc;
        timings.trsvd += iter_trsvd;
        timings.core += iter_core;

        let fit = fit_from_norms(tensor_norm, workspace.core().frobenius_norm());
        let (improved, fit_improvement) = match fits.last() {
            Some(&prev) => (fit - prev > config.fit_tolerance, fit - prev),
            None => (true, fit),
        };
        fits.push(fit);

        let control = observer.on_iteration(&IterationReport {
            iteration: iter + 1,
            fit,
            fit_improvement,
            ttmc: iter_ttmc,
            trsvd: iter_trsvd,
            core: iter_core,
        });
        if !improved || control == IterationControl::Stop {
            break;
        }
    }

    TuckerDecomposition {
        core: workspace.core().clone(),
        factors,
        fits,
        iterations,
        singular_values,
        timings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrsvdBackend;
    use crate::hooi::tucker_hooi;
    use datagen::random_tensor;

    #[test]
    fn plan_rejects_empty_tensor() {
        let empty = SparseTensor::new(vec![5, 5, 5]);
        assert_eq!(
            TuckerSolver::plan(&empty, PlanOptions::new()).unwrap_err(),
            TuckerError::EmptyTensor
        );
    }

    #[test]
    fn solve_rejects_invalid_configs_without_panicking() {
        let t = random_tensor(&[10, 10, 10], 200, 1);
        let mut solver = TuckerSolver::plan(&t, PlanOptions::new().num_threads(1)).unwrap();
        assert_eq!(
            solver.solve(&TuckerConfig::new(vec![2, 2])).unwrap_err(),
            TuckerError::OrderMismatch {
                config_modes: 2,
                tensor_modes: 3,
            }
        );
        assert_eq!(
            solver.solve(&TuckerConfig::new(vec![2, 0, 2])).unwrap_err(),
            TuckerError::ZeroRank { mode: 1 }
        );
        // The session survives rejected requests.
        assert!(solver.solve(&TuckerConfig::new(vec![2, 2, 2])).is_ok());
    }

    #[test]
    fn second_solve_reports_zero_symbolic_time() {
        let t = random_tensor(&[20, 15, 10], 600, 3);
        let mut solver = TuckerSolver::plan(&t, PlanOptions::new().num_threads(1)).unwrap();
        let config = TuckerConfig::new(vec![3, 3, 3]).max_iterations(2);
        let first = solver.solve(&config).unwrap();
        let second = solver.solve(&config).unwrap();
        assert_eq!(first.timings.symbolic, solver.symbolic_time());
        assert_eq!(first.timings.pool, solver.pool_build_time());
        assert_eq!(second.timings.symbolic, Duration::ZERO);
        assert_eq!(second.timings.pool, Duration::ZERO);
        assert_eq!(solver.completed_solves(), 2);
    }

    #[test]
    fn pool_build_failure_is_a_pool_failure_value() {
        let t = random_tensor(&[10, 10, 10], 200, 5);
        let err = TuckerSolver::plan(&t, PlanOptions::new().num_threads(usize::MAX)).unwrap_err();
        match err {
            TuckerError::PoolFailure(reason) => {
                assert!(
                    reason.contains("at most"),
                    "reason should name the limit: {reason}"
                );
            }
            other => panic!("expected PoolFailure, got {other:?}"),
        }
    }

    #[test]
    fn planned_solves_match_one_shot_solver() {
        let t = random_tensor(&[25, 20, 15], 1000, 7);
        let config = TuckerConfig::new(vec![3, 3, 3]).max_iterations(3).seed(5);
        let one_shot = tucker_hooi(&t, &config).unwrap();
        let mut solver = TuckerSolver::plan(&t, PlanOptions::new().num_threads(1)).unwrap();
        for _ in 0..2 {
            let planned = solver.solve(&config).unwrap();
            assert_eq!(planned.fits, one_shot.fits);
            assert_eq!(planned.factors, one_shot.factors);
            assert_eq!(
                planned.core.as_slice(),
                one_shot.core.as_slice(),
                "workspace reuse must not change the core"
            );
        }
    }

    #[test]
    fn solve_at_different_ranks_reuses_one_plan() {
        let t = random_tensor(&[20, 20, 20], 800, 11);
        let mut solver = TuckerSolver::plan(&t, PlanOptions::new().num_threads(1)).unwrap();
        let small = solver
            .solve(&TuckerConfig::new(vec![2, 2, 2]).max_iterations(2))
            .unwrap();
        let large = solver
            .solve(&TuckerConfig::new(vec![4, 3, 2]).max_iterations(2))
            .unwrap();
        assert_eq!(small.core.dims(), &[2, 2, 2]);
        assert_eq!(large.core.dims(), &[4, 3, 2]);
        assert!(large.final_fit() >= small.final_fit() - 1e-9);
    }

    #[test]
    fn solve_many_amortizes_one_plan() {
        let t = random_tensor(&[15, 15, 15], 500, 9);
        let mut solver = TuckerSolver::plan(&t, PlanOptions::new().num_threads(1)).unwrap();
        let configs = vec![
            TuckerConfig::new(vec![2, 2, 2]).max_iterations(2),
            TuckerConfig::new(vec![3, 3, 3])
                .max_iterations(2)
                .trsvd(TrsvdBackend::Randomized),
            TuckerConfig::new(vec![2, 3, 2]).max_iterations(1).seed(42),
        ];
        let results = solver.solve_many(&configs).unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].ranks(), vec![2, 2, 2]);
        assert_eq!(results[1].ranks(), vec![3, 3, 3]);
        assert_eq!(results[2].ranks(), vec![2, 3, 2]);
        // Only the first solve of the session pays the symbolic cost.
        assert_eq!(results[1].timings.symbolic, Duration::ZERO);
        assert_eq!(results[2].timings.symbolic, Duration::ZERO);
    }

    #[test]
    fn solve_many_is_all_or_nothing_on_validation() {
        let t = random_tensor(&[10, 10, 10], 300, 2);
        let mut solver = TuckerSolver::plan(&t, PlanOptions::new().num_threads(1)).unwrap();
        let configs = vec![
            TuckerConfig::new(vec![2, 2, 2]),
            TuckerConfig::new(vec![2, 2]), // invalid
        ];
        assert_eq!(
            solver.solve_many(&configs).unwrap_err(),
            TuckerError::OrderMismatch {
                config_modes: 2,
                tensor_modes: 3,
            }
        );
        // Validation happens before any work: no solve was counted.
        assert_eq!(solver.completed_solves(), 0);
    }

    #[test]
    fn observer_sees_every_iteration_and_can_stop() {
        let t = random_tensor(&[15, 15, 15], 600, 4);
        let mut solver = TuckerSolver::plan(&t, PlanOptions::new().num_threads(1)).unwrap();
        let config = TuckerConfig::new(vec![2, 2, 2])
            .max_iterations(10)
            .fit_tolerance(-1.0); // never self-stop
        let mut reports: Vec<IterationReport> = Vec::new();
        let result = solver
            .solve_with_observer(&config, &mut |r: &IterationReport| {
                reports.push(r.clone());
                if r.iteration == 3 {
                    IterationControl::Stop
                } else {
                    IterationControl::Continue
                }
            })
            .unwrap();
        assert_eq!(result.iterations, 3);
        assert_eq!(reports.len(), 3);
        assert_eq!(
            reports.iter().map(|r| r.iteration).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        for (r, &fit) in reports.iter().zip(result.fits.iter()) {
            assert_eq!(r.fit, fit);
            assert!(r.ttmc > Duration::ZERO);
            assert!(r.trsvd > Duration::ZERO);
        }
        assert_eq!(reports[0].fit_improvement, reports[0].fit);
        assert!((reports[1].fit_improvement - (reports[1].fit - reports[0].fit)).abs() < 1e-15);
    }

    #[test]
    fn zero_iterations_yield_zero_core_without_stale_state() {
        let t = random_tensor(&[10, 10, 10], 300, 6);
        let mut solver = TuckerSolver::plan(&t, PlanOptions::new().num_threads(1)).unwrap();
        // A real solve first, so the workspace core buffer is dirty.
        let config = TuckerConfig::new(vec![2, 2, 2]).max_iterations(2);
        solver.solve(&config).unwrap();
        let empty_run = solver.solve(&config.clone().max_iterations(0)).unwrap();
        assert_eq!(empty_run.iterations, 0);
        assert!(empty_run.fits.is_empty());
        assert_eq!(empty_run.core.frobenius_norm(), 0.0);
    }

    #[test]
    fn arc_owned_session_matches_borrowing_session() {
        let t = random_tensor(&[18, 14, 12], 500, 31);
        let config = TuckerConfig::new(vec![3, 3, 2]).max_iterations(3).seed(9);
        let borrowed = TuckerSolver::plan(&t, PlanOptions::new().num_threads(1))
            .unwrap()
            .solve(&config)
            .unwrap();
        let arc = std::sync::Arc::new(t.clone());
        let mut owned = TuckerSession::plan(
            std::sync::Arc::clone(&arc),
            PlanOptions::new().num_threads(1),
        )
        .unwrap();
        let from_owned = owned.solve(&config).unwrap();
        assert_eq!(borrowed.factors, from_owned.factors);
        assert_eq!(borrowed.core.as_slice(), from_owned.core.as_slice());
        assert_eq!(owned.tensor().nnz(), arc.nnz());
    }

    #[test]
    fn caller_pool_session_builds_no_pool_and_matches() {
        let t = random_tensor(&[16, 14, 12], 450, 8);
        let config = TuckerConfig::new(vec![2, 2, 2]).max_iterations(3).seed(4);
        let reference = TuckerSolver::plan(&t, PlanOptions::new().num_threads(2))
            .unwrap()
            .solve(&config)
            .unwrap();
        // The shared pool a service would own; sessions planned with
        // `caller_pool` run inside it without spawning workers themselves.
        let shared = rayon::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let spawned_before = rayon::worker_threads_spawned();
        let mut session = shared
            .install(|| TuckerSolver::plan(&t, PlanOptions::new().caller_pool()))
            .unwrap();
        assert!(session.uses_caller_pool());
        assert_eq!(session.pool_build_time(), Duration::ZERO);
        assert_eq!(
            rayon::worker_threads_spawned(),
            spawned_before,
            "caller-pool planning must not spawn workers"
        );
        let result = shared.install(|| session.solve(&config)).unwrap();
        assert_eq!(result.factors, reference.factors);
        assert_eq!(result.core.as_slice(), reference.core.as_slice());
        assert_eq!(shared.install(|| session.num_threads()), 2);
    }

    #[test]
    fn index_layout_is_fixed_at_plan_time_and_solves_bitwise_equal() {
        let t = random_tensor(&[22, 18, 14], 900, 21);
        let config = TuckerConfig::new(vec![3, 3, 3]).max_iterations(3).seed(2);
        let mut results = Vec::new();
        for layout in [IndexLayout::Coo, IndexLayout::ModeSorted, IndexLayout::Csf] {
            let mut solver = TuckerSolver::plan(
                &t,
                PlanOptions::new()
                    .num_threads(1)
                    .ttmc_strategy(TtmcStrategy::PerMode)
                    .index_layout(layout),
            )
            .unwrap();
            assert_eq!(solver.index_layout(), layout);
            results.push(solver.solve(&config).unwrap());
        }
        for r in &results[1..] {
            assert_eq!(r.factors, results[0].factors);
            assert_eq!(r.core.as_slice(), results[0].core.as_slice());
            assert_eq!(r.fits, results[0].fits);
        }
    }

    #[test]
    fn auto_layout_resolves_to_mode_sorted_on_small_tensors() {
        let t = random_tensor(&[15, 12, 10], 400, 23);
        let solver = TuckerSolver::plan(
            &t,
            PlanOptions::new()
                .num_threads(1)
                .ttmc_strategy(TtmcStrategy::PerMode),
        )
        .unwrap();
        assert_eq!(solver.index_layout(), IndexLayout::ModeSorted);
        // Dimension-tree plans carry no per-mode layout at all.
        let tree = TuckerSolver::plan(
            &t,
            PlanOptions::new()
                .num_threads(1)
                .ttmc_strategy(TtmcStrategy::DimensionTree),
        )
        .unwrap();
        assert_eq!(tree.index_layout(), IndexLayout::Coo);
    }

    #[test]
    fn csf_plan_is_smaller_than_mode_sorted_plan() {
        let t = random_tensor(&[40, 35, 30], 6000, 27);
        let plan_with = |layout: IndexLayout| {
            TuckerSolver::plan(
                &t,
                PlanOptions::new()
                    .num_threads(1)
                    .ttmc_strategy(TtmcStrategy::PerMode)
                    .index_layout(layout),
            )
            .unwrap()
            .memory_bytes()
        };
        let flat = plan_with(IndexLayout::ModeSorted);
        let csf = plan_with(IndexLayout::Csf);
        assert!(
            csf < flat,
            "CSF plan ({csf} bytes) should undercut ModeSorted ({flat} bytes)"
        );
    }

    #[test]
    fn memory_bytes_covers_plan_and_grows_with_first_solve() {
        let t = random_tensor(&[20, 18, 16, 6], 900, 12);
        let mut solver = TuckerSolver::plan(&t, PlanOptions::new().num_threads(1)).unwrap();
        let at_plan = solver.memory_bytes();
        assert!(
            at_plan >= solver.symbolic().memory_bytes(),
            "plan footprint must include the symbolic structures"
        );
        if let Some(tree) = solver.dimtree() {
            assert!(at_plan >= tree.memory_bytes());
        }
        solver
            .solve(&TuckerConfig::new(vec![3, 3, 3, 3]).max_iterations(1))
            .unwrap();
        let after_solve = solver.memory_bytes();
        assert!(
            after_solve > at_plan,
            "the first solve shapes the workspace: {after_solve} vs {at_plan}"
        );
        // A second solve at the same ranks reuses every buffer.
        solver
            .solve(&TuckerConfig::new(vec![3, 3, 3, 3]).max_iterations(1))
            .unwrap();
        assert_eq!(solver.memory_bytes(), after_solve);
    }

    #[test]
    fn kernel_isa_is_resolved_concrete_at_plan_time() {
        let t = random_tensor(&[10, 10, 10], 200, 3);
        let solver = TuckerSolver::plan(&t, PlanOptions::new().num_threads(1)).unwrap();
        let isa = solver.kernel_isa();
        assert_ne!(isa, KernelIsa::Auto);
        assert!(isa.supported());
        // An explicit scalar request sticks unless the `TUCKER_KERNEL`
        // environment override redirects every resolution.
        if KernelIsa::from_env().is_none() {
            let solver = TuckerSolver::plan(
                &t,
                PlanOptions::new()
                    .num_threads(1)
                    .kernel_isa(KernelIsa::Scalar),
            )
            .unwrap();
            assert_eq!(solver.kernel_isa(), KernelIsa::Scalar);
        }
    }

    #[test]
    fn debug_format_names_the_session() {
        let t = random_tensor(&[8, 8, 8], 100, 13);
        let solver = TuckerSolver::plan(&t, PlanOptions::new().num_threads(2)).unwrap();
        let repr = format!("{solver:?}");
        assert!(repr.contains("TuckerSolver"));
        assert!(repr.contains("nnz"));
    }
}
