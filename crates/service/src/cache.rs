//! Memory-budgeted plan cache.
//!
//! Planned [`TuckerSession`]s are the expensive part of serving: the
//! symbolic TTMc analysis walks every nonzero per mode, and the scratch
//! workspace holds the dense intermediates.  The cache keeps sessions keyed
//! by tensor id under a byte budget measured by
//! [`TuckerSession::memory_bytes`], evicting least-recently-used plans
//! first.  Recency is a *logical* clock ticked by the service — never wall
//! time — so the eviction order is a deterministic function of the request
//! history.
//!
//! Sessions leave the cache while they solve (a solve needs `&mut` and can
//! grow the workspace) and are re-admitted at their newly measured size;
//! a session that has grown past the whole budget is dropped instead, and
//! the next decomposition transparently re-plans.

use hooi::TuckerSession;
use sptensor::SparseTensor;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The session type the service caches: plans share the registry's tensor.
pub(crate) type CachedSession = TuckerSession<Arc<SparseTensor>>;

#[derive(Debug)]
struct Entry {
    session: CachedSession,
    bytes: usize,
    last_used: u64,
}

/// Outcome of [`PlanCache::insert`].
#[derive(Debug)]
pub(crate) enum Admit {
    /// The plan is cached at this measured size.
    Cached { bytes: usize },
    /// The plan alone exceeds the whole budget and was dropped.
    TooBig { required_bytes: usize },
}

/// LRU plan cache under a byte budget.
#[derive(Debug)]
pub(crate) struct PlanCache {
    budget: usize,
    bytes: usize,
    entries: BTreeMap<String, Entry>,
    hits: u64,
    misses: u64,
    /// Ids evicted under memory pressure, in eviction order.
    evicted: Vec<String>,
}

impl PlanCache {
    pub fn new(budget: usize) -> Self {
        PlanCache {
            budget,
            bytes: 0,
            entries: BTreeMap::new(),
            hits: 0,
            misses: 0,
            evicted: Vec::new(),
        }
    }

    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Bytes currently held across all cached plans.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Cached tensor ids in key order.
    pub fn ids(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Removes and returns the session for `id`, counting a hit or miss —
    /// the decomposition path's lookup.  The caller must re-[`insert`]
    /// (or deliberately drop) the session afterwards.
    ///
    /// [`insert`]: PlanCache::insert
    pub fn take(&mut self, id: &str) -> Option<CachedSession> {
        match self.entries.remove(id) {
            Some(entry) => {
                self.bytes -= entry.bytes;
                self.hits += 1;
                Some(entry.session)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Drops `id` outright (tensor evicted or replaced); returns whether a
    /// plan was cached.  Not counted as a pressure eviction.
    pub fn remove(&mut self, id: &str) -> bool {
        match self.entries.remove(id) {
            Some(entry) => {
                self.bytes -= entry.bytes;
                true
            }
            None => false,
        }
    }

    /// Admits a session at its measured size, evicting least-recently-used
    /// plans until it fits.  `now` is the service's logical clock tick for
    /// this touch.
    pub fn insert(&mut self, id: String, session: CachedSession, now: u64) -> Admit {
        let required_bytes = session.memory_bytes();
        if required_bytes > self.budget {
            return Admit::TooBig { required_bytes };
        }
        self.remove(&id);
        while self.bytes + required_bytes > self.budget {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("bytes > 0 implies a cached entry");
            self.remove(&victim);
            self.evicted.push(victim);
        }
        self.bytes += required_bytes;
        self.entries.insert(
            id,
            Entry {
                session,
                bytes: required_bytes,
                last_used: now,
            },
        );
        Admit::Cached {
            bytes: required_bytes,
        }
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Ids evicted under memory pressure, oldest first.
    pub fn evicted_ids(&self) -> &[String] {
        &self.evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::random_tensor;
    use hooi::PlanOptions;

    fn session(seed: u64) -> CachedSession {
        let t = Arc::new(random_tensor(&[10, 9, 8], 150, seed));
        TuckerSession::plan(t, PlanOptions::new().caller_pool()).unwrap()
    }

    #[test]
    fn lru_eviction_is_deterministic_and_in_touch_order() {
        let one = session(1);
        let per_plan = one.memory_bytes();
        // Room for two same-shaped plans, not three.
        let mut cache = PlanCache::new(2 * per_plan + per_plan / 2);
        cache.insert("a".into(), one, 1);
        cache.insert("b".into(), session(2), 2);
        assert_eq!(cache.len(), 2);
        // Touch `a` (take + re-insert), making `b` the LRU victim.
        let a = cache.take("a").unwrap();
        cache.insert("a".into(), a, 3);
        cache.insert("c".into(), session(3), 4);
        assert_eq!(cache.evicted_ids(), &["b".to_string()]);
        assert_eq!(cache.ids(), vec!["a".to_string(), "c".to_string()]);
        assert!(cache.bytes() <= cache.budget());
    }

    #[test]
    fn oversized_plan_is_rejected_not_cached() {
        let mut cache = PlanCache::new(16);
        match cache.insert("big".into(), session(4), 1) {
            Admit::TooBig { required_bytes } => assert!(required_bytes > 16),
            Admit::Cached { .. } => panic!("a plan larger than the budget was admitted"),
        }
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn take_counts_hits_and_misses() {
        let mut cache = PlanCache::new(usize::MAX);
        cache.insert("a".into(), session(5), 1);
        assert!(cache.take("a").is_some());
        assert!(cache.take("a").is_none());
        assert!(cache.take("never").is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn remove_is_not_a_pressure_eviction() {
        let mut cache = PlanCache::new(usize::MAX);
        cache.insert("a".into(), session(6), 1);
        assert!(cache.remove("a"));
        assert!(!cache.remove("a"));
        assert!(cache.evicted_ids().is_empty());
    }
}
