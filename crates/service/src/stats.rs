//! Service-level counters, snapshotted per call.

use std::collections::BTreeMap;

/// A point-in-time snapshot of the service's counters, assembled by
/// [`DecompositionService::stats`](crate::DecompositionService::stats).
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Requests executed (successes and failures).
    pub completed: u64,
    /// Requests that returned an error.
    pub failed: u64,
    /// Completed requests per kind.
    pub ingests: u64,
    /// Completed decompositions.
    pub decomposes: u64,
    /// Completed predictions.
    pub predicts: u64,
    /// Completed evictions.
    pub evicts: u64,
    /// Decompositions flagged truncated by their deadline.
    pub truncated_decomposes: u64,
    /// Requests answered with [`hooi::TuckerError::SolvePanicked`] — a
    /// caught panic or a hit on an already-quarantined tensor.  Each one is
    /// also counted in `failed`.
    pub panicked: u64,
    /// Tensor ids currently quarantined after a panicking solve or
    /// predict, in key order.  A fresh ingest under the same id lifts the
    /// quarantine.
    pub quarantined_tensors: Vec<String>,
    /// Plan-cache lookups that found a cached session.
    pub plan_cache_hits: u64,
    /// Plan-cache lookups that had to re-plan.
    pub plan_cache_misses: u64,
    /// Bytes currently held by cached plans.
    pub plan_cache_bytes: usize,
    /// Number of currently cached plans.
    pub plan_cache_entries: usize,
    /// Tensor ids evicted from the plan cache under memory pressure, in
    /// eviction order — a deterministic function of the request history.
    pub evicted_plans: Vec<String>,
    /// Flops charged per tenant by the fairness cost model.
    pub charged_flops: BTreeMap<String, u64>,
}

impl ServiceStats {
    /// Fraction of plan lookups served from the cache (1.0 when there were
    /// no lookups).
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.plan_cache_hits + self.plan_cache_misses;
        if lookups == 0 {
            1.0
        } else {
            self.plan_cache_hits as f64 / lookups as f64
        }
    }

    /// Spread of charged work across tenants: `max / min` of the per-tenant
    /// flop accounts (1.0 with fewer than two tenants, infinite if a tenant
    /// was never charged).  Under a demand-balanced mix a fair scheduler
    /// keeps this close to 1; it says nothing by itself under a skewed mix,
    /// where the interesting quantity is the pick-time deficit (asserted by
    /// the `service_load --check` gate instead).
    pub fn fairness_spread(&self) -> f64 {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for &f in self.charged_flops.values() {
            lo = lo.min(f);
            hi = hi.max(f);
        }
        if self.charged_flops.len() < 2 || hi == 0 {
            1.0
        } else if lo == 0 {
            f64::INFINITY
        } else {
            hi as f64 / lo as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_counts_lookups_only() {
        let stats = ServiceStats {
            plan_cache_hits: 3,
            plan_cache_misses: 1,
            ..ServiceStats::default()
        };
        assert!((stats.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(ServiceStats::default().cache_hit_rate(), 1.0);
    }

    #[test]
    fn fairness_spread_edge_cases() {
        let mut stats = ServiceStats::default();
        assert_eq!(stats.fairness_spread(), 1.0);
        stats.charged_flops.insert("a".into(), 100);
        assert_eq!(stats.fairness_spread(), 1.0);
        stats.charged_flops.insert("b".into(), 50);
        assert!((stats.fairness_spread() - 2.0).abs() < 1e-12);
        stats.charged_flops.insert("c".into(), 0);
        assert!(stats.fairness_spread().is_infinite());
    }
}
