//! Multi-tenant decomposition serving on top of the [`hooi`] solver.
//!
//! The paper's pipeline ends at "decompose one tensor well in parallel".
//! This crate wraps that kernel in the shape it is actually consumed in —
//! a long-lived server holding many tensors for many tenants:
//!
//! * **Registry** — tensors are [`Request::Ingest`]ed under string ids and
//!   shared via [`Arc`](std::sync::Arc); models
//!   ([`hooi::TuckerDecomposition`]) live with the tensor, so predictions
//!   survive plan eviction.
//! * **One shared pool** — every session is planned with
//!   [`hooi::PlanOptions::caller_pool`] and solved inside the service's
//!   single thread pool; no per-tensor worker threads, and responses are a
//!   pure function of the request and the pool width (bit-identical across
//!   queue interleavings and cache states).
//! * **Plan cache** — planned sessions are cached by their *measured*
//!   footprint ([`hooi::TuckerSession::memory_bytes`]) under a byte
//!   budget, least-recently-used first, ordered by a logical clock so the
//!   eviction sequence is deterministic; evicted plans are transparently
//!   rebuilt on the next decomposition.
//! * **Fair scheduler** — cheapest-deficit-first admission over per-tenant
//!   FIFO queues: every completed request is charged deterministic
//!   cost-model flops ([`hooi::per_mode_costs`]) and the next request
//!   always comes from the least-charged backlogged tenant.
//! * **Deadlines** — a [`Request::Decompose`] may carry a wall-clock
//!   budget counted from submission, enforced mid-HOOI by a
//!   [`hooi::DeadlineObserver`]: an over-budget solve returns the best
//!   decomposition so far flagged truncated, and a request whose budget
//!   expired while queueing fails with
//!   [`hooi::TuckerError::DeadlineExpired`].
//! * **Panic isolation** — every solve and predict runs behind
//!   `catch_unwind`: a panicking request answers
//!   [`hooi::TuckerError::SolvePanicked`], its tensor entry is quarantined
//!   (until a fresh ingest replaces it) and its poisoned session is
//!   dropped, while the shared pool, the plan cache, the scheduler and
//!   every other tenant keep serving.  Panicked and deadline-expired
//!   requests are charged zero flops — the fairness accounts never bill
//!   work that produced nothing.
//!
//! The `service_load` bench bin replays a Zipf-skewed multi-tenant mix
//! (`datagen::requests`) against this service and emits latency,
//! throughput, cache and fairness metrics.

mod cache;
mod request;
mod scheduler;
mod service;
mod stats;

pub use request::{Completed, Request, Response};
pub use service::{DecompositionService, ServiceOptions};
pub use stats::ServiceStats;
