//! Typed requests and responses of the decomposition service.

use hooi::{TuckerDecomposition, TuckerError};
use sptensor::SparseTensor;
use std::sync::Arc;
use std::time::Duration;

/// One unit of work a tenant submits to the service.
#[derive(Debug, Clone)]
pub enum Request {
    /// Register (or replace) a tensor under `tensor_id` and plan it.
    ///
    /// Planning runs the symbolic TTMc analysis once; the resulting session
    /// is cached under the service's memory budget so later decompositions
    /// skip it.  Re-ingesting an id drops the previous tensor, its cached
    /// plan and its latest decomposition.
    Ingest {
        /// Registry key for all later requests naming this tensor.
        tensor_id: String,
        /// The tensor itself, shared with the caller.
        tensor: Arc<SparseTensor>,
    },
    /// Run HOOI on a registered tensor.
    Decompose {
        /// Which tensor to decompose.
        tensor_id: String,
        /// Requested per-mode ranks.
        ranks: Vec<usize>,
        /// Factor-initialization seed.
        seed: u64,
        /// HOOI iteration budget.
        max_iters: usize,
        /// Optional wall-clock budget counted from *submission*.  When it
        /// runs out mid-solve the best decomposition so far is returned and
        /// flagged truncated; when it is already spent before the solve
        /// starts the request fails with
        /// [`TuckerError::DeadlineExpired`](hooi::TuckerError).
        deadline: Option<Duration>,
    },
    /// Evaluate the tensor's latest decomposition at many index tuples.
    Predict {
        /// Which tensor's model to read.
        tensor_id: String,
        /// Index tuples to score; each must have the tensor's arity and
        /// in-range entries (the generator-facing contract of
        /// [`TuckerDecomposition::predict_many`]).
        indices: Vec<Vec<usize>>,
    },
    /// Drop a tensor, its cached plan and its latest decomposition.
    Evict {
        /// Which tensor to drop.
        tensor_id: String,
    },
}

impl Request {
    /// The tensor the request targets.
    pub fn tensor_id(&self) -> &str {
        match self {
            Request::Ingest { tensor_id, .. }
            | Request::Decompose { tensor_id, .. }
            | Request::Predict { tensor_id, .. }
            | Request::Evict { tensor_id } => tensor_id,
        }
    }

    /// Short name of the request kind, for logs and stats.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Request::Ingest { .. } => "ingest",
            Request::Decompose { .. } => "decompose",
            Request::Predict { .. } => "predict",
            Request::Evict { .. } => "evict",
        }
    }
}

/// The successful outcome of a [`Request`].
#[derive(Debug, Clone)]
pub enum Response {
    /// The tensor is registered and planned.
    Ingested {
        /// The registered id.
        tensor_id: String,
        /// Measured plan footprint if the plan was admitted to the cache;
        /// `None` when the plan alone exceeds the whole budget (it is then
        /// rebuilt per decomposition).
        plan_bytes: Option<usize>,
    },
    /// The solve finished (or was cut off by its deadline).
    Decomposed {
        /// The decomposition — a deterministic function of the request for
        /// untruncated solves.
        decomposition: TuckerDecomposition,
        /// Whether the deadline stopped HOOI before its iteration budget;
        /// the result is then the exact prefix a `max_iters =
        /// iterations-completed` solve would produce.
        truncated: bool,
    },
    /// The model values, one per query tuple.
    Predicted {
        /// Scores in query order.
        values: Vec<f64>,
    },
    /// The tensor and everything derived from it are gone.
    Evicted {
        /// The removed id.
        tensor_id: String,
        /// Whether a cached plan was dropped with it.
        plan_was_cached: bool,
    },
}

/// A finished request: what happened and what it cost.
#[derive(Debug)]
pub struct Completed {
    /// Ticket returned by [`submit`](crate::DecompositionService::submit).
    pub request_id: u64,
    /// The issuing tenant.
    pub tenant: String,
    /// The response, or the error the request failed with.
    pub outcome: Result<Response, TuckerError>,
    /// Flops charged to the tenant by the cost model (fairness currency).
    pub charged_flops: u64,
    /// For decompositions: whether the plan came from the cache.  `None`
    /// for other kinds and for requests rejected before plan lookup.
    pub plan_cache_hit: Option<bool>,
}
