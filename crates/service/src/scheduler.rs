//! Cross-tenant fair admission.
//!
//! The service runs one request at a time on its shared pool, so *which*
//! pending request runs next is the whole fairness story.  The scheduler
//! keeps a FIFO queue per tenant and an account of the flops charged to
//! each tenant so far (by the deterministic cost model in
//! [`hooi::per_mode_costs`]); admission is **cheapest-deficit-first**: the
//! next request comes from the backlogged tenant with the least charged
//! work, ties broken by tenant name.  A tenant that has burned a lot of
//! flops therefore waits while lighter tenants catch up, but never starves
//! — once it is the cheapest backlogged tenant again it runs.

use crate::request::Request;
use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

/// A submitted, not-yet-executed request.
#[derive(Debug)]
pub(crate) struct Pending {
    pub request_id: u64,
    pub tenant: String,
    /// Submission time; deadlines are counted from here.
    pub arrival: Instant,
    pub request: Request,
}

/// Per-tenant FIFO queues plus the charged-flop accounts that order them.
#[derive(Debug, Default)]
pub(crate) struct FairScheduler {
    queues: BTreeMap<String, VecDeque<Pending>>,
    charged: BTreeMap<String, u64>,
    pending: usize,
}

impl FairScheduler {
    /// Enqueues a request at the back of its tenant's FIFO.
    pub fn submit(&mut self, pending: Pending) {
        self.charged.entry(pending.tenant.clone()).or_insert(0);
        self.queues
            .entry(pending.tenant.clone())
            .or_default()
            .push_back(pending);
        self.pending += 1;
    }

    /// Pops the next request: front of the queue of the backlogged tenant
    /// with the minimum `(charged flops, tenant name)` — deterministic for
    /// a given submission history.
    pub fn next(&mut self) -> Option<Pending> {
        let tenant = self
            .queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(t, _)| (self.charged.get(t).copied().unwrap_or(0), t.clone()))
            .min()?
            .1;
        let popped = self.queues.get_mut(&tenant)?.pop_front()?;
        self.pending -= 1;
        Some(popped)
    }

    /// Adds `flops` to a tenant's account after its request completed.
    pub fn charge(&mut self, tenant: &str, flops: u64) {
        *self.charged.entry(tenant.to_string()).or_insert(0) += flops;
    }

    /// Total requests waiting across all tenants.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Requests waiting per tenant (only backlogged tenants appear).
    pub fn pending_by_tenant(&self) -> BTreeMap<String, usize> {
        self.queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(t, q)| (t.clone(), q.len()))
            .collect()
    }

    /// Flops charged so far, per tenant ever seen.
    pub fn charged_flops(&self) -> &BTreeMap<String, u64> {
        &self.charged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(id: u64, tenant: &str) -> Pending {
        Pending {
            request_id: id,
            tenant: tenant.to_string(),
            arrival: Instant::now(),
            request: Request::Evict {
                tensor_id: "t".to_string(),
            },
        }
    }

    #[test]
    fn cheapest_tenant_goes_first_with_name_tiebreak() {
        let mut s = FairScheduler::default();
        s.submit(pending(1, "beta"));
        s.submit(pending(2, "alpha"));
        // Equal accounts: alphabetical order breaks the tie.
        assert_eq!(s.next().unwrap().tenant, "alpha");
        assert_eq!(s.next().unwrap().tenant, "beta");
        assert!(s.next().is_none());
    }

    #[test]
    fn charged_tenant_waits_for_lighter_ones() {
        let mut s = FairScheduler::default();
        s.charge("alpha", 1000);
        s.submit(pending(1, "alpha"));
        s.submit(pending(2, "beta"));
        s.submit(pending(3, "beta"));
        assert_eq!(s.next().unwrap().tenant, "beta");
        s.charge("beta", 600);
        assert_eq!(s.next().unwrap().tenant, "beta");
        s.charge("beta", 600);
        // beta has now out-spent alpha; alpha runs.
        assert_eq!(s.next().unwrap().tenant, "alpha");
    }

    #[test]
    fn fifo_within_a_tenant() {
        let mut s = FairScheduler::default();
        s.submit(pending(7, "a"));
        s.submit(pending(8, "a"));
        s.submit(pending(9, "a"));
        assert_eq!(s.next().unwrap().request_id, 7);
        assert_eq!(s.next().unwrap().request_id, 8);
        assert_eq!(s.next().unwrap().request_id, 9);
    }

    #[test]
    fn pending_counts_track_queues() {
        let mut s = FairScheduler::default();
        assert_eq!(s.pending(), 0);
        s.submit(pending(1, "a"));
        s.submit(pending(2, "b"));
        s.submit(pending(3, "b"));
        assert_eq!(s.pending(), 3);
        assert_eq!(s.pending_by_tenant().get("b"), Some(&2));
        s.next();
        assert_eq!(s.pending(), 2);
    }
}
