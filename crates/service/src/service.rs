//! The service itself: registry, shared pool, scheduler and cache glued
//! into a deterministic request loop.

use crate::cache::{Admit, PlanCache};
use crate::request::{Completed, Request, Response};
use crate::scheduler::{FairScheduler, Pending};
use crate::stats::ServiceStats;
use hooi::{
    per_mode_costs, DeadlineObserver, IndexLayout, PlanOptions, TtmcStrategy, TuckerConfig,
    TuckerDecomposition, TuckerError, TuckerSession,
};
use sptensor::SparseTensor;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a [`DecompositionService`].
#[derive(Debug, Clone)]
pub struct ServiceOptions {
    /// Width of the one shared pool every request runs on; `0` means the
    /// machine default.  Fixing this fixes every response bit.
    pub num_threads: usize,
    /// Byte budget of the plan cache, measured by
    /// [`TuckerSession::memory_bytes`].
    pub plan_cache_bytes: usize,
    /// TTMc strategy every plan is built with.
    pub ttmc_strategy: TtmcStrategy,
    /// Per-mode index layout every plan is built with
    /// ([`IndexLayout::Auto`] by default, which picks flat mode-sorted
    /// copies or compressed fiber hierarchies from each tensor's size).
    /// Both layouts solve bit-identically, so this only moves the
    /// footprint [`TuckerSession::memory_bytes`] reports to the plan
    /// cache.
    pub index_layout: IndexLayout,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            num_threads: 0,
            plan_cache_bytes: 256 << 20,
            ttmc_strategy: TtmcStrategy::Auto,
            index_layout: IndexLayout::Auto,
        }
    }
}

impl ServiceOptions {
    /// Defaults: machine-default pool width, a 256 MiB plan cache,
    /// [`TtmcStrategy::Auto`].
    pub fn new() -> Self {
        ServiceOptions::default()
    }

    /// Sets the shared pool width (0 = machine default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Sets the plan-cache byte budget.
    pub fn plan_cache_bytes(mut self, bytes: usize) -> Self {
        self.plan_cache_bytes = bytes;
        self
    }

    /// Sets the TTMc strategy plans are built with.
    pub fn ttmc_strategy(mut self, strategy: TtmcStrategy) -> Self {
        self.ttmc_strategy = strategy;
        self
    }

    /// Sets the per-mode index layout plans are built with.
    pub fn index_layout(mut self, layout: IndexLayout) -> Self {
        self.index_layout = layout;
        self
    }
}

/// A registered tensor and the most recent model computed from it.  The
/// decomposition lives here, *outside* the plan cache, so predictions keep
/// working after the plan is evicted under memory pressure.
#[derive(Debug)]
struct TensorEntry {
    tensor: Arc<SparseTensor>,
    latest: Option<TuckerDecomposition>,
    /// `Some(panic message)` after a solve or predict on this tensor
    /// panicked.  A quarantined entry answers every further decompose or
    /// predict with [`TuckerError::SolvePanicked`] until a fresh ingest
    /// replaces it; eviction still works, and no other tenant or tensor is
    /// affected.
    quarantined: Option<String>,
}

#[derive(Debug, Default)]
struct Counters {
    completed: u64,
    failed: u64,
    ingests: u64,
    decomposes: u64,
    predicts: u64,
    evicts: u64,
    truncated: u64,
    panicked: u64,
}

/// Renders a caught panic payload for the quarantine record.
fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A multi-tenant decomposition server: owns the tensors, one shared
/// thread pool, a memory-budgeted plan cache and a fair scheduler.
///
/// Requests are [`submit`](Self::submit)ted to per-tenant FIFO queues and
/// executed one at a time by [`step`](Self::step) /
/// [`run_until_idle`](Self::run_until_idle), cheapest-charged tenant first.
/// Every solve runs inside the *same* pool (sessions are planned with
/// [`PlanOptions::caller_pool`]), so responses are a pure function of the
/// request and the pool width: the same `Decompose` request returns
/// bit-identical factors regardless of queue interleaving or cache state.
///
/// ```
/// use service::{DecompositionService, Request, Response, ServiceOptions};
/// use sptensor::SparseTensor;
/// use std::sync::Arc;
///
/// let tensor = Arc::new(SparseTensor::from_entries(
///     vec![4, 4, 4],
///     &[(vec![0, 1, 2], 1.0), (vec![3, 2, 0], 2.0), (vec![1, 3, 3], 3.0)],
/// ));
/// let mut service = DecompositionService::new(ServiceOptions::new().num_threads(1))?;
/// service.submit("alice", Request::Ingest { tensor_id: "toy".into(), tensor });
/// service.submit(
///     "alice",
///     Request::Decompose {
///         tensor_id: "toy".into(),
///         ranks: vec![2, 2, 2],
///         seed: 7,
///         max_iters: 5,
///         deadline: None,
///     },
/// );
/// let done = service.run_until_idle();
/// assert!(matches!(
///     done[1].outcome,
///     Ok(Response::Decomposed { truncated: false, .. })
/// ));
/// # Ok::<(), hooi::TuckerError>(())
/// ```
#[derive(Debug)]
pub struct DecompositionService {
    options: ServiceOptions,
    pool: rayon::ThreadPool,
    registry: BTreeMap<String, TensorEntry>,
    scheduler: FairScheduler,
    cache: PlanCache,
    counters: Counters,
    next_request_id: u64,
    /// Logical clock ordering plan-cache touches; never wall time, so the
    /// LRU eviction order is deterministic.
    clock: u64,
}

impl DecompositionService {
    /// Builds the service and spawns its shared worker pool.
    pub fn new(options: ServiceOptions) -> Result<Self, TuckerError> {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(options.num_threads)
            .build()
            .map_err(|e| TuckerError::PoolFailure(e.to_string()))?;
        let cache = PlanCache::new(options.plan_cache_bytes);
        Ok(DecompositionService {
            options,
            pool,
            registry: BTreeMap::new(),
            scheduler: FairScheduler::default(),
            cache,
            counters: Counters::default(),
            next_request_id: 0,
            clock: 0,
        })
    }

    /// Enqueues a request for `tenant` and returns its ticket.  Deadlines
    /// start counting now.
    pub fn submit(&mut self, tenant: &str, request: Request) -> u64 {
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        self.scheduler.submit(Pending {
            request_id,
            tenant: tenant.to_string(),
            arrival: Instant::now(),
            request,
        });
        request_id
    }

    /// Executes the next request under the fairness policy; `None` when
    /// every queue is empty.
    pub fn step(&mut self) -> Option<Completed> {
        let Pending {
            request_id,
            tenant,
            arrival,
            request,
        } = self.scheduler.next()?;
        let (outcome, charged_flops, plan_cache_hit) = match request {
            Request::Ingest { tensor_id, tensor } => self.do_ingest(tensor_id, tensor),
            Request::Decompose {
                tensor_id,
                ranks,
                seed,
                max_iters,
                deadline,
            } => self.do_decompose(arrival, tensor_id, ranks, seed, max_iters, deadline),
            Request::Predict { tensor_id, indices } => self.do_predict(tensor_id, indices),
            Request::Evict { tensor_id } => self.do_evict(tensor_id),
        };
        self.scheduler.charge(&tenant, charged_flops);
        self.counters.completed += 1;
        match &outcome {
            Ok(Response::Ingested { .. }) => self.counters.ingests += 1,
            Ok(Response::Decomposed { truncated, .. }) => {
                self.counters.decomposes += 1;
                if *truncated {
                    self.counters.truncated += 1;
                }
            }
            Ok(Response::Predicted { .. }) => self.counters.predicts += 1,
            Ok(Response::Evicted { .. }) => self.counters.evicts += 1,
            Err(TuckerError::SolvePanicked { .. }) => {
                self.counters.failed += 1;
                self.counters.panicked += 1;
            }
            Err(_) => self.counters.failed += 1,
        }
        Some(Completed {
            request_id,
            tenant,
            outcome,
            charged_flops,
            plan_cache_hit,
        })
    }

    /// Steps until every queue is empty, returning completions in
    /// execution order.
    pub fn run_until_idle(&mut self) -> Vec<Completed> {
        let mut done = Vec::new();
        while let Some(completed) = self.step() {
            done.push(completed);
        }
        done
    }

    /// Requests waiting across all tenants.
    pub fn pending_requests(&self) -> usize {
        self.scheduler.pending()
    }

    /// Requests waiting per backlogged tenant — what the fairness gate
    /// inspects before each step.
    pub fn pending_by_tenant(&self) -> BTreeMap<String, usize> {
        self.scheduler.pending_by_tenant()
    }

    /// Flops charged per tenant so far.
    pub fn charged_flops(&self) -> &BTreeMap<String, u64> {
        self.scheduler.charged_flops()
    }

    /// The shared pool's participant count.
    pub fn num_threads(&self) -> usize {
        self.pool.current_num_threads()
    }

    /// Registered tensor ids, in key order.
    pub fn tensor_ids(&self) -> Vec<String> {
        self.registry.keys().cloned().collect()
    }

    /// Tensor ids with a currently cached plan, in key order.
    pub fn cached_plan_ids(&self) -> Vec<String> {
        self.cache.ids()
    }

    /// The latest completed decomposition of a tensor, if any.
    pub fn latest(&self, tensor_id: &str) -> Option<&TuckerDecomposition> {
        self.registry.get(tensor_id)?.latest.as_ref()
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            completed: self.counters.completed,
            failed: self.counters.failed,
            ingests: self.counters.ingests,
            decomposes: self.counters.decomposes,
            predicts: self.counters.predicts,
            evicts: self.counters.evicts,
            truncated_decomposes: self.counters.truncated,
            panicked: self.counters.panicked,
            quarantined_tensors: self
                .registry
                .iter()
                .filter(|(_, e)| e.quarantined.is_some())
                .map(|(id, _)| id.clone())
                .collect(),
            plan_cache_hits: self.cache.hits(),
            plan_cache_misses: self.cache.misses(),
            plan_cache_bytes: self.cache.bytes(),
            plan_cache_entries: self.cache.len(),
            evicted_plans: self.cache.evicted_ids().to_vec(),
            charged_flops: self.scheduler.charged_flops().clone(),
        }
    }

    /// Plans a session for `tensor` on the shared pool.
    fn plan_session(
        &self,
        tensor: &Arc<SparseTensor>,
    ) -> Result<TuckerSession<Arc<SparseTensor>>, TuckerError> {
        let strategy = self.options.ttmc_strategy;
        let layout = self.options.index_layout;
        let tensor = Arc::clone(tensor);
        self.pool.install(|| {
            TuckerSession::plan(
                tensor,
                PlanOptions::new()
                    .caller_pool()
                    .ttmc_strategy(strategy)
                    .index_layout(layout),
            )
        })
    }

    fn do_ingest(
        &mut self,
        tensor_id: String,
        tensor: Arc<SparseTensor>,
    ) -> (Result<Response, TuckerError>, u64, Option<bool>) {
        let session = match self.plan_session(&tensor) {
            Ok(session) => session,
            // A tensor that cannot be planned (e.g. empty) is not
            // registered at all.
            Err(e) => return (Err(e), 0, None),
        };
        // The ingest cost model: the symbolic analysis touches every
        // nonzero once per mode.
        let charge = (tensor.nnz() * tensor.order()) as u64;
        // Replacing an id drops the previous generation's plan and model.
        self.cache.remove(&tensor_id);
        // A fresh ingest replaces the whole entry, which also lifts any
        // quarantine from a previous generation.
        self.registry.insert(
            tensor_id.clone(),
            TensorEntry {
                tensor,
                latest: None,
                quarantined: None,
            },
        );
        self.clock += 1;
        let plan_bytes = match self.cache.insert(tensor_id.clone(), session, self.clock) {
            Admit::Cached { bytes } => Some(bytes),
            Admit::TooBig { required_bytes } => {
                debug_assert!(required_bytes > self.cache.budget());
                None
            }
        };
        (
            Ok(Response::Ingested {
                tensor_id,
                plan_bytes,
            }),
            charge,
            None,
        )
    }

    fn do_decompose(
        &mut self,
        arrival: Instant,
        tensor_id: String,
        ranks: Vec<usize>,
        seed: u64,
        max_iters: usize,
        deadline: Option<Duration>,
    ) -> (Result<Response, TuckerError>, u64, Option<bool>) {
        let Some(entry) = self.registry.get(&tensor_id) else {
            return (Err(TuckerError::UnknownTensorId { tensor_id }), 0, None);
        };
        if let Some(detail) = &entry.quarantined {
            let detail = detail.clone();
            return (
                Err(TuckerError::SolvePanicked { tensor_id, detail }),
                0,
                None,
            );
        }
        let tensor = Arc::clone(&entry.tensor);
        // A request that spent its whole budget queueing is rejected rather
        // than answered with a zero-iteration model.
        if let Some(d) = deadline {
            let waited = arrival.elapsed();
            if waited >= d {
                return (
                    Err(TuckerError::DeadlineExpired {
                        waited,
                        deadline: d,
                    }),
                    0,
                    None,
                );
            }
        }
        let (mut session, hit) = match self.cache.take(&tensor_id) {
            Some(session) => (session, true),
            // Transparent re-plan: the cached plan was evicted (or never
            // admitted); rebuild it exactly as ingest did.
            None => match self.plan_session(&tensor) {
                Ok(session) => {
                    let required_bytes = session.memory_bytes();
                    if required_bytes > self.cache.budget() {
                        return (
                            Err(TuckerError::PlanOverBudget {
                                tensor_id,
                                required_bytes,
                                budget_bytes: self.cache.budget(),
                            }),
                            0,
                            Some(false),
                        );
                    }
                    (session, false)
                }
                Err(e) => return (Err(e), 0, Some(false)),
            },
        };
        let config = TuckerConfig::new(ranks)
            .max_iterations(max_iters)
            .seed(seed);
        // The solve runs behind `catch_unwind` so a panicking request is an
        // answer, not an outage: the shared pool survives (workers re-throw
        // into the caller), the poisoned session is dropped instead of
        // being re-cached, and only this tensor's entry is quarantined.
        let attempt = catch_unwind(AssertUnwindSafe(|| match deadline {
            Some(d) => {
                let mut observer = DeadlineObserver::at(arrival + d);
                let outcome = self
                    .pool
                    .install(|| session.solve_with_observer(&config, &mut observer));
                outcome.map(|dec| (dec, observer.stopped_early()))
            }
            None => self
                .pool
                .install(|| session.solve(&config))
                .map(|dec| (dec, false)),
        }));
        let solved = match attempt {
            Ok(solved) => solved,
            Err(payload) => {
                let detail = panic_detail(payload);
                self.cache.remove(&tensor_id);
                if let Some(entry) = self.registry.get_mut(&tensor_id) {
                    entry.quarantined = Some(detail.clone());
                }
                // Charged 0: the fairness accounts must not bill work that
                // never produced a model.
                return (
                    Err(TuckerError::SolvePanicked { tensor_id, detail }),
                    0,
                    Some(hit),
                );
            }
        };
        // Fairness charge: the per-mode TTMc cost model at the effective
        // (clamped) ranks, per iteration actually run.  The same model for
        // every tenant and strategy keeps accounts comparable.
        let charge = match &solved {
            Ok((dec, _)) => {
                per_mode_costs(session.symbolic(), tensor.nnz(), &dec.ranks()).flops
                    * dec.iterations as u64
            }
            Err(_) => 0,
        };
        // The session goes back whatever happened; a workspace grown past
        // the whole budget is dropped and rebuilt on the next request.
        self.clock += 1;
        let _ = self.cache.insert(tensor_id.clone(), session, self.clock);
        match solved {
            Ok((decomposition, truncated)) => {
                if let Some(entry) = self.registry.get_mut(&tensor_id) {
                    entry.latest = Some(decomposition.clone());
                }
                (
                    Ok(Response::Decomposed {
                        decomposition,
                        truncated,
                    }),
                    charge,
                    Some(hit),
                )
            }
            Err(e) => (Err(e), charge, Some(hit)),
        }
    }

    fn do_predict(
        &mut self,
        tensor_id: String,
        indices: Vec<Vec<usize>>,
    ) -> (Result<Response, TuckerError>, u64, Option<bool>) {
        let Some(entry) = self.registry.get(&tensor_id) else {
            return (Err(TuckerError::UnknownTensorId { tensor_id }), 0, None);
        };
        if let Some(detail) = &entry.quarantined {
            let detail = detail.clone();
            return (
                Err(TuckerError::SolvePanicked { tensor_id, detail }),
                0,
                None,
            );
        }
        let Some(latest) = entry.latest.as_ref() else {
            return (Err(TuckerError::NothingDecomposed { tensor_id }), 0, None);
        };
        let order = latest.factors.len();
        for index in &indices {
            if index.len() != order {
                return (
                    Err(TuckerError::OrderMismatch {
                        config_modes: index.len(),
                        tensor_modes: order,
                    }),
                    0,
                    None,
                );
            }
        }
        // Model reads panic on out-of-range indices; catch it here so a
        // poisoned query answers as a value and quarantines only this
        // tensor's entry.
        let core_len = latest.core.len();
        let attempt = catch_unwind(AssertUnwindSafe(|| latest.predict_many(&indices)));
        match attempt {
            Ok(values) => {
                // The predict cost model: one fused multiply-add per factor
                // entry per core term per query.
                let charge = (values.len() * (2 * order + 1) * core_len) as u64;
                (Ok(Response::Predicted { values }), charge, None)
            }
            Err(payload) => {
                let detail = panic_detail(payload);
                if let Some(entry) = self.registry.get_mut(&tensor_id) {
                    entry.quarantined = Some(detail.clone());
                }
                (
                    Err(TuckerError::SolvePanicked { tensor_id, detail }),
                    0,
                    None,
                )
            }
        }
    }

    fn do_evict(
        &mut self,
        tensor_id: String,
    ) -> (Result<Response, TuckerError>, u64, Option<bool>) {
        if self.registry.remove(&tensor_id).is_none() {
            return (Err(TuckerError::UnknownTensorId { tensor_id }), 0, None);
        }
        let plan_was_cached = self.cache.remove(&tensor_id);
        (
            Ok(Response::Evicted {
                tensor_id,
                plan_was_cached,
            }),
            1,
            None,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::random_tensor;

    fn toy() -> Arc<SparseTensor> {
        Arc::new(random_tensor(&[14, 12, 10], 400, 3))
    }

    fn decompose(tensor_id: &str, seed: u64) -> Request {
        Request::Decompose {
            tensor_id: tensor_id.into(),
            ranks: vec![2, 2, 2],
            seed,
            max_iters: 3,
            deadline: None,
        }
    }

    fn service(plan_cache_bytes: usize) -> DecompositionService {
        DecompositionService::new(
            ServiceOptions::new()
                .num_threads(2)
                .plan_cache_bytes(plan_cache_bytes),
        )
        .unwrap()
    }

    fn factors(completed: &Completed) -> &TuckerDecomposition {
        match completed.outcome.as_ref().unwrap() {
            Response::Decomposed { decomposition, .. } => decomposition,
            other => panic!("expected a decomposition, got {other:?}"),
        }
    }

    #[test]
    fn ingest_decompose_predict_roundtrip() {
        let mut svc = service(usize::MAX);
        svc.submit(
            "a",
            Request::Ingest {
                tensor_id: "t".into(),
                tensor: toy(),
            },
        );
        svc.submit("a", decompose("t", 1));
        svc.submit(
            "a",
            Request::Predict {
                tensor_id: "t".into(),
                indices: vec![vec![0, 0, 0], vec![13, 11, 9]],
            },
        );
        let done = svc.run_until_idle();
        assert_eq!(done.len(), 3);
        // Ingest planned eagerly, so the decomposition hits the cache.
        assert_eq!(done[1].plan_cache_hit, Some(true));
        let model = factors(&done[1]).clone();
        match done[2].outcome.as_ref().unwrap() {
            Response::Predicted { values } => {
                assert_eq!(
                    values,
                    &model.predict_many(&[vec![0, 0, 0], vec![13, 11, 9]])
                );
            }
            other => panic!("expected predictions, got {other:?}"),
        }
        let stats = svc.stats();
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.plan_cache_hits, 1);
        assert!(done[1].charged_flops > done[2].charged_flops);
    }

    #[test]
    fn csf_layout_service_matches_mode_sorted_bitwise() {
        // The index layout only changes the plan's memory shape; every
        // response must stay bit-identical across layouts.
        let mut responses = Vec::new();
        for layout in [IndexLayout::ModeSorted, IndexLayout::Csf] {
            let mut svc = DecompositionService::new(
                ServiceOptions::new()
                    .num_threads(2)
                    .ttmc_strategy(TtmcStrategy::PerMode)
                    .index_layout(layout),
            )
            .unwrap();
            svc.submit(
                "a",
                Request::Ingest {
                    tensor_id: "t".into(),
                    tensor: toy(),
                },
            );
            svc.submit("a", decompose("t", 7));
            let done = svc.run_until_idle();
            responses.push(factors(&done[1]).clone());
        }
        assert_eq!(responses[0].factors, responses[1].factors);
        assert_eq!(responses[0].core.as_slice(), responses[1].core.as_slice());
        assert_eq!(responses[0].fits, responses[1].fits);
    }

    #[test]
    fn unknown_ids_fail_as_values() {
        let mut svc = service(usize::MAX);
        svc.submit("a", decompose("ghost", 0));
        svc.submit(
            "a",
            Request::Predict {
                tensor_id: "ghost".into(),
                indices: vec![vec![0, 0, 0]],
            },
        );
        svc.submit(
            "a",
            Request::Evict {
                tensor_id: "ghost".into(),
            },
        );
        for completed in svc.run_until_idle() {
            assert!(matches!(
                completed.outcome,
                Err(TuckerError::UnknownTensorId { .. })
            ));
            assert_eq!(completed.charged_flops, 0);
        }
        assert_eq!(svc.stats().failed, 3);
    }

    #[test]
    fn predict_before_any_decomposition_is_an_error() {
        let mut svc = service(usize::MAX);
        svc.submit(
            "a",
            Request::Ingest {
                tensor_id: "t".into(),
                tensor: toy(),
            },
        );
        svc.submit(
            "a",
            Request::Predict {
                tensor_id: "t".into(),
                indices: vec![vec![1, 1, 1]],
            },
        );
        let done = svc.run_until_idle();
        assert!(matches!(
            done[1].outcome,
            Err(TuckerError::NothingDecomposed { .. })
        ));
    }

    #[test]
    fn malformed_predict_arity_is_an_error() {
        let mut svc = service(usize::MAX);
        svc.submit(
            "a",
            Request::Ingest {
                tensor_id: "t".into(),
                tensor: toy(),
            },
        );
        svc.submit("a", decompose("t", 1));
        svc.submit(
            "a",
            Request::Predict {
                tensor_id: "t".into(),
                indices: vec![vec![0, 0]],
            },
        );
        let done = svc.run_until_idle();
        assert!(matches!(
            done[2].outcome,
            Err(TuckerError::OrderMismatch {
                config_modes: 2,
                tensor_modes: 3,
            })
        ));
    }

    #[test]
    fn zero_deadline_expires_before_the_solve_starts() {
        let mut svc = service(usize::MAX);
        svc.submit(
            "a",
            Request::Ingest {
                tensor_id: "t".into(),
                tensor: toy(),
            },
        );
        svc.submit(
            "a",
            Request::Decompose {
                tensor_id: "t".into(),
                ranks: vec![2, 2, 2],
                seed: 0,
                max_iters: 3,
                deadline: Some(Duration::ZERO),
            },
        );
        let done = svc.run_until_idle();
        assert!(matches!(
            done[1].outcome,
            Err(TuckerError::DeadlineExpired { .. })
        ));
        assert_eq!(done[1].charged_flops, 0);
    }

    #[test]
    fn generous_deadline_does_not_truncate() {
        let mut svc = service(usize::MAX);
        svc.submit(
            "a",
            Request::Ingest {
                tensor_id: "t".into(),
                tensor: toy(),
            },
        );
        svc.submit(
            "a",
            Request::Decompose {
                tensor_id: "t".into(),
                ranks: vec![2, 2, 2],
                seed: 9,
                max_iters: 3,
                deadline: Some(Duration::from_secs(3600)),
            },
        );
        svc.submit("a", decompose("t", 9));
        let done = svc.run_until_idle();
        match done[1].outcome.as_ref().unwrap() {
            Response::Decomposed { truncated, .. } => assert!(!truncated),
            other => panic!("expected a decomposition, got {other:?}"),
        }
        // A deadline that never fires changes nothing: same bits as the
        // deadline-free request.
        assert_eq!(factors(&done[1]).factors, factors(&done[2]).factors);
        assert_eq!(svc.stats().truncated_decomposes, 0);
    }

    #[test]
    fn tiny_budget_makes_plans_over_budget() {
        let mut svc = service(16);
        svc.submit(
            "a",
            Request::Ingest {
                tensor_id: "t".into(),
                tensor: toy(),
            },
        );
        svc.submit("a", decompose("t", 0));
        let done = svc.run_until_idle();
        // Ingest succeeds but cannot cache the plan...
        match done[0].outcome.as_ref().unwrap() {
            Response::Ingested { plan_bytes, .. } => assert_eq!(*plan_bytes, None),
            other => panic!("expected an ingest, got {other:?}"),
        }
        // ...and the decomposition cannot be admitted at all.
        assert!(matches!(
            done[1].outcome,
            Err(TuckerError::PlanOverBudget {
                budget_bytes: 16,
                ..
            })
        ));
    }

    #[test]
    fn evict_drops_model_plan_and_registration() {
        let mut svc = service(usize::MAX);
        svc.submit(
            "a",
            Request::Ingest {
                tensor_id: "t".into(),
                tensor: toy(),
            },
        );
        svc.submit("a", decompose("t", 2));
        svc.submit(
            "a",
            Request::Evict {
                tensor_id: "t".into(),
            },
        );
        svc.submit("a", decompose("t", 2));
        let done = svc.run_until_idle();
        match done[2].outcome.as_ref().unwrap() {
            Response::Evicted {
                plan_was_cached, ..
            } => assert!(plan_was_cached),
            other => panic!("expected an eviction, got {other:?}"),
        }
        assert!(matches!(
            done[3].outcome,
            Err(TuckerError::UnknownTensorId { .. })
        ));
        assert!(svc.tensor_ids().is_empty());
        assert!(svc.cached_plan_ids().is_empty());
        assert!(svc.latest("t").is_none());
    }

    #[test]
    fn panicking_predict_is_answered_and_quarantines_only_its_tensor() {
        let mut svc = service(usize::MAX);
        for id in ["healthy", "poisoned"] {
            svc.submit(
                "a",
                Request::Ingest {
                    tensor_id: id.into(),
                    tensor: toy(),
                },
            );
            svc.submit("a", decompose(id, 3));
        }
        svc.run_until_idle();
        // Out-of-range indices panic inside predict_many; the service must
        // answer, not die.
        svc.submit(
            "a",
            Request::Predict {
                tensor_id: "poisoned".into(),
                indices: vec![vec![1000, 1000, 1000]],
            },
        );
        let done = svc.run_until_idle();
        assert!(
            matches!(&done[0].outcome, Err(TuckerError::SolvePanicked { tensor_id, .. })
                if tensor_id == "poisoned"),
            "expected SolvePanicked, got {:?}",
            done[0].outcome
        );
        assert_eq!(done[0].charged_flops, 0, "no charge for panicked work");
        // The quarantine holds for both predicts and decomposes on the
        // poisoned id...
        svc.submit(
            "a",
            Request::Predict {
                tensor_id: "poisoned".into(),
                indices: vec![vec![0, 0, 0]],
            },
        );
        svc.submit("a", decompose("poisoned", 3));
        // ...while the healthy tensor keeps serving.
        svc.submit(
            "a",
            Request::Predict {
                tensor_id: "healthy".into(),
                indices: vec![vec![0, 0, 0]],
            },
        );
        let done = svc.run_until_idle();
        assert!(matches!(
            done[0].outcome,
            Err(TuckerError::SolvePanicked { .. })
        ));
        assert!(matches!(
            done[1].outcome,
            Err(TuckerError::SolvePanicked { .. })
        ));
        assert!(matches!(done[2].outcome, Ok(Response::Predicted { .. })));
        let stats = svc.stats();
        assert_eq!(stats.panicked, 3);
        assert_eq!(stats.quarantined_tensors, vec!["poisoned".to_string()]);
        // A fresh ingest lifts the quarantine.
        svc.submit(
            "a",
            Request::Ingest {
                tensor_id: "poisoned".into(),
                tensor: toy(),
            },
        );
        svc.submit("a", decompose("poisoned", 3));
        let done = svc.run_until_idle();
        assert!(matches!(done[1].outcome, Ok(Response::Decomposed { .. })));
        assert!(svc.stats().quarantined_tensors.is_empty());
    }

    #[test]
    fn evict_works_on_a_quarantined_tensor() {
        let mut svc = service(usize::MAX);
        svc.submit(
            "a",
            Request::Ingest {
                tensor_id: "t".into(),
                tensor: toy(),
            },
        );
        svc.submit("a", decompose("t", 1));
        svc.submit(
            "a",
            Request::Predict {
                tensor_id: "t".into(),
                indices: vec![vec![999, 999, 999]],
            },
        );
        svc.submit(
            "a",
            Request::Evict {
                tensor_id: "t".into(),
            },
        );
        let done = svc.run_until_idle();
        assert!(matches!(
            done[2].outcome,
            Err(TuckerError::SolvePanicked { .. })
        ));
        assert!(matches!(done[3].outcome, Ok(Response::Evicted { .. })));
        assert!(svc.tensor_ids().is_empty());
        assert!(svc.stats().quarantined_tensors.is_empty());
    }

    #[test]
    fn fair_admission_interleaves_backlogged_tenants() {
        let mut svc = service(usize::MAX);
        svc.submit(
            "heavy",
            Request::Ingest {
                tensor_id: "t".into(),
                tensor: toy(),
            },
        );
        svc.run_until_idle();
        // heavy has been charged for the ingest; with both backlogged the
        // cheapest tenant (light, charged 0) must run first.
        svc.submit("heavy", decompose("t", 1));
        svc.submit(
            "light",
            Request::Predict {
                tensor_id: "t".into(),
                indices: vec![],
            },
        );
        let first = svc.step().unwrap();
        assert_eq!(first.tenant, "light");
    }
}
