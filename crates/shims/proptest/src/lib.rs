//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal implementation of the subset its tests use: the
//! [`Strategy`] trait with `prop_map`, range and tuple strategies, the
//! [`proptest!`] macro (with `#![proptest_config(..)]` support),
//! [`ProptestConfig::with_cases`], and the `prop_assert!`/`prop_assert_eq!`
//! assertion macros.
//!
//! Differences from the real crate: inputs are drawn from a deterministic
//! per-test generator (seeded from the test name, so failures are
//! reproducible run over run) and there is **no shrinking** — on failure the
//! macro prints the exact generated inputs instead.

use std::ops::Range;

/// Deterministic generator handed to strategies (xoshiro256++ seeded via
/// SplitMix64 from the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut sm = h;
        let mut s = [0u64; 4];
        for slot in &mut s {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *slot = z ^ (z >> 31);
        }
        TestRng { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, span)`.
    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        // Rejection sampling keeps the draw unbiased.
        let limit = u64::MAX - u64::MAX % span;
        loop {
            let draw = self.next_u64();
            if draw < limit {
                return draw % span;
            }
        }
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating test values (mirrors `proptest::strategy::Strategy`,
/// without shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: std::fmt::Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    T: std::fmt::Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Runner configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Prints the failing case when a test body panics (stand-in for
/// proptest's shrink report).
pub struct FailureReporter {
    /// Formatted inputs of the current case.
    pub description: String,
}

impl Drop for FailureReporter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!("proptest case failed with inputs: {}", self.description);
        }
    }
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Declares property tests (mirrors `proptest::proptest!`).
///
/// Supports the form used across this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn my_property(x in 0usize..10, y in strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (
        $(#[test] fn $name:ident ($($args:tt)*) $body:block)*
    ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default())
            $(#[test] fn $name ($($args)*) $body)*);
    };
    (@impl ($config:expr)
        $(#[test] fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block)*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strategies = ($($strategy,)+);
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let ($($arg,)+) = $crate::Strategy::generate(&strategies, &mut rng);
                    let _reporter = $crate::FailureReporter {
                        description: format!(
                            concat!("case {} of {}: ",
                                $(stringify!($arg), " = {:?}, ",)+ ""),
                            case, config.cases, $(&$arg),+
                        ),
                    };
                    $body
                }
            }
        )*
    };
}

/// Glob-import module (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let x = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&x));
            let y = Strategy::generate(&(-5i32..5), &mut rng);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn prop_map_composes() {
        let strategy = (1usize..5, 1usize..5).prop_map(|(a, b)| a * b);
        let mut rng = TestRng::deterministic("map");
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!((1..25).contains(&v));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("same-name");
        let mut b = TestRng::deterministic("same-name");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_and_runs(x in 0usize..100, y in 0usize..100) {
            prop_assert!(x < 100);
            prop_assert_eq!(x + y, y + x);
        }

        #[test]
        fn macro_single_arg(v in (0usize..5).prop_map(|n| vec![0u8; n])) {
            prop_assert!(v.len() < 5);
        }
    }
}
