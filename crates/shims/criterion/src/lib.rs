//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal harness with the subset of the criterion API its benches
//! use: [`Criterion::benchmark_group`], group configuration
//! (`sample_size`/`warm_up_time`/`measurement_time`), `bench_function` with
//! a [`Bencher`] and `iter`, [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! It really measures: each benchmark is warmed up for the configured
//! warm-up time, then timed for `sample_size` samples (each sample runs the
//! closure enough times to amortize timer resolution), and the
//! mean/min/max per-iteration times are printed.  There is no statistical
//! analysis, plotting, or baseline comparison — for those, swap in the real
//! crate once the environment has registry access; no bench source needs to
//! change.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work (re-export of [`std::hint::black_box`]).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration timing driver handed to every benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, storing one sample per configured `sample_size`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent, counting how many
        // iterations fit so samples can amortize timer resolution.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Aim to spend the measurement budget across all samples.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size.max(1) as f64;
        self.iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).max(1);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// A named set of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement budget across samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id);
        if bencher.samples.is_empty() {
            println!("{label:<50} (no samples collected)");
            return self;
        }
        let mean: Duration = bencher
            .samples
            .iter()
            .sum::<Duration>()
            .div_f64(bencher.samples.len() as f64);
        let min = bencher.samples.iter().min().copied().unwrap_or_default();
        let max = bencher.samples.iter().max().copied().unwrap_or_default();
        println!(
            "{label:<50} time: [{} {} {}]  ({} samples x {} iters)",
            format_duration(min),
            format_duration(mean),
            format_duration(max),
            bencher.samples.len(),
            bencher.iters_per_sample,
        );
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op hook kept
    /// for API compatibility).
    pub fn finish(&mut self) {}
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Benchmark manager (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group with default configuration
    /// (10 samples, 300 ms warm-up, 2 s measurement).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Runs a single free-standing benchmark with the default configuration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group-runner function from benchmark functions
/// (mirrors `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-runner functions
/// (mirrors `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn macros_compile() {
        fn tiny(c: &mut Criterion) {
            c.benchmark_group("m")
                .sample_size(2)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(2))
                .bench_function("id", |b| b.iter(|| black_box(1 + 1)));
        }
        criterion_group!(unit_group, tiny);
        unit_group();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(5)), "5 ns");
        assert!(format_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(5)).ends_with(" s"));
    }
}
