//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal, dependency-free implementation of the exact API surface the
//! repository uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] / [`Rng::gen_range`], and
//! [`distributions::Uniform`] with the [`distributions::Distribution`]
//! trait.  The generator is xoshiro256++ seeded through SplitMix64, so
//! sequences are deterministic for a fixed seed on every platform — a
//! property the workspace's tests rely on.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from the "standard" distribution
/// (`rng.gen::<T>()`): `f64` in `[0, 1)`, integers over their full range,
/// `bool` fair coin.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with an unbiased uniform sampler over a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: low must be < high");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift rejection sampling (Lemire) keeps the draw
                // unbiased without a modulo in the common case.
                let zone = u128::from(u64::MAX) + 1;
                let limit = zone - zone % span;
                loop {
                    let draw = u128::from(rng.next_u64());
                    if draw < limit {
                        return (low as i128 + (draw % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: low must be < high");
        let unit = f64::sample_standard(rng);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: low must be < high");
        let unit = f32::sample_standard(rng);
        low + unit * (high - low)
    }
}

/// High-level convenience methods, automatically available on every
/// [`RngCore`] implementor (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from a half-open `low..high` range.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding protocol (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Constructs the generator from OS entropy; this offline stand-in
    /// derives the seed from the system clock instead.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        Self::seed_from_u64(nanos)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++), matching
    /// the role of `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix cannot produce
            // four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the repository only needs deterministic seeded generators, so
    /// the "standard" generator is the same engine.
    pub type StdRng = SmallRng;
}

/// Distributions (mirrors `rand::distributions`).
pub mod distributions {
    use super::{RngCore, SampleUniform};

    /// A distribution that can be sampled with any generator.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T: SampleUniform> {
        low: T,
        high: T,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Creates the distribution; panics unless `low < high`.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new requires low < high");
            Uniform { low, high }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_range(rng, self.low, self.high)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_int() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let x = rng.gen_range(2usize..9);
            assert!((2..9).contains(&x));
            seen[x - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn uniform_float_bounds() {
        let mut rng = SmallRng::seed_from_u64(11);
        let dist = Uniform::new(-1.0f64, 1.0);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let x = dist.sample(&mut rng);
            assert!((-1.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0).abs() < 0.05, "mean near zero");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }
}
