//! Concurrency stress tests for the persistent pool: nested `install`,
//! concurrent `install` from many user threads, panic propagation without
//! deadlock or pool poisoning, `join`/`scope` under contention, and
//! clean pool teardown.

use rayon::prelude::*;
use rayon::{current_num_threads, join, scope, ThreadPoolBuilder};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn nested_install_switches_pools() {
    let outer = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let inner = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    outer.install(|| {
        assert_eq!(current_num_threads(), 4);
        let sum: usize = inner.install(|| {
            assert_eq!(current_num_threads(), 2);
            (0..1000).into_par_iter().map(|i| i).sum()
        });
        assert_eq!(sum, 1000 * 999 / 2);
        // The outer scope is restored after the inner install returns.
        assert_eq!(current_num_threads(), 4);
        let v: Vec<usize> = (0..100).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(v[99], 100);
    });
}

#[test]
fn install_from_inside_a_parallel_region_still_works() {
    // A span body opening a fresh install on another pool submits a nested
    // job; the submitting participant drains it itself, so this must
    // complete rather than deadlock even though all outer workers are busy.
    let outer = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
    let inner = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
    let totals: Vec<usize> = outer.install(|| {
        (0..6usize)
            .into_par_iter()
            .map(|k| inner.install(|| (0..50).into_par_iter().map(|i| i + k).sum::<usize>()))
            .collect()
    });
    for (k, total) in totals.iter().enumerate() {
        assert_eq!(*total, (0..50).map(|i| i + k).sum::<usize>());
    }
}

#[test]
fn static_policy_nested_same_pool_install_does_not_deadlock() {
    // Regression: under the no-steal static baseline, a span that
    // re-installs the same pool submits a job whose span for the blocked
    // submitter's own slot could be claimed by nobody; the runtime must
    // detect this and run the nested region inline instead of hanging.
    let pool = ThreadPoolBuilder::new()
        .num_threads(3)
        .schedule_policy(rayon::SchedulePolicy::Static)
        .build()
        .unwrap();
    let totals: Vec<usize> = pool.install(|| {
        (0..6usize)
            .into_par_iter()
            .map(|k| pool.install(|| (0..50).into_par_iter().map(|i| i + k).sum::<usize>()))
            .collect()
    });
    for (k, total) in totals.iter().enumerate() {
        assert_eq!(*total, (0..50).map(|i| i + k).sum::<usize>());
    }
}

#[test]
fn concurrent_installs_from_many_user_threads() {
    // One shared pool, many simultaneous caller threads: every job must
    // complete with correct, correctly ordered results.
    let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    std::thread::scope(|s| {
        for t in 0..6usize {
            let pool = &pool;
            s.spawn(move || {
                for round in 0..20 {
                    let offset = t * 1000 + round;
                    let v: Vec<usize> =
                        pool.install(|| (0..200).into_par_iter().map(|i| i + offset).collect());
                    assert_eq!(v, (0..200).map(|i| i + offset).collect::<Vec<_>>());
                }
            });
        }
    });
}

#[test]
fn panic_in_parallel_region_propagates_without_poisoning() {
    let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    for round in 0..3 {
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                (0..500usize).into_par_iter().for_each(|i| {
                    if i == 137 {
                        panic!("intentional test panic in round {round}");
                    }
                });
            });
        }));
        let payload = result.expect_err("panic must propagate to the caller");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(message.contains("intentional test panic"), "{message}");
        // The pool survives and produces correct results afterwards.
        let sum: usize = pool.install(|| (0..100).into_par_iter().map(|i| i).sum());
        assert_eq!(sum, 4950);
    }
}

#[test]
fn panic_in_mut_slice_region_propagates() {
    let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
    let mut data = vec![0u32; 300];
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.install(|| {
            data.par_iter_mut().enumerate().for_each(|(i, x)| {
                if i == 250 {
                    panic!("slice panic");
                }
                *x = 1;
            });
        });
    }));
    assert!(result.is_err());
    // Still usable for a clean second pass.
    pool.install(|| data.par_iter_mut().for_each(|x| *x = 2));
    assert!(data.iter().all(|&x| x == 2));
}

#[test]
fn join_runs_both_sides_and_propagates_panics() {
    let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    let (a, b) = pool.install(|| {
        join(
            || (0..100).map(|i| i * i).sum::<usize>(),
            || "right".to_string(),
        )
    });
    assert_eq!(a, (0..100).map(|i| i * i).sum::<usize>());
    assert_eq!(b, "right");

    let caught = catch_unwind(AssertUnwindSafe(|| {
        pool.install(|| join(|| 1, || panic!("right side panic")))
    }));
    assert!(caught.is_err());
    // And the pool is still healthy.
    let (x, y) = pool.install(|| join(|| 3, || 4));
    assert_eq!((x, y), (3, 4));
}

#[test]
fn join_on_a_static_pool_is_sequential_but_correct() {
    // The no-steal baseline must not smuggle stealing in through `join`:
    // both sides run on the caller, and results are still correct.
    let pool = ThreadPoolBuilder::new()
        .num_threads(3)
        .schedule_policy(rayon::SchedulePolicy::Static)
        .build()
        .unwrap();
    let caller = std::thread::current().id();
    let (a, b) = pool.install(|| {
        join(
            || std::thread::current().id(),
            || std::thread::current().id(),
        )
    });
    assert_eq!(a, caller);
    assert_eq!(b, caller);
}

#[test]
fn nested_joins_do_not_deadlock() {
    let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    fn fib(n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = join(|| fib(n - 1), || fib(n - 2));
        a + b
    }
    assert_eq!(pool.install(|| fib(18)), 2584);
}

#[test]
fn scope_tasks_see_borrowed_state() {
    let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
    let counter = AtomicUsize::new(0);
    let values: Vec<AtomicUsize> = (0..32).map(|_| AtomicUsize::new(0)).collect();
    pool.install(|| {
        scope(|s| {
            for (i, slot) in values.iter().enumerate() {
                let counter = &counter;
                s.spawn(move |_| {
                    slot.store(i + 1, Ordering::SeqCst);
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
    });
    assert_eq!(counter.load(Ordering::SeqCst), 32);
    for (i, slot) in values.iter().enumerate() {
        assert_eq!(slot.load(Ordering::SeqCst), i + 1);
    }
}

#[test]
fn dropping_a_pool_joins_workers_cleanly() {
    for _ in 0..10 {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let sum: usize = pool.install(|| (0..1000).into_par_iter().map(|i| i).sum());
        assert_eq!(sum, 1000 * 999 / 2);
        drop(pool); // must not hang or panic
    }
}

#[test]
fn single_thread_pool_runs_on_the_calling_thread() {
    let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let caller = std::thread::current().id();
    let ids: Vec<std::thread::ThreadId> = pool.install(|| {
        (0..16)
            .into_par_iter()
            .map(|_| std::thread::current().id())
            .collect()
    });
    assert!(ids.iter().all(|&id| id == caller));
}
