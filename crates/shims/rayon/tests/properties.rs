//! Property tests for the work-stealing runtime: for arbitrary input
//! lengths, chunk sizes, and pool widths, every `par_*` adapter must
//! produce results identical to its serial equivalent — including the
//! order-sensitive `collect`s, whose output must match input order no
//! matter which worker executed which span.

use proptest::prelude::*;
use rayon::prelude::*;
use rayon::{ThreadPool, ThreadPoolBuilder};

fn pool_with(threads: usize) -> ThreadPool {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool build")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn range_map_collect_matches_serial(len in 0usize..400, threads in 1usize..9) {
        let parallel: Vec<u64> = pool_with(threads)
            .install(|| (0..len).into_par_iter().map(|i| (i as u64).wrapping_mul(2654435761)).collect());
        let serial: Vec<u64> = (0..len).map(|i| (i as u64).wrapping_mul(2654435761)).collect();
        prop_assert_eq!(parallel, serial);
    }

    #[test]
    fn range_for_each_visits_every_index_once(len in 0usize..400, threads in 1usize..9) {
        let hits: Vec<std::sync::atomic::AtomicU32> =
            (0..len).map(|_| std::sync::atomic::AtomicU32::new(0)).collect();
        pool_with(threads).install(|| {
            (0..len).into_par_iter().for_each(|i| {
                hits[i].fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
        });
        for (i, h) in hits.iter().enumerate() {
            prop_assert_eq!(h.load(std::sync::atomic::Ordering::SeqCst), 1, "index {}", i);
        }
    }

    #[test]
    fn range_chunks_reduce_matches_serial(len in 0usize..600, chunk in 1usize..48, threads in 1usize..9) {
        let parallel: u64 = pool_with(threads).install(|| {
            (0..len)
                .into_par_iter()
                .chunks(chunk)
                .map(|c| c.iter().map(|&i| (i as u64) * (i as u64)).sum::<u64>())
                .reduce(|| 0, |a, b| a + b)
        });
        let serial: u64 = (0..len).map(|i| (i as u64) * (i as u64)).sum();
        prop_assert_eq!(parallel, serial);
    }

    #[test]
    fn order_sensitive_chunk_collect(len in 0usize..500, chunk in 1usize..40, threads in 1usize..9) {
        // Collecting the chunks themselves is order-sensitive: concatenated
        // output must reproduce 0..len exactly.
        let chunks: Vec<Vec<usize>> = pool_with(threads).install(|| {
            (0..len).into_par_iter().chunks(chunk).map(|c| c).collect()
        });
        let flat: Vec<usize> = chunks.into_iter().flatten().collect();
        prop_assert_eq!(flat, (0..len).collect::<Vec<_>>());
    }

    #[test]
    fn vec_map_collect_preserves_order(len in 0usize..400, threads in 1usize..9) {
        let items: Vec<String> = (0..len).map(|i| format!("item-{i}")).collect();
        let expected: Vec<usize> = items.iter().map(|s| s.len()).collect();
        let parallel: Vec<usize> =
            pool_with(threads).install(|| items.into_par_iter().map(|s| s.len()).collect());
        prop_assert_eq!(parallel, expected);
    }

    #[test]
    fn par_iter_mut_matches_serial(len in 0usize..500, threads in 1usize..9) {
        let mut parallel = vec![0usize; len];
        pool_with(threads).install(|| {
            parallel.par_iter_mut().enumerate().for_each(|(i, x)| *x = i * i + 1);
        });
        let serial: Vec<usize> = (0..len).map(|i| i * i + 1).collect();
        prop_assert_eq!(parallel, serial);
    }

    #[test]
    fn par_chunks_mut_covers_all_chunks(len in 0usize..500, chunk in 1usize..40, threads in 1usize..9) {
        let mut parallel = vec![0usize; len];
        pool_with(threads).install(|| {
            parallel
                .par_chunks_mut(chunk)
                .enumerate()
                .for_each(|(c, part)| {
                    for x in part.iter_mut() {
                        *x = c + 1;
                    }
                });
        });
        let serial: Vec<usize> = (0..len).map(|i| i / chunk + 1).collect();
        prop_assert_eq!(parallel, serial);
    }

    #[test]
    fn for_each_init_state_never_shared_concurrently(len in 0usize..400, chunk in 1usize..32, threads in 1usize..9) {
        // Every chunk bumps its checked-out state exactly once; since a
        // state is owned by one span at a time, the total across all states
        // must equal the chunk count, and every element must be written.
        let counter = std::sync::atomic::AtomicUsize::new(0);
        let mut data = vec![0u8; len];
        pool_with(threads).install(|| {
            data.par_chunks_mut(chunk).enumerate().for_each_init(
                || 0usize,
                |state, (_, part)| {
                    *state += 1;
                    counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    for x in part.iter_mut() {
                        *x += 1;
                    }
                },
            );
        });
        prop_assert_eq!(
            counter.load(std::sync::atomic::Ordering::SeqCst),
            len.div_ceil(chunk)
        );
        prop_assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn reduce_is_deterministic_for_fixed_width(len in 0usize..300, threads in 1usize..9) {
        // Span boundaries are a pure function of (len, width), so two runs
        // on same-width pools must fold f64 values in the same order and
        // agree bitwise, no matter how stealing distributed the spans.
        let run = || -> f64 {
            pool_with(threads).install(|| {
                (0..len)
                    .into_par_iter()
                    .map(|i| 1.0 / (i as f64 + 1.7))
                    .reduce(|| 0.0, |a, b| a + b)
            })
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn order_sensitive_concat_reduce(len in 0usize..250, chunk in 1usize..24, threads in 1usize..9) {
        // Concatenation is associative but not commutative: the reduce
        // contract (span-order fold) must reproduce the serial sequence.
        let parallel: Vec<usize> = pool_with(threads).install(|| {
            (0..len)
                .into_par_iter()
                .chunks(chunk)
                .map(|c| c)
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                })
        });
        prop_assert_eq!(parallel, (0..len).collect::<Vec<_>>());
    }
}
