//! Proves that pool workers are persistent: once a pool is built, running
//! more parallel regions must never spawn another OS thread.
//!
//! This file holds exactly one test because it asserts on the process-wide
//! [`rayon::worker_threads_spawned`] counter; concurrent tests building
//! their own pools would perturb it.

use rayon::prelude::*;
use rayon::{worker_threads_spawned, ThreadPoolBuilder};

#[test]
fn workers_spawn_once_per_pool_not_per_region() {
    let before = worker_threads_spawned();
    let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let after_build = worker_threads_spawned();
    assert_eq!(
        after_build - before,
        3,
        "a 4-wide pool spawns exactly 3 workers (the caller is the 4th participant)"
    );

    // Hammer the pool with regions of every adapter shape; the spawn
    // counter must not move.
    for round in 0..50usize {
        let v: Vec<usize> = pool.install(|| (0..300).into_par_iter().map(|i| i + round).collect());
        assert_eq!(v[299], 299 + round);
        let mut data = vec![0u8; 257];
        pool.install(|| data.par_chunks_mut(16).for_each(|c| c.fill(1)));
        assert!(data.iter().all(|&x| x == 1));
        let total: usize = pool.install(|| {
            (0..128)
                .into_par_iter()
                .chunks(7)
                .map(|c| c.len())
                .reduce(|| 0, |a, b| a + b)
        });
        assert_eq!(total, 128);
    }
    assert_eq!(
        worker_threads_spawned(),
        after_build,
        "parallel regions must reuse the persistent workers"
    );

    // A second pool spawns its own workers once.
    let second = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    assert_eq!(worker_threads_spawned(), after_build + 1);
    second.install(|| (0..64).into_par_iter().for_each(|_| {}));
    assert_eq!(worker_threads_spawned(), after_build + 1);
}
