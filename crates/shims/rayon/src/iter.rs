//! The `par_*` adapters, all funneled through the pool's span bridge.
//!
//! Every adapter turns its input into an index space, hands the pool
//! bridge (`pool::parallel_run`) a span body, and reassembles
//! per-span results **by span start**, so `collect` preserves input order
//! and `reduce` folds in a deterministic order no matter which participant
//! executed which span.  Mutable-slice adapters hand disjoint sub-slices to
//! spans through a raw base pointer; disjointness of the spans is what makes
//! that sound.

use crate::pool::{parallel_run, parallel_run_weighted};
use std::ops::Range;
use std::sync::Mutex;

/// A raw pointer that may cross threads because every span derived from it
/// touches a disjoint index range.
struct SendPtr<T>(*mut T);

unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Pointer to element `i`; going through `&self` (rather than the raw
    /// field) is what closures capture, keeping them `Sync`.
    ///
    /// # Safety
    /// `i` must be within the allocation the base pointer came from.
    unsafe fn at(&self, i: usize) -> *mut T {
        unsafe { self.0.add(i) }
    }
}

/// Runs `produce` over spans of `0..len` and concatenates the per-span
/// output vectors in span order — the order-preserving collect primitive.
fn collect_spans<T: Send>(len: usize, produce: impl Fn(Range<usize>) -> Vec<T> + Sync) -> Vec<T> {
    let parts: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::new());
    parallel_run(len, &|span| {
        let part = produce(span.clone());
        parts.lock().unwrap().push((span.start, part));
    });
    let mut parts = parts.into_inner().unwrap();
    parts.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(len);
    for (_, mut part) in parts {
        out.append(&mut part);
    }
    out
}

/// Runs `fold_span` over spans of `0..len` (each seeded with `identity()`)
/// and folds the per-span accumulators with `op` in span order.
fn reduce_spans<T: Send>(
    len: usize,
    identity: impl Fn() -> T + Sync,
    op: impl Fn(T, T) -> T + Sync,
    fold_span: impl Fn(T, Range<usize>) -> T + Sync,
) -> T {
    let parts: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::new());
    parallel_run(len, &|span| {
        let acc = fold_span(identity(), span.clone());
        parts.lock().unwrap().push((span.start, acc));
    });
    let mut parts = parts.into_inner().unwrap();
    parts.sort_unstable_by_key(|&(start, _)| start);
    parts
        .into_iter()
        .fold(identity(), |acc, (_, part)| op(acc, part))
}

/// Conversion into a parallel iterator (mirrors
/// `rayon::iter::IntoParallelIterator` for the types the workspace uses).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = ParVec<T>;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Maps every index through `f`.
    pub fn map<T, F>(self, f: F) -> ParRangeMap<F>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        ParRangeMap {
            range: self.range,
            f,
        }
    }

    /// Groups the indices into consecutive chunks of `size` (the last chunk
    /// may be shorter); each chunk is one item downstream.
    pub fn chunks(self, size: usize) -> ParRangeChunks {
        assert!(size > 0, "chunk size must be positive");
        ParRangeChunks {
            range: self.range,
            size,
        }
    }

    /// Runs `f` on every index.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let start = self.range.start;
        parallel_run(self.range.len(), &|span| {
            for i in span {
                f(start + i);
            }
        });
    }
}

/// `map` adapter over a parallel range.
pub struct ParRangeMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParRangeMap<F> {
    /// Collects the mapped values in index order.
    pub fn collect<T, C>(self) -> C
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        C: From<Vec<T>>,
    {
        let start = self.range.start;
        let f = &self.f;
        C::from(collect_spans(self.range.len(), |span| {
            span.map(|i| f(start + i)).collect()
        }))
    }

    /// Folds the mapped values with `op`, seeding every span with
    /// `identity()` and folding span results in index order.
    pub fn reduce<T>(self, identity: impl Fn() -> T + Sync, op: impl Fn(T, T) -> T + Sync) -> T
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let start = self.range.start;
        let f = &self.f;
        reduce_spans(self.range.len(), &identity, &op, |mut acc, span| {
            for i in span {
                acc = op(acc, f(start + i));
            }
            acc
        })
    }

    /// Sums the mapped values.
    pub fn sum<T>(self) -> T
    where
        T: Send + std::iter::Sum<T> + std::ops::Add<Output = T> + Default,
        F: Fn(usize) -> T + Sync,
    {
        self.reduce(T::default, |a, b| a + b)
    }
}

/// `chunks` adapter over a parallel range: items are `Vec<usize>` index
/// chunks.
pub struct ParRangeChunks {
    range: Range<usize>,
    size: usize,
}

impl ParRangeChunks {
    /// Maps every index chunk through `f`.
    pub fn map<T, F>(self, f: F) -> ParRangeChunksMap<F>
    where
        T: Send,
        F: Fn(Vec<usize>) -> T + Sync,
    {
        ParRangeChunksMap {
            range: self.range,
            size: self.size,
            f,
        }
    }
}

/// `chunks(..).map(..)` adapter over a parallel range.
pub struct ParRangeChunksMap<F> {
    range: Range<usize>,
    size: usize,
    f: F,
}

impl<F> ParRangeChunksMap<F> {
    /// The chunk with index `c` as the concrete index vector it stands for.
    fn chunk_indices(&self, c: usize) -> Vec<usize> {
        let lo = self.range.start + c * self.size;
        let hi = (lo + self.size).min(self.range.end);
        (lo..hi).collect()
    }

    /// Folds the mapped chunk values with `op`, seeding every span with
    /// `identity()` and folding span results in chunk order.
    pub fn reduce<T>(self, identity: impl Fn() -> T + Sync, op: impl Fn(T, T) -> T + Sync) -> T
    where
        T: Send,
        F: Fn(Vec<usize>) -> T + Sync,
    {
        let num_chunks = self.range.len().div_ceil(self.size);
        let this = &self;
        reduce_spans(num_chunks, &identity, &op, |mut acc, span| {
            for c in span {
                acc = op(acc, (this.f)(this.chunk_indices(c)));
            }
            acc
        })
    }

    /// Collects the mapped chunk values in chunk order.
    pub fn collect<T, C>(self) -> C
    where
        T: Send,
        F: Fn(Vec<usize>) -> T + Sync,
        C: From<Vec<T>>,
    {
        let num_chunks = self.range.len().div_ceil(self.size);
        let this = &self;
        C::from(collect_spans(num_chunks, |span| {
            span.map(|c| (this.f)(this.chunk_indices(c))).collect()
        }))
    }
}

/// Parallel iterator over an owned `Vec`.
pub struct ParVec<T> {
    items: Vec<T>,
}

impl<T: Send> ParVec<T> {
    /// Maps every element through `f` and collects in order.
    pub fn map<U, F>(self, f: F) -> ParVecMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParVecMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every element.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        self.map(f).collect::<(), Vec<()>>();
    }
}

/// `map` adapter over an owned `Vec`.
pub struct ParVecMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParVecMap<T, F> {
    /// Collects the mapped values in input order.
    pub fn collect<U, C>(self) -> C
    where
        U: Send,
        F: Fn(T) -> U + Sync,
        C: From<Vec<U>>,
    {
        let len = self.items.len();
        // Each span takes its own elements out of the slot vector through a
        // raw base pointer; spans are disjoint, and on a panic elsewhere the
        // untaken `Some` slots drop normally with the vector.
        let mut slots: Vec<Option<T>> = self.items.into_iter().map(Some).collect();
        let base = SendPtr(slots.as_mut_ptr());
        let f = &self.f;
        let out = collect_spans(len, |span| {
            span.map(|i| {
                let item = unsafe { (*base.at(i)).take() }.expect("element taken twice");
                f(item)
            })
            .collect()
        });
        C::from(out)
    }
}

/// Mutable-slice parallelism (mirrors `rayon::slice::ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut` elements.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
    /// Parallel iterator over non-overlapping `&mut` chunks of `chunk_size`
    /// (the last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel iterator over `&mut` elements of a slice.
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Pairs every element with its index.
    pub fn enumerate(self) -> ParIterMutEnumerate<'a, T> {
        ParIterMutEnumerate { slice: self.slice }
    }

    /// Runs `f` on every element.
    pub fn for_each(self, f: impl Fn(&mut T) + Sync) {
        self.enumerate().for_each(|(_, item)| f(item));
    }
}

/// Enumerated parallel iterator over `&mut` elements.
pub struct ParIterMutEnumerate<'a, T> {
    slice: &'a mut [T],
}

impl<T: Send> ParIterMutEnumerate<'_, T> {
    /// Runs `f` on every `(index, &mut element)` pair.
    pub fn for_each(self, f: impl Fn((usize, &mut T)) + Sync) {
        let base = SendPtr(self.slice.as_mut_ptr());
        parallel_run(self.slice.len(), &|span| {
            for i in span {
                let item = unsafe { &mut *base.at(i) };
                f((i, item));
            }
        });
    }
}

/// Parallel iterator over `&mut` chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs every chunk with its chunk index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            slice: self.slice,
            chunk_size: self.chunk_size,
        }
    }

    /// Runs `f` on every chunk.
    pub fn for_each(self, f: impl Fn(&mut [T]) + Sync) {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated parallel iterator over `&mut` chunks.
pub struct ParChunksMutEnumerate<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<T: Send> ParChunksMutEnumerate<'_, T> {
    /// Runs `f` on every `(chunk_index, &mut chunk)` pair.
    pub fn for_each(self, f: impl Fn((usize, &mut [T])) + Sync) {
        self.for_each_init(|| (), |(), item| f(item));
    }

    /// Runs `f` on every `(chunk_index, &mut chunk)` pair with reusable
    /// `init()` states — the scratch-buffer amortization pattern.
    ///
    /// States live in a shared pool: a participant checks one out per span,
    /// runs all the span's chunks with it, and returns it, so at most one
    /// state exists per concurrently active participant and no chunk ever
    /// shares a state with a concurrently running chunk.  (Real rayon pins
    /// one state per worker thread; checkout gives the same amortization
    /// and additionally needs `S: Send`.)
    pub fn for_each_init<S: Send>(
        self,
        init: impl Fn() -> S + Sync,
        f: impl Fn(&mut S, (usize, &mut [T])) + Sync,
    ) {
        let len = self.slice.len();
        let chunk_size = self.chunk_size;
        let base = SendPtr(self.slice.as_mut_ptr());
        let states: Mutex<Vec<S>> = Mutex::new(Vec::new());
        parallel_run(len.div_ceil(chunk_size), &|span| {
            let checked_out = states.lock().unwrap().pop();
            let mut state = checked_out.unwrap_or_else(&init);
            for c in span {
                let lo = c * chunk_size;
                let hi = (lo + chunk_size).min(len);
                let chunk = unsafe { std::slice::from_raw_parts_mut(base.at(lo), hi - lo) };
                f(&mut state, (c, chunk));
            }
            states.lock().unwrap().push(state);
        });
    }

    /// Like [`for_each_init`](Self::for_each_init), but spans are cut by
    /// *chunk cost* rather than chunk count: `chunk_costs[c]` is the
    /// relative cost of chunk `c` (one entry per chunk), and the pool
    /// balances the summed cost per span instead of the number of chunks.
    /// Shim extension — this is the weighted-scheduling submission path the
    /// TTMc kernels feed their symbolic per-row flop counts through.
    ///
    /// # Panics
    /// Panics unless `chunk_costs` has exactly one entry per chunk.
    pub fn for_each_init_weighted<S: Send>(
        self,
        chunk_costs: &[u64],
        init: impl Fn() -> S + Sync,
        f: impl Fn(&mut S, (usize, &mut [T])) + Sync,
    ) {
        let len = self.slice.len();
        let chunk_size = self.chunk_size;
        assert_eq!(
            chunk_costs.len(),
            len.div_ceil(chunk_size),
            "need exactly one cost per chunk"
        );
        let base = SendPtr(self.slice.as_mut_ptr());
        let states: Mutex<Vec<S>> = Mutex::new(Vec::new());
        parallel_run_weighted(chunk_costs, &|span| {
            let checked_out = states.lock().unwrap().pop();
            let mut state = checked_out.unwrap_or_else(&init);
            for c in span {
                let lo = c * chunk_size;
                let hi = (lo + chunk_size).min(len);
                let chunk = unsafe { std::slice::from_raw_parts_mut(base.at(lo), hi - lo) };
                f(&mut state, (c, chunk));
            }
            states.lock().unwrap().push(state);
        });
    }
}
