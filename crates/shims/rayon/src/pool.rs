//! The persistent worker pool and its chunked work-stealing scheduler.
//!
//! [`ThreadPoolBuilder::build`] spawns the pool's worker threads exactly
//! once; they live until the [`ThreadPool`] is dropped (the implicit global
//! pool lives for the process).  Every parallel region — the `par_*`
//! adapters in [`crate::iter`], [`join`], [`scope`] — is turned into a *job*:
//! the index space is cut into contiguous spans, the spans are dealt into
//! one deque per participant, and every participant (the submitting thread
//! plus any idle worker) pops spans from its own deque front and, when that
//! runs dry, steals from the back of a victim's deque.  On skewed work
//! distributions this dynamic scheduling keeps all workers busy where the
//! old static equal-block splitting left most of them idle behind the one
//! worker that drew the heavy slice.
//!
//! Scheduling properties worth knowing:
//!
//! - **Span boundaries are a pure function of the length and the pool
//!   width**, never of timing.  Stealing only decides *which* thread runs a
//!   span; order-sensitive adapters reassemble results by span start, so
//!   every adapter is deterministic for a fixed thread count.
//! - **The submitting thread always participates** and can finish a job
//!   entirely on its own, so a job completes even if every worker is busy
//!   with other jobs — submitting from inside a worker can never deadlock.
//!   Under the no-steal [`SchedulePolicy::Static`] baseline the second half
//!   of that guarantee would not hold (a busy participant's deque slot can
//!   be claimed by nobody else), so a nested same-pool region on a static
//!   pool runs inline sequentially instead of being submitted.
//! - **A panic in a span poisons only its job**: remaining spans are
//!   drained without running, the first payload is re-thrown on the
//!   submitting thread, and the workers survive for the next job.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Upper bound on the worker count of one pool; requests beyond it are a
/// build error (this is the shim's only build failure besides OS spawn
/// failures, and exists so the error path is actually testable).
pub(crate) const MAX_POOL_THREADS: usize = 4096;

/// How many spans each participant's deque receives under dynamic
/// scheduling; more spans mean finer-grained stealing at slightly more
/// queue traffic.  Public (a shim extension) so the `bench` crate's
/// deterministic scheduling model provably chunks exactly like the pool.
pub const SPANS_PER_WORKER: usize = 4;

/// Process-wide count of worker OS threads ever spawned by any pool.
static WORKER_SPAWNS: AtomicUsize = AtomicUsize::new(0);

/// Total worker OS threads spawned by every pool since process start.
///
/// Shim-only instrumentation (real rayon has no equivalent): the
/// scheduling test suite uses it to prove that workers are persistent —
/// running more parallel regions must not move this counter.
pub fn worker_threads_spawned() -> usize {
    WORKER_SPAWNS.load(Ordering::SeqCst)
}

thread_local! {
    /// The pool the innermost [`ThreadPool::install`] scope dispatches to;
    /// `None` means "use the implicit global pool".
    static CURRENT_POOL: RefCell<Option<Arc<PoolShared>>> = const { RefCell::new(None) };
    /// True while this thread is executing one span of a job; nested
    /// parallel adapters then run sequentially instead of resubmitting.
    static IN_SPAN: Cell<bool> = const { Cell::new(false) };
    /// Pools (by `PoolShared` address) this thread is currently executing
    /// a span for, innermost last.  A nested `install` clears [`IN_SPAN`],
    /// so this is what still identifies the thread as a busy participant —
    /// which matters for static-policy pools, where a busy participant's
    /// deque slot can be claimed by nobody else.
    static SPAN_POOLS: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of threads a parallel region started here would use (mirrors
/// `rayon::current_num_threads`): 1 inside a span (nested parallelism is
/// sequential), the installed pool's width under `install`, the machine
/// default otherwise.
pub fn current_num_threads() -> usize {
    if IN_SPAN.with(Cell::get) {
        return 1;
    }
    CURRENT_POOL
        .with(|p| p.borrow().as_ref().map(|s| s.num_threads))
        .unwrap_or_else(default_threads)
}

/// Restores the previous installed pool on drop, so panics inside
/// `install` cannot leak the setting.
struct PoolGuard {
    previous: Option<Arc<PoolShared>>,
}

impl PoolGuard {
    fn set(pool: Arc<PoolShared>) -> Self {
        let previous = CURRENT_POOL.with(|c| c.borrow_mut().replace(pool));
        PoolGuard { previous }
    }
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        CURRENT_POOL.with(|c| *c.borrow_mut() = previous);
    }
}

/// Scoped setter for the [`IN_SPAN`] flag.
struct SpanFlagGuard {
    previous: bool,
}

impl SpanFlagGuard {
    fn set(value: bool) -> Self {
        let previous = IN_SPAN.with(|c| c.replace(value));
        SpanFlagGuard { previous }
    }
}

impl Drop for SpanFlagGuard {
    fn drop(&mut self) {
        let previous = self.previous;
        IN_SPAN.with(|c| c.set(previous));
    }
}

/// Scoped push of a pool onto [`SPAN_POOLS`] while executing one of its
/// spans.
struct SpanPoolGuard;

impl SpanPoolGuard {
    fn enter(pool_id: usize) -> Self {
        SPAN_POOLS.with(|p| p.borrow_mut().push(pool_id));
        SpanPoolGuard
    }
}

impl Drop for SpanPoolGuard {
    fn drop(&mut self) {
        SPAN_POOLS.with(|p| {
            p.borrow_mut().pop();
        });
    }
}

/// Whether the current thread is executing a span of `pool` (possibly below
/// a nested `install`).
fn thread_is_participant_of(pool: &PoolShared) -> bool {
    let id = std::ptr::from_ref(pool) as usize;
    SPAN_POOLS.with(|p| p.borrow().contains(&id))
}

/// How a pool deals spans to its participants (shim extension; real rayon
/// is always work-stealing).
///
/// The static policy exists as the experimental baseline: the `bench`
/// crate's scheduling comparison runs the same kernel under both policies
/// to reproduce the paper's observation that equal block splitting loses on
/// skewed update-list distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Chunked spans in per-participant deques with steal-on-idle (the
    /// default, and what real rayon does).
    #[default]
    Dynamic,
    /// One contiguous equal block per participant, no stealing — the old
    /// shim behavior, kept as a measurable baseline.
    Static,
}

/// Error type of [`ThreadPoolBuilder::build`]; carries the reason the pool
/// could not be brought up.
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    reason: String,
}

impl ThreadPoolBuildError {
    fn new(reason: String) -> Self {
        ThreadPoolBuildError { reason }
    }
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error: {}", self.reason)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`] (mirrors `rayon::ThreadPoolBuilder`).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
    policy: SchedulePolicy,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the machine-default thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count; 0 means the machine default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Selects the scheduling policy (shim extension, default
    /// [`SchedulePolicy::Dynamic`]).
    pub fn schedule_policy(mut self, policy: SchedulePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Builds the pool, spawning its `n - 1` persistent worker threads (the
    /// thread calling into the pool is always the `n`-th participant).
    ///
    /// Fails with a descriptive [`ThreadPoolBuildError`] if the requested
    /// width exceeds the shim's supported maximum or the OS refuses to
    /// spawn a worker thread.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        if n > MAX_POOL_THREADS {
            return Err(ThreadPoolBuildError::new(format!(
                "requested {n} worker threads, but this pool supports at most {MAX_POOL_THREADS}"
            )));
        }
        let shared = Arc::new(PoolShared {
            num_threads: n,
            policy: self.policy,
            injector: Mutex::new(Injector {
                jobs: Vec::new(),
                shutdown: false,
            }),
            work_signal: Condvar::new(),
        });
        let mut workers = Vec::with_capacity(n.saturating_sub(1));
        for index in 1..n {
            let worker_shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("rayon-shim-worker-{index}"))
                .spawn(move || worker_main(&worker_shared, index));
            match spawned {
                Ok(handle) => {
                    WORKER_SPAWNS.fetch_add(1, Ordering::SeqCst);
                    workers.push(handle);
                }
                Err(e) => {
                    // Tear down what was already spawned before reporting.
                    let pool = ThreadPool { shared, workers };
                    drop(pool);
                    return Err(ThreadPoolBuildError::new(format!(
                        "failed to spawn worker thread {index} of {n}: {e}"
                    )));
                }
            }
        }
        Ok(ThreadPool { shared, workers })
    }
}

/// A persistent pool of worker threads (mirrors `rayon::ThreadPool`).
///
/// Workers are spawned once at [`build`](ThreadPoolBuilder::build) time and
/// parked on a condition variable while idle; every parallel region run
/// under [`install`](ThreadPool::install) reuses them, so the per-call cost
/// is a queue push and a wakeup rather than thread creation.  Dropping the
/// pool signals shutdown and joins all workers.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Runs `f` with this pool executing every parallel region reached from
    /// it (including regions inside nested `install` calls on other pools,
    /// which switch pools for their own duration).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let _pool_guard = PoolGuard::set(Arc::clone(&self.shared));
        // `install` opens a fresh parallel context even when called from
        // inside a span of another job; the submitting thread participates
        // in its own jobs, so this cannot deadlock.
        let _span_guard = SpanFlagGuard::set(false);
        f()
    }

    /// This pool's participant count (spawned workers + the caller).
    pub fn current_num_threads(&self) -> usize {
        self.shared.num_threads
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.shared.num_threads)
            .field("policy", &self.shared.policy)
            .field("spawned_workers", &self.workers.len())
            .finish()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut injector = self.shared.injector.lock().unwrap();
            injector.shutdown = true;
        }
        self.shared.work_signal.notify_all();
        for handle in self.workers.drain(..) {
            handle.join().expect("pool worker panicked outside a job");
        }
    }
}

/// The process-wide pool used when no [`ThreadPool::install`] scope is
/// active, built lazily at machine-default width and never torn down.
fn global_pool() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        ThreadPoolBuilder::new()
            .build()
            .expect("failed to build the global thread pool")
    })
}

/// State shared between a pool handle and its workers.
struct PoolShared {
    num_threads: usize,
    policy: SchedulePolicy,
    injector: Mutex<Injector>,
    work_signal: Condvar,
}

/// The pool's job inbox, guarded by the injector mutex.
struct Injector {
    jobs: Vec<Arc<JobCore>>,
    shutdown: bool,
}

impl PoolShared {
    fn inject(&self, job: Arc<JobCore>) {
        {
            let mut injector = self.injector.lock().unwrap();
            injector.jobs.push(job);
        }
        self.work_signal.notify_all();
    }

    fn remove(&self, job: &Arc<JobCore>) {
        let mut injector = self.injector.lock().unwrap();
        injector.jobs.retain(|j| !Arc::ptr_eq(j, job));
    }

    /// Submits a job, helps execute it, blocks until every span completed,
    /// and re-throws the first panic any span raised.
    fn run_job(&self, job: &Arc<JobCore>) {
        self.inject(Arc::clone(job));
        job.participate(0);
        job.wait_done();
        self.remove(job);
        if let Some(payload) = job.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
    }

    /// Cuts `0..len` into spans per the pool's policy, deals them into
    /// per-participant deques, and runs `body` over all of them in
    /// parallel.
    fn run_parallel(&self, len: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
        if self.policy == SchedulePolicy::Static && thread_is_participant_of(self) {
            // A static job's spans can only be claimed by their designated
            // participants.  This thread is already one of this pool's busy
            // participants (a nested `install` from inside a span), so a
            // submitted job's span dealt to this thread's own slot would be
            // orphaned and the region would deadlock — run it inline
            // sequentially instead, preserving the no-deadlock invariant.
            body(0..len);
            return;
        }
        let n = self.num_threads;
        let spans: Vec<Range<usize>> = match self.policy {
            SchedulePolicy::Static => (0..n)
                .map(|w| participant_block(len, n, w))
                .filter(|r| !r.is_empty())
                .collect(),
            SchedulePolicy::Dynamic => {
                let span_len = len.div_ceil(n * SPANS_PER_WORKER).max(1);
                let mut spans = Vec::with_capacity(len.div_ceil(span_len));
                let mut start = 0;
                while start < len {
                    let end = (start + span_len).min(len);
                    spans.push(start..end);
                    start = end;
                }
                spans
            }
        };
        self.run_spans(spans, body);
    }

    /// Cuts `0..costs.len()` into spans whose *total cost* (not length) is
    /// balanced, then deals and runs them like [`run_parallel`].  This is
    /// the weighted-scheduling entry point: weights are per-job, so rather
    /// than a pool-wide `SchedulePolicy::Weighted` the caller supplies the
    /// cost vector with the submission.  Span boundaries remain a pure
    /// function of the costs and the pool width — never of timing.
    fn run_parallel_weighted(&self, costs: &[u64], body: &(dyn Fn(Range<usize>) + Sync)) {
        let len = costs.len();
        if self.policy == SchedulePolicy::Static && thread_is_participant_of(self) {
            // Same orphaned-span hazard as in `run_parallel`.
            body(0..len);
            return;
        }
        let n = self.num_threads;
        let max_spans = match self.policy {
            SchedulePolicy::Static => n,
            SchedulePolicy::Dynamic => n * SPANS_PER_WORKER,
        };
        let bounds = weighted_span_boundaries(costs, max_spans);
        let spans: Vec<Range<usize>> = bounds.windows(2).map(|w| w[0]..w[1]).collect();
        self.run_spans(spans, body);
    }

    /// Deals pre-cut spans into per-participant deques and runs `body` over
    /// all of them in parallel (the shared tail of [`run_parallel`] and
    /// [`run_parallel_weighted`]).
    fn run_spans(&self, spans: Vec<Range<usize>>, body: &(dyn Fn(Range<usize>) + Sync)) {
        let n = self.num_threads;
        let num_spans = spans.len();
        let mut deques: Vec<Mutex<VecDeque<Range<usize>>>> =
            (0..n).map(|_| Mutex::new(VecDeque::new())).collect();
        for (w, deque) in deques.iter_mut().enumerate() {
            let share = participant_block(num_spans, n, w);
            deque
                .get_mut()
                .unwrap()
                .extend(spans[share].iter().cloned());
        }
        let job = Arc::new(JobCore {
            // Safety: `run_job` below blocks until every span completed, so
            // the erased borrow of `body` never outlives the referent.
            task: unsafe { TaskRef::erase(body) },
            pool_id: std::ptr::from_ref(self) as usize,
            deques,
            unclaimed: AtomicUsize::new(num_spans),
            remaining: AtomicUsize::new(num_spans),
            stealing: self.policy == SchedulePolicy::Dynamic,
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
            done: Mutex::new(num_spans == 0),
            done_signal: Condvar::new(),
        });
        self.run_job(&job);
    }
}

/// Cut points of a cost-balanced contiguous partition of `0..costs.len()`
/// into at most `max_spans` non-empty spans (shim extension; the weighted
/// analogue of [`participant_block`]).
///
/// Returns boundaries `b_0 = 0 < b_1 < … < b_k = costs.len()` (so span `s`
/// is `b_s..b_{s+1}`), greedily closing a span once its summed cost reaches
/// `ceil(total / max_spans)`.  Guarantees, for any cost skew:
///
/// - the spans partition the index range exactly once (strictly increasing
///   boundaries from `0` to `len`),
/// - at most `max_spans` spans are produced, every one non-empty, and
/// - the result is a pure function of `costs` and `max_spans` — no timing,
///   no thread count beyond what the caller folded into `max_spans` — so
///   weighted scheduling stays deterministic like everything else here.
///
/// An empty cost vector yields the single boundary `[0]` (zero spans); an
/// all-zero cost vector yields one span covering everything.
pub fn weighted_span_boundaries(costs: &[u64], max_spans: usize) -> Vec<usize> {
    assert!(max_spans > 0, "max_spans must be positive");
    let len = costs.len();
    let mut bounds = vec![0usize];
    if len == 0 {
        return bounds;
    }
    let spans = max_spans.min(len);
    let total: u64 = costs.iter().sum();
    let target = (total.div_ceil(spans as u64)).max(1);
    let mut acc = 0u64;
    for (i, &c) in costs.iter().enumerate() {
        acc += c;
        if acc >= target && bounds.len() < spans && i + 1 < len {
            bounds.push(i + 1);
            acc = 0;
        }
    }
    bounds.push(len);
    bounds
}

/// Balanced contiguous split: the half-open sub-range of `0..len` owned by
/// participant `w` of `n` under static block scheduling.  Public (a shim
/// extension, like [`SPANS_PER_WORKER`]) so the `bench` crate's
/// deterministic scheduling model provably splits exactly like the pool's
/// static baseline.
pub fn participant_block(len: usize, n: usize, w: usize) -> Range<usize> {
    let base = len / n;
    let extra = len % n;
    let start = w * base + w.min(extra);
    let end = start + base + usize::from(w < extra);
    start..end
}

/// Type-erased borrow of a job body, sendable to worker threads.
///
/// Safety invariant: whoever constructs a `TaskRef` must block until the
/// job's `remaining` count reaches zero before letting the referent die;
/// `PoolShared::run_job` (and `join`, which inlines the same protocol) do
/// exactly that.
struct TaskRef(*const (dyn Fn(Range<usize>) + Sync));

unsafe impl Send for TaskRef {}
unsafe impl Sync for TaskRef {}

impl TaskRef {
    /// Erases the lifetime of `task`; see the type-level safety invariant.
    unsafe fn erase<'a>(task: &'a (dyn Fn(Range<usize>) + Sync + 'a)) -> TaskRef {
        TaskRef(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(Range<usize>) + Sync + 'a),
                *const (dyn Fn(Range<usize>) + Sync + 'static),
            >(task)
        })
    }
}

/// One parallel region: spans dealt into per-participant deques, claimed by
/// popping the own front and stealing from victims' backs.
struct JobCore {
    task: TaskRef,
    /// Address of the owning `PoolShared`, recorded in [`SPAN_POOLS`] while
    /// a thread executes one of this job's spans.
    pool_id: usize,
    deques: Vec<Mutex<VecDeque<Range<usize>>>>,
    /// Spans not yet claimed by any participant (fast has-work check).
    unclaimed: AtomicUsize,
    /// Spans not yet finished executing; 0 means the job is done.
    remaining: AtomicUsize,
    /// Whether idle participants may steal from other deques.
    stealing: bool,
    /// Set by the first panicking span; later spans are drained unrun.
    poisoned: AtomicBool,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    done: Mutex<bool>,
    done_signal: Condvar,
}

impl JobCore {
    fn has_claimable_work(&self) -> bool {
        self.unclaimed.load(Ordering::SeqCst) > 0
    }

    /// Whether participant `slot` could claim a span right now; under
    /// static scheduling only the own deque counts (no stealing), so a
    /// worker never busy-waits on spans dealt to someone else.
    fn has_work_for(&self, slot: usize) -> bool {
        if !self.has_claimable_work() {
            return false;
        }
        if self.stealing {
            return true;
        }
        !self.deques[slot].lock().unwrap().is_empty()
    }

    /// Claims the next span for participant `slot`: own deque front first,
    /// then (under dynamic scheduling) other deques' backs.
    fn claim(&self, slot: usize) -> Option<Range<usize>> {
        if let Some(span) = self.deques[slot].lock().unwrap().pop_front() {
            self.unclaimed.fetch_sub(1, Ordering::SeqCst);
            return Some(span);
        }
        if self.stealing {
            let n = self.deques.len();
            for offset in 1..n {
                let victim = (slot + offset) % n;
                if let Some(span) = self.deques[victim].lock().unwrap().pop_back() {
                    self.unclaimed.fetch_sub(1, Ordering::SeqCst);
                    return Some(span);
                }
            }
        }
        None
    }

    /// Runs one claimed span, converting a panic into job poisoning.
    fn execute(&self, span: Range<usize>) {
        if !self.poisoned.load(Ordering::SeqCst) {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let _flag = SpanFlagGuard::set(true);
                let _participant = SpanPoolGuard::enter(self.pool_id);
                (unsafe { &*self.task.0 })(span);
            }));
            if let Err(payload) = outcome {
                self.poisoned.store(true, Ordering::SeqCst);
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }
        self.complete_one();
    }

    fn complete_one(&self) {
        if self.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            *self.done.lock().unwrap() = true;
            self.done_signal.notify_all();
        }
    }

    /// Claims and executes spans until none are claimable from `slot`.
    fn participate(&self, slot: usize) {
        while let Some(span) = self.claim(slot) {
            self.execute(span);
        }
    }

    /// Blocks until every span (including ones other participants are still
    /// executing) has completed.
    fn wait_done(&self) {
        let mut done = self.done.lock().unwrap();
        while !*done {
            done = self.done_signal.wait(done).unwrap();
        }
    }
}

/// A worker thread: sleep until a job with claimable work exists, help
/// finish it, repeat until shutdown.
fn worker_main(shared: &Arc<PoolShared>, index: usize) {
    loop {
        let job = {
            let mut injector = shared.injector.lock().unwrap();
            loop {
                injector.jobs.retain(|j| j.has_claimable_work());
                if let Some(job) = injector.jobs.iter().find(|j| j.has_work_for(index)) {
                    break Arc::clone(job);
                }
                if injector.shutdown {
                    return;
                }
                injector = shared.work_signal.wait(injector).unwrap();
            }
        };
        job.participate(index);
    }
}

/// The pool a parallel region started on this thread should run on:
/// `None` inside a span (nested parallelism is sequential), the installed
/// pool under `install`, the global pool otherwise.
fn active_pool() -> Option<Arc<PoolShared>> {
    if IN_SPAN.with(Cell::get) {
        return None;
    }
    if let Some(pool) = CURRENT_POOL.with(|p| p.borrow().clone()) {
        return Some(pool);
    }
    Some(Arc::clone(&global_pool().shared))
}

/// The bridge every `par_*` adapter funnels through: executes `body` over
/// disjoint spans that exactly cover `0..len`, in parallel on the active
/// pool (sequentially as the single span `0..len` when the region is
/// effectively one-threaded).
pub(crate) fn parallel_run(len: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
    if len == 0 {
        return;
    }
    let Some(pool) = active_pool().filter(|p| p.num_threads > 1 && len > 1) else {
        body(0..len);
        return;
    };
    pool.run_parallel(len, body);
}

/// Weighted variant of [`parallel_run`]: `costs[i]` is the relative cost of
/// index `i`, and spans are cut by [`weighted_span_boundaries`] so each
/// carries a balanced share of the total cost instead of an equal share of
/// the indices.  Degenerate regions (empty, one index, one thread) take the
/// same sequential path as the unweighted bridge.
pub(crate) fn parallel_run_weighted(costs: &[u64], body: &(dyn Fn(Range<usize>) + Sync)) {
    let len = costs.len();
    if len == 0 {
        return;
    }
    let Some(pool) = active_pool().filter(|p| p.num_threads > 1 && len > 1) else {
        body(0..len);
        return;
    };
    pool.run_parallel_weighted(costs, body);
}

/// Runs both closures, potentially in parallel, and returns both results
/// (mirrors `rayon::join`).
///
/// `oper_b` is offered to the active pool while the calling thread runs
/// `oper_a`; if no worker picks it up, the caller runs it afterwards, so
/// `join` never blocks on anyone else's progress.  If both sides panic, the
/// caller's (`oper_a`) payload wins.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    // Offering `oper_b` to idle workers is stealing by definition, so the
    // no-steal static baseline runs both sides sequentially on the caller.
    let Some(pool) =
        active_pool().filter(|p| p.num_threads > 1 && p.policy == SchedulePolicy::Dynamic)
    else {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    };
    let b_task: Mutex<Option<B>> = Mutex::new(Some(oper_b));
    let b_result: Mutex<Option<RB>> = Mutex::new(None);
    let body = |_: Range<usize>| {
        let task = b_task
            .lock()
            .unwrap()
            .take()
            .expect("join: task claimed twice");
        *b_result.lock().unwrap() = Some(task());
    };
    let n = pool.num_threads;
    let job = Arc::new(JobCore {
        // Safety: this function blocks in `wait_done` below before `body`
        // (and the stack slots it borrows) go out of scope.
        task: unsafe { TaskRef::erase(&body) },
        pool_id: Arc::as_ptr(&pool) as usize,
        deques: (0..n)
            .map(|w| {
                let mut deque = VecDeque::new();
                if w == 0 {
                    deque.push_back(0..1);
                }
                Mutex::new(deque)
            })
            .collect(),
        unclaimed: AtomicUsize::new(1),
        remaining: AtomicUsize::new(1),
        stealing: true,
        poisoned: AtomicBool::new(false),
        panic: Mutex::new(None),
        done: Mutex::new(false),
        done_signal: Condvar::new(),
    });
    pool.inject(Arc::clone(&job));
    let ra = catch_unwind(AssertUnwindSafe(oper_a));
    job.participate(0);
    job.wait_done();
    pool.remove(&job);
    let b_panic = job.panic.lock().unwrap().take();
    match ra {
        Err(payload) => resume_unwind(payload),
        Ok(ra) => {
            if let Some(payload) = b_panic {
                resume_unwind(payload);
            }
            let rb = b_result
                .into_inner()
                .unwrap()
                .expect("join: second closure produced no result");
            (ra, rb)
        }
    }
}

/// A task spawned into a [`Scope`].
type ScopeTask<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

/// A scope for spawning borrowed tasks (mirrors `rayon::Scope`).
///
/// Unlike real rayon, spawned tasks do not start until the scope closure
/// returns; they then run in parallel on the active pool (tasks spawned by
/// tasks join the next round).  If a task panics, the payload is re-thrown
/// from [`scope`] and any not-yet-started tasks are dropped.
pub struct Scope<'scope> {
    tasks: Mutex<Vec<ScopeTask<'scope>>>,
    /// Makes `'scope` invariant without affecting `Send`/`Sync`.
    marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Queues `body` to run when the scope closes.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.tasks.lock().unwrap().push(Box::new(body));
    }
}

/// Creates a scope whose spawned tasks may borrow from the enclosing frame
/// (mirrors `rayon::scope`); returns once every task has completed.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let scope = Scope {
        tasks: Mutex::new(Vec::new()),
        marker: PhantomData,
    };
    let result = f(&scope);
    loop {
        let batch: Vec<ScopeTask<'scope>> = {
            let mut tasks = scope.tasks.lock().unwrap();
            tasks.drain(..).collect()
        };
        if batch.is_empty() {
            break;
        }
        let slots: Vec<Mutex<Option<ScopeTask<'scope>>>> =
            batch.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let scope_ref = &scope;
        parallel_run(slots.len(), &|span| {
            for i in span {
                let task = slots[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("scope: task ran twice");
                task(scope_ref);
            }
        });
    }
    result
}
