//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal data-parallelism runtime with the subset of the rayon API the
//! repository uses: `par_iter_mut`, `par_chunks_mut`, `into_par_iter` on
//! ranges (with `map`/`chunks`/`collect`/`reduce`/`for_each_init`),
//! [`current_num_threads`], and [`ThreadPoolBuilder`] / [`ThreadPool`] with
//! `install`.
//!
//! Unlike a mock, this is a *real* parallel runtime: every adapter splits its
//! input into one contiguous block per worker and runs the blocks on scoped
//! OS threads (`std::thread::scope`), with the calling thread acting as
//! worker 0.  The number of workers is taken from the innermost
//! [`ThreadPool::install`] scope, so a pool built with `num_threads(1)`
//! executes the *same code path* fully sequentially — exactly the property
//! the workspace's thread-scaling experiments need.  Work splitting is
//! static (contiguous blocks) rather than work-stealing; for the
//! row-parallel kernels in this workspace that is within a few percent of
//! rayon's dynamic scheduling.

use std::cell::Cell;
use std::ops::Range;

thread_local! {
    /// Worker count of the innermost `install` scope; 0 means "unset, use
    /// the machine default".
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of threads the current scope parallelizes over (mirrors
/// `rayon::current_num_threads`).
pub fn current_num_threads() -> usize {
    let set = CURRENT_THREADS.with(|c| c.get());
    if set == 0 {
        default_threads()
    } else {
        set
    }
}

/// Restores the previous thread-count on drop, so panics inside `install`
/// cannot leak the setting.
struct ThreadCountGuard {
    previous: usize,
}

impl ThreadCountGuard {
    fn set(n: usize) -> Self {
        let previous = CURRENT_THREADS.with(|c| c.replace(n));
        ThreadCountGuard { previous }
    }
}

impl Drop for ThreadCountGuard {
    fn drop(&mut self) {
        CURRENT_THREADS.with(|c| c.set(self.previous));
    }
}

/// Error type of [`ThreadPoolBuilder::build`]; this stand-in cannot actually
/// fail, the type exists for API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`] (mirrors `rayon::ThreadPoolBuilder`).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the machine-default thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count; 0 means the machine default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.  Never fails in this stand-in.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A handle fixing the worker count for everything run under
/// [`install`](ThreadPool::install).
///
/// The stand-in keeps no persistent worker threads: workers are scoped
/// threads spawned per parallel call, which keeps the implementation tiny at
/// the cost of ~10µs spawn overhead per call — irrelevant next to the
/// millisecond-scale kernels this workspace parallelizes.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count governing every parallel
    /// adapter reached from it (including nested calls).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = ThreadCountGuard::set(self.num_threads);
        f()
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Balanced contiguous split: the half-open sub-range of `0..len` owned by
/// worker `w` of `workers`.
fn worker_slice(len: usize, workers: usize, w: usize) -> Range<usize> {
    let base = len / workers;
    let extra = len % workers;
    let start = w * base + w.min(extra);
    let end = start + base + usize::from(w < extra);
    start..end
}

/// Runs `work(w)` for every worker `0..workers`, worker 0 on the calling
/// thread, and returns the results in worker order.
fn run_workers<T: Send>(workers: usize, work: impl Fn(usize) -> T + Sync) -> Vec<T> {
    if workers <= 1 {
        return vec![work(0)];
    }
    std::thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = (1..workers)
            .map(|w| {
                scope.spawn(move || {
                    // Nested parallel calls inside a worker run sequentially
                    // instead of oversubscribing the machine.
                    let _guard = ThreadCountGuard::set(1);
                    work(w)
                })
            })
            .collect();
        let mut results = Vec::with_capacity(workers);
        results.push({
            // Worker 0 is the calling thread; guard it like the spawned
            // workers so nested parallel calls stay sequential on every
            // worker.
            let _guard = ThreadCountGuard::set(1);
            work(0)
        });
        for handle in handles {
            results.push(handle.join().expect("parallel worker panicked"));
        }
        results
    })
}

fn clamp_workers(tasks: usize) -> usize {
    current_num_threads().clamp(1, tasks.max(1))
}

/// Conversion into a parallel iterator (mirrors
/// `rayon::iter::IntoParallelIterator` for the types the workspace uses).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = ParVec<T>;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Maps every index through `f`.
    pub fn map<T, F>(self, f: F) -> ParRangeMap<F>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        ParRangeMap {
            range: self.range,
            f,
        }
    }

    /// Groups the indices into consecutive chunks of `size` (the last chunk
    /// may be shorter); each chunk is one item downstream.
    pub fn chunks(self, size: usize) -> ParRangeChunks {
        assert!(size > 0, "chunk size must be positive");
        ParRangeChunks {
            range: self.range,
            size,
        }
    }

    /// Runs `f` on every index.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let start = self.range.start;
        let len = self.range.len();
        let workers = clamp_workers(len);
        run_workers(workers, |w| {
            for i in worker_slice(len, workers, w) {
                f(start + i);
            }
        });
    }
}

/// `map` adapter over a parallel range.
pub struct ParRangeMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParRangeMap<F> {
    /// Collects the mapped values in index order.
    pub fn collect<T, C>(self) -> C
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        C: From<Vec<T>>,
    {
        let start = self.range.start;
        let len = self.range.len();
        let workers = clamp_workers(len);
        let f = &self.f;
        let parts = run_workers(workers, |w| {
            worker_slice(len, workers, w)
                .map(|i| f(start + i))
                .collect::<Vec<T>>()
        });
        let mut out = Vec::with_capacity(len);
        for part in parts {
            out.extend(part);
        }
        C::from(out)
    }

    /// Folds the mapped values with `op`, seeding every worker with
    /// `identity()`.
    pub fn reduce<T>(self, identity: impl Fn() -> T + Sync, op: impl Fn(T, T) -> T + Sync) -> T
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let start = self.range.start;
        let len = self.range.len();
        let workers = clamp_workers(len);
        let f = &self.f;
        let parts = run_workers(workers, |w| {
            let mut acc = identity();
            for i in worker_slice(len, workers, w) {
                acc = op(acc, f(start + i));
            }
            acc
        });
        parts.into_iter().fold(identity(), &op)
    }

    /// Sums the mapped values.
    pub fn sum<T>(self) -> T
    where
        T: Send + std::iter::Sum<T> + std::ops::Add<Output = T> + Default,
        F: Fn(usize) -> T + Sync,
    {
        self.reduce(T::default, |a, b| a + b)
    }
}

/// `chunks` adapter over a parallel range: items are `Vec<usize>` index
/// chunks.
pub struct ParRangeChunks {
    range: Range<usize>,
    size: usize,
}

impl ParRangeChunks {
    /// Maps every index chunk through `f`.
    pub fn map<T, F>(self, f: F) -> ParRangeChunksMap<F>
    where
        T: Send,
        F: Fn(Vec<usize>) -> T + Sync,
    {
        ParRangeChunksMap {
            range: self.range,
            size: self.size,
            f,
        }
    }
}

/// `chunks(..).map(..)` adapter over a parallel range.
pub struct ParRangeChunksMap<F> {
    range: Range<usize>,
    size: usize,
    f: F,
}

impl<F> ParRangeChunksMap<F> {
    /// Folds the mapped chunk values with `op`, seeding every worker with
    /// `identity()`.
    pub fn reduce<T>(self, identity: impl Fn() -> T + Sync, op: impl Fn(T, T) -> T + Sync) -> T
    where
        T: Send,
        F: Fn(Vec<usize>) -> T + Sync,
    {
        let start = self.range.start;
        let len = self.range.len();
        let num_chunks = len.div_ceil(self.size);
        let workers = clamp_workers(num_chunks);
        let f = &self.f;
        let size = self.size;
        let parts = run_workers(workers, |w| {
            let mut acc = identity();
            for c in worker_slice(num_chunks, workers, w) {
                let lo = start + c * size;
                let hi = (lo + size).min(start + len);
                acc = op(acc, f((lo..hi).collect()));
            }
            acc
        });
        parts.into_iter().fold(identity(), &op)
    }

    /// Collects the mapped chunk values in chunk order.
    pub fn collect<T, C>(self) -> C
    where
        T: Send,
        F: Fn(Vec<usize>) -> T + Sync,
        C: From<Vec<T>>,
    {
        let start = self.range.start;
        let len = self.range.len();
        let num_chunks = len.div_ceil(self.size);
        let workers = clamp_workers(num_chunks);
        let f = &self.f;
        let size = self.size;
        let parts = run_workers(workers, |w| {
            worker_slice(num_chunks, workers, w)
                .map(|c| {
                    let lo = start + c * size;
                    let hi = (lo + size).min(start + len);
                    f((lo..hi).collect())
                })
                .collect::<Vec<T>>()
        });
        let mut out = Vec::with_capacity(num_chunks);
        for part in parts {
            out.extend(part);
        }
        C::from(out)
    }
}

/// Parallel iterator over an owned `Vec`.
pub struct ParVec<T> {
    items: Vec<T>,
}

impl<T: Send> ParVec<T> {
    /// Maps every element through `f` and collects in order.
    pub fn map<U, F>(self, f: F) -> ParVecMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParVecMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every element.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        self.map(f).collect::<(), Vec<()>>();
    }
}

/// `map` adapter over an owned `Vec`.
pub struct ParVecMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParVecMap<T, F> {
    /// Collects the mapped values in input order.
    pub fn collect<U, C>(self) -> C
    where
        U: Send,
        F: Fn(T) -> U + Sync,
        C: From<Vec<U>>,
    {
        let len = self.items.len();
        let workers = clamp_workers(len);
        let f = &self.f;
        // Hand each worker an owned block of the input, preserving order.
        let mut blocks: Vec<(usize, Vec<T>)> = Vec::with_capacity(workers);
        let mut items = self.items;
        for w in (0..workers).rev() {
            let slice = worker_slice(len, workers, w);
            blocks.push((w, items.split_off(slice.start)));
        }
        let parts = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut first = None;
            for (w, block) in blocks.into_iter().rev() {
                if w == 0 {
                    first = Some(block);
                } else {
                    handles.push(scope.spawn(move || {
                        let _guard = ThreadCountGuard::set(1);
                        block.into_iter().map(f).collect::<Vec<U>>()
                    }));
                }
            }
            let mut results = Vec::with_capacity(workers);
            results.push({
                // Guard worker 0 (the calling thread) like the spawned
                // workers when actually fanning out.
                let _guard = (workers > 1).then(|| ThreadCountGuard::set(1));
                first
                    .expect("worker 0 block")
                    .into_iter()
                    .map(f)
                    .collect::<Vec<U>>()
            });
            for handle in handles {
                results.push(handle.join().expect("parallel worker panicked"));
            }
            results
        });
        let mut out = Vec::with_capacity(len);
        for part in parts {
            out.extend(part);
        }
        C::from(out)
    }
}

/// Mutable-slice parallelism (mirrors `rayon::slice::ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut` elements.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
    /// Parallel iterator over non-overlapping `&mut` chunks of `chunk_size`
    /// (the last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Splits `slice` into one contiguous sub-slice per worker, tagged with its
/// global element offset.
fn split_for_workers<T>(slice: &mut [T], workers: usize) -> Vec<(usize, &mut [T])> {
    let len = slice.len();
    let mut parts = Vec::with_capacity(workers);
    let mut rest = slice;
    let mut offset = 0;
    for w in 0..workers {
        let take = worker_slice(len, workers, w).len();
        let (head, tail) = rest.split_at_mut(take);
        parts.push((offset, head));
        offset += take;
        rest = tail;
    }
    parts
}

/// Runs one closure per worker over tagged sub-slices, worker 0 on the
/// calling thread.
fn run_slice_workers<T: Send>(
    parts: Vec<(usize, &mut [T])>,
    work: impl Fn(usize, &mut [T]) + Sync,
) {
    if parts.len() <= 1 {
        for (offset, part) in parts {
            work(offset, part);
        }
        return;
    }
    std::thread::scope(|scope| {
        let work = &work;
        let mut first = None;
        let mut handles = Vec::new();
        for (w, (offset, part)) in parts.into_iter().enumerate() {
            if w == 0 {
                first = Some((offset, part));
            } else {
                handles.push(scope.spawn(move || {
                    let _guard = ThreadCountGuard::set(1);
                    work(offset, part);
                }));
            }
        }
        if let Some((offset, part)) = first {
            // Worker 0 is the calling thread; guard it like the spawned
            // workers.
            let _guard = ThreadCountGuard::set(1);
            work(offset, part);
        }
        for handle in handles {
            handle.join().expect("parallel worker panicked");
        }
    });
}

/// Parallel iterator over `&mut` elements of a slice.
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Pairs every element with its index.
    pub fn enumerate(self) -> ParIterMutEnumerate<'a, T> {
        ParIterMutEnumerate { slice: self.slice }
    }

    /// Runs `f` on every element.
    pub fn for_each(self, f: impl Fn(&mut T) + Sync) {
        self.enumerate().for_each(|(_, item)| f(item));
    }
}

/// Enumerated parallel iterator over `&mut` elements.
pub struct ParIterMutEnumerate<'a, T> {
    slice: &'a mut [T],
}

impl<T: Send> ParIterMutEnumerate<'_, T> {
    /// Runs `f` on every `(index, &mut element)` pair.
    pub fn for_each(self, f: impl Fn((usize, &mut T)) + Sync) {
        let workers = clamp_workers(self.slice.len());
        let parts = split_for_workers(self.slice, workers);
        run_slice_workers(parts, |offset, part| {
            for (j, item) in part.iter_mut().enumerate() {
                f((offset + j, item));
            }
        });
    }
}

/// Parallel iterator over `&mut` chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs every chunk with its chunk index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            slice: self.slice,
            chunk_size: self.chunk_size,
        }
    }

    /// Runs `f` on every chunk.
    pub fn for_each(self, f: impl Fn(&mut [T]) + Sync) {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated parallel iterator over `&mut` chunks.
pub struct ParChunksMutEnumerate<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<T: Send> ParChunksMutEnumerate<'_, T> {
    /// Runs `f` on every `(chunk_index, &mut chunk)` pair.
    pub fn for_each(self, f: impl Fn((usize, &mut [T])) + Sync) {
        self.for_each_init(|| (), |(), item| f(item));
    }

    /// Runs `f` on every `(chunk_index, &mut chunk)` pair with one `init()`
    /// state per worker — the scratch-buffer amortization pattern.
    pub fn for_each_init<S>(
        self,
        init: impl Fn() -> S + Sync,
        f: impl Fn(&mut S, (usize, &mut [T])) + Sync,
    ) {
        let chunk_size = self.chunk_size;
        let len = self.slice.len();
        let num_chunks = len.div_ceil(chunk_size);
        let workers = clamp_workers(num_chunks);
        // Split at whole-chunk boundaries so chunks never straddle workers.
        let mut parts: Vec<(usize, &mut [T])> = Vec::with_capacity(workers);
        let mut rest = self.slice;
        let mut chunk_offset = 0;
        for w in 0..workers {
            let chunks_here = worker_slice(num_chunks, workers, w).len();
            let take = (chunks_here * chunk_size).min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            parts.push((chunk_offset, head));
            chunk_offset += chunks_here;
            rest = tail;
        }
        if parts.len() <= 1 {
            for (first_chunk, part) in parts {
                let mut state = init();
                for (j, chunk) in part.chunks_mut(chunk_size).enumerate() {
                    f(&mut state, (first_chunk + j, chunk));
                }
            }
            return;
        }
        std::thread::scope(|scope| {
            let f = &f;
            let init = &init;
            let mut first = None;
            let mut handles = Vec::new();
            for (w, (first_chunk, part)) in parts.into_iter().enumerate() {
                if w == 0 {
                    first = Some((first_chunk, part));
                } else {
                    handles.push(scope.spawn(move || {
                        let _guard = ThreadCountGuard::set(1);
                        let mut state = init();
                        for (j, chunk) in part.chunks_mut(chunk_size).enumerate() {
                            f(&mut state, (first_chunk + j, chunk));
                        }
                    }));
                }
            }
            if let Some((first_chunk, part)) = first {
                // Worker 0 is the calling thread; guard it like the spawned
                // workers.
                let _guard = ThreadCountGuard::set(1);
                let mut state = init();
                for (j, chunk) in part.chunks_mut(chunk_size).enumerate() {
                    f(&mut state, (first_chunk + j, chunk));
                }
            }
            for handle in handles {
                handle.join().expect("parallel worker panicked");
            }
        });
    }
}

/// Glob-import module (mirrors `rayon::prelude`).
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_chunks_map_reduce_sums() {
        let total: u64 = (0..10_000usize)
            .into_par_iter()
            .chunks(64)
            .map(|chunk| chunk.iter().map(|&i| i as u64).sum::<u64>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 10_000 * 9_999 / 2);
    }

    #[test]
    fn par_iter_mut_enumerate_writes_all() {
        let mut v = vec![0usize; 777];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i + 1);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i + 1));
    }

    #[test]
    fn par_chunks_mut_for_each_init_covers_every_chunk_once() {
        let mut v = vec![0u32; 103]; // deliberately not a multiple of 10
        v.par_chunks_mut(10).enumerate().for_each_init(
            || 0u32,
            |state, (c, chunk)| {
                *state += 1;
                for x in chunk.iter_mut() {
                    *x += 1 + c as u32;
                }
            },
        );
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, 1 + (i / 10) as u32, "element {i}");
        }
    }

    #[test]
    fn vec_into_par_iter_map_collect() {
        let items: Vec<String> = vec!["a", "bb", "ccc"]
            .into_iter()
            .map(String::from)
            .collect();
        let lens: Vec<usize> = items.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn install_controls_current_num_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        let single = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        assert_eq!(single.install(current_num_threads), 1);
    }

    #[test]
    fn nested_parallelism_in_workers_is_sequential() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            // Every worker — including worker 0, which runs on the calling
            // thread — sees a single-thread scope so nested parallel calls
            // never oversubscribe.
            let observed: Vec<usize> = (0..4usize)
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect();
            assert_eq!(observed, vec![1; 4]);
            // The scope is restored once the parallel call finishes.
            assert_eq!(current_num_threads(), 4);
        });
    }

    #[test]
    fn empty_inputs_are_fine() {
        let v: Vec<usize> = (0..0).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
        let mut empty: Vec<f64> = Vec::new();
        empty.par_iter_mut().enumerate().for_each(|(_, x)| *x = 1.0);
        empty.par_chunks_mut(8).enumerate().for_each(|(_, _)| {});
    }

    #[test]
    fn reduce_with_nontrivial_identity() {
        let acc = (0..257usize)
            .into_par_iter()
            .chunks(16)
            .map(|chunk| vec![chunk.len()])
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        let total: usize = acc.iter().sum();
        assert_eq!(total, 257);
    }
}
