//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this data-parallelism runtime with the subset of the rayon API the
//! repository uses: `par_iter_mut`, `par_chunks_mut`, `into_par_iter` on
//! ranges and vectors (with `map`/`chunks`/`collect`/`reduce`/
//! `for_each_init`), [`current_num_threads`], [`join`], [`scope`], and
//! [`ThreadPoolBuilder`] / [`ThreadPool`] with `install`.
//!
//! Unlike a mock, this is a *real* parallel runtime — and since the rewrite
//! in [`pool`] it is a **persistent work-stealing one**: a pool's worker
//! threads are spawned once at build time and every parallel region reuses
//! them; each region's index space is cut into chunked spans dealt to
//! per-participant deques, and idle participants steal from busy ones.  On
//! the skewed update-list distributions of this workspace's tensors (the
//! paper's Delicious/Flickr profiles) that dynamic scheduling is what keeps
//! all threads busy; the old per-call scoped threads with static equal
//! blocks are preserved behind [`SchedulePolicy::Static`] as a measurable
//! baseline.
//!
//! The thread count of a region is taken from the innermost
//! [`ThreadPool::install`] scope (the implicit machine-default global pool
//! otherwise), and a pool built with `num_threads(1)` executes the *same
//! code path* fully sequentially on the calling thread — exactly the
//! property the workspace's thread-scaling experiments need.  Nested
//! parallel adapters inside a span run sequentially instead of
//! oversubscribing; a nested `install` on a pool opens a fresh parallel
//! region on that pool (safe because a region's submitter always
//! participates in draining it).

pub mod iter;
pub mod pool;

pub use iter::{
    IntoParallelIterator, ParChunksMut, ParChunksMutEnumerate, ParIterMut, ParIterMutEnumerate,
    ParRange, ParRangeChunks, ParRangeChunksMap, ParRangeMap, ParVec, ParVecMap, ParallelSliceMut,
};
pub use pool::{
    current_num_threads, join, participant_block, scope, weighted_span_boundaries,
    worker_threads_spawned, SchedulePolicy, Scope, ThreadPool, ThreadPoolBuildError,
    ThreadPoolBuilder, SPANS_PER_WORKER,
};

/// Glob-import module (mirrors `rayon::prelude`).
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_chunks_map_reduce_sums() {
        let total: u64 = (0..10_000usize)
            .into_par_iter()
            .chunks(64)
            .map(|chunk| chunk.iter().map(|&i| i as u64).sum::<u64>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 10_000 * 9_999 / 2);
    }

    #[test]
    fn par_iter_mut_enumerate_writes_all() {
        let mut v = vec![0usize; 777];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i + 1);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i + 1));
    }

    #[test]
    fn par_chunks_mut_for_each_init_covers_every_chunk_once() {
        let mut v = vec![0u32; 103]; // deliberately not a multiple of 10
        v.par_chunks_mut(10).enumerate().for_each_init(
            || 0u32,
            |state, (c, chunk)| {
                *state += 1;
                for x in chunk.iter_mut() {
                    *x += 1 + c as u32;
                }
            },
        );
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, 1 + (i / 10) as u32, "element {i}");
        }
    }

    #[test]
    fn vec_into_par_iter_map_collect() {
        let items: Vec<String> = vec!["a", "bb", "ccc"]
            .into_iter()
            .map(String::from)
            .collect();
        let lens: Vec<usize> = items.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn install_controls_current_num_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        let single = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        assert_eq!(single.install(current_num_threads), 1);
    }

    #[test]
    fn nested_parallelism_in_spans_is_sequential() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            // Every span — including ones the calling thread executes —
            // sees a single-thread scope, so nested parallel calls never
            // oversubscribe.
            let observed: Vec<usize> = (0..4usize)
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect();
            assert_eq!(observed, vec![1; 4]);
            // The scope is restored once the parallel call finishes.
            assert_eq!(current_num_threads(), 4);
        });
    }

    #[test]
    fn empty_inputs_are_fine() {
        let v: Vec<usize> = (0..0).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
        let mut empty: Vec<f64> = Vec::new();
        empty.par_iter_mut().enumerate().for_each(|(_, x)| *x = 1.0);
        empty.par_chunks_mut(8).enumerate().for_each(|(_, _)| {});
    }

    #[test]
    fn reduce_with_nontrivial_identity() {
        let acc = (0..257usize)
            .into_par_iter()
            .chunks(16)
            .map(|chunk| vec![chunk.len()])
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        let total: usize = acc.iter().sum();
        assert_eq!(total, 257);
    }

    #[test]
    fn order_sensitive_collect_is_input_ordered() {
        // Concatenating per-chunk markers must reproduce the input order
        // even though spans complete in an arbitrary order.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            let v: Vec<String> = (0..100usize)
                .into_par_iter()
                .map(|i| i.to_string())
                .collect();
            let expected: Vec<String> = (0..100).map(|i| i.to_string()).collect();
            assert_eq!(v, expected);
        });
    }

    #[test]
    fn join_returns_both_results() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let (a, b) = pool.install(|| join(|| 6 * 7, || "ok".to_string()));
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
        // Sequential fallback inside a single-thread pool.
        let single = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let (a, b) = single.install(|| join(|| 1, || 2));
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn scope_runs_all_spawned_tasks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let hits = AtomicUsize::new(0);
        pool.install(|| {
            scope(|s| {
                for _ in 0..10 {
                    s.spawn(|s| {
                        hits.fetch_add(1, Ordering::SeqCst);
                        // Tasks may spawn further tasks.
                        s.spawn(|_| {
                            hits.fetch_add(1, Ordering::SeqCst);
                        });
                    });
                }
            });
        });
        assert_eq!(hits.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn static_policy_produces_identical_results() {
        let pool = ThreadPoolBuilder::new()
            .num_threads(3)
            .schedule_policy(SchedulePolicy::Static)
            .build()
            .unwrap();
        pool.install(|| {
            let v: Vec<usize> = (0..500).into_par_iter().map(|i| i * 3).collect();
            assert_eq!(v, (0..500).map(|i| i * 3).collect::<Vec<_>>());
            let mut w = vec![0usize; 97];
            w.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
            assert!(w.iter().enumerate().all(|(i, &x)| x == i));
        });
    }

    #[test]
    fn weighted_boundaries_partition_exactly_once() {
        // Heavy skew: one index carries almost all the cost.
        let mut costs = vec![1u64; 100];
        costs[7] = 1_000_000;
        for max_spans in [1usize, 2, 3, 16, 99, 100, 5000] {
            let bounds = weighted_span_boundaries(&costs, max_spans);
            assert_eq!(bounds[0], 0);
            assert_eq!(*bounds.last().unwrap(), costs.len());
            assert!(bounds.windows(2).all(|w| w[0] < w[1]), "{bounds:?}");
            assert!(bounds.len() - 1 <= max_spans.min(costs.len()));
        }
        // Degenerate inputs.
        assert_eq!(weighted_span_boundaries(&[], 4), vec![0]);
        assert_eq!(weighted_span_boundaries(&[0, 0, 0], 4), vec![0, 3]);
        assert_eq!(weighted_span_boundaries(&[5], 4), vec![0, 1]);
    }

    #[test]
    fn weighted_boundaries_balance_skewed_costs() {
        // 8 cheap indices then 8 expensive ones: equal-length splitting into
        // two spans would put all the cost in the second; weighted splitting
        // must move the boundary right of the midpoint.
        let costs: Vec<u64> = (0..16).map(|i| if i < 8 { 1 } else { 100 }).collect();
        let bounds = weighted_span_boundaries(&costs, 2);
        assert_eq!(bounds.len(), 3);
        assert!(
            bounds[1] > 8,
            "boundary {} not past the cheap prefix",
            bounds[1]
        );
    }

    #[test]
    fn for_each_init_weighted_covers_every_chunk_once() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            let mut v = vec![0u32; 103]; // deliberately not a multiple of 10
            let costs: Vec<u64> = (0..v.len().div_ceil(10))
                .map(|c| if c == 3 { 10_000 } else { 1 })
                .collect();
            v.par_chunks_mut(10).enumerate().for_each_init_weighted(
                &costs,
                || 0u32,
                |state, (c, chunk)| {
                    *state += 1;
                    for x in chunk.iter_mut() {
                        *x += 1 + c as u32;
                    }
                },
            );
            for (i, &x) in v.iter().enumerate() {
                assert_eq!(x, 1 + (i / 10) as u32, "element {i}");
            }
        });
    }

    #[test]
    fn build_error_carries_a_reason() {
        let err = ThreadPoolBuilder::new()
            .num_threads(usize::MAX)
            .build()
            .unwrap_err();
        let message = err.to_string();
        assert!(message.contains("at most"), "unhelpful error: {message}");
    }
}
