//! Partitioners: random / block baselines and a greedy + FM-refinement
//! hypergraph partitioner standing in for PaToH.
//!
//! The paper evaluates each distributed algorithm under two partitionings:
//! a cheap one that only balances load (`fine-rd` random, `coarse-bl`
//! contiguous blocks) and a hypergraph partitioning (`*-hp`, PaToH) that
//! additionally minimizes the connectivity−1 cutsize, i.e. the
//! communication volume.  Any reasonable cutsize-aware partitioner
//! reproduces the qualitative gap; here a greedy hypergraph-growing pass
//! followed by FM-style refinement plays that role.

use crate::hypergraph::Hypergraph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sptensor::hash::{FxHashMap, FxHashSet};
use std::collections::BinaryHeap;

/// A K-way partition of a set of items (vertices, tasks or nonzeros).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Part id of each item.
    pub parts: Vec<u32>,
    /// Number of parts `K`.
    pub num_parts: usize,
}

impl Partition {
    /// Creates a partition, checking that every part id is `< num_parts`.
    pub fn new(parts: Vec<u32>, num_parts: usize) -> Self {
        assert!(num_parts > 0);
        assert!(
            parts.iter().all(|&p| (p as usize) < num_parts),
            "part id out of range"
        );
        Partition { parts, num_parts }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether the partition covers no items.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// The items assigned to each part.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut members = vec![Vec::new(); self.num_parts];
        for (i, &p) in self.parts.iter().enumerate() {
            members[p as usize].push(i);
        }
        members
    }

    /// Per-part total weight for externally supplied item weights.
    pub fn loads(&self, weights: &[u64]) -> Vec<u64> {
        assert_eq!(weights.len(), self.parts.len());
        let mut loads = vec![0u64; self.num_parts];
        for (i, &p) in self.parts.iter().enumerate() {
            loads[p as usize] += weights[i];
        }
        loads
    }
}

/// Uniform random assignment of items to parts (the paper's `fine-rd`).
pub fn random_partition(num_items: usize, num_parts: usize, seed: u64) -> Partition {
    assert!(num_parts > 0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let parts = (0..num_items)
        .map(|_| rng.gen_range(0..num_parts as u32))
        .collect();
    Partition::new(parts, num_parts)
}

/// Contiguous block partition balanced by item weight (the paper's
/// `coarse-bl`): items are kept in order and split into `num_parts`
/// consecutive chunks of roughly equal total weight.
pub fn block_partition(weights: &[u64], num_parts: usize) -> Partition {
    assert!(num_parts > 0);
    let total: u64 = weights.iter().sum();
    let mut parts = vec![0u32; weights.len()];
    if weights.is_empty() {
        return Partition::new(parts, num_parts);
    }
    let target = (total as f64 / num_parts as f64).max(1.0);
    let mut acc = 0u64;
    let mut current = 0u32;
    for (i, &w) in weights.iter().enumerate() {
        // Move to the next part when the current one has reached its share,
        // keeping the last part as the catch-all.
        if (acc as f64) >= target * (current as f64 + 1.0) && (current as usize) < num_parts - 1 {
            current += 1;
        }
        parts[i] = current;
        acc += w;
    }
    Partition::new(parts, num_parts)
}

/// Greedy hypergraph-growing partition: parts are grown one at a time by
/// repeatedly absorbing the unassigned vertex with the largest number of
/// incident nets already touching the part, until the part reaches its
/// weight share.  Nets larger than `max_net_size_for_gain` are ignored for
/// gain propagation (they connect "everything to everything" and only slow
/// the heap down), matching standard practice.
pub fn greedy_partition(h: &Hypergraph, num_parts: usize, seed: u64) -> Partition {
    assert!(num_parts > 0);
    let n = h.num_vertices();
    if n == 0 {
        return Partition::new(vec![], num_parts);
    }
    let max_net_size_for_gain = 512usize;
    let (vptr, vnets) = h.vertex_to_nets();
    let total = h.total_vertex_weight();
    let target = (total as f64 / num_parts as f64) * 1.03;
    let mut rng = SmallRng::seed_from_u64(seed);

    let mut parts = vec![u32::MAX; n];
    let mut gains = vec![0i64; n];
    let mut unassigned = n;

    for k in 0..num_parts as u32 {
        if unassigned == 0 {
            break;
        }
        let last_part = k as usize == num_parts - 1;
        let mut load = 0u64;
        // Reset gains for the new part.
        for g in gains.iter_mut() {
            *g = 0;
        }
        // Max-heap of (gain, vertex); stale entries are skipped lazily.
        let mut heap: BinaryHeap<(i64, usize)> = BinaryHeap::new();
        // Seed with a random unassigned vertex.
        let mut start = rng.gen_range(0..n);
        while parts[start] != u32::MAX {
            start = (start + 1) % n;
        }
        heap.push((0, start));

        while (load as f64) < target || last_part {
            // Pop the best candidate; refill from any unassigned vertex if
            // the frontier is exhausted (disconnected hypergraph).
            let v = loop {
                match heap.pop() {
                    Some((g, v)) => {
                        if parts[v] == u32::MAX && g == gains[v] {
                            break Some(v);
                        }
                    }
                    None => {
                        let fresh = (0..n).find(|&u| parts[u] == u32::MAX);
                        match fresh {
                            Some(u) => {
                                heap.push((gains[u], u));
                            }
                            None => break None,
                        }
                    }
                }
            };
            let Some(v) = v else { break };
            parts[v] = k;
            load += h.vertex_weights[v];
            unassigned -= 1;
            if unassigned == 0 {
                break;
            }
            // Raise the gain of unassigned vertices sharing a (small) net.
            for &net in &vnets[vptr[v]..vptr[v + 1]] {
                let pins = h.net(net);
                if pins.len() > max_net_size_for_gain {
                    continue;
                }
                for &u in pins {
                    if parts[u] == u32::MAX {
                        gains[u] += h.net_weights[net] as i64;
                        heap.push((gains[u], u));
                    }
                }
            }
        }
    }
    // Any leftovers (possible when the target is hit early on the last
    // part's pass) go to the least-loaded part.
    if unassigned > 0 {
        let mut loads = vec![0u64; num_parts];
        for (v, &p) in parts.iter().enumerate() {
            if p != u32::MAX {
                loads[p as usize] += h.vertex_weights[v];
            }
        }
        for v in 0..n {
            if parts[v] == u32::MAX {
                let (best, _) = loads
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &l)| l)
                    .expect("at least one part");
                parts[v] = best as u32;
                loads[best] += h.vertex_weights[v];
            }
        }
    }
    Partition::new(parts, num_parts)
}

/// FM-style refinement: repeated passes over the vertices, moving a vertex
/// whenever that strictly reduces the connectivity−1 cutsize — or, at equal
/// cutsize, strictly improves the load balance — while keeping every part
/// under `(1 + balance_eps) × average` load.  Zero-gain balance moves are
/// what lets a pass drain an overloaded part of an initially unbalanced
/// (e.g. random) partition without ever increasing the cut; they move
/// strictly from heavier to lighter parts, so the sum of squared loads
/// decreases monotonically and passes terminate.  Returns the number of
/// moves made.
pub fn refine_partition(
    h: &Hypergraph,
    partition: &mut Partition,
    balance_eps: f64,
    max_passes: usize,
) -> usize {
    let n = h.num_vertices();
    if n == 0 {
        return 0;
    }
    assert_eq!(partition.len(), n);
    let num_parts = partition.num_parts;
    let total = h.total_vertex_weight();
    let max_load = ((total as f64 / num_parts as f64) * (1.0 + balance_eps)).ceil() as u64;

    // Per-net part-count maps.
    let mut net_counts: Vec<FxHashMap<u32, u32>> = vec![FxHashMap::default(); h.num_nets()];
    for net in 0..h.num_nets() {
        for &p in h.net(net) {
            *net_counts[net].entry(partition.parts[p]).or_insert(0) += 1;
        }
    }
    let mut loads = vec![0u64; num_parts];
    for (v, &p) in partition.parts.iter().enumerate() {
        loads[p as usize] += h.vertex_weights[v];
    }
    let (vptr, vnets) = h.vertex_to_nets();

    let mut total_moves = 0usize;
    for _ in 0..max_passes {
        let mut moves_this_pass = 0usize;
        for v in 0..n {
            let from = partition.parts[v];
            let weight = h.vertex_weights[v];
            // Candidate targets: every part sharing a net with v.
            let mut connected: FxHashSet<u32> = FxHashSet::default();
            for &net in &vnets[vptr[v]..vptr[v + 1]] {
                for (&part, _) in net_counts[net].iter() {
                    connected.insert(part);
                }
            }
            // Exact connectivity−1 gain of moving v from `from` to `to`.
            let exact_gain = |to: u32| -> i64 {
                let mut gain = 0i64;
                for &net in &vnets[vptr[v]..vptr[v + 1]] {
                    let w = h.net_weights[net] as i64;
                    let cnt_from = *net_counts[net].get(&from).unwrap_or(&0);
                    let cnt_to = *net_counts[net].get(&to).unwrap_or(&0);
                    if cnt_from == 1 {
                        gain += w; // `from` disappears from the net
                    }
                    if cnt_to == 0 {
                        gain -= w; // `to` newly appears in the net
                    }
                }
                gain
            };
            // Evaluate every connected part: prefer the highest positive
            // cutsize gain; failing that, remember the lightest target for
            // a zero-gain balance move.
            let mut best_move: Option<(u32, i64)> = None;
            let mut balance_move: Option<u32> = None;
            for &to in connected.iter() {
                if to == from || loads[to as usize] + weight > max_load {
                    continue;
                }
                let gain = exact_gain(to);
                if gain > 0 {
                    if best_move.is_none_or(|(_, g)| gain > g) {
                        best_move = Some((to, gain));
                    }
                } else if gain == 0
                    && loads[from as usize] > loads[to as usize] + weight
                    && balance_move.is_none_or(|b| loads[to as usize] < loads[b as usize])
                {
                    balance_move = Some(to);
                }
            }
            let to = match best_move {
                Some((to, _)) => to,
                None => match balance_move {
                    Some(to) => to,
                    None => continue,
                },
            };
            // Execute the move.
            for &net in &vnets[vptr[v]..vptr[v + 1]] {
                let e = net_counts[net].entry(from).or_insert(0);
                *e -= 1;
                if *e == 0 {
                    net_counts[net].remove(&from);
                }
                *net_counts[net].entry(to).or_insert(0) += 1;
            }
            loads[from as usize] -= h.vertex_weights[v];
            loads[to as usize] += h.vertex_weights[v];
            partition.parts[v] = to;
            moves_this_pass += 1;
        }
        total_moves += moves_this_pass;
        if moves_this_pass == 0 {
            break;
        }
    }
    total_moves
}

/// Convenience: greedy growing followed by refinement — the `*-hp`
/// configuration of the experiments.
pub fn hypergraph_partition(h: &Hypergraph, num_parts: usize, seed: u64) -> Partition {
    let mut p = greedy_partition(h, num_parts, seed);
    // PaToH-like 3% balance tolerance: tight enough that the busiest rank's
    // TTMc load stays competitive with a random partition, loose enough to
    // leave the refiner room for cut-improving moves.
    refine_partition(h, &mut p, 0.03, 8);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::fine_grain_hypergraph;
    use datagen::random_tensor;

    #[test]
    fn random_partition_in_range_and_deterministic() {
        let a = random_partition(100, 7, 3);
        let b = random_partition(100, 7, 3);
        assert_eq!(a, b);
        assert!(a.parts.iter().all(|&p| p < 7));
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn block_partition_is_contiguous_and_balanced() {
        let weights = vec![1u64; 100];
        let p = block_partition(&weights, 4);
        // Contiguity: part ids never decrease.
        for w in p.parts.windows(2) {
            assert!(w[1] >= w[0]);
        }
        let loads = p.loads(&weights);
        assert_eq!(loads.iter().sum::<u64>(), 100);
        assert!(*loads.iter().max().unwrap() <= 26);
        assert!(*loads.iter().min().unwrap() >= 24);
    }

    #[test]
    fn block_partition_weighted() {
        // One heavy item at the front should not drag everything into part 0.
        let mut weights = vec![1u64; 99];
        weights.insert(0, 100);
        let p = block_partition(&weights, 4);
        assert_eq!(p.parts[0], 0);
        assert!(p.parts[99] == 3);
        let loads = p.loads(&weights);
        assert!(loads.iter().all(|&l| l > 0));
    }

    #[test]
    fn greedy_partition_covers_all_vertices() {
        let t = random_tensor(&[20, 20, 20], 600, 5);
        let h = fine_grain_hypergraph(&t);
        let p = greedy_partition(&h, 8, 1);
        assert_eq!(p.len(), 600);
        assert!(p.parts.iter().all(|&x| x < 8));
        // Every part should get something.
        let loads = h.part_loads(&p.parts, 8);
        assert!(loads.iter().all(|&l| l > 0), "{loads:?}");
    }

    #[test]
    fn greedy_partition_is_reasonably_balanced() {
        let t = random_tensor(&[30, 30, 30], 2000, 9);
        let h = fine_grain_hypergraph(&t);
        let p = greedy_partition(&h, 16, 2);
        let imb = h.imbalance(&p.parts, 16);
        assert!(imb < 1.35, "imbalance {imb}");
    }

    #[test]
    fn hypergraph_partition_beats_random_on_cutsize() {
        let t = random_tensor(&[25, 25, 25], 1500, 11);
        let h = fine_grain_hypergraph(&t);
        let hp = hypergraph_partition(&h, 8, 3);
        let rd = random_partition(h.num_vertices(), 8, 3);
        let cut_hp = h.connectivity_cutsize(&hp.parts, 8);
        let cut_rd = h.connectivity_cutsize(&rd.parts, 8);
        assert!(
            cut_hp < cut_rd,
            "hypergraph partition cut {cut_hp} not below random cut {cut_rd}"
        );
    }

    #[test]
    fn refinement_never_increases_cutsize() {
        let t = random_tensor(&[20, 15, 10], 800, 13);
        let h = fine_grain_hypergraph(&t);
        let mut p = random_partition(h.num_vertices(), 6, 1);
        let before = h.connectivity_cutsize(&p.parts, 6);
        let moves = refine_partition(&h, &mut p, 0.15, 3);
        let after = h.connectivity_cutsize(&p.parts, 6);
        assert!(after <= before, "cutsize increased {before} -> {after}");
        assert!(moves > 0, "refinement made no moves on a random partition");
    }

    #[test]
    fn refinement_respects_balance() {
        let t = random_tensor(&[20, 20, 20], 1000, 17);
        let h = fine_grain_hypergraph(&t);
        let mut p = random_partition(h.num_vertices(), 5, 2);
        refine_partition(&h, &mut p, 0.10, 3);
        let imb = h.imbalance(&p.parts, 5);
        assert!(
            imb <= 1.12,
            "imbalance {imb} exceeds the allowed 10% + rounding"
        );
    }

    #[test]
    fn partition_members_consistent() {
        let p = Partition::new(vec![0, 1, 0, 2], 3);
        let members = p.members();
        assert_eq!(members[0], vec![0, 2]);
        assert_eq!(members[1], vec![1]);
        assert_eq!(members[2], vec![3]);
    }

    #[test]
    #[should_panic]
    fn partition_rejects_out_of_range() {
        let _ = Partition::new(vec![0, 3], 3);
    }

    #[test]
    fn single_part_everything_in_part_zero() {
        let t = random_tensor(&[10, 10, 10], 100, 19);
        let h = fine_grain_hypergraph(&t);
        let p = greedy_partition(&h, 1, 5);
        assert!(p.parts.iter().all(|&x| x == 0));
        assert_eq!(h.connectivity_cutsize(&p.parts, 1), 0);
    }

    #[test]
    fn empty_hypergraph_partition() {
        let h = Hypergraph::from_pin_lists(0, &[]);
        let p = greedy_partition(&h, 4, 1);
        assert!(p.is_empty());
    }
}
