//! Hypergraph data structure and partition-quality metrics.
//!
//! A hypergraph `H = (V, N)` has weighted vertices and nets (hyperedges),
//! each net connecting an arbitrary set of vertices (its *pins*).  For a
//! `K`-way partition of the vertices, the *connectivity−1* cutsize
//! `Σ_nets w(net) · (λ(net) − 1)` — where `λ` is the number of parts the
//! net's pins touch — equals the total communication volume of the
//! column-net / row-net models used for sparse tensor computations, which is
//! why both the paper and this reproduction optimize it.

/// A hypergraph with integer vertex and net weights, nets stored in CSR
/// form.
#[derive(Debug, Clone)]
pub struct Hypergraph {
    /// Weight of each vertex (e.g. number of nonzeros of a slice, or 1 for a
    /// nonzero-vertex).
    pub vertex_weights: Vec<u64>,
    /// Net offsets into [`pins`](Self::pins); net `j` has pins
    /// `pins[net_ptr[j]..net_ptr[j+1]]`.
    pub net_ptr: Vec<usize>,
    /// Concatenated pin lists.
    pub pins: Vec<usize>,
    /// Weight (communication cost) of each net.
    pub net_weights: Vec<u64>,
}

impl Hypergraph {
    /// Builds a hypergraph from per-net pin lists with unit net weights.
    pub fn from_pin_lists(num_vertices: usize, nets: &[Vec<usize>]) -> Self {
        let mut net_ptr = Vec::with_capacity(nets.len() + 1);
        net_ptr.push(0);
        let mut pins = Vec::new();
        for net in nets {
            for &p in net {
                assert!(p < num_vertices, "pin {p} out of range");
            }
            pins.extend_from_slice(net);
            net_ptr.push(pins.len());
        }
        Hypergraph {
            vertex_weights: vec![1; num_vertices],
            net_ptr,
            pins,
            net_weights: vec![1; nets.len()],
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertex_weights.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.net_weights.len()
    }

    /// Total number of pins.
    pub fn num_pins(&self) -> usize {
        self.pins.len()
    }

    /// The pins of net `j`.
    pub fn net(&self, j: usize) -> &[usize] {
        &self.pins[self.net_ptr[j]..self.net_ptr[j + 1]]
    }

    /// Total vertex weight.
    pub fn total_vertex_weight(&self) -> u64 {
        self.vertex_weights.iter().sum()
    }

    /// Builds the transpose (vertex → incident nets) adjacency in CSR form;
    /// used by the partitioners.
    pub fn vertex_to_nets(&self) -> (Vec<usize>, Vec<usize>) {
        let n = self.num_vertices();
        let mut counts = vec![0usize; n];
        for &p in &self.pins {
            counts[p] += 1;
        }
        let mut ptr = Vec::with_capacity(n + 1);
        ptr.push(0usize);
        for v in 0..n {
            ptr.push(ptr[v] + counts[v]);
        }
        let mut adj = vec![0usize; self.pins.len()];
        let mut cursor = ptr[..n].to_vec();
        for net in 0..self.num_nets() {
            for &p in self.net(net) {
                adj[cursor[p]] = net;
                cursor[p] += 1;
            }
        }
        (ptr, adj)
    }

    /// Connectivity−1 cutsize of a partition: `Σ w(net) · (λ(net) − 1)`.
    ///
    /// # Panics
    /// Panics if the partition length does not match the vertex count.
    pub fn connectivity_cutsize(&self, parts: &[u32], num_parts: usize) -> u64 {
        assert_eq!(parts.len(), self.num_vertices());
        let mut seen = vec![u32::MAX; num_parts];
        let mut cut = 0u64;
        for net in 0..self.num_nets() {
            let mut lambda = 0u32;
            for &p in self.net(net) {
                let part = parts[p] as usize;
                if seen[part] != net as u32 {
                    seen[part] = net as u32;
                    lambda += 1;
                }
            }
            if lambda > 1 {
                cut += self.net_weights[net] * (lambda as u64 - 1);
            }
        }
        cut
    }

    /// Per-part vertex weight loads of a partition.
    pub fn part_loads(&self, parts: &[u32], num_parts: usize) -> Vec<u64> {
        assert_eq!(parts.len(), self.num_vertices());
        let mut loads = vec![0u64; num_parts];
        for (v, &p) in parts.iter().enumerate() {
            loads[p as usize] += self.vertex_weights[v];
        }
        loads
    }

    /// Load imbalance `max_load / average_load` of a partition (1.0 =
    /// perfectly balanced; 0 for an empty hypergraph).
    pub fn imbalance(&self, parts: &[u32], num_parts: usize) -> f64 {
        let loads = self.part_loads(parts, num_parts);
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let avg = total as f64 / num_parts as f64;
        let max = *loads.iter().max().unwrap() as f64;
        max / avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Hypergraph {
        // 6 vertices, 3 nets: {0,1,2}, {2,3}, {3,4,5}
        Hypergraph::from_pin_lists(6, &[vec![0, 1, 2], vec![2, 3], vec![3, 4, 5]])
    }

    #[test]
    fn sizes() {
        let h = sample();
        assert_eq!(h.num_vertices(), 6);
        assert_eq!(h.num_nets(), 3);
        assert_eq!(h.num_pins(), 8);
        assert_eq!(h.net(1), &[2, 3]);
        assert_eq!(h.total_vertex_weight(), 6);
    }

    #[test]
    fn vertex_to_nets_adjacency() {
        let h = sample();
        let (ptr, adj) = h.vertex_to_nets();
        // Vertex 2 is in nets 0 and 1; vertex 3 in nets 1 and 2.
        let nets_of_2: Vec<usize> = adj[ptr[2]..ptr[3]].to_vec();
        assert_eq!(nets_of_2, vec![0, 1]);
        let nets_of_3: Vec<usize> = adj[ptr[3]..ptr[4]].to_vec();
        assert_eq!(nets_of_3, vec![1, 2]);
        let nets_of_0: Vec<usize> = adj[ptr[0]..ptr[1]].to_vec();
        assert_eq!(nets_of_0, vec![0]);
    }

    #[test]
    fn cutsize_all_one_part_is_zero() {
        let h = sample();
        let parts = vec![0u32; 6];
        assert_eq!(h.connectivity_cutsize(&parts, 2), 0);
    }

    #[test]
    fn cutsize_counts_lambda_minus_one() {
        let h = sample();
        // parts: {0,1,2} -> 0, {3,4,5} -> 1.  Net 0 inside part 0, net 2
        // inside part 1, net 1 spans both: cutsize = 1.
        let parts = vec![0, 0, 0, 1, 1, 1];
        assert_eq!(h.connectivity_cutsize(&parts, 2), 1);
        // Splitting net 0 across 3 parts gives lambda=3 for it.
        let parts3 = vec![0, 1, 2, 2, 2, 2];
        assert_eq!(h.connectivity_cutsize(&parts3, 3), 2);
    }

    #[test]
    fn cutsize_respects_net_weights() {
        let mut h = sample();
        h.net_weights = vec![5, 7, 11];
        let parts = vec![0, 0, 0, 1, 1, 1];
        assert_eq!(h.connectivity_cutsize(&parts, 2), 7);
    }

    #[test]
    fn loads_and_imbalance() {
        let mut h = sample();
        h.vertex_weights = vec![1, 1, 1, 3, 3, 3];
        let parts = vec![0, 0, 0, 1, 1, 1];
        assert_eq!(h.part_loads(&parts, 2), vec![3, 9]);
        assert!((h.imbalance(&parts, 2) - 1.5).abs() < 1e-12);
        let balanced = vec![0, 1, 0, 1, 0, 1];
        assert!((h.imbalance(&balanced, 2) - 5.0 / 6.0 * 2.0 / 1.0 * 0.6).abs() < 1.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_pin_rejected() {
        let _ = Hypergraph::from_pin_lists(2, &[vec![0, 5]]);
    }
}
