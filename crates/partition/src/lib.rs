//! Hypergraph models and partitioners for distributing sparse Tucker tasks.
//!
//! The distributed-memory algorithms of Kaya & Uçar (ICPP 2016) distribute
//! either *coarse-grain* tasks (one task per index of each mode, owning the
//! whole tensor slice) or *fine-grain* tasks (one task per nonzero) across
//! MPI ranks.  The quality of that distribution determines both the
//! communication volume (factor-matrix rows exchanged per iteration) and
//! the load balance of the TTMc and TRSVD steps — exactly the quantities of
//! the paper's Tables II and III.
//!
//! The paper uses PaToH to partition hypergraph models of the computation
//! (from the authors' earlier CP-ALS work).  PaToH is closed source, so this
//! crate provides:
//!
//! * [`hypergraph::Hypergraph`] — the structure with the connectivity−1
//!   cutsize metric used throughout,
//! * [`models`] — the fine-grain (nonzero-vertex) and coarse-grain
//!   (slice-vertex) hypergraph models of a sparse tensor,
//! * [`partitioners`] — random and contiguous-block baselines (the paper's
//!   `*-rd` / `*-bl` configurations) and a greedy-growing + FM-refinement
//!   partitioner standing in for PaToH (`*-hp` configurations).

pub mod hypergraph;
pub mod models;
pub mod partitioners;

pub use hypergraph::Hypergraph;
pub use models::{coarse_grain_hypergraph, fine_grain_hypergraph};
pub use partitioners::{
    block_partition, greedy_partition, hypergraph_partition, random_partition, refine_partition,
    Partition,
};
