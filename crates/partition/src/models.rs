//! Hypergraph models of the sparse Tucker computation (paper §III-B, based
//! on the authors' CP-ALS models).
//!
//! * **Fine-grain model** — one vertex per *nonzero* (unit weight: every
//!   nonzero costs the same `Π_{t≠n} R_t` Kronecker work in every mode) and
//!   one net per `(mode, index)` pair connecting the nonzeros that carry
//!   that index.  A net whose pins span λ parts forces λ−1 factor-row
//!   transfers per mode pair of the HOOI iteration, so the connectivity−1
//!   cutsize is proportional to the per-iteration communication volume, and
//!   it also equals the extra rows in the sum-distributed TRSVD operator
//!   (the redundant MxV/MTxV work the paper describes).
//!
//! * **Coarse-grain model** (per mode `n`) — one vertex per mode-`n` index
//!   (weighted by its slice's nonzero count, the TTMc work of the task
//!   `t^n_i`) and one net per index of the *other* modes connecting the
//!   mode-`n` vertices it co-occurs with.  Cut nets correspond to factor
//!   rows that must be replicated to several owners.

use crate::hypergraph::Hypergraph;
use sptensor::SparseTensor;

/// Builds the fine-grain hypergraph: vertices are nonzeros, nets are
/// `(mode, index)` pairs.
///
/// Net weights are 1 (each corresponds to one factor-matrix row of `R`
/// entries; the rank factor is constant across nets of a mode and is applied
/// by the simulator when converting to bytes).
pub fn fine_grain_hypergraph(tensor: &SparseTensor) -> Hypergraph {
    let order = tensor.order();
    let nnz = tensor.nnz();
    // Net id of (mode, index): offset[mode] + index, skipping empty nets at
    // the end (empty nets contribute nothing to the cutsize but waste
    // memory; keep them for simplicity of the id scheme).
    let mut offsets = vec![0usize; order + 1];
    for m in 0..order {
        offsets[m + 1] = offsets[m] + tensor.dims()[m];
    }
    let total_nets = offsets[order];

    // Count pins per net, then fill (CSR construction).
    let mut counts = vec![0usize; total_nets];
    for t in 0..nnz {
        let idx = tensor.index(t);
        for m in 0..order {
            counts[offsets[m] + idx[m]] += 1;
        }
    }
    let mut net_ptr = Vec::with_capacity(total_nets + 1);
    net_ptr.push(0usize);
    for j in 0..total_nets {
        net_ptr.push(net_ptr[j] + counts[j]);
    }
    let mut pins = vec![0usize; net_ptr[total_nets]];
    let mut cursor = net_ptr[..total_nets].to_vec();
    for t in 0..nnz {
        let idx = tensor.index(t);
        for m in 0..order {
            let net = offsets[m] + idx[m];
            pins[cursor[net]] = t;
            cursor[net] += 1;
        }
    }

    Hypergraph {
        vertex_weights: vec![1; nnz],
        net_ptr,
        pins,
        net_weights: vec![1; total_nets],
    }
}

/// Builds the coarse-grain hypergraph for one mode: vertices are the
/// mode-`mode` indices (weighted by slice nonzero count), nets are the
/// indices of every other mode.
pub fn coarse_grain_hypergraph(tensor: &SparseTensor, mode: usize) -> Hypergraph {
    assert!(mode < tensor.order());
    let order = tensor.order();
    let dim = tensor.dims()[mode];
    let vertex_weights: Vec<u64> = tensor.slice_nnz(mode).iter().map(|&c| c as u64).collect();

    // Nets: one per (other mode, index).  Collect the set of distinct
    // mode-`mode` vertices per net; duplicates are removed with a "last
    // vertex seen" marker since pins arrive grouped by nonzero order.
    let mut offsets = vec![0usize; order + 1];
    for m in 0..order {
        offsets[m + 1] = offsets[m] + if m == mode { 0 } else { tensor.dims()[m] };
    }
    let total_nets = offsets[order];
    let mut pin_sets: Vec<Vec<usize>> = vec![Vec::new(); total_nets];
    for t in 0..tensor.nnz() {
        let idx = tensor.index(t);
        let v = idx[mode];
        for m in 0..order {
            if m == mode {
                continue;
            }
            let net = offsets[m] + idx[m];
            // Most tensors list many nonzeros of the same slice in a row;
            // the final dedup below keeps correctness regardless.
            if pin_sets[net].last() != Some(&v) {
                pin_sets[net].push(v);
            }
        }
    }
    for set in pin_sets.iter_mut() {
        set.sort_unstable();
        set.dedup();
    }

    let mut h = Hypergraph::from_pin_lists(dim, &pin_sets);
    h.vertex_weights = vertex_weights;
    h
}

/// The net id ranges of the fine-grain model, one `(start, end)` per mode;
/// useful for mode-wise analysis of the cutsize.
pub fn fine_grain_net_ranges(tensor: &SparseTensor) -> Vec<(usize, usize)> {
    let mut ranges = Vec::with_capacity(tensor.order());
    let mut start = 0usize;
    for &d in tensor.dims() {
        ranges.push((start, start + d));
        start += d;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::random_tensor;

    fn sample() -> SparseTensor {
        SparseTensor::from_entries(
            vec![3, 4, 2],
            &[
                (vec![0, 0, 0], 1.0),
                (vec![0, 1, 1], 2.0),
                (vec![1, 1, 1], 3.0),
                (vec![2, 3, 0], 4.0),
            ],
        )
    }

    #[test]
    fn fine_grain_shape() {
        let t = sample();
        let h = fine_grain_hypergraph(&t);
        assert_eq!(h.num_vertices(), 4); // one per nonzero
        assert_eq!(h.num_nets(), 3 + 4 + 2); // one per (mode, index)
        assert_eq!(h.num_pins(), 4 * 3); // order pins per nonzero
    }

    #[test]
    fn fine_grain_nets_group_by_index() {
        let t = sample();
        let h = fine_grain_hypergraph(&t);
        // Net for (mode 0, index 0) must contain nonzeros 0 and 1.
        assert_eq!(h.net(0), &[0, 1]);
        // Net for (mode 1, index 1) = net 3 + 1 = 4 must contain 1 and 2.
        assert_eq!(h.net(3 + 1), &[1, 2]);
        // Net for (mode 2, index 0) = net 3 + 4 + 0 must contain 0 and 3.
        assert_eq!(h.net(3 + 4), &[0, 3]);
    }

    #[test]
    fn fine_grain_cutsize_zero_for_single_part() {
        let t = random_tensor(&[10, 10, 10], 200, 1);
        let h = fine_grain_hypergraph(&t);
        let parts = vec![0u32; h.num_vertices()];
        assert_eq!(h.connectivity_cutsize(&parts, 4), 0);
    }

    #[test]
    fn coarse_grain_vertex_weights_are_slice_sizes() {
        let t = sample();
        let h = coarse_grain_hypergraph(&t, 0);
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.vertex_weights, vec![2, 1, 1]);
        // Nets: one per index of modes 1 and 2 = 4 + 2.
        assert_eq!(h.num_nets(), 6);
    }

    #[test]
    fn coarse_grain_nets_connect_cooccurring_slices() {
        let t = sample();
        let h = coarse_grain_hypergraph(&t, 0);
        // Net for (mode 1, index 1): nonzeros (0,1,1) and (1,1,1) → slices 0, 1.
        assert_eq!(h.net(1), &[0, 1]);
        // Net for (mode 2, index 0): nonzeros (0,0,0) and (2,3,0) → slices 0, 2.
        assert_eq!(h.net(4), &[0, 2]);
    }

    #[test]
    fn coarse_grain_no_duplicate_pins() {
        let t = random_tensor(&[6, 6, 6], 150, 7);
        for mode in 0..3 {
            let h = coarse_grain_hypergraph(&t, mode);
            for net in 0..h.num_nets() {
                let pins = h.net(net);
                let mut sorted = pins.to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), pins.len(), "duplicate pins in net {net}");
            }
        }
    }

    #[test]
    fn net_ranges_cover_all_modes() {
        let t = sample();
        let ranges = fine_grain_net_ranges(&t);
        assert_eq!(ranges, vec![(0, 3), (3, 7), (7, 9)]);
    }

    #[test]
    fn fine_grain_on_4mode_tensor() {
        let t = random_tensor(&[5, 6, 7, 8], 100, 3);
        let h = fine_grain_hypergraph(&t);
        assert_eq!(h.num_vertices(), 100);
        assert_eq!(h.num_nets(), 5 + 6 + 7 + 8);
        assert_eq!(h.num_pins(), 400);
    }
}
