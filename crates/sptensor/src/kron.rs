//! Kronecker products of matrix rows — the inner kernel of the nonzero-based
//! TTMc formulation.
//!
//! For each nonzero `x_{i_1,…,i_N}` and target mode `n`, the paper's
//! Algorithm 2 adds `x · ⊗_{t≠n} U_t(i_t, :)` to row `i_n` of the mode-`n`
//! matricized TTMc result.  The Kronecker product is taken over the modes in
//! increasing order, the first factor varying slowest, which matches the
//! column ordering of [`crate::dense::DenseTensor::unfold`].

/// Computes the Kronecker product of a list of row vectors into `out`.
///
/// `out.len()` must equal the product of the row lengths.  With zero rows the
/// result is the scalar `1.0` in a length-1 buffer.
pub fn kron_rows(rows: &[&[f64]], out: &mut [f64]) {
    let expected: usize = rows.iter().map(|r| r.len()).product();
    assert_eq!(
        out.len(),
        expected.max(1),
        "output buffer has wrong length for Kronecker product"
    );
    out[0] = 1.0;
    let mut filled = 1usize;
    for row in rows {
        if row.is_empty() {
            continue;
        }
        // Expand in place: the currently filled prefix of length `filled`
        // becomes `filled * row.len()` entries.  Iterate backwards so that
        // source entries are not overwritten before they are used.
        let rl = row.len();
        for i in (0..filled).rev() {
            let base = out[i];
            let dst = i * rl;
            for (j, &rj) in row.iter().enumerate().rev() {
                out[dst + j] = base * rj;
            }
        }
        filled *= rl;
    }
}

/// Adds `alpha · (⊗ rows)` to `acc` without materializing the Kronecker
/// product when there are one or two factor rows (the common 3- and 4-mode
/// cases fall back to a scratch buffer supplied by the caller), running at
/// the process-wide default kernel ISA
/// ([`KernelIsa::resolved_default`](crate::simd::KernelIsa::resolved_default),
/// which is bit-identical to scalar by construction).
///
/// `acc.len()` must equal the product of the row lengths; `scratch` must be
/// at least that long when `rows.len() > 2`.
pub fn accumulate_scaled_kron(alpha: f64, rows: &[&[f64]], acc: &mut [f64], scratch: &mut [f64]) {
    accumulate_scaled_kron_isa(
        crate::simd::KernelIsa::resolved_default(),
        alpha,
        rows,
        acc,
        scratch,
    )
}

/// [`accumulate_scaled_kron`] at an explicit kernel ISA — the form the
/// solver threads its plan-resolved [`KernelIsa`](crate::simd::KernelIsa)
/// through.
///
/// # Zero-coefficient contract
///
/// The two-factor branch hoists `coeff = alpha · u_i` per `u` entry and
/// **skips the row when `coeff == 0.0`**; the arity-1 and arity-≥3 branches
/// perform no such skip (every element is multiplied and added
/// unconditionally).  The asymmetry is bit-transparent for finite inputs:
/// accumulators start at `+0.0` and round-to-nearest additions can never
/// produce `-0.0` from one, so adding `coeff·v_j = ±0.0` would leave every
/// bit unchanged — exactly what the skip does.  Only non-finite factor
/// entries (`±∞`, NaN, where `0 · ∞ = NaN`) could tell the branches apart,
/// and tensors with non-finite values are outside every kernel's contract.
/// The regression test `zero_factor_entries_keep_all_arities_bit_identical`
/// in `tests/simd_kernels.rs` pins this across arities, layouts, and ISAs.
pub fn accumulate_scaled_kron_isa(
    isa: crate::simd::KernelIsa,
    alpha: f64,
    rows: &[&[f64]],
    acc: &mut [f64],
    scratch: &mut [f64],
) {
    match rows.len() {
        0 => {
            acc[0] += alpha;
        }
        1 => {
            debug_assert_eq!(acc.len(), rows[0].len());
            crate::simd::axpy(isa, alpha, rows[0], acc);
        }
        2 => {
            let (u, v) = (rows[0], rows[1]);
            debug_assert_eq!(acc.len(), u.len() * v.len());
            // Coefficient hoisted per `u` entry with the zero skip (see the
            // contract above), inner axpy on SIMD lanes.
            crate::simd::scaled_outer2(isa, alpha, u, v, acc);
        }
        _ => {
            let len: usize = rows.iter().map(|r| r.len()).product();
            debug_assert_eq!(acc.len(), len);
            assert!(
                scratch.len() >= len,
                "scratch buffer too small for Kronecker accumulation"
            );
            kron_rows(rows, &mut scratch[..len]);
            crate::simd::axpy(isa, alpha, &scratch[..len], acc);
        }
    }
}

/// Pairwise (left-fold) variant of the scaled Kronecker accumulation used by
/// the `kron_ablation` bench: always materializes the full product via
/// [`kron_rows`] and then axpy's it, regardless of the number of factors.
pub fn accumulate_scaled_kron_materialized(
    alpha: f64,
    rows: &[&[f64]],
    acc: &mut [f64],
    scratch: &mut [f64],
) {
    let len: usize = rows.iter().map(|r| r.len()).product::<usize>().max(1);
    kron_rows(rows, &mut scratch[..len]);
    for (a, &s) in acc.iter_mut().zip(scratch[..len].iter()) {
        *a += alpha * s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kron_two_rows_matches_definition() {
        // u ⊗ v with w_{j+(i-1)J} = u_i v_j (paper's definition).
        let u = [1.0, 2.0];
        let v = [3.0, 4.0, 5.0];
        let mut out = vec![0.0; 6];
        kron_rows(&[&u, &v], &mut out);
        assert_eq!(out, vec![3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn kron_single_row_is_copy() {
        let u = [2.0, -1.0, 0.5];
        let mut out = vec![0.0; 3];
        kron_rows(&[&u], &mut out);
        assert_eq!(out, vec![2.0, -1.0, 0.5]);
    }

    #[test]
    fn kron_empty_list_is_scalar_one() {
        let mut out = vec![0.0; 1];
        kron_rows(&[], &mut out);
        assert_eq!(out, vec![1.0]);
    }

    #[test]
    fn kron_three_rows_associative() {
        let u = [1.0, 2.0];
        let v = [3.0, 4.0];
        let w = [5.0, 6.0, 7.0];
        let mut abc = vec![0.0; 12];
        kron_rows(&[&u, &v, &w], &mut abc);
        // (u ⊗ v) ⊗ w computed in two steps must agree.
        let mut uv = vec![0.0; 4];
        kron_rows(&[&u, &v], &mut uv);
        let mut expected = vec![0.0; 12];
        kron_rows(&[&uv, &w], &mut expected);
        assert_eq!(abc, expected);
    }

    #[test]
    #[should_panic]
    fn kron_wrong_output_length() {
        let u = [1.0, 2.0];
        let mut out = vec![0.0; 3];
        kron_rows(&[&u, &u], &mut out);
    }

    #[test]
    fn accumulate_one_factor() {
        let u = [1.0, 2.0, 3.0];
        let mut acc = vec![10.0, 10.0, 10.0];
        accumulate_scaled_kron(2.0, &[&u], &mut acc, &mut []);
        assert_eq!(acc, vec![12.0, 14.0, 16.0]);
    }

    #[test]
    fn accumulate_two_factors_matches_materialized() {
        let u = [1.0, -2.0];
        let v = [0.5, 3.0, 1.0];
        let mut acc1 = vec![1.0; 6];
        let mut acc2 = vec![1.0; 6];
        let mut scratch = vec![0.0; 6];
        accumulate_scaled_kron(1.5, &[&u, &v], &mut acc1, &mut scratch);
        accumulate_scaled_kron_materialized(1.5, &[&u, &v], &mut acc2, &mut scratch);
        for (a, b) in acc1.iter().zip(&acc2) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn accumulate_three_factors_uses_scratch() {
        let u = [1.0, 2.0];
        let v = [3.0, 4.0];
        let w = [5.0, 6.0];
        let mut acc = vec![0.0; 8];
        let mut scratch = vec![0.0; 8];
        accumulate_scaled_kron(1.0, &[&u, &v, &w], &mut acc, &mut scratch);
        let mut expected = vec![0.0; 8];
        kron_rows(&[&u, &v, &w], &mut expected);
        assert_eq!(acc, expected);
    }

    #[test]
    fn accumulate_zero_factors_adds_scalar() {
        let mut acc = vec![1.0];
        accumulate_scaled_kron(3.0, &[], &mut acc, &mut []);
        assert_eq!(acc, vec![4.0]);
    }

    #[test]
    fn accumulate_respects_alpha_zero() {
        let u = [1.0, 1.0];
        let v = [1.0, 1.0];
        let mut acc = vec![5.0; 4];
        let mut scratch = vec![0.0; 4];
        accumulate_scaled_kron(0.0, &[&u, &v], &mut acc, &mut scratch);
        assert_eq!(acc, vec![5.0; 4]);
    }
}
