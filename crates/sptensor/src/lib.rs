//! Sparse and dense tensor data structures for HyperTensor-RS.
//!
//! The sparse Tucker algorithms of Kaya & Uçar (ICPP 2016) operate on
//! general order-`N` sparse tensors stored in coordinate (COO) format and on
//! small dense tensors (TTMc results and the core tensor).  This crate
//! provides:
//!
//! * [`coo::SparseTensor`] — order-`N` COO tensor with sorting, coalescing
//!   and slice/statistics helpers,
//! * [`dense::DenseTensor`] — dense order-`N` tensor with C-order (last mode
//!   fastest) layout, mode-`n` unfoldings and dense TTM,
//! * [`kron::kron_rows`] and friends — the Kronecker-product-of-rows kernel
//!   at the heart of the nonzero-based TTMc formulation (paper Eq. (4)),
//! * [`layout::ModeSortedNonzeros`] — cache-resident per-mode copies of the
//!   nonzero data (values + foreign-mode indices permuted into update-list
//!   order) so the numeric TTMc streams instead of gathering through COO ids,
//! * [`csf::CsfMode`] / [`csf::CsfTensor`] — compressed sparse fiber (CSF)
//!   hierarchies with `u32` ids where the dimensions permit, built from COO
//!   or streamed from a sorted nonzero stream,
//! * [`io`] — FROSTT-style `.tns` text I/O, including a bounded-memory
//!   chunked reader and an external-sort spill/merge pipeline for tensors
//!   larger than RAM,
//! * [`stats`] — per-mode nonzero statistics used by the experiment tables,
//! * [`hash`] — a small fast hasher for integer keys (FxHash-style), used by
//!   coalescing and the data generators.
//!
//! # Layout conventions
//!
//! Throughout the workspace, dense tensors are stored in C order (the last
//! mode varies fastest) and the mode-`n` unfolding `Y_(n)` places mode `n`
//! on the rows and the remaining modes, in increasing order with the last
//! one varying fastest, on the columns.  The Kronecker product
//! `⊗_{t≠n} U_t(i_t, :)` in increasing mode order produces exactly that
//! column ordering, so the nonzero-based TTMc (Algorithm 2 of the paper)
//! writes rows of the unfolding directly.

pub mod coo;
pub mod csf;
pub mod dense;
pub mod hash;
pub mod io;
pub mod kron;
pub mod layout;
pub mod stats;

/// Runtime-dispatched SIMD kernel layer (re-exported from `linalg` so the
/// tensor kernels and their callers share one canonical `sptensor::simd`
/// path without a dependency cycle).
pub use linalg::simd;
pub use linalg::simd::KernelIsa;

pub use coo::SparseTensor;
pub use csf::{CsfData, CsfIndex, CsfMode, CsfModeBuilder, CsfTensor};
pub use dense::DenseTensor;
pub use kron::{accumulate_scaled_kron, accumulate_scaled_kron_isa, kron_rows};
pub use layout::ModeSortedNonzeros;

/// Computes the product of a slice of dimensions, used for unfolding sizes.
/// Returns 1 for an empty slice.
pub fn dims_product(dims: &[usize]) -> usize {
    dims.iter().product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_product_basic() {
        assert_eq!(dims_product(&[2, 3, 4]), 24);
        assert_eq!(dims_product(&[]), 1);
        assert_eq!(dims_product(&[5]), 5);
        assert_eq!(dims_product(&[3, 0]), 0);
    }
}
