//! Order-`N` sparse tensors in coordinate (COO) format.
//!
//! Nonzero indices are stored flattened in a single `Vec<usize>` of length
//! `nnz * order` (indices of nonzero `t` occupy
//! `indices[t * order .. (t + 1) * order]`), which keeps each nonzero's
//! coordinates contiguous — the access pattern of the nonzero-based TTMc.

use crate::hash::FxHashMap;
use std::cmp::Ordering;

/// An order-`N` sparse tensor in coordinate format with `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseTensor {
    dims: Vec<usize>,
    /// Flattened indices: nonzero `t` occupies `indices[t*order..(t+1)*order]`.
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl SparseTensor {
    /// Creates an empty sparse tensor with the given mode sizes.
    ///
    /// # Panics
    /// Panics if `dims` is empty or any dimension is zero.
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(!dims.is_empty(), "a tensor needs at least one mode");
        assert!(
            dims.iter().all(|&d| d > 0),
            "all mode sizes must be positive"
        );
        SparseTensor {
            dims,
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates an empty sparse tensor and reserves space for `nnz` nonzeros.
    pub fn with_capacity(dims: Vec<usize>, nnz: usize) -> Self {
        let mut t = SparseTensor::new(dims);
        t.indices.reserve(nnz * t.order());
        t.values.reserve(nnz);
        t
    }

    /// Builds a tensor from parallel slices of index tuples and values.
    ///
    /// # Panics
    /// Panics if lengths disagree or any index is out of bounds.
    pub fn from_entries(dims: Vec<usize>, entries: &[(Vec<usize>, f64)]) -> Self {
        let mut t = SparseTensor::with_capacity(dims, entries.len());
        for (idx, val) in entries {
            t.push(idx, *val);
        }
        t
    }

    /// Number of modes (`N`).
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Mode sizes `I_1, …, I_N`.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Whether the tensor stores no nonzeros.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Appends a nonzero.
    ///
    /// # Panics
    /// Panics if the index tuple has the wrong length or is out of bounds.
    pub fn push(&mut self, index: &[usize], value: f64) {
        assert_eq!(index.len(), self.order(), "index arity mismatch");
        for (m, (&i, &d)) in index.iter().zip(self.dims.iter()).enumerate() {
            assert!(i < d, "index {i} out of bounds for mode {m} of size {d}");
        }
        self.indices.extend_from_slice(index);
        self.values.push(value);
    }

    /// The index tuple of nonzero `t`.
    // Not `std::ops::Index`: that trait cannot return a computed sub-slice
    // of a flat buffer by value semantics this API needs, and `index` is the
    // paper's name for a nonzero's coordinate tuple.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn index(&self, t: usize) -> &[usize] {
        let n = self.order();
        &self.indices[t * n..(t + 1) * n]
    }

    /// The value of nonzero `t`.
    #[inline]
    pub fn value(&self, t: usize) -> f64 {
        self.values[t]
    }

    /// Mutable access to the value of nonzero `t`.
    #[inline]
    pub fn value_mut(&mut self, t: usize) -> &mut f64 {
        &mut self.values[t]
    }

    /// All values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterator over `(index_tuple, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[usize], f64)> + '_ {
        let n = self.order();
        self.indices
            .chunks_exact(n)
            .zip(self.values.iter().copied())
    }

    /// Frobenius norm `sqrt(Σ x²)` (assumes the tensor is coalesced; duplicate
    /// coordinates would be counted separately).
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Density `nnz / Π I_n`.
    pub fn density(&self) -> f64 {
        let total: f64 = self.dims.iter().map(|&d| d as f64).product();
        if total == 0.0 {
            0.0
        } else {
            self.nnz() as f64 / total
        }
    }

    /// Sorts the nonzeros lexicographically by index tuple (stable order for
    /// reproducible parallel runs and I/O).
    pub fn sort(&mut self) {
        let n = self.order();
        let mut perm: Vec<usize> = (0..self.nnz()).collect();
        let indices = &self.indices;
        perm.sort_by(|&a, &b| {
            let ia = &indices[a * n..(a + 1) * n];
            let ib = &indices[b * n..(b + 1) * n];
            ia.cmp(ib)
        });
        self.apply_permutation(&perm);
    }

    /// Sorts the nonzeros by their index in `mode` (ties broken
    /// lexicographically); this groups together the nonzeros of each
    /// mode-`mode` slice, the layout assumed by the coarse-grain owner-of-row
    /// task definition.
    pub fn sort_by_mode(&mut self, mode: usize) {
        assert!(mode < self.order());
        let n = self.order();
        let mut perm: Vec<usize> = (0..self.nnz()).collect();
        let indices = &self.indices;
        perm.sort_by(|&a, &b| {
            let ia = &indices[a * n..(a + 1) * n];
            let ib = &indices[b * n..(b + 1) * n];
            match ia[mode].cmp(&ib[mode]) {
                Ordering::Equal => ia.cmp(ib),
                other => other,
            }
        });
        self.apply_permutation(&perm);
    }

    fn apply_permutation(&mut self, perm: &[usize]) {
        let n = self.order();
        let mut new_indices = Vec::with_capacity(self.indices.len());
        let mut new_values = Vec::with_capacity(self.values.len());
        for &p in perm {
            new_indices.extend_from_slice(&self.indices[p * n..(p + 1) * n]);
            new_values.push(self.values[p]);
        }
        self.indices = new_indices;
        self.values = new_values;
    }

    /// Merges duplicate coordinates by summing their values and drops exact
    /// zeros.  Returns the number of nonzeros removed.
    pub fn coalesce(&mut self) -> usize {
        let n = self.order();
        let before = self.nnz();
        // Hash on the linearized index (fits in u128 for realistic sizes; use
        // a tuple of the raw index slice otherwise).  We use the index slice
        // as the key via a map from Vec<usize>.
        let mut map: FxHashMap<Vec<usize>, f64> = FxHashMap::default();
        map.reserve(self.nnz());
        for t in 0..self.nnz() {
            let key = self.indices[t * n..(t + 1) * n].to_vec();
            *map.entry(key).or_insert(0.0) += self.values[t];
        }
        let mut entries: Vec<(Vec<usize>, f64)> =
            map.into_iter().filter(|(_, v)| *v != 0.0).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        self.indices.clear();
        self.values.clear();
        for (idx, val) in entries {
            self.indices.extend_from_slice(&idx);
            self.values.push(val);
        }
        before - self.nnz()
    }

    /// Returns the nonzeros whose positions are listed in `which`, as a new
    /// tensor with the same mode sizes.  Used to split a tensor across
    /// simulated processes.
    pub fn subset(&self, which: &[usize]) -> SparseTensor {
        let n = self.order();
        let mut out = SparseTensor::with_capacity(self.dims.clone(), which.len());
        for &t in which {
            out.indices
                .extend_from_slice(&self.indices[t * n..(t + 1) * n]);
            out.values.push(self.values[t]);
        }
        out
    }

    /// Number of nonzeros in each mode-`mode` slice (a histogram of length
    /// `I_mode`).  Slice `i` of mode `n` is the set of nonzeros with
    /// `i_n = i`; its size drives the cost of the coarse-grain task `t^n_i`.
    pub fn slice_nnz(&self, mode: usize) -> Vec<usize> {
        assert!(mode < self.order());
        let mut counts = vec![0usize; self.dims[mode]];
        let n = self.order();
        for t in 0..self.nnz() {
            counts[self.indices[t * n + mode]] += 1;
        }
        counts
    }

    /// Number of non-empty slices in the given mode (the `|J_n|` of the
    /// paper's symbolic TTMc).
    pub fn nonempty_slices(&self, mode: usize) -> usize {
        self.slice_nnz(mode).iter().filter(|&&c| c > 0).count()
    }

    /// Scales every value by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        self.values.iter_mut().for_each(|v| *v *= alpha);
    }

    /// Returns the maximum index used in each mode (or `None` for an empty
    /// tensor); useful to validate generated data.
    pub fn max_indices(&self) -> Option<Vec<usize>> {
        if self.is_empty() {
            return None;
        }
        let n = self.order();
        let mut maxes = vec![0usize; n];
        for t in 0..self.nnz() {
            for m in 0..n {
                maxes[m] = maxes[m].max(self.indices[t * n + m]);
            }
        }
        Some(maxes)
    }

    /// Checks internal consistency (index arity, bounds); returns an error
    /// string describing the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.order();
        if self.indices.len() != self.values.len() * n {
            return Err(format!(
                "index buffer length {} does not equal nnz {} * order {}",
                self.indices.len(),
                self.values.len(),
                n
            ));
        }
        for t in 0..self.nnz() {
            for m in 0..n {
                let i = self.indices[t * n + m];
                if i >= self.dims[m] {
                    return Err(format!(
                        "nonzero {t}: index {i} out of bounds for mode {m} (size {})",
                        self.dims[m]
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample3() -> SparseTensor {
        SparseTensor::from_entries(
            vec![3, 4, 5],
            &[
                (vec![0, 0, 0], 1.0),
                (vec![2, 3, 4], 2.0),
                (vec![1, 2, 3], 3.0),
                (vec![0, 1, 1], -1.0),
            ],
        )
    }

    #[test]
    fn new_empty() {
        let t = SparseTensor::new(vec![2, 3]);
        assert_eq!(t.order(), 2);
        assert_eq!(t.dims(), &[2, 3]);
        assert_eq!(t.nnz(), 0);
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_dim_rejected() {
        let _ = SparseTensor::new(vec![2, 0]);
    }

    #[test]
    fn push_and_access() {
        let t = sample3();
        assert_eq!(t.nnz(), 4);
        assert_eq!(t.index(1), &[2, 3, 4]);
        assert_eq!(t.value(1), 2.0);
    }

    #[test]
    #[should_panic]
    fn push_out_of_bounds() {
        let mut t = SparseTensor::new(vec![2, 2]);
        t.push(&[0, 2], 1.0);
    }

    #[test]
    #[should_panic]
    fn push_wrong_arity() {
        let mut t = SparseTensor::new(vec![2, 2]);
        t.push(&[0], 1.0);
    }

    #[test]
    fn iter_matches_contents() {
        let t = sample3();
        let collected: Vec<_> = t.iter().map(|(i, v)| (i.to_vec(), v)).collect();
        assert_eq!(collected.len(), 4);
        assert_eq!(collected[2], (vec![1, 2, 3], 3.0));
    }

    #[test]
    fn frobenius_norm_known() {
        let t = sample3();
        let expected = (1.0f64 + 4.0 + 9.0 + 1.0).sqrt();
        assert!((t.frobenius_norm() - expected).abs() < 1e-12);
    }

    #[test]
    fn density_small() {
        let t = sample3();
        assert!((t.density() - 4.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn sort_lexicographic() {
        let mut t = sample3();
        t.sort();
        let firsts: Vec<usize> = (0..t.nnz()).map(|k| t.index(k)[0]).collect();
        assert_eq!(firsts, vec![0, 0, 1, 2]);
        assert_eq!(t.index(0), &[0, 0, 0]);
        assert_eq!(t.index(1), &[0, 1, 1]);
    }

    #[test]
    fn sort_by_mode_groups_slices() {
        let mut t = sample3();
        t.sort_by_mode(2);
        let thirds: Vec<usize> = (0..t.nnz()).map(|k| t.index(k)[2]).collect();
        let mut sorted = thirds.clone();
        sorted.sort_unstable();
        assert_eq!(thirds, sorted);
    }

    #[test]
    fn coalesce_merges_duplicates() {
        let mut t = SparseTensor::from_entries(
            vec![2, 2],
            &[
                (vec![0, 0], 1.0),
                (vec![0, 0], 2.0),
                (vec![1, 1], 5.0),
                (vec![1, 0], 3.0),
                (vec![1, 0], -3.0),
            ],
        );
        let removed = t.coalesce();
        assert_eq!(removed, 3);
        assert_eq!(t.nnz(), 2);
        t.sort();
        assert_eq!(t.index(0), &[0, 0]);
        assert_eq!(t.value(0), 3.0);
        assert_eq!(t.index(1), &[1, 1]);
    }

    #[test]
    fn subset_extracts_in_order() {
        let t = sample3();
        let s = t.subset(&[2, 0]);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.index(0), &[1, 2, 3]);
        assert_eq!(s.index(1), &[0, 0, 0]);
        assert_eq!(s.dims(), t.dims());
    }

    #[test]
    fn slice_nnz_histogram() {
        let t = sample3();
        assert_eq!(t.slice_nnz(0), vec![2, 1, 1]);
        assert_eq!(t.nonempty_slices(0), 3);
        assert_eq!(t.nonempty_slices(1), 4);
    }

    #[test]
    fn scale_values() {
        let mut t = sample3();
        t.scale(2.0);
        assert_eq!(t.value(0), 2.0);
        assert_eq!(t.value(3), -2.0);
    }

    #[test]
    fn max_indices_and_validate() {
        let t = sample3();
        assert_eq!(t.max_indices(), Some(vec![2, 3, 4]));
        assert!(t.validate().is_ok());
        let empty = SparseTensor::new(vec![2, 2]);
        assert_eq!(empty.max_indices(), None);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let t = SparseTensor::with_capacity(vec![4, 4], 100);
        assert_eq!(t.nnz(), 0);
        assert_eq!(t.dims(), &[4, 4]);
    }
}
