//! A small, fast, non-cryptographic hasher for integer-like keys.
//!
//! Coalescing sparse tensors and generating synthetic data both hash many
//! millions of small integer keys; the SipHash default of `std` is the
//! bottleneck there.  This is the well-known Fx (Firefox/rustc) multiplicative
//! hash, implemented locally to avoid an extra dependency (per DESIGN.md the
//! only non-allowed-list dependency is rayon).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the Fx hash (64-bit golden-ratio based).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic hasher suitable for small integer keys.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Process 8 bytes at a time, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` keyed with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with the Fx hasher.
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

/// Hashes an index tuple into a single `u64`; used to deduplicate generated
/// coordinates without allocating a key per nonzero.
pub fn hash_index_tuple(index: &[usize]) -> u64 {
    let mut h = FxHasher::default();
    for &i in index {
        h.write_usize(i);
    }
    h.finish()
}

/// Linearizes an index tuple with respect to mode sizes (C order, last mode
/// fastest).  Panics in debug builds if the result would overflow `u128`.
pub fn linearize(index: &[usize], dims: &[usize]) -> u128 {
    debug_assert_eq!(index.len(), dims.len());
    let mut lin: u128 = 0;
    for (&i, &d) in index.iter().zip(dims.iter()) {
        lin = lin * d as u128 + i as u128;
    }
    lin
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hasher_is_deterministic() {
        let a = hash_index_tuple(&[1, 2, 3]);
        let b = hash_index_tuple(&[1, 2, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn hasher_differs_on_different_keys() {
        let a = hash_index_tuple(&[1, 2, 3]);
        let b = hash_index_tuple(&[3, 2, 1]);
        assert_ne!(a, b);
    }

    #[test]
    fn fx_hash_map_works() {
        let mut m: FxHashMap<u64, usize> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, (i * 2) as usize);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 1000);
    }

    #[test]
    fn fx_hash_set_distinct() {
        let mut s: FxHashSet<Vec<usize>> = FxHashSet::default();
        s.insert(vec![1, 2]);
        s.insert(vec![1, 2]);
        s.insert(vec![2, 1]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn write_bytes_tail_handling() {
        let mut h1 = FxHasher::default();
        h1.write(b"hello world!!");
        let mut h2 = FxHasher::default();
        h2.write(b"hello world!?");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn linearize_c_order() {
        // dims [2,3,4]: index [1,2,3] -> ((1*3)+2)*4+3 = 23
        assert_eq!(linearize(&[1, 2, 3], &[2, 3, 4]), 23);
        assert_eq!(linearize(&[0, 0, 0], &[2, 3, 4]), 0);
        assert_eq!(linearize(&[1, 2], &[5, 7]), 9);
    }

    #[test]
    fn linearize_is_injective_within_bounds() {
        let dims = [3, 4, 5];
        let mut seen = FxHashSet::default();
        for i in 0..3 {
            for j in 0..4 {
                for k in 0..5 {
                    assert!(seen.insert(linearize(&[i, j, k], &dims)));
                }
            }
        }
        assert_eq!(seen.len(), 60);
    }
}
