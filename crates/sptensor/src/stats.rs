//! Per-mode statistics of sparse tensors.
//!
//! These are the quantities the paper's experiment tables are built from:
//! slice sizes drive coarse-grain task costs (Table III's W_TTMc imbalance),
//! the number of non-empty slices per mode drives the TRSVD row counts
//! (W_TRSVD), and the skew of the slice-size distribution explains which
//! datasets are latency-bound (Table V discussion).

use crate::coo::SparseTensor;
use rayon::prelude::*;

/// Summary statistics of the nonzeros-per-slice histogram of one mode.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeStats {
    /// Mode index.
    pub mode: usize,
    /// Mode size `I_n`.
    pub dim: usize,
    /// Number of slices with at least one nonzero (`|J_n|`).
    pub nonempty_slices: usize,
    /// Maximum nonzeros in a single slice.
    pub max_slice_nnz: usize,
    /// Mean nonzeros per *non-empty* slice.
    pub mean_slice_nnz: f64,
    /// Ratio `max / mean` over non-empty slices — the load-imbalance bound
    /// for coarse-grain tasks in this mode.
    pub imbalance: f64,
}

/// Full per-mode statistics of a tensor.
#[derive(Debug, Clone)]
pub struct TensorStats {
    /// One entry per mode.
    pub modes: Vec<ModeStats>,
    /// Total number of nonzeros.
    pub nnz: usize,
    /// Density `nnz / Π I_n`.
    pub density: f64,
}

/// Computes statistics for a single mode.
pub fn mode_stats(tensor: &SparseTensor, mode: usize) -> ModeStats {
    let hist = tensor.slice_nnz(mode);
    let nonempty: Vec<usize> = hist.iter().copied().filter(|&c| c > 0).collect();
    let nonempty_slices = nonempty.len();
    let max_slice_nnz = nonempty.iter().copied().max().unwrap_or(0);
    let mean_slice_nnz = if nonempty_slices == 0 {
        0.0
    } else {
        tensor.nnz() as f64 / nonempty_slices as f64
    };
    let imbalance = if mean_slice_nnz > 0.0 {
        max_slice_nnz as f64 / mean_slice_nnz
    } else {
        0.0
    };
    ModeStats {
        mode,
        dim: tensor.dims()[mode],
        nonempty_slices,
        max_slice_nnz,
        mean_slice_nnz,
        imbalance,
    }
}

/// Computes statistics for every mode (modes processed in parallel, the same
/// "symbolic work per mode is independent" observation as the paper's
/// symbolic TTMc).
pub fn tensor_stats(tensor: &SparseTensor) -> TensorStats {
    let modes: Vec<ModeStats> = (0..tensor.order())
        .into_par_iter()
        .map(|m| mode_stats(tensor, m))
        .collect();
    TensorStats {
        modes,
        nnz: tensor.nnz(),
        density: tensor.density(),
    }
}

/// Formats a tensor's headline properties as a row of the paper's Table I
/// (`I_1 I_2 … I_N  #nonzeros`).
pub fn table1_row(name: &str, tensor: &SparseTensor) -> String {
    let dims: Vec<String> = tensor.dims().iter().map(|d| format_count(*d)).collect();
    format!(
        "{:<12} {:>10} {:>12}",
        name,
        dims.join(" x "),
        format_count(tensor.nnz())
    )
}

/// Human-readable count with K/M suffixes (e.g. `480K`, `100M`), mirroring
/// the notation of Table I in the paper.
pub fn format_count(n: usize) -> String {
    if n >= 10_000_000 {
        format!("{:.0}M", n as f64 / 1e6)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.0}K", n as f64 / 1e3)
    } else if n >= 1_000 {
        format!("{:.1}K", n as f64 / 1e3)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_tensor() -> SparseTensor {
        // Mode 0 slice 0 holds 4 nonzeros, slice 1 holds 1, slice 2 empty.
        SparseTensor::from_entries(
            vec![3, 5, 5],
            &[
                (vec![0, 0, 0], 1.0),
                (vec![0, 1, 1], 1.0),
                (vec![0, 2, 2], 1.0),
                (vec![0, 3, 3], 1.0),
                (vec![1, 4, 4], 1.0),
            ],
        )
    }

    #[test]
    fn mode_stats_counts() {
        let t = skewed_tensor();
        let s = mode_stats(&t, 0);
        assert_eq!(s.dim, 3);
        assert_eq!(s.nonempty_slices, 2);
        assert_eq!(s.max_slice_nnz, 4);
        assert!((s.mean_slice_nnz - 2.5).abs() < 1e-12);
        assert!((s.imbalance - 1.6).abs() < 1e-12);
    }

    #[test]
    fn mode_stats_uniform_mode() {
        let t = skewed_tensor();
        let s = mode_stats(&t, 1);
        assert_eq!(s.nonempty_slices, 5);
        assert_eq!(s.max_slice_nnz, 1);
        assert!((s.imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tensor_stats_all_modes() {
        let t = skewed_tensor();
        let stats = tensor_stats(&t);
        assert_eq!(stats.modes.len(), 3);
        assert_eq!(stats.nnz, 5);
        assert!(stats.density > 0.0);
        assert_eq!(stats.modes[0].mode, 0);
        assert_eq!(stats.modes[2].mode, 2);
    }

    #[test]
    fn empty_tensor_stats() {
        let t = SparseTensor::new(vec![4, 4]);
        let s = mode_stats(&t, 0);
        assert_eq!(s.nonempty_slices, 0);
        assert_eq!(s.max_slice_nnz, 0);
        assert_eq!(s.imbalance, 0.0);
    }

    #[test]
    fn format_count_suffixes() {
        assert_eq!(format_count(999), "999");
        assert_eq!(format_count(1_400), "1.4K");
        assert_eq!(format_count(480_000), "480K");
        assert_eq!(format_count(3_200_000), "3.2M");
        assert_eq!(format_count(100_000_000), "100M");
    }

    #[test]
    fn table1_row_contains_name_and_nnz() {
        let t = skewed_tensor();
        let row = table1_row("Tiny", &t);
        assert!(row.contains("Tiny"));
        assert!(row.contains('5'));
    }
}
