//! Compressed sparse fiber (CSF) index structures.
//!
//! A [`CsfMode`] stores the nonzeros of one mode's update lists as a fiber
//! hierarchy: the root level enumerates the mode-`n` slices that own at least
//! one nonzero, each internal level groups runs of nonzeros that share a
//! prefix of foreign-mode indices into *fibers*, and the leaf level holds the
//! last foreign index plus the value.  Index arrays narrow to `u32` whenever
//! the foreign dimensions and the nonzero count permit, so the structure is
//! both smaller than [`ModeSortedNonzeros`](crate::layout::ModeSortedNonzeros)
//! (which repeats every foreign index per nonzero) and friendlier to the
//! numeric kernel, which hoists one factor-row lookup per fiber instead of
//! one per nonzero.
//!
//! Fibers only compress *consecutive* equal prefixes, so building a
//! `CsfMode` from an arbitrary permutation of nonzeros is always correct —
//! the leaf level enumerates nonzeros in exactly the order of the supplied
//! permutation, which is what keeps CSF-driven TTMc bit-identical to the
//! COO-order kernels.  The compression ratio simply improves when the
//! permutation sorts lexicographically within each slice.

use crate::coo::SparseTensor;

/// Integer type used for fiber ids and intra-level pointers.
///
/// `u32` is chosen whenever every foreign dimension and the nonzero count fit;
/// `usize` otherwise.  Pointers index into the next level's fiber array (at
/// most `nnz` entries), so the same width works for both ids and pointers.
pub trait CsfIndex: Copy + Default + std::fmt::Debug + Send + Sync + 'static {
    /// Widens the stored id back to a `usize` index.
    fn to_usize(self) -> usize;
    /// Narrows an index; callers guarantee it fits.
    fn from_usize(i: usize) -> Self;
}

impl CsfIndex for u32 {
    #[inline(always)]
    fn to_usize(self) -> usize {
        self as usize
    }
    #[inline(always)]
    fn from_usize(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize);
        i as u32
    }
}

impl CsfIndex for usize {
    #[inline(always)]
    fn to_usize(self) -> usize {
        self
    }
    #[inline(always)]
    fn from_usize(i: usize) -> Self {
        i
    }
}

/// One mode's fiber hierarchy with a concrete index width `I`.
///
/// Root slice `p` (aligned with the row order of the permutation the
/// structure was built from) owns the level-0 fibers
/// `root_range(p).0 .. root_range(p).1`; fiber `f` of internal level `l`
/// carries the foreign index [`fiber_id`](Self::fiber_id)`(l, f)` and owns
/// the child range [`fiber_range`](Self::fiber_range)`(l, f)` of level
/// `l + 1` (or of the leaves for the deepest internal level).  With
/// `arity == 1` there are no internal levels and root ranges index the
/// leaves directly.
#[derive(Debug, Clone, Default)]
pub struct CsfData<I> {
    mode: usize,
    arity: usize,
    root_ids: Vec<usize>,
    root_ptr: Vec<usize>,
    level_ids: Vec<Vec<I>>,
    level_ptr: Vec<Vec<I>>,
    leaf_ids: Vec<I>,
    values: Vec<f64>,
}

impl<I: CsfIndex> CsfData<I> {
    /// The mode this hierarchy is rooted at.
    #[inline]
    pub fn mode(&self) -> usize {
        self.mode
    }

    /// Number of foreign modes (`order - 1`); the hierarchy has
    /// `arity - 1` internal levels plus the leaf level.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of root slices (mode-`n` indices with at least one nonzero).
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.root_ids.len()
    }

    /// Number of nonzeros stored.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The mode-`n` index of root slice `p`.
    #[inline]
    pub fn root_id(&self, p: usize) -> usize {
        self.root_ids[p]
    }

    /// The level-0 fiber range (or leaf range when `arity == 1`, or value
    /// range when `arity == 0`) owned by root slice `p`.
    #[inline]
    pub fn root_range(&self, p: usize) -> (usize, usize) {
        (self.root_ptr[p], self.root_ptr[p + 1])
    }

    /// The foreign-mode index of fiber `f` at internal level `level`.
    #[inline]
    pub fn fiber_id(&self, level: usize, f: usize) -> usize {
        self.level_ids[level][f].to_usize()
    }

    /// The child range of fiber `f` at internal level `level` — indices into
    /// level `level + 1`, or into the leaves for the deepest internal level.
    #[inline]
    pub fn fiber_range(&self, level: usize, f: usize) -> (usize, usize) {
        (
            self.level_ptr[level][f].to_usize(),
            self.level_ptr[level][f + 1].to_usize(),
        )
    }

    /// The last foreign-mode index of leaf `k`.
    #[inline]
    pub fn leaf_id(&self, k: usize) -> usize {
        self.leaf_ids[k].to_usize()
    }

    /// The value of leaf `k`.
    #[inline]
    pub fn value(&self, k: usize) -> f64 {
        self.values[k]
    }

    /// The contiguous leaf slices `(ids, values)` for positions `lo..hi` —
    /// the streaming view used by the innermost kernel loop.
    #[inline]
    pub fn leaves(&self, lo: usize, hi: usize) -> (&[I], &[f64]) {
        (&self.leaf_ids[lo..hi], &self.values[lo..hi])
    }

    /// Number of fibers at internal level `level`.
    pub fn num_fibers(&self, level: usize) -> usize {
        self.level_ids[level].len()
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        let id = std::mem::size_of::<I>();
        let word = std::mem::size_of::<usize>();
        let mut bytes = self.root_ids.len() * word
            + self.root_ptr.len() * word
            + self.leaf_ids.len() * id
            + self.values.len() * std::mem::size_of::<f64>();
        for (ids, ptr) in self.level_ids.iter().zip(self.level_ptr.iter()) {
            bytes += ids.len() * id + ptr.len() * id;
        }
        bytes
    }

    /// Visits every stored nonzero in leaf order as
    /// `(root_index, foreign_coords, value)`, reconstructing the foreign
    /// coordinates (increasing mode order, this mode omitted) along the way.
    pub fn for_each_nonzero<F: FnMut(usize, &[usize], f64)>(&self, mut f: F) {
        let mut coords = vec![0usize; self.arity];
        for p in 0..self.num_rows() {
            let root = self.root_ids[p];
            let (lo, hi) = self.root_range(p);
            self.walk(0, lo, hi, root, &mut coords, &mut f);
        }
    }

    fn walk<F: FnMut(usize, &[usize], f64)>(
        &self,
        level: usize,
        lo: usize,
        hi: usize,
        root: usize,
        coords: &mut Vec<usize>,
        f: &mut F,
    ) {
        let internal = self.arity.saturating_sub(1);
        if self.arity == 0 {
            for k in lo..hi {
                f(root, &[], self.values[k]);
            }
        } else if level == internal {
            for k in lo..hi {
                coords[internal] = self.leaf_ids[k].to_usize();
                f(root, coords, self.values[k]);
            }
        } else {
            for fiber in lo..hi {
                coords[level] = self.fiber_id(level, fiber);
                let (clo, chi) = self.fiber_range(level, fiber);
                self.walk(level + 1, clo, chi, root, coords, f);
            }
        }
    }
}

/// Incremental fiber-hierarchy builder shared by the COO and streamed paths.
#[derive(Debug)]
struct RawBuilder<I: CsfIndex> {
    mode: usize,
    arity: usize,
    root_ids: Vec<usize>,
    root_ptr: Vec<usize>,
    level_ids: Vec<Vec<I>>,
    level_ptr: Vec<Vec<I>>,
    leaf_ids: Vec<I>,
    values: Vec<f64>,
    prev: Vec<usize>,
    row_open: bool,
}

impl<I: CsfIndex> RawBuilder<I> {
    fn new(mode: usize, arity: usize, nnz_hint: usize) -> Self {
        let internal = arity.saturating_sub(1);
        RawBuilder {
            mode,
            arity,
            root_ids: Vec::new(),
            root_ptr: Vec::new(),
            level_ids: (0..internal).map(|_| Vec::new()).collect(),
            level_ptr: (0..internal).map(|_| Vec::new()).collect(),
            leaf_ids: Vec::with_capacity(if arity > 0 { nnz_hint } else { 0 }),
            values: Vec::with_capacity(nnz_hint),
            prev: vec![0; arity],
            row_open: false,
        }
    }

    fn start_row(&mut self, root: usize) {
        self.root_ids.push(root);
        self.root_ptr.push(self.child_count(0));
        self.row_open = false;
    }

    /// Number of entries currently in the array a level-`l` fiber (or the
    /// root, for `l == 0`) points into.
    fn child_count(&self, level: usize) -> usize {
        let internal = self.arity.saturating_sub(1);
        if level < internal {
            self.level_ids[level].len()
        } else if self.arity > 0 {
            self.leaf_ids.len()
        } else {
            self.values.len()
        }
    }

    fn push_foreign(&mut self, coords: &[usize], value: f64) {
        debug_assert_eq!(coords.len(), self.arity);
        debug_assert!(!self.root_ids.is_empty(), "push before start_row");
        if self.arity == 0 {
            self.values.push(value);
            self.row_open = true;
            return;
        }
        let internal = self.arity - 1;
        let first_diff = if !self.row_open {
            0
        } else {
            (0..internal)
                .find(|&l| self.prev[l] != coords[l])
                .unwrap_or(internal)
        };
        for l in first_diff..internal {
            let child_start = self.child_count(l + 1);
            self.level_ids[l].push(I::from_usize(coords[l]));
            self.level_ptr[l].push(I::from_usize(child_start));
        }
        self.leaf_ids.push(I::from_usize(coords[internal]));
        self.values.push(value);
        self.prev.copy_from_slice(coords);
        self.row_open = true;
    }

    fn finish(mut self) -> CsfData<I> {
        let internal = self.arity.saturating_sub(1);
        for l in 0..internal {
            let end = self.child_count(l + 1);
            self.level_ptr[l].push(I::from_usize(end));
        }
        self.root_ptr.push(self.child_count(0));
        CsfData {
            mode: self.mode,
            arity: self.arity,
            root_ids: self.root_ids,
            root_ptr: self.root_ptr,
            level_ids: self.level_ids,
            level_ptr: self.level_ptr,
            leaf_ids: self.leaf_ids,
            values: self.values,
        }
    }
}

/// One mode's compressed fiber hierarchy, with the index width erased.
///
/// Kernels match on the variant once per row batch and run a generic body,
/// so the `u32` narrowing costs no branches in the inner loops.
#[derive(Debug, Clone)]
pub enum CsfMode {
    /// `u32` ids and pointers — every foreign dimension and the nonzero
    /// count fit in 32 bits.
    Small(CsfData<u32>),
    /// `usize` ids and pointers for tensors beyond the 32-bit range.
    Wide(CsfData<usize>),
}

macro_rules! dispatch {
    ($self:expr, $d:ident => $body:expr) => {
        match $self {
            CsfMode::Small($d) => $body,
            CsfMode::Wide($d) => $body,
        }
    };
}

impl CsfMode {
    /// Whether `u32` ids suffice for a tensor with the given dimensions
    /// (`mode`'s own extent is irrelevant — root ids stay `usize`) and
    /// nonzero count.
    pub fn fits_u32(dims: &[usize], mode: usize, nnz: usize) -> bool {
        nnz <= u32::MAX as usize
            && dims
                .iter()
                .enumerate()
                .all(|(t, &d)| t == mode || d <= u32::MAX as usize)
    }

    /// Builds the hierarchy for `mode` from a permutation of nonzero ids and
    /// the row pointers delimiting each root slice's update list — the same
    /// `(perm, row_ptr)` pair the symbolic TTMc data carries.  Position `p`
    /// of the leaf level holds nonzero `perm[p]`, so the leaf order *is* the
    /// permutation order.
    ///
    /// # Panics
    /// Panics if `perm` does not cover every nonzero exactly once per
    /// `row_ptr`'s final entry, or if `row_ptr` is not monotone.
    pub fn build(tensor: &SparseTensor, mode: usize, perm: &[usize], row_ptr: &[usize]) -> CsfMode {
        assert!(mode < tensor.order());
        assert_eq!(
            perm.len(),
            tensor.nnz(),
            "permutation must cover every nonzero"
        );
        assert_eq!(*row_ptr.last().expect("row_ptr has a sentinel"), perm.len());
        if Self::fits_u32(tensor.dims(), mode, tensor.nnz()) {
            CsfMode::Small(build_from_perm::<u32>(tensor, mode, perm, row_ptr))
        } else {
            CsfMode::Wide(build_from_perm::<usize>(tensor, mode, perm, row_ptr))
        }
    }

    /// Builds the hierarchy for `mode` directly from a COO tensor, deriving
    /// the mode-sorted permutation (stable counting sort: root slices in
    /// ascending index order, nonzeros within a slice in ascending COO id
    /// order — exactly the symbolic update-list order).
    pub fn from_coo(tensor: &SparseTensor, mode: usize) -> CsfMode {
        let (perm, row_ptr) = mode_permutation(tensor, mode);
        Self::build(tensor, mode, &perm, &row_ptr)
    }

    /// The mode this hierarchy is rooted at.
    pub fn mode(&self) -> usize {
        dispatch!(self, d => d.mode())
    }

    /// Number of foreign modes (`order - 1`).
    pub fn arity(&self) -> usize {
        dispatch!(self, d => d.arity())
    }

    /// Number of root slices.
    pub fn num_rows(&self) -> usize {
        dispatch!(self, d => d.num_rows())
    }

    /// Number of nonzeros stored.
    pub fn nnz(&self) -> usize {
        dispatch!(self, d => d.nnz())
    }

    /// The mode-`n` index of root slice `p`.
    pub fn root_id(&self, p: usize) -> usize {
        dispatch!(self, d => d.root_id(p))
    }

    /// Number of fibers at internal level `level`.
    pub fn num_fibers(&self, level: usize) -> usize {
        dispatch!(self, d => d.num_fibers(level))
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        dispatch!(self, d => d.memory_bytes())
    }

    /// True when the structure stores `u32` ids.
    pub fn is_narrow(&self) -> bool {
        matches!(self, CsfMode::Small(_))
    }

    /// Visits every stored nonzero in leaf order as
    /// `(root_index, foreign_coords, value)`.
    pub fn for_each_nonzero<F: FnMut(usize, &[usize], f64)>(&self, f: F) {
        dispatch!(self, d => d.for_each_nonzero(f))
    }
}

fn build_from_perm<I: CsfIndex>(
    tensor: &SparseTensor,
    mode: usize,
    perm: &[usize],
    row_ptr: &[usize],
) -> CsfData<I> {
    let arity = tensor.order() - 1;
    let mut b = RawBuilder::<I>::new(mode, arity, tensor.nnz());
    let mut coords = vec![0usize; arity];
    for w in row_ptr.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if lo == hi {
            continue;
        }
        b.start_row(tensor.index(perm[lo])[mode]);
        for &id in &perm[lo..hi] {
            let index = tensor.index(id);
            let mut c = 0;
            for (t, &i) in index.iter().enumerate() {
                if t != mode {
                    coords[c] = i;
                    c += 1;
                }
            }
            b.push_foreign(&coords, tensor.value(id));
        }
    }
    b.finish()
}

/// The mode-sorted permutation of a tensor's nonzeros: a stable counting
/// sort by the mode-`mode` index (ascending slice index, ties in ascending
/// COO id order) plus compressed row pointers over the non-empty slices.
/// This matches the update-list order of the symbolic TTMc data, so layouts
/// built from it accumulate in the same order as the COO kernels.
pub fn mode_permutation(tensor: &SparseTensor, mode: usize) -> (Vec<usize>, Vec<usize>) {
    let dim = tensor.dims()[mode];
    let nnz = tensor.nnz();
    let mut counts = vec![0usize; dim];
    for id in 0..nnz {
        counts[tensor.index(id)[mode]] += 1;
    }
    let mut starts = vec![0usize; dim];
    let mut acc = 0usize;
    for (s, &c) in starts.iter_mut().zip(counts.iter()) {
        *s = acc;
        acc += c;
    }
    let mut perm = vec![0usize; nnz];
    {
        let mut cursor = starts.clone();
        for id in 0..nnz {
            let slot = &mut cursor[tensor.index(id)[mode]];
            perm[*slot] = id;
            *slot += 1;
        }
    }
    let mut row_ptr = Vec::new();
    row_ptr.push(0);
    for (i, &c) in counts.iter().enumerate() {
        if c > 0 {
            row_ptr.push(starts[i] + c);
        }
    }
    (perm, row_ptr)
}

/// Streamed fiber-hierarchy builder: accepts nonzeros grouped by their
/// mode-`mode` index (non-decreasing root order, as produced by an external
/// sort) without materializing COO first.
#[derive(Debug)]
pub struct CsfModeBuilder {
    mode: usize,
    inner: BuilderInner,
    last_root: Option<usize>,
    coords: Vec<usize>,
}

#[derive(Debug)]
enum BuilderInner {
    Small(RawBuilder<u32>),
    Wide(RawBuilder<usize>),
}

impl CsfModeBuilder {
    /// Starts a builder for `mode` of a tensor with the given dimensions and
    /// (exact or upper-bound) nonzero count; the count participates in the
    /// `u32`-vs-`usize` width decision, so it must not under-report.
    pub fn new(mode: usize, dims: &[usize], nnz: usize) -> Self {
        assert!(mode < dims.len());
        let arity = dims.len() - 1;
        let inner = if CsfMode::fits_u32(dims, mode, nnz) {
            BuilderInner::Small(RawBuilder::new(mode, arity, nnz))
        } else {
            BuilderInner::Wide(RawBuilder::new(mode, arity, nnz))
        };
        CsfModeBuilder {
            mode,
            inner,
            last_root: None,
            coords: vec![0; arity],
        }
    }

    /// Appends one nonzero; `index` holds all modes' indices.
    ///
    /// # Panics
    /// Panics if the stream is not grouped by non-decreasing mode index —
    /// the upstream sort is expected to have established that order.
    pub fn push(&mut self, index: &[usize], value: f64) {
        let root = index[self.mode];
        let new_row = self.last_root != Some(root);
        if new_row {
            assert!(
                self.last_root.is_none_or(|r| root > r),
                "CSF stream must be grouped by non-decreasing mode index"
            );
            self.last_root = Some(root);
        }
        let mut c = 0;
        for (t, &i) in index.iter().enumerate() {
            if t != self.mode {
                self.coords[c] = i;
                c += 1;
            }
        }
        match &mut self.inner {
            BuilderInner::Small(b) => {
                if new_row {
                    b.start_row(root);
                }
                b.push_foreign(&self.coords, value);
            }
            BuilderInner::Wide(b) => {
                if new_row {
                    b.start_row(root);
                }
                b.push_foreign(&self.coords, value);
            }
        }
    }

    /// Number of nonzeros pushed so far.
    pub fn len(&self) -> usize {
        match &self.inner {
            BuilderInner::Small(b) => b.values.len(),
            BuilderInner::Wide(b) => b.values.len(),
        }
    }

    /// Whether no nonzeros have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finalizes the hierarchy.
    pub fn finish(self) -> CsfMode {
        match self.inner {
            BuilderInner::Small(b) => CsfMode::Small(b.finish()),
            BuilderInner::Wide(b) => CsfMode::Wide(b.finish()),
        }
    }
}

/// All modes' fiber hierarchies of one tensor — the standalone compressed
/// representation for tensors ingested from disk.
#[derive(Debug, Clone)]
pub struct CsfTensor {
    dims: Vec<usize>,
    nnz: usize,
    modes: Vec<CsfMode>,
}

impl CsfTensor {
    /// Builds every mode's hierarchy from a COO tensor.
    pub fn from_coo(tensor: &SparseTensor) -> Self {
        let modes = (0..tensor.order())
            .map(|m| CsfMode::from_coo(tensor, m))
            .collect();
        CsfTensor {
            dims: tensor.dims().to_vec(),
            nnz: tensor.nnz(),
            modes,
        }
    }

    /// Assembles a tensor from per-mode hierarchies built elsewhere (e.g. by
    /// streamed ingestion).  Every hierarchy must store the same nonzeros.
    pub fn from_modes(dims: Vec<usize>, modes: Vec<CsfMode>) -> Self {
        assert_eq!(dims.len(), modes.len(), "one hierarchy per mode");
        let nnz = modes.first().map_or(0, CsfMode::nnz);
        for m in &modes {
            assert_eq!(m.nnz(), nnz, "mode hierarchies disagree on nnz");
        }
        CsfTensor { dims, nnz, modes }
    }

    /// The tensor dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of modes.
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Number of nonzeros.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The fiber hierarchy rooted at `mode`.
    pub fn mode(&self, mode: usize) -> &CsfMode {
        &self.modes[mode]
    }

    /// Approximate memory footprint in bytes, summed over all modes.
    pub fn memory_bytes(&self) -> usize {
        self.modes.iter().map(CsfMode::memory_bytes).sum()
    }

    /// Reconstructs the COO tensor from the mode-0 hierarchy (leaf order),
    /// mainly for tests and round-trip checks.
    pub fn to_coo(&self) -> SparseTensor {
        let mut t = SparseTensor::with_capacity(self.dims.clone(), self.nnz);
        let mut index = vec![0usize; self.order()];
        self.modes[0].for_each_nonzero(|root, foreign, value| {
            index[0] = root;
            index[1..].copy_from_slice(foreign);
            t.push(&index, value);
        });
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseTensor {
        SparseTensor::from_entries(
            vec![4, 3, 5],
            &[
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 2], 2.0),
                (vec![0, 1, 2], 2.5),
                (vec![2, 1, 2], 3.0),
                (vec![2, 2, 4], 4.0),
                (vec![3, 0, 0], 5.0),
            ],
        )
    }

    #[test]
    fn mode_permutation_matches_stable_sort() {
        let t = sample();
        let (perm, row_ptr) = mode_permutation(&t, 1);
        // Slice 0 owns ids {0, 1, 5}, slice 1 owns {2, 3}, slice 2 owns {4}.
        assert_eq!(perm, vec![0, 1, 5, 2, 3, 4]);
        assert_eq!(row_ptr, vec![0, 3, 5, 6]);
    }

    #[test]
    fn leaf_order_is_permutation_order() {
        let t = sample();
        for mode in 0..t.order() {
            let (perm, row_ptr) = mode_permutation(&t, mode);
            let csf = CsfMode::build(&t, mode, &perm, &row_ptr);
            assert_eq!(csf.nnz(), t.nnz());
            let mut seen = Vec::new();
            csf.for_each_nonzero(|root, foreign, value| {
                let mut full = Vec::with_capacity(t.order());
                full.extend_from_slice(&foreign[..mode]);
                full.push(root);
                full.extend_from_slice(&foreign[mode..]);
                seen.push((full, value));
            });
            let expect: Vec<(Vec<usize>, f64)> = perm
                .iter()
                .map(|&id| (t.index(id).to_vec(), t.value(id)))
                .collect();
            assert_eq!(seen, expect, "mode {mode}");
        }
    }

    #[test]
    fn fibers_compress_shared_prefixes() {
        let t = sample();
        let csf = CsfMode::from_coo(&t, 0);
        // Mode 0: slices {0, 2, 3}; slice 0 has leaves (0,0) (0,2) (1,2):
        // two level-0 fibers (j=0 with two leaves, j=1 with one).
        assert_eq!(csf.num_rows(), 3);
        assert_eq!(csf.num_fibers(0), 5);
        assert_eq!(csf.nnz(), 6);
        assert!(csf.is_narrow());
    }

    #[test]
    fn wide_indices_used_when_dims_exceed_u32() {
        let huge = (u32::MAX as usize) + 2;
        assert!(!CsfMode::fits_u32(&[4, huge, 5], 0, 10));
        assert!(CsfMode::fits_u32(&[4, huge, 5], 1, 10));
        let mut b = CsfModeBuilder::new(0, &[4, huge, 5], 2);
        b.push(&[0, huge - 1, 1], 1.5);
        b.push(&[2, 3, 0], -1.0);
        let csf = b.finish();
        assert!(!csf.is_narrow());
        let mut coords = Vec::new();
        csf.for_each_nonzero(|r, c, v| coords.push((r, c.to_vec(), v)));
        assert_eq!(coords[0], (0, vec![huge - 1, 1], 1.5));
        assert_eq!(coords[1], (2, vec![3, 0], -1.0));
    }

    #[test]
    fn streamed_builder_matches_from_coo() {
        let mut t = sample();
        t.sort_by_mode(1);
        let mut b = CsfModeBuilder::new(1, t.dims(), t.nnz());
        for (idx, val) in t.iter() {
            b.push(idx, val);
        }
        let streamed = b.finish();
        let direct = CsfMode::from_coo(&t, 1);
        let mut a = Vec::new();
        let mut c = Vec::new();
        streamed.for_each_nonzero(|r, f, v| a.push((r, f.to_vec(), v)));
        direct.for_each_nonzero(|r, f, v| c.push((r, f.to_vec(), v)));
        assert_eq!(a, c);
        assert_eq!(streamed.num_fibers(0), direct.num_fibers(0));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn streamed_builder_rejects_unsorted_roots() {
        let mut b = CsfModeBuilder::new(0, &[4, 4, 4], 3);
        b.push(&[2, 0, 0], 1.0);
        b.push(&[1, 0, 0], 1.0);
    }

    #[test]
    fn csf_tensor_roundtrip_and_memory() {
        let mut t = sample();
        t.sort();
        let csf = CsfTensor::from_coo(&t);
        assert_eq!(csf.order(), 3);
        assert_eq!(csf.nnz(), t.nnz());
        assert!(csf.memory_bytes() > 0);
        let back = csf.to_coo();
        assert_eq!(back.nnz(), t.nnz());
        let mut entries: Vec<_> = back.iter().map(|(i, v)| (i.to_vec(), v)).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut expect: Vec<_> = t.iter().map(|(i, v)| (i.to_vec(), v)).collect();
        expect.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(entries, expect);
    }

    #[test]
    fn order_two_hierarchy_has_no_internal_levels() {
        let t = SparseTensor::from_entries(
            vec![3, 4],
            &[(vec![0, 1], 1.0), (vec![0, 3], 2.0), (vec![2, 0], 3.0)],
        );
        let csf = CsfMode::from_coo(&t, 0);
        assert_eq!(csf.arity(), 1);
        assert_eq!(csf.num_rows(), 2);
        let mut leaves = Vec::new();
        csf.for_each_nonzero(|r, c, v| leaves.push((r, c[0], v)));
        assert_eq!(leaves, vec![(0, 1, 1.0), (0, 3, 2.0), (2, 0, 3.0)]);
    }
}
