//! Text I/O for sparse tensors in the FROSTT `.tns` coordinate format.
//!
//! Each non-comment line holds `N` one-based indices followed by a value:
//!
//! ```text
//! # optional comment
//! 1 1 1 1.0
//! 2 3 4 2.5
//! ```
//!
//! The paper's datasets (Netflix, NELL, Delicious, Flickr) are distributed in
//! this shape; the reproduction's synthetic profiles can be written out and
//! read back through these routines, and real `.tns` files can be fed to the
//! examples and benches directly.

use crate::coo::SparseTensor;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors produced while reading a tensor file.
#[derive(Debug)]
pub enum TensorIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line could not be parsed; carries the 1-based line number and a
    /// description.
    Parse(usize, String),
    /// The file contained no nonzeros.
    Empty,
}

impl std::fmt::Display for TensorIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorIoError::Io(e) => write!(f, "I/O error: {e}"),
            TensorIoError::Parse(line, msg) => write!(f, "parse error on line {line}: {msg}"),
            TensorIoError::Empty => write!(f, "tensor file contains no nonzeros"),
        }
    }
}

impl std::error::Error for TensorIoError {}

impl From<io::Error> for TensorIoError {
    fn from(e: io::Error) -> Self {
        TensorIoError::Io(e)
    }
}

/// Reads a sparse tensor from a `.tns`-format reader.  Mode sizes are taken
/// as the maximum index seen per mode unless `dims` is provided.
pub fn read_tns<R: BufRead>(
    reader: R,
    dims: Option<Vec<usize>>,
) -> Result<SparseTensor, TensorIoError> {
    let mut entries: Vec<(Vec<usize>, f64)> = Vec::new();
    let mut order: Option<usize> = None;

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if fields.len() < 2 {
            return Err(TensorIoError::Parse(
                lineno + 1,
                "expected at least one index and a value".to_string(),
            ));
        }
        let this_order = fields.len() - 1;
        match order {
            None => order = Some(this_order),
            Some(o) if o != this_order => {
                return Err(TensorIoError::Parse(
                    lineno + 1,
                    format!("inconsistent arity: expected {o} indices, found {this_order}"),
                ))
            }
            _ => {}
        }
        let mut idx = Vec::with_capacity(this_order);
        for f in &fields[..this_order] {
            let one_based: usize = f
                .parse()
                .map_err(|_| TensorIoError::Parse(lineno + 1, format!("invalid index '{f}'")))?;
            if one_based == 0 {
                return Err(TensorIoError::Parse(
                    lineno + 1,
                    "indices are 1-based; found 0".to_string(),
                ));
            }
            idx.push(one_based - 1);
        }
        let value: f64 = fields[this_order].parse().map_err(|_| {
            TensorIoError::Parse(
                lineno + 1,
                format!("invalid value '{}'", fields[this_order]),
            )
        })?;
        entries.push((idx, value));
    }

    let order = order.ok_or(TensorIoError::Empty)?;
    let dims = match dims {
        Some(d) => {
            if d.len() != order {
                return Err(TensorIoError::Parse(
                    0,
                    format!(
                        "provided dims have arity {} but file has arity {order}",
                        d.len()
                    ),
                ));
            }
            d
        }
        None => {
            let mut maxes = vec![0usize; order];
            for (idx, _) in &entries {
                for (m, &i) in idx.iter().enumerate() {
                    maxes[m] = maxes[m].max(i + 1);
                }
            }
            maxes
        }
    };
    Ok(SparseTensor::from_entries(dims, &entries))
}

/// Reads a sparse tensor from a `.tns` file on disk.
pub fn read_tns_file<P: AsRef<Path>>(
    path: P,
    dims: Option<Vec<usize>>,
) -> Result<SparseTensor, TensorIoError> {
    let file = File::open(path)?;
    read_tns(BufReader::new(file), dims)
}

/// Writes a sparse tensor in `.tns` format (1-based indices).
pub fn write_tns<W: Write>(tensor: &SparseTensor, writer: &mut W) -> io::Result<()> {
    for (idx, val) in tensor.iter() {
        for &i in idx {
            write!(writer, "{} ", i + 1)?;
        }
        writeln!(writer, "{val}")?;
    }
    Ok(())
}

/// Writes a sparse tensor to a file in `.tns` format.
pub fn write_tns_file<P: AsRef<Path>>(tensor: &SparseTensor, path: P) -> io::Result<()> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    write_tns(tensor, &mut writer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn read_simple_3mode() {
        let data = "# comment\n1 1 1 1.0\n2 3 4 2.5\n";
        let t = read_tns(Cursor::new(data), None).unwrap();
        assert_eq!(t.order(), 3);
        assert_eq!(t.dims(), &[2, 3, 4]);
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.index(0), &[0, 0, 0]);
        assert_eq!(t.index(1), &[1, 2, 3]);
        assert_eq!(t.value(1), 2.5);
    }

    #[test]
    fn read_with_explicit_dims() {
        let data = "1 1 1.0\n";
        let t = read_tns(Cursor::new(data), Some(vec![10, 10])).unwrap();
        assert_eq!(t.dims(), &[10, 10]);
    }

    #[test]
    fn read_rejects_zero_index() {
        let data = "0 1 1.0\n";
        assert!(matches!(
            read_tns(Cursor::new(data), None),
            Err(TensorIoError::Parse(1, _))
        ));
    }

    #[test]
    fn read_rejects_inconsistent_arity() {
        let data = "1 1 1 1.0\n1 1 1.0\n";
        assert!(matches!(
            read_tns(Cursor::new(data), None),
            Err(TensorIoError::Parse(2, _))
        ));
    }

    #[test]
    fn read_rejects_bad_value() {
        let data = "1 1 notanumber\n";
        assert!(matches!(
            read_tns(Cursor::new(data), None),
            Err(TensorIoError::Parse(1, _))
        ));
    }

    #[test]
    fn read_empty_is_error() {
        let data = "# nothing here\n";
        assert!(matches!(
            read_tns(Cursor::new(data), None),
            Err(TensorIoError::Empty)
        ));
    }

    #[test]
    fn write_read_roundtrip() {
        let t = SparseTensor::from_entries(
            vec![3, 4, 5, 6],
            &[
                (vec![0, 1, 2, 3], 1.5),
                (vec![2, 3, 4, 5], -2.0),
                (vec![1, 0, 0, 0], 0.25),
            ],
        );
        let mut buf = Vec::new();
        write_tns(&t, &mut buf).unwrap();
        let back = read_tns(Cursor::new(buf), Some(t.dims().to_vec())).unwrap();
        assert_eq!(back.nnz(), t.nnz());
        for k in 0..t.nnz() {
            assert_eq!(back.index(k), t.index(k));
            assert!((back.value(k) - t.value(k)).abs() < 1e-12);
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("sptensor_io_test.tns");
        let t = SparseTensor::from_entries(vec![2, 2], &[(vec![0, 1], 3.0), (vec![1, 0], 4.0)]);
        write_tns_file(&t, &path).unwrap();
        let back = read_tns_file(&path, None).unwrap();
        assert_eq!(back.nnz(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn error_display_strings() {
        let e = TensorIoError::Parse(3, "bad".to_string());
        assert!(format!("{e}").contains("line 3"));
        let e = TensorIoError::Empty;
        assert!(format!("{e}").contains("no nonzeros"));
    }
}
