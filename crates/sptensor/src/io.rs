//! Text I/O for sparse tensors in the FROSTT `.tns` coordinate format.
//!
//! Each non-comment line holds `N` one-based indices followed by a value:
//!
//! ```text
//! # optional comment
//! 1 1 1 1.0
//! 2 3 4 2.5
//! ```
//!
//! The paper's datasets (Netflix, NELL, Delicious, Flickr) are distributed in
//! this shape; the reproduction's synthetic profiles can be written out and
//! read back through these routines, and real `.tns` files can be fed to the
//! examples and benches directly.
//!
//! Two ingestion paths are provided:
//!
//! * [`read_tns`] / [`read_tns_file`] — materialize the whole tensor as COO;
//!   convenient for anything that fits comfortably in RAM.
//! * [`stream_tns`] — a bounded-memory reader that parses the file in
//!   fixed-size nonzero chunks, validates indices against declared
//!   dimensions as it goes (reporting 1-based line numbers), computes
//!   dimensions and the nonzero count in the same single pass, and accounts
//!   its own peak buffer footprint.  [`external_sort_tns`] layers an
//!   external merge sort on top: chunks are sorted and spilled to binary run
//!   files in a temp directory, then [`SortedRuns::for_each`] k-way-merges
//!   them back in sorted order with a configurable [`DuplicatePolicy`] — the
//!   path by which a tensor larger than RAM becomes a set of
//!   [`CsfMode`](crate::csf::CsfMode) hierarchies without ever existing as
//!   full COO.
//!
//! Writers can prepend a `# dims: d1 d2 … dN` header comment
//! ([`write_tns_with_header`]); readers honor it as declared dimensions when
//! the caller supplies none, and validate every index against whichever
//! declaration is in effect.

use crate::coo::SparseTensor;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// Errors produced while reading a tensor file.
#[derive(Debug)]
pub enum TensorIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line could not be parsed; carries the 1-based line number and a
    /// description.
    Parse(usize, String),
    /// An index exceeded the declared dimension of its mode.  `index` is the
    /// 1-based index as written in the file; `mode` is 0-based.
    IndexOutOfRange {
        /// 1-based line number of the offending entry.
        line: usize,
        /// 0-based mode whose bound was violated.
        mode: usize,
        /// The 1-based index as written in the file.
        index: usize,
        /// The declared size of that mode.
        size: usize,
    },
    /// Two entries carried identical indices and the duplicate policy was
    /// [`DuplicatePolicy::Reject`].
    Duplicate {
        /// 1-based line number of the later duplicate.
        line: usize,
        /// 1-based line number of the earlier occurrence.
        earlier_line: usize,
    },
    /// The file contained no nonzeros.
    Empty,
}

impl std::fmt::Display for TensorIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorIoError::Io(e) => write!(f, "I/O error: {e}"),
            TensorIoError::Parse(line, msg) => write!(f, "parse error on line {line}: {msg}"),
            TensorIoError::IndexOutOfRange {
                line,
                mode,
                index,
                size,
            } => write!(
                f,
                "index out of range on line {line}: index {index} of mode {mode} exceeds the declared size {size}"
            ),
            TensorIoError::Duplicate { line, earlier_line } => write!(
                f,
                "duplicate nonzero on line {line}: same indices as line {earlier_line}"
            ),
            TensorIoError::Empty => write!(f, "tensor file contains no nonzeros"),
        }
    }
}

impl std::error::Error for TensorIoError {}

impl From<io::Error> for TensorIoError {
    fn from(e: io::Error) -> Self {
        TensorIoError::Io(e)
    }
}

/// Options for the streaming `.tns` reader.
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Number of nonzeros per chunk handed to the sink; the reader's resident
    /// buffers hold at most this many entries.  Defaults to 65 536.
    pub chunk_nonzeros: usize,
    /// Declared dimensions to validate indices against.  When `None`, a
    /// `# dims: …` header comment (if present) takes their place; otherwise
    /// dimensions are inferred as the per-mode maxima.
    pub declared_dims: Option<Vec<usize>>,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            chunk_nonzeros: 65_536,
            declared_dims: None,
        }
    }
}

impl StreamOptions {
    /// Default options: 65 536-nonzero chunks, no declared dimensions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the chunk size in nonzeros (clamped to at least 1).
    pub fn chunk_nonzeros(mut self, n: usize) -> Self {
        self.chunk_nonzeros = n.max(1);
        self
    }

    /// Declares the dimensions up front; every index is validated against
    /// them during the streaming pass.
    pub fn declared_dims(mut self, dims: Vec<usize>) -> Self {
        self.declared_dims = Some(dims);
        self
    }
}

/// What a completed streaming pass learned about the tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TnsInfo {
    /// Number of modes.
    pub order: usize,
    /// Declared dimensions if any were in effect, otherwise per-mode maxima.
    pub dims: Vec<usize>,
    /// Number of nonzero entries.
    pub nnz: usize,
}

/// Buffer accounting for a streaming pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Number of chunks handed to the sink.
    pub chunks: usize,
    /// Peak bytes resident in the reader's nonzero buffers (indices, values
    /// and line numbers), measured from the buffers' capacities — the bound
    /// the chunk size buys.  Excludes the transient per-line string and
    /// whatever the sink itself retains.
    pub peak_buffer_bytes: usize,
}

/// One chunk of parsed nonzeros, borrowed from the reader's buffers.
#[derive(Debug)]
pub struct TnsChunk<'a> {
    /// Number of modes.
    pub order: usize,
    /// Flattened 0-based indices, `order` per entry.
    pub indices: &'a [usize],
    /// One value per entry.
    pub values: &'a [f64],
    /// 1-based source line of each entry.
    pub lines: &'a [usize],
}

impl TnsChunk<'_> {
    /// Number of nonzeros in the chunk.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the chunk holds no entries.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The 0-based index tuple of entry `k`.
    // Same naming rationale as `SparseTensor::index`: `Index` cannot return
    // a borrowed sub-slice of the flat buffer by value semantics, and
    // `index` is the paper's name for a nonzero's coordinate tuple.
    #[allow(clippy::should_implement_trait)]
    pub fn index(&self, k: usize) -> &[usize] {
        &self.indices[k * self.order..(k + 1) * self.order]
    }
}

/// Attempts to parse a `# dims: …` / `% dims: …` header comment.
fn parse_dims_header(trimmed: &str) -> Option<Vec<usize>> {
    let body = trimmed
        .strip_prefix('#')
        .or_else(|| trimmed.strip_prefix('%'))?;
    let rest = body.trim_start().strip_prefix("dims:")?;
    let mut dims = Vec::new();
    for field in rest.split_whitespace() {
        dims.push(field.parse::<usize>().ok()?);
    }
    if dims.is_empty() {
        None
    } else {
        Some(dims)
    }
}

/// Streams a `.tns`-format reader through `sink` in chunks of at most
/// `options.chunk_nonzeros` entries, returning the tensor's shape summary
/// and the reader's buffer accounting.
///
/// Dimensions are validated as declared by `options.declared_dims`, or by a
/// `# dims: …` header comment when the options carry none; indices beyond a
/// declared bound fail with [`TensorIoError::IndexOutOfRange`] carrying the
/// 1-based line number.  Without any declaration, dimensions are inferred as
/// the per-mode maxima seen across the pass.
pub fn stream_tns<R: BufRead, F>(
    reader: R,
    options: &StreamOptions,
    mut sink: F,
) -> Result<(TnsInfo, StreamStats), TensorIoError>
where
    F: FnMut(&TnsChunk<'_>) -> Result<(), TensorIoError>,
{
    let chunk = options.chunk_nonzeros.max(1);
    let mut declared = options.declared_dims.clone();
    let declared_explicit = declared.is_some();
    let mut order: Option<usize> = None;
    let mut maxes: Vec<usize> = Vec::new();
    let mut indices: Vec<usize> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    let mut lines: Vec<usize> = Vec::new();
    let mut stats = StreamStats::default();
    let mut nnz = 0usize;

    let flush = |indices: &mut Vec<usize>,
                 values: &mut Vec<f64>,
                 lines: &mut Vec<usize>,
                 order: usize,
                 stats: &mut StreamStats,
                 sink: &mut F|
     -> Result<(), TensorIoError> {
        if values.is_empty() {
            return Ok(());
        }
        stats.chunks += 1;
        sink(&TnsChunk {
            order,
            indices,
            values,
            lines,
        })?;
        indices.clear();
        values.clear();
        lines.clear();
        Ok(())
    };

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            if !declared_explicit && declared.is_none() && order.is_none() {
                if let Some(dims) = parse_dims_header(trimmed) {
                    declared = Some(dims);
                }
            }
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let count = trimmed.split_whitespace().count();
        if count < 2 {
            return Err(TensorIoError::Parse(
                lineno,
                "expected at least one index and a value".to_string(),
            ));
        }
        let this_order = count - 1;
        match order {
            None => {
                if let Some(d) = &declared {
                    if d.len() != this_order {
                        return Err(TensorIoError::Parse(
                            lineno,
                            format!(
                                "declared dims have arity {} but file has arity {this_order}",
                                d.len()
                            ),
                        ));
                    }
                }
                order = Some(this_order);
                maxes = vec![0usize; this_order];
                // Reserve the full chunk once so the buffers never grow past
                // it and `peak_buffer_bytes` is the tight bound
                // `chunk * (order + 2) * 8`.
                indices.reserve_exact(chunk * this_order);
                values.reserve_exact(chunk);
                lines.reserve_exact(chunk);
            }
            Some(o) if o != this_order => {
                return Err(TensorIoError::Parse(
                    lineno,
                    format!("inconsistent arity: expected {o} indices, found {this_order}"),
                ))
            }
            _ => {}
        }
        for m in 0..this_order {
            let f = fields.next().expect("counted field");
            let one_based: usize = f
                .parse()
                .map_err(|_| TensorIoError::Parse(lineno, format!("invalid index '{f}'")))?;
            if one_based == 0 {
                return Err(TensorIoError::Parse(
                    lineno,
                    "indices are 1-based; found 0".to_string(),
                ));
            }
            if let Some(d) = &declared {
                if one_based > d[m] {
                    return Err(TensorIoError::IndexOutOfRange {
                        line: lineno,
                        mode: m,
                        index: one_based,
                        size: d[m],
                    });
                }
            }
            maxes[m] = maxes[m].max(one_based);
            indices.push(one_based - 1);
        }
        let vfield = fields.next().expect("counted field");
        let value: f64 = vfield
            .parse()
            .map_err(|_| TensorIoError::Parse(lineno, format!("invalid value '{vfield}'")))?;
        values.push(value);
        lines.push(lineno);
        nnz += 1;
        let word = std::mem::size_of::<usize>();
        stats.peak_buffer_bytes = stats.peak_buffer_bytes.max(
            indices.capacity() * word
                + values.capacity() * std::mem::size_of::<f64>()
                + lines.capacity() * word,
        );
        if values.len() == chunk {
            flush(
                &mut indices,
                &mut values,
                &mut lines,
                this_order,
                &mut stats,
                &mut sink,
            )?;
        }
    }

    let order = order.ok_or(TensorIoError::Empty)?;
    flush(
        &mut indices,
        &mut values,
        &mut lines,
        order,
        &mut stats,
        &mut sink,
    )?;
    let dims = declared.unwrap_or(maxes);
    Ok((TnsInfo { order, dims, nnz }, stats))
}

/// Reads a sparse tensor through the streaming parser, materializing COO.
/// Returns the tensor together with the pass's buffer accounting.
pub fn read_tns_streamed<R: BufRead>(
    reader: R,
    options: &StreamOptions,
) -> Result<(SparseTensor, StreamStats), TensorIoError> {
    let mut all_indices: Vec<usize> = Vec::new();
    let mut all_values: Vec<f64> = Vec::new();
    let (info, stats) = stream_tns(reader, options, |chunk| {
        all_indices.extend_from_slice(chunk.indices);
        all_values.extend_from_slice(chunk.values);
        Ok(())
    })?;
    let mut tensor = SparseTensor::with_capacity(info.dims.clone(), info.nnz);
    for (idx, &v) in all_indices.chunks_exact(info.order).zip(all_values.iter()) {
        tensor.push(idx, v);
    }
    Ok((tensor, stats))
}

/// Reads a `.tns` file through the streaming parser.
pub fn read_tns_file_streamed<P: AsRef<Path>>(
    path: P,
    options: &StreamOptions,
) -> Result<(SparseTensor, StreamStats), TensorIoError> {
    let file = File::open(path)?;
    read_tns_streamed(BufReader::new(file), options)
}

/// Reads a sparse tensor from a `.tns`-format reader.  Mode sizes are taken
/// as the maximum index seen per mode unless `dims` is provided (directly or
/// via a `# dims: …` header); declared dimensions are validated against
/// every index during the pass, with violations reported as
/// [`TensorIoError::IndexOutOfRange`] carrying the line number.
pub fn read_tns<R: BufRead>(
    reader: R,
    dims: Option<Vec<usize>>,
) -> Result<SparseTensor, TensorIoError> {
    let mut options = StreamOptions::new();
    options.declared_dims = dims;
    read_tns_streamed(reader, &options).map(|(t, _)| t)
}

/// Reads a sparse tensor from a `.tns` file on disk.
pub fn read_tns_file<P: AsRef<Path>>(
    path: P,
    dims: Option<Vec<usize>>,
) -> Result<SparseTensor, TensorIoError> {
    let file = File::open(path)?;
    read_tns(BufReader::new(file), dims)
}

/// Writes a sparse tensor in `.tns` format (1-based indices).
pub fn write_tns<W: Write>(tensor: &SparseTensor, writer: &mut W) -> io::Result<()> {
    for (idx, val) in tensor.iter() {
        for &i in idx {
            write!(writer, "{} ", i + 1)?;
        }
        writeln!(writer, "{val}")?;
    }
    Ok(())
}

/// Writes a sparse tensor in `.tns` format with a `# dims: …` header comment
/// that readers use as the declared dimensions.
pub fn write_tns_with_header<W: Write>(tensor: &SparseTensor, writer: &mut W) -> io::Result<()> {
    write!(writer, "# dims:")?;
    for &d in tensor.dims() {
        write!(writer, " {d}")?;
    }
    writeln!(writer)?;
    write_tns(tensor, writer)
}

/// Writes a sparse tensor to a file in `.tns` format.
pub fn write_tns_file<P: AsRef<Path>>(tensor: &SparseTensor, path: P) -> io::Result<()> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    write_tns(tensor, &mut writer)
}

/// Writes a sparse tensor to a file with the `# dims: …` header.
pub fn write_tns_file_with_header<P: AsRef<Path>>(
    tensor: &SparseTensor,
    path: P,
) -> io::Result<()> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    write_tns_with_header(tensor, &mut writer)
}

// ---------------------------------------------------------------------------
// External merge sort: spill sorted runs, k-way merge them back.
// ---------------------------------------------------------------------------

/// How [`SortedRuns::for_each`] treats entries with identical indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DuplicatePolicy {
    /// Emit every entry, duplicates included (deterministic file order
    /// within equal keys).
    Keep,
    /// Merge duplicates by summing their values; the merged entry keeps the
    /// earliest line number.
    Sum,
    /// Fail with [`TensorIoError::Duplicate`] naming both lines.
    Reject,
}

static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The spilled, sorted runs of one external-sort pass over a `.tns` stream.
///
/// Run files live in the spill directory until the value is dropped.  Each
/// record is `(order + 2) × 8` bytes: the 0-based indices, the source line,
/// and the value, all little-endian.
#[derive(Debug)]
pub struct SortedRuns {
    info: TnsInfo,
    stats: StreamStats,
    runs: Vec<PathBuf>,
    sort_mode: Option<usize>,
}

impl Drop for SortedRuns {
    fn drop(&mut self) {
        for run in &self.runs {
            std::fs::remove_file(run).ok();
        }
    }
}

/// Streams a `.tns` reader into sorted runs spilled under `spill_dir`.
///
/// Each chunk of `options.chunk_nonzeros` entries is sorted — by the
/// `sort_mode` index first when given (ties full-lexicographic), plain
/// lexicographic otherwise, with the source line as the final tie-break —
/// and written to its own binary run file, so peak memory stays bounded by
/// the chunk size regardless of the tensor's total size.
pub fn external_sort_tns<R: BufRead>(
    reader: R,
    options: &StreamOptions,
    sort_mode: Option<usize>,
    spill_dir: &Path,
) -> Result<SortedRuns, TensorIoError> {
    std::fs::create_dir_all(spill_dir)?;
    let mut runs: Vec<PathBuf> = Vec::new();
    let result = stream_tns(reader, options, |chunk| {
        let n = chunk.len();
        let mut perm: Vec<usize> = (0..n).collect();
        perm.sort_unstable_by(|&a, &b| {
            compare_keys(chunk.index(a), chunk.index(b), sort_mode)
                .then_with(|| chunk.lines[a].cmp(&chunk.lines[b]))
        });
        let run_id = RUN_COUNTER.fetch_add(1, AtomicOrdering::Relaxed);
        let path = spill_dir.join(format!("tns_run_{}_{run_id}.bin", std::process::id()));
        let mut writer = BufWriter::new(File::create(&path)?);
        for &k in &perm {
            for &i in chunk.index(k) {
                writer.write_all(&(i as u64).to_le_bytes())?;
            }
            writer.write_all(&(chunk.lines[k] as u64).to_le_bytes())?;
            writer.write_all(&chunk.values[k].to_le_bytes())?;
        }
        writer.flush()?;
        runs.push(path);
        Ok(())
    });
    match result {
        Ok((info, stats)) => Ok(SortedRuns {
            info,
            stats,
            runs,
            sort_mode,
        }),
        Err(e) => {
            for run in &runs {
                std::fs::remove_file(run).ok();
            }
            Err(e)
        }
    }
}

fn compare_keys(a: &[usize], b: &[usize], sort_mode: Option<usize>) -> Ordering {
    match sort_mode {
        Some(m) => a[m].cmp(&b[m]).then_with(|| a.cmp(b)),
        None => a.cmp(b),
    }
}

struct RunCursor {
    reader: BufReader<File>,
    order: usize,
}

impl RunCursor {
    /// Reads the next record, or `None` at a clean end of file.
    fn next(&mut self) -> Result<Option<(Vec<usize>, usize, f64)>, TensorIoError> {
        let mut buf = vec![0u8; (self.order + 2) * 8];
        let mut filled = 0usize;
        while filled < buf.len() {
            let n = self.reader.read(&mut buf[filled..])?;
            if n == 0 {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(TensorIoError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "truncated spill run record",
                )));
            }
            filled += n;
        }
        let mut index = Vec::with_capacity(self.order);
        for m in 0..self.order {
            let mut w = [0u8; 8];
            w.copy_from_slice(&buf[m * 8..(m + 1) * 8]);
            index.push(u64::from_le_bytes(w) as usize);
        }
        let mut w = [0u8; 8];
        w.copy_from_slice(&buf[self.order * 8..(self.order + 1) * 8]);
        let line = u64::from_le_bytes(w) as usize;
        w.copy_from_slice(&buf[(self.order + 1) * 8..(self.order + 2) * 8]);
        let value = f64::from_le_bytes(w);
        Ok(Some((index, line, value)))
    }
}

struct MergeEntry {
    index: Vec<usize>,
    line: usize,
    value: f64,
    run: usize,
    sort_mode: Option<usize>,
}

impl PartialEq for MergeEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for MergeEntry {}
impl PartialOrd for MergeEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        compare_keys(&self.index, &other.index, self.sort_mode)
            .then_with(|| self.line.cmp(&other.line))
            .then_with(|| self.run.cmp(&other.run))
    }
}

impl SortedRuns {
    /// What the ingestion pass learned about the tensor.
    pub fn info(&self) -> &TnsInfo {
        &self.info
    }

    /// Buffer accounting of the ingestion pass.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// Number of spilled run files.
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// The mode the runs are sorted by, if any.
    pub fn sort_mode(&self) -> Option<usize> {
        self.sort_mode
    }

    /// K-way-merges the runs and visits every entry in globally sorted
    /// order as `(index, value)`.  Resident memory is one record plus a
    /// small read buffer per run.  Returns the number of entries emitted
    /// (which [`DuplicatePolicy::Sum`] can make smaller than the ingested
    /// count).
    pub fn for_each<F: FnMut(&[usize], f64)>(
        &self,
        policy: DuplicatePolicy,
        mut f: F,
    ) -> Result<usize, TensorIoError> {
        let order = self.info.order;
        let mut cursors: Vec<RunCursor> = Vec::with_capacity(self.runs.len());
        for path in &self.runs {
            cursors.push(RunCursor {
                reader: BufReader::with_capacity(16 * 1024, File::open(path)?),
                order,
            });
        }
        let mut heap: BinaryHeap<std::cmp::Reverse<MergeEntry>> = BinaryHeap::new();
        for (run, cursor) in cursors.iter_mut().enumerate() {
            if let Some((index, line, value)) = cursor.next()? {
                heap.push(std::cmp::Reverse(MergeEntry {
                    index,
                    line,
                    value,
                    run,
                    sort_mode: self.sort_mode,
                }));
            }
        }
        let mut pending: Option<(Vec<usize>, usize, f64)> = None;
        let mut emitted = 0usize;
        while let Some(std::cmp::Reverse(entry)) = heap.pop() {
            if let Some((index, line, value)) = cursors[entry.run].next()? {
                heap.push(std::cmp::Reverse(MergeEntry {
                    index,
                    line,
                    value,
                    run: entry.run,
                    sort_mode: self.sort_mode,
                }));
            }
            match &mut pending {
                Some((pidx, pline, pval)) if *pidx == entry.index => match policy {
                    DuplicatePolicy::Keep => {
                        f(pidx, *pval);
                        emitted += 1;
                        *pline = entry.line;
                        *pval = entry.value;
                    }
                    DuplicatePolicy::Sum => {
                        *pval += entry.value;
                    }
                    DuplicatePolicy::Reject => {
                        return Err(TensorIoError::Duplicate {
                            line: entry.line,
                            earlier_line: *pline,
                        });
                    }
                },
                Some((pidx, _, pval)) => {
                    f(pidx, *pval);
                    emitted += 1;
                    pending = Some((entry.index, entry.line, entry.value));
                }
                None => {
                    pending = Some((entry.index, entry.line, entry.value));
                }
            }
        }
        if let Some((pidx, _, pval)) = pending {
            f(&pidx, pval);
            emitted += 1;
        }
        Ok(emitted)
    }
}

/// Streams a `.tns` file into per-mode CSF hierarchies without ever holding
/// the tensor as full COO: one external-sort pass per mode, each bounded by
/// `options.chunk_nonzeros` resident entries plus per-run merge buffers.
/// Returns the assembled [`CsfTensor`](crate::csf::CsfTensor) and the worst
/// buffer accounting across the passes.
pub fn read_csf_tns_file<P: AsRef<Path>>(
    path: P,
    options: &StreamOptions,
    policy: DuplicatePolicy,
    spill_dir: &Path,
) -> Result<(crate::csf::CsfTensor, StreamStats), TensorIoError> {
    let path = path.as_ref();
    let mut modes = Vec::new();
    let mut dims: Vec<usize> = Vec::new();
    let mut stats = StreamStats::default();
    let mut mode = 0usize;
    loop {
        let file = File::open(path)?;
        let mut opts = options.clone();
        if mode > 0 {
            // Later passes reuse the dimensions the first pass established,
            // so every index is validated even when the file has no header.
            opts.declared_dims = Some(dims.clone());
        }
        let runs = external_sort_tns(BufReader::new(file), &opts, Some(mode), spill_dir)?;
        if mode == 0 {
            dims = runs.info().dims.clone();
        }
        stats.chunks += runs.stats().chunks;
        stats.peak_buffer_bytes = stats.peak_buffer_bytes.max(runs.stats().peak_buffer_bytes);
        let mut builder = crate::csf::CsfModeBuilder::new(mode, &dims, runs.info().nnz);
        runs.for_each(policy, |index, value| builder.push(index, value))?;
        modes.push(builder.finish());
        mode += 1;
        if mode >= dims.len() {
            break;
        }
    }
    Ok((crate::csf::CsfTensor::from_modes(dims, modes), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn read_simple_3mode() {
        let data = "# comment\n1 1 1 1.0\n2 3 4 2.5\n";
        let t = read_tns(Cursor::new(data), None).unwrap();
        assert_eq!(t.order(), 3);
        assert_eq!(t.dims(), &[2, 3, 4]);
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.index(0), &[0, 0, 0]);
        assert_eq!(t.index(1), &[1, 2, 3]);
        assert_eq!(t.value(1), 2.5);
    }

    #[test]
    fn read_with_explicit_dims() {
        let data = "1 1 1.0\n";
        let t = read_tns(Cursor::new(data), Some(vec![10, 10])).unwrap();
        assert_eq!(t.dims(), &[10, 10]);
    }

    #[test]
    fn read_rejects_zero_index() {
        let data = "0 1 1.0\n";
        assert!(matches!(
            read_tns(Cursor::new(data), None),
            Err(TensorIoError::Parse(1, _))
        ));
    }

    #[test]
    fn read_rejects_inconsistent_arity() {
        let data = "1 1 1 1.0\n1 1 1.0\n";
        assert!(matches!(
            read_tns(Cursor::new(data), None),
            Err(TensorIoError::Parse(2, _))
        ));
    }

    #[test]
    fn read_rejects_bad_value() {
        let data = "1 1 notanumber\n";
        assert!(matches!(
            read_tns(Cursor::new(data), None),
            Err(TensorIoError::Parse(1, _))
        ));
    }

    #[test]
    fn read_empty_is_error() {
        let data = "# nothing here\n";
        assert!(matches!(
            read_tns(Cursor::new(data), None),
            Err(TensorIoError::Empty)
        ));
    }

    #[test]
    fn declared_dims_reject_out_of_range_with_line_number() {
        let data = "1 1 1.0\n3 9 2.0\n";
        match read_tns(Cursor::new(data), Some(vec![5, 5])) {
            Err(TensorIoError::IndexOutOfRange {
                line,
                mode,
                index,
                size,
            }) => {
                assert_eq!(line, 2);
                assert_eq!(mode, 1);
                assert_eq!(index, 9);
                assert_eq!(size, 5);
            }
            other => panic!("expected IndexOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn dims_header_declares_and_validates() {
        let data = "# dims: 4 4 4\n1 1 1 1.0\n";
        let t = read_tns(Cursor::new(data), None).unwrap();
        assert_eq!(t.dims(), &[4, 4, 4]);

        let bad = "# dims: 2 2\n3 1 1.0\n";
        assert!(matches!(
            read_tns(Cursor::new(bad), None),
            Err(TensorIoError::IndexOutOfRange { line: 2, .. })
        ));
    }

    #[test]
    fn header_roundtrip_preserves_dims() {
        let t = SparseTensor::from_entries(vec![6, 7], &[(vec![0, 0], 1.0), (vec![2, 3], 2.0)]);
        let mut buf = Vec::new();
        write_tns_with_header(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("# dims: 6 7\n"));
        let back = read_tns(Cursor::new(buf), None).unwrap();
        assert_eq!(back.dims(), &[6, 7]);
    }

    #[test]
    fn streaming_chunks_and_peak_buffer_are_bounded() {
        let mut data = String::new();
        for k in 0..25 {
            data.push_str(&format!(
                "{} {} {} {}\n",
                k % 5 + 1,
                k % 3 + 1,
                k % 4 + 1,
                k
            ));
        }
        let options = StreamOptions::new().chunk_nonzeros(4);
        let mut seen = 0usize;
        let mut chunk_sizes = Vec::new();
        let (info, stats) = stream_tns(Cursor::new(&data), &options, |chunk| {
            seen += chunk.len();
            chunk_sizes.push(chunk.len());
            Ok(())
        })
        .unwrap();
        assert_eq!(info.order, 3);
        assert_eq!(info.nnz, 25);
        assert_eq!(seen, 25);
        // 25 entries in chunks of 4: six full chunks and one single-entry tail.
        assert_eq!(chunk_sizes, vec![4, 4, 4, 4, 4, 4, 1]);
        assert_eq!(stats.chunks, 7);
        // The tight bound bought by reserve_exact: chunk * (order + 2) words.
        let word = std::mem::size_of::<usize>();
        assert_eq!(stats.peak_buffer_bytes, 4 * (3 + 2) * word);
    }

    #[test]
    fn chunk_boundary_exactly_at_eof() {
        // 8 entries with chunk 4: the final chunk fills exactly at EOF and
        // no empty trailing chunk is emitted.
        let mut data = String::new();
        for k in 0..8 {
            data.push_str(&format!("{} {} 1.0\n", k + 1, k + 1));
        }
        let options = StreamOptions::new().chunk_nonzeros(4);
        let mut chunk_sizes = Vec::new();
        let (info, stats) = stream_tns(Cursor::new(&data), &options, |chunk| {
            chunk_sizes.push(chunk.len());
            Ok(())
        })
        .unwrap();
        assert_eq!(info.nnz, 8);
        assert_eq!(chunk_sizes, vec![4, 4]);
        assert_eq!(stats.chunks, 2);
    }

    #[test]
    fn external_sort_merges_runs_in_mode_order() {
        // Unsorted input; chunk 2 forces three runs.
        let data = "3 1 1 3.0\n1 2 2 1.0\n2 1 1 2.0\n1 1 1 0.5\n2 2 2 2.5\n";
        let options = StreamOptions::new().chunk_nonzeros(2);
        let dir = std::env::temp_dir().join("sptensor_extsort_test");
        let runs = external_sort_tns(Cursor::new(data), &options, Some(0), &dir).unwrap();
        assert_eq!(runs.num_runs(), 3);
        let mut merged = Vec::new();
        let emitted = runs
            .for_each(DuplicatePolicy::Reject, |idx, v| {
                merged.push((idx.to_vec(), v))
            })
            .unwrap();
        assert_eq!(emitted, 5);
        assert_eq!(
            merged,
            vec![
                (vec![0, 0, 0], 0.5),
                (vec![0, 1, 1], 1.0),
                (vec![1, 0, 0], 2.0),
                (vec![1, 1, 1], 2.5),
                (vec![2, 0, 0], 3.0),
            ]
        );
        drop(runs);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_policies_reject_sum_keep() {
        let data = "1 1 1.0\n2 2 5.0\n1 1 2.5\n";
        let dir = std::env::temp_dir().join("sptensor_dup_test");
        let options = StreamOptions::new().chunk_nonzeros(2);

        let runs = external_sort_tns(Cursor::new(data), &options, None, &dir).unwrap();
        match runs.for_each(DuplicatePolicy::Reject, |_, _| {}) {
            Err(TensorIoError::Duplicate { line, earlier_line }) => {
                assert_eq!((earlier_line, line), (1, 3));
            }
            other => panic!("expected Duplicate, got {other:?}"),
        }

        let runs = external_sort_tns(Cursor::new(data), &options, None, &dir).unwrap();
        let mut merged = Vec::new();
        let emitted = runs
            .for_each(DuplicatePolicy::Sum, |idx, v| {
                merged.push((idx.to_vec(), v))
            })
            .unwrap();
        assert_eq!(emitted, 2);
        assert_eq!(merged, vec![(vec![0, 0], 3.5), (vec![1, 1], 5.0)]);

        let runs = external_sort_tns(Cursor::new(data), &options, None, &dir).unwrap();
        let emitted = runs.for_each(DuplicatePolicy::Keep, |_, _| {}).unwrap();
        assert_eq!(emitted, 3);
        drop(runs);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csf_from_file_matches_coo_roundtrip() {
        let t = SparseTensor::from_entries(
            vec![5, 4, 6],
            &[
                (vec![4, 0, 3], -1.0),
                (vec![0, 1, 2], 2.0),
                (vec![2, 3, 5], 3.0),
                (vec![0, 0, 0], 4.0),
                (vec![2, 1, 1], 5.0),
            ],
        );
        let dir = std::env::temp_dir().join("sptensor_csf_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.tns");
        write_tns_file_with_header(&t, &path).unwrap();
        let options = StreamOptions::new().chunk_nonzeros(2);
        let (csf, stats) =
            read_csf_tns_file(&path, &options, DuplicatePolicy::Reject, &dir).unwrap();
        assert_eq!(csf.dims(), t.dims());
        assert_eq!(csf.nnz(), t.nnz());
        assert!(stats.peak_buffer_bytes > 0);
        // Every mode's hierarchy must agree with the one built from sorted COO.
        for m in 0..t.order() {
            let mut sorted = t.clone();
            sorted.sort_by_mode(m);
            let expect = crate::csf::CsfMode::from_coo(&sorted, m);
            let mut a = Vec::new();
            let mut b = Vec::new();
            csf.mode(m)
                .for_each_nonzero(|r, c, v| a.push((r, c.to_vec(), v)));
            expect.for_each_nonzero(|r, c, v| b.push((r, c.to_vec(), v)));
            assert_eq!(a, b, "mode {m}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_read_roundtrip() {
        let t = SparseTensor::from_entries(
            vec![3, 4, 5, 6],
            &[
                (vec![0, 1, 2, 3], 1.5),
                (vec![2, 3, 4, 5], -2.0),
                (vec![1, 0, 0, 0], 0.25),
            ],
        );
        let mut buf = Vec::new();
        write_tns(&t, &mut buf).unwrap();
        let back = read_tns(Cursor::new(buf), Some(t.dims().to_vec())).unwrap();
        assert_eq!(back.nnz(), t.nnz());
        for k in 0..t.nnz() {
            assert_eq!(back.index(k), t.index(k));
            assert!((back.value(k) - t.value(k)).abs() < 1e-12);
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("sptensor_io_test.tns");
        let t = SparseTensor::from_entries(vec![2, 2], &[(vec![0, 1], 3.0), (vec![1, 0], 4.0)]);
        write_tns_file(&t, &path).unwrap();
        let back = read_tns_file(&path, None).unwrap();
        assert_eq!(back.nnz(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn error_display_strings() {
        let e = TensorIoError::Parse(3, "bad".to_string());
        assert!(format!("{e}").contains("line 3"));
        let e = TensorIoError::Empty;
        assert!(format!("{e}").contains("no nonzeros"));
        let e = TensorIoError::IndexOutOfRange {
            line: 7,
            mode: 1,
            index: 9,
            size: 5,
        };
        let s = format!("{e}");
        assert!(s.contains("line 7") && s.contains("size 5"));
        let e = TensorIoError::Duplicate {
            line: 9,
            earlier_line: 2,
        };
        assert!(format!("{e}").contains("line 9"));
    }
}
