//! Dense order-`N` tensors with C-order layout and mode-`n` unfoldings.
//!
//! Dense tensors appear in HOOI as TTMc results restricted to the requested
//! ranks and as the core tensor `G`; both are small (`O(Π R_n)` or
//! `O(I_n Π_{t≠n} R_t)` entries).  The layout is C order: the last mode
//! varies fastest, matching the Kronecker-row column ordering used by the
//! nonzero-based TTMc (see the crate-level documentation).

use crate::dims_product;
use linalg::Matrix;

/// A dense order-`N` tensor of `f64` values in C order.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseTensor {
    dims: Vec<usize>,
    data: Vec<f64>,
}

impl DenseTensor {
    /// Creates a zero-filled dense tensor.
    pub fn zeros(dims: Vec<usize>) -> Self {
        assert!(!dims.is_empty(), "a tensor needs at least one mode");
        let len = dims_product(&dims);
        DenseTensor {
            dims,
            data: vec![0.0; len],
        }
    }

    /// Creates a dense tensor from a closure over index tuples.
    pub fn from_fn<F: FnMut(&[usize]) -> f64>(dims: Vec<usize>, mut f: F) -> Self {
        let mut t = DenseTensor::zeros(dims);
        let mut index = vec![0usize; t.order()];
        for pos in 0..t.data.len() {
            t.unlinearize(pos, &mut index);
            t.data[pos] = f(&index);
        }
        t
    }

    /// Creates a dense tensor taking ownership of a C-order buffer.
    ///
    /// # Panics
    /// Panics if the buffer length does not match the dimensions.
    pub fn from_vec(dims: Vec<usize>, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), dims_product(&dims), "buffer length mismatch");
        assert!(!dims.is_empty());
        DenseTensor { dims, data }
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Mode sizes.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying C-order buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying C-order buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Linearizes an index tuple (C order: last mode fastest).
    #[inline]
    pub fn linear_index(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.order());
        let mut lin = 0usize;
        for (&i, &d) in index.iter().zip(self.dims.iter()) {
            debug_assert!(i < d);
            lin = lin * d + i;
        }
        lin
    }

    /// Writes the index tuple corresponding to linear position `pos` into
    /// `out`.
    pub fn unlinearize(&self, mut pos: usize, out: &mut [usize]) {
        debug_assert_eq!(out.len(), self.order());
        for m in (0..self.order()).rev() {
            out[m] = pos % self.dims[m];
            pos /= self.dims[m];
        }
    }

    /// Reads the entry at an index tuple.
    #[inline]
    pub fn get(&self, index: &[usize]) -> f64 {
        self.data[self.linear_index(index)]
    }

    /// Writes the entry at an index tuple.
    #[inline]
    pub fn set(&mut self, index: &[usize], value: f64) {
        let lin = self.linear_index(index);
        self.data[lin] = value;
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// `‖self - other‖_F`.
    pub fn frobenius_distance(&self, other: &DenseTensor) -> f64 {
        assert_eq!(self.dims, other.dims);
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Mode-`n` unfolding: returns the `I_n × Π_{t≠n} I_t` matrix whose row
    /// `i` collects the entries with mode-`n` index `i`; the remaining modes
    /// are linearized in increasing order with the last one fastest.
    pub fn unfold(&self, mode: usize) -> Matrix {
        assert!(mode < self.order());
        let nrows = self.dims[mode];
        let ncols = self.len() / nrows;
        let mut out = Matrix::zeros(nrows, ncols);
        let mut index = vec![0usize; self.order()];
        for pos in 0..self.data.len() {
            self.unlinearize(pos, &mut index);
            let row = index[mode];
            // Column: linearize remaining modes in increasing order.
            let mut col = 0usize;
            for (m, (&i, &d)) in index.iter().zip(self.dims.iter()).enumerate() {
                if m == mode {
                    continue;
                }
                col = col * d + i;
            }
            out[(row, col)] = self.data[pos];
        }
        out
    }

    /// Inverse of [`unfold`](Self::unfold): builds a dense tensor with mode
    /// sizes `dims` from its mode-`mode` unfolding.
    pub fn fold(matrix: &Matrix, mode: usize, dims: &[usize]) -> DenseTensor {
        let mut out = DenseTensor::zeros(dims.to_vec());
        DenseTensor::fold_into(matrix, mode, &mut out);
        out
    }

    /// [`fold`](Self::fold) into an existing tensor, overwriting every entry
    /// — the allocation-free variant for callers that fold into a reused
    /// buffer (e.g. the HOOI core buffer).  The target's dimensions define
    /// the fold shape.
    pub fn fold_into(matrix: &Matrix, mode: usize, out: &mut DenseTensor) {
        let dims = out.dims.clone();
        assert!(mode < dims.len());
        assert_eq!(matrix.nrows(), dims[mode]);
        assert_eq!(matrix.ncols(), dims_product(&dims) / dims[mode]);
        let mut index = vec![0usize; dims.len()];
        for pos in 0..out.data.len() {
            out.unlinearize(pos, &mut index);
            let row = index[mode];
            let mut col = 0usize;
            for (m, (&i, &d)) in index.iter().zip(dims.iter()).enumerate() {
                if m == mode {
                    continue;
                }
                col = col * d + i;
            }
            out.data[pos] = matrix[(row, col)];
        }
    }

    /// Dense tensor-times-matrix along `mode`.
    ///
    /// * `transpose = false`: `Y = X ×_mode U`, replacing mode size `d_mode`
    ///   by `U.nrows()`; requires `U.ncols() == d_mode`.
    ///   `y[.., i, ..] = Σ_r x[.., r, ..] · U(i, r)`.
    /// * `transpose = true`: `Y = X ×_mode Uᵀ`, replacing `d_mode` by
    ///   `U.ncols()`; requires `U.nrows() == d_mode`.
    ///   `y[.., r, ..] = Σ_i x[.., i, ..] · U(i, r)`.
    pub fn ttm(&self, mode: usize, u: &Matrix, transpose: bool) -> DenseTensor {
        assert!(mode < self.order());
        let old = self.dims[mode];
        let (new, check) = if transpose {
            (u.ncols(), u.nrows())
        } else {
            (u.nrows(), u.ncols())
        };
        assert_eq!(
            check, old,
            "ttm: matrix inner dimension {check} does not match mode size {old}"
        );
        let mut new_dims = self.dims.clone();
        new_dims[mode] = new;
        let mut out = DenseTensor::zeros(new_dims);

        // Iterate over the input, scattering contributions; the tensors
        // involved are small so clarity wins over blocking.
        let mut index = vec![0usize; self.order()];
        for pos in 0..self.data.len() {
            let x = self.data[pos];
            if x == 0.0 {
                continue;
            }
            self.unlinearize(pos, &mut index);
            let r = index[mode];
            for j in 0..new {
                let coeff = if transpose { u[(r, j)] } else { u[(j, r)] };
                if coeff == 0.0 {
                    continue;
                }
                index[mode] = j;
                let lin = out.linear_index(&index);
                out.data[lin] += x * coeff;
                index[mode] = r;
            }
        }
        out
    }

    /// Applies `ttm` along every mode in sequence with the matrices in
    /// `factors` (one per mode, `factors[n]` applied along mode `n`), with
    /// the given transpose flag.  Passing the factor matrices with
    /// `transpose = false` reconstructs a tensor from a Tucker core.
    pub fn ttm_chain(&self, factors: &[&Matrix], transpose: bool) -> DenseTensor {
        assert_eq!(factors.len(), self.order());
        let mut cur = self.clone();
        for (mode, u) in factors.iter().enumerate() {
            cur = cur.ttm(mode, u, transpose);
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let t = DenseTensor::zeros(vec![2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.order(), 3);
        assert_eq!(t.frobenius_norm(), 0.0);
    }

    #[test]
    fn linearize_unlinearize_roundtrip() {
        let t = DenseTensor::zeros(vec![3, 4, 5]);
        let mut idx = vec![0; 3];
        for pos in 0..t.len() {
            t.unlinearize(pos, &mut idx);
            assert_eq!(t.linear_index(&idx), pos);
        }
    }

    #[test]
    fn c_order_last_mode_fastest() {
        let t = DenseTensor::from_fn(vec![2, 3], |idx| (idx[0] * 10 + idx[1]) as f64);
        // C order: (0,0),(0,1),(0,2),(1,0),(1,1),(1,2)
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn get_set() {
        let mut t = DenseTensor::zeros(vec![2, 2, 2]);
        t.set(&[1, 0, 1], 7.0);
        assert_eq!(t.get(&[1, 0, 1]), 7.0);
        assert_eq!(t.get(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn unfold_mode0_matches_layout() {
        let t = DenseTensor::from_fn(vec![2, 3], |idx| (idx[0] * 3 + idx[1]) as f64);
        let m = t.unfold(0);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn unfold_mode1_3d() {
        // X[i,j,k] = 100 i + 10 j + k over dims [2,2,2].
        let t = DenseTensor::from_fn(vec![2, 2, 2], |idx| {
            (100 * idx[0] + 10 * idx[1] + idx[2]) as f64
        });
        let m = t.unfold(1);
        assert_eq!(m.shape(), (2, 4));
        // Row j=0: entries (i,k) in C order over (i,k): (0,0),(0,1),(1,0),(1,1)
        assert_eq!(m.row(0), &[0.0, 1.0, 100.0, 101.0]);
        assert_eq!(m.row(1), &[10.0, 11.0, 110.0, 111.0]);
    }

    #[test]
    fn fold_is_inverse_of_unfold() {
        let t = DenseTensor::from_fn(vec![3, 2, 4], |idx| {
            (idx[0] * 100 + idx[1] * 10 + idx[2]) as f64
        });
        for mode in 0..3 {
            let m = t.unfold(mode);
            let back = DenseTensor::fold(&m, mode, t.dims());
            assert_eq!(back, t);
        }
    }

    #[test]
    fn ttm_with_identity_is_noop() {
        let t = DenseTensor::from_fn(vec![2, 3, 2], |idx| (idx[0] + idx[1] + idx[2]) as f64);
        for mode in 0..3 {
            let id = Matrix::identity(t.dims()[mode]);
            let y = t.ttm(mode, &id, false);
            assert!(t.frobenius_distance(&y) < 1e-14);
            let yt = t.ttm(mode, &id, true);
            assert!(t.frobenius_distance(&yt) < 1e-14);
        }
    }

    #[test]
    fn ttm_known_small() {
        // X of dims [2,2]: [[1,2],[3,4]]; U = [[1,1]] (1x2).
        // Y = X ×_0 U  => dims [1,2], y[0,j] = Σ_i x[i,j]*U(0,i) = col sums.
        let x = DenseTensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let u = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let y = x.ttm(0, &u, false);
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn ttm_transpose_matches_explicit() {
        // ×_n Uᵀ with U (d x r) equals ×_n V with V = Uᵀ (r x d).
        let x = DenseTensor::from_fn(vec![3, 4], |idx| (idx[0] * 4 + idx[1]) as f64);
        let u = Matrix::random(3, 2, 5);
        let y1 = x.ttm(0, &u, true);
        let y2 = x.ttm(0, &u.transpose(), false);
        assert!(y1.frobenius_distance(&y2) < 1e-12);
    }

    #[test]
    fn ttm_mode_interchange_commutes() {
        // (X ×_0 A) ×_1 B == (X ×_1 B) ×_0 A for distinct modes.
        let x = DenseTensor::from_fn(vec![3, 4, 2], |idx| {
            ((idx[0] + 1) * (idx[1] + 2) * (idx[2] + 3)) as f64
        });
        let a = Matrix::random(5, 3, 1);
        let b = Matrix::random(6, 4, 2);
        let y1 = x.ttm(0, &a, false).ttm(1, &b, false);
        let y2 = x.ttm(1, &b, false).ttm(0, &a, false);
        assert!(y1.frobenius_distance(&y2) < 1e-10);
    }

    #[test]
    fn ttm_unfold_identity() {
        // unfold_n(X ×_n U) = U · unfold_n(X)
        let x = DenseTensor::from_fn(vec![3, 4, 2], |idx| {
            (idx[0] * 8 + idx[1] * 2 + idx[2]) as f64
        });
        let u = Matrix::random(5, 3, 9);
        let y = x.ttm(0, &u, false);
        let lhs = y.unfold(0);
        let rhs = linalg::blas::gemm(&u, &x.unfold(0));
        assert!(lhs.frobenius_distance(&rhs) < 1e-10);
    }

    #[test]
    fn ttm_chain_reconstruction_shape() {
        let g = DenseTensor::from_fn(vec![2, 3, 2], |idx| (idx[0] + idx[1] + idx[2]) as f64);
        let u1 = Matrix::random(5, 2, 1);
        let u2 = Matrix::random(6, 3, 2);
        let u3 = Matrix::random(7, 2, 3);
        let x = g.ttm_chain(&[&u1, &u2, &u3], false);
        assert_eq!(x.dims(), &[5, 6, 7]);
    }

    #[test]
    fn from_vec_and_from_fn_agree() {
        let dims = vec![2, 2];
        let a = DenseTensor::from_vec(dims.clone(), vec![0.0, 1.0, 2.0, 3.0]);
        let b = DenseTensor::from_fn(dims, |idx| (idx[0] * 2 + idx[1]) as f64);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn from_vec_length_mismatch() {
        let _ = DenseTensor::from_vec(vec![2, 2], vec![1.0; 3]);
    }
}
