//! Cache-resident, mode-sorted copies of the nonzero data.
//!
//! The nonzero-based TTMc of mode `n` walks each row's update list and, per
//! nonzero, needs the value and the indices of the *other* modes.  Reading
//! them through COO ids (`tensor.index(id)` / `tensor.value(id)`) gathers
//! from effectively random positions of the COO arrays — one cache miss per
//! nonzero once the tensor outgrows the last-level cache.  A
//! [`ModeSortedNonzeros`] is built once per mode at plan time: the values
//! and the `order - 1` relevant indices of every nonzero, permuted into
//! update-list order, so the numeric kernel streams both arrays strictly
//! forward.  The mode's own index is omitted — it is constant within an
//! update list and already recorded by the symbolic row set.

use crate::SparseTensor;

/// Values and foreign-mode indices of a tensor's nonzeros, permuted into the
/// update-list (mode-sorted) order of one mode.
///
/// For nonzero position `p` of the permuted order, [`value`](Self::value)
/// returns its value and [`coords`](Self::coords) the indices of the modes
/// `t ≠ mode` in increasing mode order (`arity = order - 1` entries).
#[derive(Debug, Clone, Default)]
pub struct ModeSortedNonzeros {
    mode: usize,
    arity: usize,
    values: Vec<f64>,
    coords: Vec<usize>,
}

impl ModeSortedNonzeros {
    /// Builds the layout for `mode` from a permutation of nonzero ids
    /// (typically the concatenated update lists of the mode's symbolic
    /// data): position `p` of the layout holds nonzero `perm[p]`.
    ///
    /// # Panics
    /// Panics if `perm` does not have exactly one entry per nonzero or an
    /// entry is out of range.
    pub fn build(tensor: &SparseTensor, mode: usize, perm: &[usize]) -> Self {
        assert!(mode < tensor.order());
        assert_eq!(
            perm.len(),
            tensor.nnz(),
            "permutation must cover every nonzero"
        );
        let arity = tensor.order() - 1;
        let mut values = Vec::with_capacity(perm.len());
        let mut coords = Vec::with_capacity(perm.len() * arity);
        for &id in perm {
            values.push(tensor.value(id));
            let index = tensor.index(id);
            for (t, &i) in index.iter().enumerate() {
                if t != mode {
                    coords.push(i);
                }
            }
        }
        ModeSortedNonzeros {
            mode,
            arity,
            values,
            coords,
        }
    }

    /// The mode this layout is sorted for.
    #[inline]
    pub fn mode(&self) -> usize {
        self.mode
    }

    /// Number of foreign-mode indices stored per nonzero (`order - 1`).
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of nonzeros in the layout.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the layout holds no nonzeros.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value of the nonzero at permuted position `p`.
    #[inline]
    pub fn value(&self, p: usize) -> f64 {
        self.values[p]
    }

    /// The foreign-mode indices of the nonzero at permuted position `p`, in
    /// increasing mode order with this layout's mode omitted.
    #[inline]
    pub fn coords(&self, p: usize) -> &[usize] {
        &self.coords[p * self.arity..(p + 1) * self.arity]
    }

    /// The contiguous value slice for positions `lo..hi` — one update list
    /// when the bounds come from the symbolic row pointers.
    #[inline]
    pub fn values_range(&self, lo: usize, hi: usize) -> &[f64] {
        &self.values[lo..hi]
    }

    /// The contiguous coordinate slice for positions `lo..hi`
    /// (`(hi - lo) * arity` entries).
    #[inline]
    pub fn coords_range(&self, lo: usize, hi: usize) -> &[usize] {
        &self.coords[lo * self.arity..hi * self.arity]
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f64>()
            + self.coords.len() * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseTensor {
        SparseTensor::from_entries(
            vec![4, 3, 5],
            &[
                (vec![0, 0, 0], 1.0),
                (vec![0, 1, 2], 2.0),
                (vec![2, 1, 2], 3.0),
                (vec![2, 2, 4], 4.0),
                (vec![3, 0, 0], 5.0),
            ],
        )
    }

    #[test]
    fn identity_permutation_streams_in_coo_order() {
        let t = sample();
        let perm: Vec<usize> = (0..t.nnz()).collect();
        let layout = ModeSortedNonzeros::build(&t, 1, &perm);
        assert_eq!(layout.len(), 5);
        assert_eq!(layout.arity(), 2);
        assert_eq!(layout.mode(), 1);
        assert_eq!(layout.value(2), 3.0);
        // Mode 1 omitted: coords are (i0, i2).
        assert_eq!(layout.coords(2), &[2, 2]);
        assert_eq!(layout.coords(4), &[3, 0]);
    }

    #[test]
    fn permutation_reorders_values_and_coords_together() {
        let t = sample();
        let perm = vec![4, 2, 0, 3, 1];
        let layout = ModeSortedNonzeros::build(&t, 0, &perm);
        assert_eq!(layout.value(0), 5.0);
        assert_eq!(layout.coords(0), &[0, 0]);
        assert_eq!(layout.value(1), 3.0);
        assert_eq!(layout.coords(1), &[1, 2]);
    }

    #[test]
    fn range_accessors_are_contiguous_windows() {
        let t = sample();
        let perm: Vec<usize> = (0..t.nnz()).collect();
        let layout = ModeSortedNonzeros::build(&t, 2, &perm);
        assert_eq!(layout.values_range(1, 4), &[2.0, 3.0, 4.0]);
        assert_eq!(layout.coords_range(1, 3), &[0, 1, 2, 1]);
        assert!(layout.memory_bytes() > 0);
    }

    #[test]
    fn empty_tensor_empty_layout() {
        let t = SparseTensor::new(vec![2, 2]);
        let layout = ModeSortedNonzeros::build(&t, 0, &[]);
        assert!(layout.is_empty());
        assert_eq!(layout.arity(), 1);
    }

    #[test]
    #[should_panic]
    fn wrong_permutation_length_rejected() {
        let t = sample();
        let _ = ModeSortedNonzeros::build(&t, 0, &[0, 1]);
    }
}
