//! `.tns` round-trip and malformed-input coverage for `sptensor::io`
//! (feeds the ROADMAP's FROSTT validation item: real tensor files must load
//! exactly or fail with an error value, never a panic).

use sptensor::io::{
    external_sort_tns, read_tns, read_tns_file, read_tns_streamed, write_tns, write_tns_file,
    DuplicatePolicy, StreamOptions, TensorIoError,
};
use sptensor::SparseTensor;
use std::io::Cursor;

/// Tiny deterministic generator (xorshift64*) so the round-trip covers many
/// shapes without pulling `datagen` into sptensor's dev-dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn value(&mut self) -> f64 {
        // Mix magnitudes (including subnormal-ish and large) and signs.
        let mantissa = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
        let exponent = self.below(61) as i32 - 30;
        let sign = if self.next().is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        sign * mantissa * 2f64.powi(exponent)
    }
}

fn random_tensor(rng: &mut Rng, dims: &[usize], nnz: usize) -> SparseTensor {
    let mut seen = std::collections::BTreeSet::new();
    let mut entries = Vec::new();
    while entries.len() < nnz {
        let idx: Vec<usize> = dims.iter().map(|&d| rng.below(d)).collect();
        if seen.insert(idx.clone()) {
            entries.push((idx, rng.value()));
        }
    }
    SparseTensor::from_entries(dims.to_vec(), &entries)
}

#[test]
fn write_read_identity_across_shapes() {
    let mut rng = Rng(0x5eed_cafe);
    for dims in [
        vec![7, 5],
        vec![9, 8, 7],
        vec![6, 5, 4, 3],
        vec![3, 3, 3, 3, 3],
    ] {
        let capacity: usize = dims.iter().product();
        let t = random_tensor(&mut rng, &dims, capacity / 3);
        let mut buf = Vec::new();
        write_tns(&t, &mut buf).unwrap();
        let back = read_tns(Cursor::new(&buf), Some(t.dims().to_vec())).unwrap();
        assert_eq!(back.dims(), t.dims());
        assert_eq!(back.nnz(), t.nnz(), "dims {dims:?}");
        for k in 0..t.nnz() {
            assert_eq!(back.index(k), t.index(k), "dims {dims:?} entry {k}");
            // Rust's f64 Display prints the shortest representation that
            // parses back to the same bits, so the round-trip is exact.
            assert_eq!(
                back.value(k).to_bits(),
                t.value(k).to_bits(),
                "dims {dims:?} entry {k}: {} vs {}",
                back.value(k),
                t.value(k)
            );
        }
    }
}

#[test]
fn inferred_dims_match_max_index_per_mode() {
    let mut rng = Rng(0xfeed);
    let t = random_tensor(&mut rng, &[12, 10, 8], 120);
    let mut buf = Vec::new();
    write_tns(&t, &mut buf).unwrap();
    let back = read_tns(Cursor::new(&buf), None).unwrap();
    // Inferred sizes are the per-mode maxima actually present, which can
    // only shrink relative to the declared dims.
    assert_eq!(back.order(), 3);
    for (inferred, &declared) in back.dims().iter().zip(t.dims()) {
        assert!(*inferred <= declared);
    }
    assert_eq!(back.nnz(), t.nnz());
}

#[test]
fn file_roundtrip_on_disk() {
    let mut rng = Rng(0xd15c);
    let t = random_tensor(&mut rng, &[11, 9, 7], 80);
    let path = std::env::temp_dir().join("sptensor_tns_roundtrip_test.tns");
    write_tns_file(&t, &path).unwrap();
    let back = read_tns_file(&path, Some(t.dims().to_vec())).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(back.nnz(), t.nnz());
    for k in 0..t.nnz() {
        assert_eq!(back.index(k), t.index(k));
        assert_eq!(back.value(k).to_bits(), t.value(k).to_bits());
    }
}

#[test]
fn comments_blanks_and_whitespace_are_tolerated() {
    let data =
        "# header comment\n\n% matrix-market style comment\n  1\t2\t3   1.5  \n2 1 1 -0.25\n";
    let t = read_tns(Cursor::new(data), None).unwrap();
    assert_eq!(t.nnz(), 2);
    assert_eq!(t.index(0), &[0, 1, 2]);
    assert_eq!(t.value(0), 1.5);
    assert_eq!(t.value(1), -0.25);
}

#[test]
fn crlf_line_endings_and_missing_final_newline_parse() {
    // Windows-style endings, mixed with Unix ones, and a last line cut off
    // without its newline: all legal.
    let data = "# dims: 3 4 5\r\n1 1 1 1.5\r\n2 2 2 -2.0\n3 4 5 0.25";
    let t = read_tns(Cursor::new(data), None).unwrap();
    assert_eq!(t.dims(), &[3, 4, 5]);
    assert_eq!(t.nnz(), 3);
    assert_eq!(t.index(2), &[2, 3, 4]);
    assert_eq!(t.value(2), 0.25);
}

#[test]
fn truncated_files_are_parse_errors_with_the_right_line() {
    // A file cut mid-entry — whether mid-value, mid-index, or with the
    // value missing entirely — must fail as a typed error naming the line,
    // never panic or silently drop the tail.
    let cases: &[(&str, usize)] = &[
        // Value column missing on the last (unterminated) line.
        ("1 1 1 1.0\n2 2 2\n", 2),
        // Cut mid-index list, no trailing newline.
        ("1 1 1 1.0\n2 2", 2),
        // Cut mid-number: "-" alone is not a value.
        ("1 1 1 1.0\n2 2 2 -", 2),
    ];
    for (input, line) in cases {
        match read_tns(Cursor::new(*input), None) {
            Err(TensorIoError::Parse(l, _)) => assert_eq!(l, *line, "input {input:?}"),
            other => panic!("input {input:?}: expected parse error, got {other:?}"),
        }
    }
}

#[test]
fn rejected_duplicates_name_both_lines() {
    // Lines 2 and 4 collide (line 1 is the header).  The merge surfaces
    // both 1-based line numbers so a user can fix the file.
    let data = "# dims: 4 4 4\n2 3 4 1.0\n1 1 1 2.0\n2 3 4 5.0\n";
    let dir = std::env::temp_dir().join(format!("sptensor_dup_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let options = StreamOptions::new().chunk_nonzeros(2);
    let runs = external_sort_tns(Cursor::new(data), &options, Some(0), &dir).unwrap();
    let err = runs
        .for_each(DuplicatePolicy::Reject, |_, _| {})
        .unwrap_err();
    match err {
        TensorIoError::Duplicate { line, earlier_line } => {
            assert_eq!((earlier_line, line), (2, 4));
        }
        other => panic!("expected duplicate error, got {other:?}"),
    }

    // Sum keeps one merged entry instead.
    let runs = external_sort_tns(Cursor::new(data), &options, Some(0), &dir).unwrap();
    let mut merged = Vec::new();
    runs.for_each(DuplicatePolicy::Sum, |idx, v| {
        merged.push((idx.to_vec(), v))
    })
    .unwrap();
    assert_eq!(merged.len(), 2);
    assert!(merged.contains(&(vec![1, 2, 3], 6.0)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn out_of_range_indices_fail_during_streaming_with_line_numbers() {
    // The declared dims (here via the header) are enforced while the file
    // streams, so a bad index fails fast with its line — the file is never
    // buffered whole first.
    let data = "# dims: 3 3 3\n1 1 1 1.0\n2 9 2 2.0\n";
    let err = read_tns_streamed(Cursor::new(data), &StreamOptions::new()).unwrap_err();
    match err {
        TensorIoError::IndexOutOfRange {
            line,
            mode,
            index,
            size,
        } => {
            assert_eq!((line, mode, index, size), (3, 1, 9, 3));
        }
        other => panic!("expected out-of-range error, got {other:?}"),
    }
}

#[test]
fn malformed_inputs_are_errors_not_panics() {
    // (input, expected 1-based line of the parse error)
    let cases: &[(&str, usize)] = &[
        // A lone value with no index.
        ("3.25\n", 1),
        // Zero index (the format is 1-based).
        ("0 1 1 2.0\n", 1),
        // Index too large for usize.
        ("99999999999999999999999999 1 1 2.0\n", 1),
        // Negative index.
        ("-3 1 1 2.0\n", 1),
        // Non-numeric index.
        ("a 1 1 2.0\n", 1),
        // Non-numeric value.
        ("1 1 1 xyz\n", 1),
        // Arity changes mid-file.
        ("1 1 1 1.0\n1 1 1 1 1.0\n", 2),
        // Good line, then a bad one: error names the right line.
        ("1 2 3 4.0\n1 2 oops 4.0\n", 2),
    ];
    for (input, line) in cases {
        match read_tns(Cursor::new(*input), None) {
            Err(TensorIoError::Parse(l, msg)) => {
                assert_eq!(l, *line, "input {input:?}: wrong line in {msg:?}");
                assert!(!msg.is_empty());
            }
            other => panic!("input {input:?}: expected parse error, got {other:?}"),
        }
    }

    // Only comments / nothing at all: a distinct "empty" error.
    for input in ["", "# nothing\n", "% still nothing\n\n"] {
        assert!(
            matches!(
                read_tns(Cursor::new(input), None),
                Err(TensorIoError::Empty)
            ),
            "input {input:?}"
        );
    }

    // Explicit dims with the wrong arity.
    let err = read_tns(Cursor::new("1 1 1 1.0\n"), Some(vec![4, 4])).unwrap_err();
    assert!(matches!(err, TensorIoError::Parse(_, _)));

    // A missing file is an I/O error value.
    let err = read_tns_file("/nonexistent/definitely/missing.tns", None).unwrap_err();
    assert!(matches!(err, TensorIoError::Io(_)));
}
