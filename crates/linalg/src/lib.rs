//! Dense linear algebra substrate for HyperTensor-RS.
//!
//! The sparse Tucker/HOOI algorithms of Kaya & Uçar (ICPP 2016) need a small
//! but complete dense linear-algebra toolkit:
//!
//! * a row-major dense [`Matrix`] type with BLAS-like kernels ([`blas`]),
//! * thin Householder QR ([`qr`]) used to orthonormalize factor matrices,
//! * a symmetric eigensolver ([`eig`]) for small Gram matrices,
//! * a dense SVD ([`svd`]) for small projected problems,
//! * a matrix-free truncated SVD ([`lanczos`], [`randomized`]) built on the
//!   [`LinearOperator`] abstraction.  This is the
//!   Rust stand-in for the PETSc/SLEPc iterative TRSVD solver the paper uses:
//!   only matrix-vector (`MxV`) and matrix-transpose-vector (`MTxV`) products
//!   are required, so the operator can be a row-distributed or
//!   *sum-distributed* matricized TTMc result that is never assembled.
//!
//! All kernels are deterministic for a fixed seed and have both sequential
//! and rayon-parallel paths where it matters.

pub mod blas;
pub mod eig;
pub mod lanczos;
pub mod matrix;
pub mod operator;
pub mod qr;
pub mod randomized;
pub mod simd;
pub mod svd;

pub use lanczos::{lanczos_svd, LanczosOptions, TruncatedSvd};
pub use matrix::Matrix;
pub use operator::{DenseOperator, LinearOperator};
pub use qr::{orthonormalize_columns, qr_thin};
pub use randomized::{randomized_svd, RandomizedOptions};
pub use simd::KernelIsa;
pub use svd::dense_svd;

/// Tolerance used throughout the crate when comparing floating point values
/// in debug assertions and convergence checks.
pub const DEFAULT_EPS: f64 = 1e-10;

/// Returns `true` when `a` and `b` agree to within `tol` in absolute or
/// relative terms, whichever is looser.  Used by tests across the workspace.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-10));
        assert!(!approx_eq(1.0, 1.1, 1e-10));
    }

    #[test]
    fn approx_eq_relative() {
        assert!(approx_eq(1e12, 1e12 * (1.0 + 1e-12), 1e-10));
        assert!(!approx_eq(1e12, 1.01e12, 1e-10));
    }

    #[test]
    fn approx_eq_zero() {
        assert!(approx_eq(0.0, 0.0, 1e-15));
        assert!(approx_eq(0.0, 1e-16, 1e-15));
    }
}
