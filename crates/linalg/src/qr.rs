//! Thin QR factorization via Householder reflections, plus a modified
//! Gram-Schmidt orthonormalization helper.
//!
//! HOOI needs orthonormal factor matrices: the columns of each `U_n` are the
//! leading left singular vectors of the matricized TTMc result.  The Lanczos
//! and randomized TRSVD solvers in this crate re-orthonormalize their Krylov
//! bases with these routines, and HOSVD-style initialization orthonormalizes
//! random factor matrices before the first iteration.

use crate::blas::{axpy, dot, nrm2};
use crate::matrix::Matrix;

/// Result of a thin QR factorization `A = Q R` with
/// `Q ∈ R^{m×k}`, `R ∈ R^{k×k}`, `k = min(m, n)`.
#[derive(Debug, Clone)]
pub struct ThinQr {
    /// Orthonormal columns.
    pub q: Matrix,
    /// Upper-triangular factor.
    pub r: Matrix,
}

/// Computes the thin QR factorization of `a` using Householder reflections.
///
/// Works for any shape; for the tall-and-skinny matrices used in HOOI
/// (`m ≫ n`) the cost is `O(m n²)`.
pub fn qr_thin(a: &Matrix) -> ThinQr {
    let m = a.nrows();
    let n = a.ncols();
    let k = m.min(n);
    // Working copy that will be reduced to R in its upper triangle, with the
    // Householder vectors stored below the diagonal.
    let mut work = a.clone();
    // Householder scalars tau_j.
    let mut betas = vec![0.0; k];

    for j in 0..k {
        // Build the Householder vector for column j, rows j..m.
        let mut norm_x = 0.0;
        for i in j..m {
            norm_x += work[(i, j)] * work[(i, j)];
        }
        norm_x = norm_x.sqrt();
        if norm_x == 0.0 {
            betas[j] = 0.0;
            continue;
        }
        let alpha = if work[(j, j)] >= 0.0 { -norm_x } else { norm_x };
        let v0 = work[(j, j)] - alpha;
        // v = [v0, work[j+1..m, j]]; normalize so v[0] = 1.
        let mut vnorm_sq = v0 * v0;
        for i in (j + 1)..m {
            vnorm_sq += work[(i, j)] * work[(i, j)];
        }
        if vnorm_sq == 0.0 {
            betas[j] = 0.0;
            work[(j, j)] = alpha;
            continue;
        }
        let beta = 2.0 * v0 * v0 / vnorm_sq;
        betas[j] = beta;
        // Store normalized v (v/v0) below the diagonal; diagonal gets alpha.
        for i in (j + 1)..m {
            work[(i, j)] /= v0;
        }
        work[(j, j)] = alpha;

        // Apply the reflector to the trailing columns: for each col c > j,
        // w = v^T a_c ; a_c -= beta * w * v   (with v[0] = 1).
        for c in (j + 1)..n {
            let mut w = work[(j, c)];
            for i in (j + 1)..m {
                w += work[(i, j)] * work[(i, c)];
            }
            w *= beta;
            work[(j, c)] -= w;
            for i in (j + 1)..m {
                let vij = work[(i, j)];
                work[(i, c)] -= w * vij;
            }
        }
    }

    // Extract R (k x n upper triangle), then truncate to k x k for thin QR
    // when n >= k; when m < n we keep k x n.
    let rcols = if m < n { n } else { k };
    let mut r = Matrix::zeros(k, rcols);
    for i in 0..k {
        for j in i..rcols.min(n) {
            r[(i, j)] = work[(i, j)];
        }
    }

    // Form Q explicitly by applying the reflectors to the first k columns of
    // the identity, in reverse order.
    let mut q = Matrix::zeros(m, k);
    for j in 0..k {
        q[(j, j)] = 1.0;
    }
    for j in (0..k).rev() {
        let beta = betas[j];
        if beta == 0.0 {
            continue;
        }
        for c in 0..k {
            // w = v^T q_c with v = [1, work[j+1.., j]]
            let mut w = q[(j, c)];
            for i in (j + 1)..m {
                w += work[(i, j)] * q[(i, c)];
            }
            w *= beta;
            q[(j, c)] -= w;
            for i in (j + 1)..m {
                let vij = work[(i, j)];
                q[(i, c)] -= w * vij;
            }
        }
    }

    ThinQr {
        q,
        r: if m < n { r } else { r.take_columns(k) },
    }
}

/// Orthonormalizes the columns of `a` in place using modified Gram-Schmidt
/// with one reorthogonalization pass, returning the numerical rank found
/// (columns that become numerically zero are replaced by zero vectors).
pub fn orthonormalize_columns(a: &mut Matrix) -> usize {
    let n = a.ncols();
    let m = a.nrows();
    let mut rank = 0;
    let mut cols: Vec<Vec<f64>> = (0..n).map(|j| a.col(j)).collect();
    for j in 0..n {
        // Two passes of MGS against all previously accepted columns.
        for _ in 0..2 {
            for p in 0..j {
                let cj = std::mem::take(&mut cols[j]);
                let proj = dot(&cols[p], &cj);
                let mut cj = cj;
                axpy(-proj, &cols[p], &mut cj);
                cols[j] = cj;
            }
        }
        let norm = nrm2(&cols[j]);
        if norm > 1e-12 * (m as f64).sqrt().max(1.0) {
            cols[j].iter_mut().for_each(|x| *x /= norm);
            rank += 1;
        } else {
            cols[j].iter_mut().for_each(|x| *x = 0.0);
        }
    }
    for (j, col) in cols.iter().enumerate() {
        a.set_col(j, col);
    }
    rank
}

/// Measures the departure from orthonormality `‖QᵀQ - I‖_F` of the columns of
/// `q`; useful in tests and convergence diagnostics.
pub fn orthogonality_error(q: &Matrix) -> f64 {
    let g = crate::blas::gram(q);
    let mut err = 0.0;
    for i in 0..g.nrows() {
        for j in 0..g.ncols() {
            let target = if i == j { 1.0 } else { 0.0 };
            let d = g[(i, j)] - target;
            err += d * d;
        }
    }
    err.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::gemm;

    #[test]
    fn qr_reconstructs_tall() {
        let a = Matrix::random(30, 5, 42);
        let ThinQr { q, r } = qr_thin(&a);
        assert_eq!(q.shape(), (30, 5));
        assert_eq!(r.shape(), (5, 5));
        let qr = gemm(&q, &r);
        assert!(a.frobenius_distance(&qr) < 1e-10 * a.frobenius_norm());
    }

    #[test]
    fn qr_q_is_orthonormal() {
        let a = Matrix::random(50, 8, 7);
        let ThinQr { q, .. } = qr_thin(&a);
        assert!(orthogonality_error(&q) < 1e-10);
    }

    #[test]
    fn qr_r_is_upper_triangular() {
        let a = Matrix::random(20, 6, 3);
        let ThinQr { r, .. } = qr_thin(&a);
        for i in 0..r.nrows() {
            for j in 0..i {
                assert!(r[(i, j)].abs() < 1e-12);
            }
        }
    }

    #[test]
    fn qr_wide_matrix() {
        let a = Matrix::random(4, 9, 5);
        let ThinQr { q, r } = qr_thin(&a);
        assert_eq!(q.shape(), (4, 4));
        assert_eq!(r.shape(), (4, 9));
        let qr = gemm(&q, &r);
        assert!(a.frobenius_distance(&qr) < 1e-10 * a.frobenius_norm());
    }

    #[test]
    fn qr_square_identity() {
        let a = Matrix::identity(5);
        let ThinQr { q, r } = qr_thin(&a);
        let qr = gemm(&q, &r);
        assert!(a.frobenius_distance(&qr) < 1e-12);
    }

    #[test]
    fn qr_handles_zero_column() {
        let mut a = Matrix::random(10, 3, 9);
        a.set_col(1, &[0.0; 10]);
        let ThinQr { q, r } = qr_thin(&a);
        let qr = gemm(&q, &r);
        assert!(a.frobenius_distance(&qr) < 1e-10);
    }

    #[test]
    fn mgs_orthonormalizes() {
        let mut a = Matrix::random(40, 6, 11);
        let rank = orthonormalize_columns(&mut a);
        assert_eq!(rank, 6);
        assert!(orthogonality_error(&a) < 1e-10);
    }

    #[test]
    fn mgs_detects_rank_deficiency() {
        // Third column is the sum of the first two.
        let mut a = Matrix::random(20, 3, 13);
        let c0 = a.col(0);
        let c1 = a.col(1);
        let sum: Vec<f64> = c0.iter().zip(&c1).map(|(x, y)| x + y).collect();
        a.set_col(2, &sum);
        let rank = orthonormalize_columns(&mut a);
        assert_eq!(rank, 2);
    }

    #[test]
    fn orthogonality_error_of_identity_is_zero() {
        let q = Matrix::identity(4);
        assert!(orthogonality_error(&q) < 1e-15);
    }
}
