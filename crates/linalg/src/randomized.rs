//! Randomized truncated SVD (Halko–Martinsson–Tropp range finder).
//!
//! An alternative matrix-free TRSVD backend used in the ablation benches
//! (`trsvd_ablation`): instead of a Krylov subspace it builds a sketch
//! `Y = (A Aᵀ)^q A Ω` with a Gaussian-like test matrix `Ω`, orthonormalizes
//! it, and solves the small projected problem.  For the strongly decaying
//! spectra of matricized TTMc results one or two power iterations are
//! usually enough; the Lanczos solver remains the default because its
//! convergence is adaptive.

use crate::blas::{gemm_tn, par_gemm};
use crate::lanczos::TruncatedSvd;
use crate::matrix::Matrix;
use crate::operator::LinearOperator;
use crate::qr::{orthonormalize_columns, qr_thin};
use crate::svd::dense_svd;

/// Options for the randomized truncated SVD.
#[derive(Debug, Clone)]
pub struct RandomizedOptions {
    /// Extra columns added to the sketch beyond the requested rank.
    pub oversampling: usize,
    /// Number of power iterations (each costs one MxV and one MTxV sweep).
    pub power_iterations: usize,
    /// Seed for the random test matrix.
    pub seed: u64,
}

impl Default for RandomizedOptions {
    fn default() -> Self {
        RandomizedOptions {
            oversampling: 8,
            power_iterations: 2,
            seed: 0xabcd_1234,
        }
    }
}

/// Computes an approximate truncated SVD of a matrix-free operator using the
/// randomized range finder.
pub fn randomized_svd(
    op: &dyn LinearOperator,
    rank: usize,
    opts: &RandomizedOptions,
) -> TruncatedSvd {
    assert!(rank > 0, "randomized_svd: rank must be positive");
    let m = op.nrows();
    let n = op.ncols();
    if m == 0 || n == 0 {
        return TruncatedSvd {
            u: Matrix::zeros(m, 0),
            singular_values: vec![],
            v: Matrix::zeros(n, 0),
            operator_applications: 0,
            converged: true,
        };
    }
    let sketch_size = (rank + opts.oversampling).min(m.min(n)).max(1);
    let mut applications = 0usize;

    // Y = A * Omega, column by column through the operator interface.
    let omega = Matrix::random_signed(n, sketch_size, opts.seed);
    let mut y = Matrix::zeros(m, sketch_size);
    let mut ycol = vec![0.0; m];
    for j in 0..sketch_size {
        let oc = omega.col(j);
        op.apply(&oc, &mut ycol);
        applications += 1;
        y.set_col(j, &ycol);
    }

    // Power iterations with re-orthonormalization for stability.
    let mut zcol = vec![0.0; n];
    for _ in 0..opts.power_iterations {
        orthonormalize_columns(&mut y);
        let mut z = Matrix::zeros(n, sketch_size);
        for j in 0..sketch_size {
            let yc = y.col(j);
            op.apply_transpose(&yc, &mut zcol);
            applications += 1;
            z.set_col(j, &zcol);
        }
        orthonormalize_columns(&mut z);
        for j in 0..sketch_size {
            let zc = z.col(j);
            op.apply(&zc, &mut ycol);
            applications += 1;
            y.set_col(j, &ycol);
        }
    }

    // Orthonormal basis Q of the sketch.
    let q = qr_thin(&y).q;

    // B = Qᵀ A  computed as  Bᵀ = Aᵀ Q  (one MTxV per sketch column).
    let mut bt = Matrix::zeros(n, q.ncols());
    let mut btcol = vec![0.0; n];
    for j in 0..q.ncols() {
        let qc = q.col(j);
        op.apply_transpose(&qc, &mut btcol);
        applications += 1;
        bt.set_col(j, &btcol);
    }
    let b = bt.transpose();

    let small = dense_svd(&b);
    let take = rank.min(small.singular_values.len());
    // U = Q * U_small
    let u_full = par_gemm(&q, &small.u);
    let mut u = Matrix::zeros(m, take);
    let mut v = Matrix::zeros(n, take);
    for j in 0..take {
        u.set_col(j, &u_full.col(j));
        v.set_col(j, &small.v.col(j));
    }

    TruncatedSvd {
        u,
        singular_values: small.singular_values[..take].to_vec(),
        v,
        operator_applications: applications,
        converged: true,
    }
}

/// Convenience wrapper that computes the leading left singular vectors of an
/// explicit dense matrix with the randomized method (used by tests and the
/// MET baseline).
pub fn randomized_left_vectors(a: &Matrix, rank: usize, opts: &RandomizedOptions) -> Matrix {
    let op = crate::operator::DenseOperator::new(a);
    let svd = randomized_svd(&op, rank, opts);
    svd.u
}

/// Frobenius-norm error of a rank-`k` approximation `‖A - U diag(σ) Vᵀ‖_F`,
/// evaluated without forming the approximation when `A` is given explicitly.
///
/// Uses the identity `‖A - A_k‖_F² = ‖A‖_F² - Σ σ_i²` which holds when
/// `(U, σ, V)` are exact singular triplets; for approximate triplets it is
/// evaluated directly.
pub fn approximation_error(a: &Matrix, svd: &TruncatedSvd) -> f64 {
    let k = svd.singular_values.len();
    if k == 0 {
        return a.frobenius_norm();
    }
    // Direct evaluation: ‖A - U Σ Vᵀ‖_F.
    let mut s = Matrix::zeros(k, k);
    for i in 0..k {
        s[(i, i)] = svd.singular_values[i];
    }
    let us = par_gemm(&svd.u, &s);
    let approx = par_gemm(&us, &svd.v.transpose());
    a.frobenius_distance(&approx)
}

/// Computes the Gram-based exact rank-`k` error lower bound
/// `sqrt(Σ_{i>k} σ_i²)` from an explicit matrix; useful in tests to check a
/// truncated SVD is near-optimal.
pub fn optimal_rank_k_error(a: &Matrix, k: usize) -> f64 {
    let (m, n) = a.shape();
    let gram = if n <= m {
        gemm_tn(a, a)
    } else {
        gemm_tn(&a.transpose(), &a.transpose())
    };
    let eig = crate::eig::symmetric_eig(&gram);
    eig.values
        .iter()
        .skip(k)
        .map(|&l| l.max(0.0))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::blas::gemm;
    use crate::operator::DenseOperator;
    use crate::qr::orthogonality_error;
    use crate::svd::dense_svd as reference_svd;

    #[test]
    fn randomized_matches_dense_on_low_rank() {
        let b = Matrix::random(40, 5, 1);
        let c = Matrix::random(5, 30, 2);
        let a = gemm(&b, &c);
        let op = DenseOperator::new(&a);
        let result = randomized_svd(&op, 5, &RandomizedOptions::default());
        let reference = reference_svd(&a);
        for i in 0..5 {
            assert!(approx_eq(
                result.singular_values[i],
                reference.singular_values[i],
                1e-6
            ));
        }
    }

    #[test]
    fn randomized_vectors_orthonormal() {
        let a = Matrix::random(60, 25, 9);
        let op = DenseOperator::new(&a);
        let result = randomized_svd(&op, 6, &RandomizedOptions::default());
        assert!(orthogonality_error(&result.u) < 1e-8);
        assert!(orthogonality_error(&result.v) < 1e-8);
    }

    #[test]
    fn randomized_near_optimal_error() {
        let a = Matrix::random(50, 40, 13);
        let op = DenseOperator::new(&a);
        let k = 8;
        let result = randomized_svd(&op, k, &RandomizedOptions::default());
        let err = approximation_error(&a, &result);
        let opt = optimal_rank_k_error(&a, k);
        // Randomized SVD with power iterations should be within a few percent
        // of the optimal rank-k error for these sizes.
        assert!(err <= 1.10 * opt + 1e-9, "err {err} vs optimal {opt}");
    }

    #[test]
    fn randomized_counts_applications() {
        let a = Matrix::random(30, 30, 4);
        let op = DenseOperator::new(&a);
        let result = randomized_svd(&op, 3, &RandomizedOptions::default());
        assert!(result.operator_applications > 0);
    }

    #[test]
    fn left_vectors_helper_shape() {
        let a = Matrix::random(44, 12, 5);
        let u = randomized_left_vectors(&a, 4, &RandomizedOptions::default());
        assert_eq!(u.shape(), (44, 4));
        assert!(orthogonality_error(&u) < 1e-8);
    }

    #[test]
    fn optimal_error_zero_for_full_rank_request() {
        let a = Matrix::random(10, 6, 3);
        let err = optimal_rank_k_error(&a, 6);
        assert!(err < 1e-8);
    }

    #[test]
    fn approximation_error_of_empty_svd_is_norm() {
        let a = Matrix::random(7, 7, 8);
        let empty = TruncatedSvd {
            u: Matrix::zeros(7, 0),
            singular_values: vec![],
            v: Matrix::zeros(7, 0),
            operator_applications: 0,
            converged: true,
        };
        assert!(approx_eq(
            approximation_error(&a, &empty),
            a.frobenius_norm(),
            1e-12
        ));
    }
}
