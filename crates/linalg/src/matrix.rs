//! Row-major dense matrix type.
//!
//! Factor matrices `U_n ∈ R^{I_n × R_n}` in the Tucker decomposition are tall
//! and skinny, and the TTMc kernels access them row-wise (`U_n(i, :)`), so a
//! row-major layout keeps each accessed row contiguous in memory.

use rand::distributions::{Distribution, Uniform};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major, `f64` matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `nrows × ncols` matrix filled with zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Matrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Creates an `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a closure evaluated at every `(row, col)` pair.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(nrows: usize, ncols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                data.push(f(i, j));
            }
        }
        Matrix { nrows, ncols, data }
    }

    /// Creates a matrix that takes ownership of a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            nrows * ncols,
            "buffer length {} does not match {}x{}",
            data.len(),
            nrows,
            ncols
        );
        Matrix { nrows, ncols, data }
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Panics
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let ncols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * ncols);
        for r in rows {
            assert_eq!(r.len(), ncols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            nrows: rows.len(),
            ncols,
            data,
        }
    }

    /// Creates a matrix with entries drawn uniformly from `[0, 1)` using a
    /// deterministic seed.
    pub fn random(nrows: usize, ncols: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let dist = Uniform::new(0.0, 1.0);
        let data = (0..nrows * ncols).map(|_| dist.sample(&mut rng)).collect();
        Matrix { nrows, ncols, data }
    }

    /// Creates a matrix with entries drawn uniformly from `[-1, 1)`; used for
    /// Gaussian-like sketching in the randomized SVD (a centered uniform is
    /// sufficient for a range finder and avoids a Box-Muller dependency).
    pub fn random_signed(nrows: usize, ncols: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let dist = Uniform::new(-1.0, 1.0);
        let data = (0..nrows * ncols).map(|_| dist.sample(&mut rng)).collect();
        Matrix { nrows, ncols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.nrows);
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.nrows);
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Copies column `j` into a freshly allocated vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.ncols);
        (0..self.nrows).map(|i| self[(i, j)]).collect()
    }

    /// Overwrites column `j` with the entries of `v`.
    pub fn set_col(&mut self, j: usize, v: &[f64]) {
        assert!(j < self.ncols);
        assert_eq!(v.len(), self.nrows);
        for i in 0..self.nrows {
            self[(i, j)] = v[i];
        }
    }

    /// Overwrites row `i` with the entries of `v`.
    pub fn set_row(&mut self, i: usize, v: &[f64]) {
        assert_eq!(v.len(), self.ncols);
        self.row_mut(i).copy_from_slice(v);
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.ncols, self.nrows);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Returns a new matrix containing the rows with indices in `rows`, in
    /// the given order.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(rows.len(), self.ncols);
        for (dst, &src) in rows.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Returns a new matrix containing columns `0..k`.
    pub fn take_columns(&self, k: usize) -> Matrix {
        assert!(k <= self.ncols);
        let mut out = Matrix::zeros(self.nrows, k);
        for i in 0..self.nrows {
            out.row_mut(i).copy_from_slice(&self.row(i)[..k]);
        }
        out
    }

    /// Fills every entry with `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Multiplies every entry by `alpha` in place.
    pub fn scale(&mut self, alpha: f64) {
        self.data.iter_mut().for_each(|x| *x *= alpha);
    }

    /// `self += alpha * other`, entrywise.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape());
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute entry (`max |a_ij|`), 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, x| acc.max(x.abs()))
    }

    /// Entrywise difference norm `‖self - other‖_F`.
    pub fn frobenius_distance(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Returns an iterator over (row, col, value) of all entries.
    pub fn iter_entries(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let ncols = self.ncols;
        self.data
            .iter()
            .enumerate()
            .map(move |(k, &v)| (k / ncols, k % ncols, v))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i * self.ncols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i * self.ncols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.nrows, self.ncols)?;
        let max_rows = 8.min(self.nrows);
        for i in 0..max_rows {
            write!(f, "  [")?;
            let max_cols = 8.min(self.ncols);
            for j in 0..max_cols {
                write!(f, "{:10.4}", self[(i, j)])?;
                if j + 1 < max_cols {
                    write!(f, ", ")?;
                }
            }
            if self.ncols > max_cols {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.nrows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_diag() {
        let m = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_fn_layout() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m[(1, 2)], 12.0);
    }

    #[test]
    fn from_vec_roundtrip() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let m = Matrix::from_vec(2, 3, v.clone());
        assert_eq!(m.into_vec(), v);
    }

    #[test]
    #[should_panic]
    fn from_vec_bad_len() {
        let _ = Matrix::from_vec(2, 3, vec![1.0; 5]);
    }

    #[test]
    fn row_and_col_access() {
        let m = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        assert_eq!(m.row(1), &[2.0, 3.0]);
        assert_eq!(m.col(1), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn set_row_and_col() {
        let mut m = Matrix::zeros(2, 2);
        m.set_row(0, &[1.0, 2.0]);
        m.set_col(1, &[9.0, 8.0]);
        assert_eq!(m.as_slice(), &[1.0, 9.0, 0.0, 8.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::random(4, 7, 42);
        let t = m.transpose();
        assert_eq!(t.shape(), (7, 4));
        assert_eq!(m, t.transpose());
    }

    #[test]
    fn select_rows_order() {
        let m = Matrix::from_fn(4, 2, |i, _| i as f64);
        let s = m.select_rows(&[3, 1]);
        assert_eq!(s.row(0), &[3.0, 3.0]);
        assert_eq!(s.row(1), &[1.0, 1.0]);
    }

    #[test]
    fn take_columns_prefix() {
        let m = Matrix::from_fn(2, 4, |_, j| j as f64);
        let s = m.take_columns(2);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.row(0), &[0.0, 1.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Matrix::identity(2);
        a.axpy(2.0, &b);
        assert_eq!(a[(0, 0)], 2.0);
        assert_eq!(a[(1, 1)], 4.0);
        a.scale(0.5);
        assert_eq!(a[(1, 1)], 2.0);
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn frobenius_distance_zero_for_equal() {
        let m = Matrix::random(3, 3, 7);
        assert_eq!(m.frobenius_distance(&m), 0.0);
    }

    #[test]
    fn random_is_deterministic() {
        let a = Matrix::random(5, 5, 123);
        let b = Matrix::random(5, 5, 123);
        assert_eq!(a, b);
        let c = Matrix::random(5, 5, 124);
        assert_ne!(a, c);
    }

    #[test]
    fn max_abs_value() {
        let m = Matrix::from_vec(2, 2, vec![-7.0, 2.0, 3.0, 5.0]);
        assert_eq!(m.max_abs(), 7.0);
    }

    #[test]
    fn iter_entries_covers_all() {
        let m = Matrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64);
        let entries: Vec<_> = m.iter_entries().collect();
        assert_eq!(entries.len(), 4);
        assert_eq!(entries[3], (1, 1, 3.0));
    }
}
